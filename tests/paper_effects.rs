//! Paper-specific effects, tested end-to-end on reduced configurations:
//! the §3 monotonicity premise, the §7.4 sharing effect, the §7.5 overhead
//! bound, and the §6 cost-based replacement advantage.

use dmm::buffer::{ClassId, PolicySpec};
use dmm::cluster::NodeId;
use dmm::core::{ControllerKind, Simulation, SystemConfig};
use dmm::workload::WorkloadSpec;

fn small(seed: u64, theta: f64, goal_ms: f64) -> SystemConfig {
    SystemConfig::builder()
        .seed(seed)
        .theta(theta)
        .goal_ms(goal_ms)
        .db_pages(600)
        .buffer_pages_per_node(128)
        .warmup_intervals(3)
        .build()
        .expect("valid test config")
}

/// §3/§7.3 premise: on the dedicated branch, more dedicated memory means a
/// faster goal class (this is also what calibration relies on).
#[test]
fn dedication_is_monotone_on_the_dedicated_branch() {
    let rt_at = |fraction: f64| {
        let mut cfg = small(21, 0.0, 8.0);
        cfg.controller = ControllerKind::None;
        let mut sim = Simulation::new(cfg);
        sim.dedicate_fraction(ClassId(1), fraction)
            .expect("valid fraction");
        sim.run_intervals(16);
        sim.mean_observed_ms(ClassId(1), 6).expect("data")
    };
    let coarse = rt_at(1.0 / 3.0);
    let fine = rt_at(2.0 / 3.0);
    assert!(
        fine < coarse,
        "2/3 dedicated must beat 1/3: {fine:.2} vs {coarse:.2}"
    );
}

/// §7.4 / §3 Example 2: when k2 shares k1's (hot) pages, k2's dedicated
/// buffers become unnecessary and the controller removes them.
#[test]
fn sharing_removes_k2_buffers() {
    let k2_dedicated_at = |sharing: f64| {
        let mut cfg = SystemConfig::builder()
            .seed(22)
            .goal_ms(8.0)
            .db_pages(900)
            .buffer_pages_per_node(256)
            .release_floor_mb(0.0)
            .warmup_intervals(3)
            .build()
            .expect("valid test config");
        cfg.workload = WorkloadSpec::two_goal_classes(3, 900, 0.0, 0.004, 5.0, 9.0, sharing);
        let mut sim = Simulation::new(cfg);
        sim.run_intervals(40);
        let recs = sim.records(ClassId(2));
        let tail = &recs[recs.len() - 10..];
        tail.iter().map(|r| r.dedicated_bytes).sum::<u64>() / 10
    };
    let disjoint = k2_dedicated_at(0.0);
    let shared = k2_dedicated_at(1.0);
    assert!(
        shared < disjoint / 2,
        "full sharing should shrink k2's pools: {shared} vs {disjoint} bytes"
    );
}

/// §7.5: goal-management messages are a negligible fraction of traffic.
#[test]
fn control_overhead_is_below_a_tenth_of_a_percent() {
    let mut sim = Simulation::new(small(23, 0.0, 8.0));
    sim.run_intervals(30);
    let f = sim.plane().network().control_fraction();
    assert!(f < 0.001, "control fraction {f}");
    assert!(sim.plane().network().control_bytes() > 0, "reports flowed");
}

/// §6: the cost-based policy reduces disk reads versus plain LRU by serving
/// more requests from remote memory.
#[test]
fn cost_based_replacement_cuts_disk_reads() {
    let disk_reads = |policy| {
        let mut cfg = small(24, 0.6, 8.0);
        cfg.cluster.policy = policy;
        let mut sim = Simulation::new(cfg);
        sim.run_intervals(25);
        (0..3)
            .map(|n| sim.plane().disk_reads(NodeId(n)))
            .sum::<u64>()
    };
    let cost = disk_reads(PolicySpec::CostBased);
    let lru = disk_reads(PolicySpec::Lru);
    assert!(
        cost < lru,
        "cost-based should hit remote memory instead of disk: {cost} vs {lru}"
    );
}

/// The no-goal class pays for the goal class's memory: its response time
/// worsens as the goal tightens (the coupling the §4 objective manages).
#[test]
fn nogoal_pays_for_tight_goals() {
    let nogoal_at = |goal_ms: f64| {
        let mut sim = Simulation::new(small(25, 0.0, goal_ms));
        sim.run_intervals(25);
        let recs = sim.records(ClassId(1));
        recs[recs.len() - 8..]
            .iter()
            .map(|r| r.nogoal_ms)
            .sum::<f64>()
            / 8.0
    };
    let relaxed = nogoal_at(14.0);
    let tight = nogoal_at(4.0);
    assert!(
        tight > relaxed,
        "tighter goal must cost the no-goal class: {tight:.2} vs {relaxed:.2}"
    );
}

/// Warm-up probing guarantees the coordinator escapes the "no measure
/// points" state: after enough intervals the LP is in charge and the class
/// is on goal even when the initial partitioning was hopeless.
#[test]
fn warmup_probing_reaches_full_rank() {
    let mut sim = Simulation::new(small(26, 0.0, 5.0));
    sim.run_intervals(30);
    let last = sim.records(ClassId(1)).last().copied().expect("ran");
    assert!(
        last.dedicated_bytes > 0,
        "tight goal must leave the class with dedicated memory"
    );
    let sat = sim
        .records(ClassId(1))
        .iter()
        .filter(|r| r.satisfied == Some(true))
        .count();
    assert!(sat > 3, "the goal was satisfied in some intervals: {sat}");
}
