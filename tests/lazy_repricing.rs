//! Lazy benefit maintenance: equivalence with the eager sweep, determinism,
//! and the work-reduction evidence (lazy recomputes ≪ eager sweep pages).

use dmm::buffer::{ClassId, PoolStats, NO_GOAL};
use dmm::cluster::{NodeId, RepricingMode};
use dmm::core::{ControllerKind, Simulation, SystemConfig};
use dmm::obs::VecSink;
use dmm::workload::GoalRange;

/// The fig2-style base run, shrunk for test speed, with a selectable
/// repricing mode.
fn config(seed: u64, mode: RepricingMode) -> SystemConfig {
    SystemConfig::builder()
        .seed(seed)
        .goal_ms(8.0)
        .db_pages(600)
        .buffer_pages_per_node(128)
        .repricing(mode)
        .warmup_intervals(3)
        .build()
        .expect("valid test config")
}

#[derive(Debug)]
struct Summary {
    class_rt_ms: f64,
    class_hit_rate: f64,
    nogoal_hit_rate: f64,
    disk_reads: u64,
    completions: u64,
}

fn summarize(sim: &Simulation) -> Summary {
    let mut class_pool = PoolStats::default();
    let mut nogoal_pool = PoolStats::default();
    let mut disk_reads = 0;
    for n in 0..3 {
        let node = NodeId(n as u16);
        class_pool.merge(&sim.plane().pool_stats(node, ClassId(1)));
        nogoal_pool.merge(&sim.plane().pool_stats(node, NO_GOAL));
        disk_reads += sim.plane().disk_reads(node);
    }
    Summary {
        class_rt_ms: sim.mean_observed_ms(ClassId(1), 8).expect("data"),
        class_hit_rate: class_pool.hit_rate(),
        nogoal_hit_rate: nogoal_pool.hit_rate(),
        disk_reads,
        completions: sim.plane().completions(),
    }
}

/// The paper-scale base run (3 nodes × 512-page pools, 2000-page database)
/// in a selectable repricing mode.
fn paper_scale(mode: RepricingMode) -> Simulation {
    let cfg = SystemConfig::builder()
        .seed(42)
        .goal_ms(15.0)
        .repricing(mode)
        .build()
        .expect("valid test config");
    let mut sim = Simulation::new(cfg);
    sim.run_intervals(30);
    sim
}

/// Caching-quality equivalence, measured where it can be measured cleanly:
/// at a *fixed* memory allocation (static controller), so the two modes see
/// identical pool sizes and every difference is down to victim selection.
/// Victim *choices* may differ (lazy evicts on benefits re-priced at
/// eviction time, eager on a once-per-interval snapshot), but hit rates,
/// response times and disk I/O — the metrics the paper's experiments key
/// on — must agree closely.
#[test]
fn lazy_matches_eager_at_a_fixed_allocation() {
    let run = |mode| {
        let cfg = SystemConfig::builder()
            .seed(42)
            .goal_ms(15.0)
            .controller(ControllerKind::Static { fraction: 0.4 })
            .repricing(mode)
            .build()
            .expect("valid test config");
        let mut sim = Simulation::new(cfg);
        sim.run_intervals(30);
        summarize(&sim)
    };
    let eager = run(RepricingMode::Eager);
    let lazy = run(RepricingMode::Lazy);
    println!("eager: {eager:?}");
    println!("lazy:  {lazy:?}");
    assert!(
        (lazy.class_hit_rate - eager.class_hit_rate).abs() < 0.02,
        "class hit rate drifted: eager {:.4} vs lazy {:.4}",
        eager.class_hit_rate,
        lazy.class_hit_rate
    );
    assert!(
        (lazy.nogoal_hit_rate - eager.nogoal_hit_rate).abs() < 0.02,
        "no-goal hit rate drifted: eager {:.4} vs lazy {:.4}",
        eager.nogoal_hit_rate,
        lazy.nogoal_hit_rate
    );
    let rt_ratio = lazy.class_rt_ms / eager.class_rt_ms;
    assert!(
        (0.9..1.1).contains(&rt_ratio),
        "class RT drifted: eager {:.2} ms vs lazy {:.2} ms",
        eager.class_rt_ms,
        lazy.class_rt_ms
    );
    let disk_ratio = lazy.disk_reads as f64 / eager.disk_reads as f64;
    assert!(
        (0.85..1.15).contains(&disk_ratio),
        "disk I/O drifted: eager {} vs lazy {}",
        eager.disk_reads,
        lazy.disk_reads
    );
    // Throughput is workload-driven; both modes complete the same offered
    // load to within a fraction of a percent.
    let thr_ratio = lazy.completions as f64 / eager.completions as f64;
    assert!((0.995..1.005).contains(&thr_ratio));
}

/// Under the closed-loop controller the two modes need not land on the
/// *same* allocation — small transient differences in victim timing can
/// push the hysteretic controller to a different goal-satisfying fixed
/// point (release is deliberately conservative, so nearby plateaus are all
/// stable). What lazy mode must preserve is the contract: the goal class
/// meets its response-time goal, and throughput is unchanged.
#[test]
fn lazy_satisfies_the_goal_the_controller_holds() {
    const GOAL_MS: f64 = 15.0;
    let eager = summarize(&paper_scale(RepricingMode::Eager));
    let lazy = summarize(&paper_scale(RepricingMode::Lazy));
    println!("eager: {eager:?}");
    println!("lazy:  {lazy:?}");
    for (name, s) in [("eager", &eager), ("lazy", &lazy)] {
        assert!(
            s.class_rt_ms <= GOAL_MS * 1.15,
            "{name}: goal missed ({:.2} ms vs {GOAL_MS} ms)",
            s.class_rt_ms
        );
    }
    let thr_ratio = lazy.completions as f64 / eager.completions as f64;
    assert!((0.995..1.005).contains(&thr_ratio));
}

/// The acceptance evidence for the tentpole: lazy maintenance costs
/// O(evictions · log pool) per interval where the eager sweep costs
/// O(pool pages · log pool). The gap opens at realistic buffer sizes —
/// pools large relative to the eviction churn (the paper-scale test config
/// churns its 1 536 pool pages faster than once per interval, which no
/// maintenance scheme can beat asymptotically) — so this runs 2 048-page
/// pools over a 6 000-page database and checks the counters.
#[test]
fn lazy_recomputes_far_fewer_benefits_than_the_eager_sweep() {
    let large_pools = |mode| {
        let cfg = SystemConfig::builder()
            .seed(42)
            .goal_ms(15.0)
            .db_pages(6000)
            .buffer_pages_per_node(2048)
            .controller(ControllerKind::Static { fraction: 0.4 })
            .repricing(mode)
            .build()
            .expect("valid test config");
        let mut sim = Simulation::new(cfg);
        sim.run_intervals(30);
        sim
    };
    let eager_sim = large_pools(RepricingMode::Eager);
    let lazy_sim = large_pools(RepricingMode::Lazy);
    let eager_stats = eager_sim.plane().reprice_stats();
    let lazy_stats = lazy_sim.plane().reprice_stats();
    println!("eager: {eager_stats:?}");
    println!("lazy:  {lazy_stats:?}");
    assert!(eager_stats.sweeps >= 30, "eager sweeps once per interval");
    assert!(eager_stats.sweep_pages > 0);
    assert_eq!(lazy_stats.sweeps, 0, "lazy never runs the full sweep");
    // Total pricing work: both modes price pages on the access path; on top
    // of that eager pays the full per-interval sweep while lazy pays only
    // the stale-min refreshes — the total must shrink substantially.
    assert!(
        lazy_stats.recomputes * 2 < eager_stats.recomputes,
        "lazy total recomputes ({}) must be well below eager's ({})",
        lazy_stats.recomputes,
        eager_stats.recomputes
    );
    // Maintenance-only work (what replaced the sweep): stale-min refreshes
    // plus the rare resize refreshes, versus the sweep's page visits.
    let lazy_maintenance = lazy_stats.heap_retries + lazy_stats.sweep_pages;
    assert!(
        lazy_maintenance * 3 < eager_stats.sweep_pages,
        "lazy maintenance ({lazy_maintenance}) must be ≪ eager sweep pages ({})",
        eager_stats.sweep_pages
    );
    // The counters surface through the metrics snapshot for dashboards.
    let snap = lazy_sim.metrics_snapshot();
    assert_eq!(
        snap.get_counter("cluster.reprice.lazy_recomputes"),
        Some(lazy_stats.lazy_recomputes)
    );
    assert_eq!(snap.get_counter("cluster.reprice.sweeps"), Some(0));
}

/// Lazy mode stays deterministic: the same seed yields a byte-identical
/// structured trace.
#[test]
fn lazy_traces_are_byte_identical_per_seed() {
    let traced = |seed: u64| {
        let mut cfg = config(seed, RepricingMode::Lazy);
        cfg.goal_range = Some(GoalRange::new(4.0, 40.0));
        let sink = VecSink::new();
        let mut sim = Simulation::new(cfg);
        sim.set_trace_sink(Box::new(sink.handle()));
        sim.run_intervals(25);
        sink.to_jsonl()
    };
    let a = traced(7);
    let b = traced(7);
    assert!(!a.is_empty());
    assert_eq!(a.as_bytes(), b.as_bytes(), "same seed, same bytes");
    assert_ne!(a, traced(8), "different seed, different trace");
}
