//! Cross-crate integration tests: the full simulated system end-to-end.

use dmm::buffer::{ClassId, PolicySpec};
use dmm::cluster::NodeId;
use dmm::core::{
    calibrate_goal_range, ControllerKind, Objective, SatisfactionMode, Simulation, SystemConfig,
};

/// A small, fast configuration used by most tests.
fn small(seed: u64, theta: f64, goal_ms: f64) -> SystemConfig {
    SystemConfig::builder()
        .seed(seed)
        .theta(theta)
        .goal_ms(goal_ms)
        .db_pages(600)
        .buffer_pages_per_node(128)
        .warmup_intervals(3)
        .build()
        .expect("valid test config")
}

#[test]
fn controller_converges_to_a_tight_goal() {
    // The goal requires real dedication; the feedback loop must find it.
    let mut sim = Simulation::new(small(1, 0.0, 6.0));
    sim.run_intervals(30);
    let rt = sim.mean_observed_ms(ClassId(1), 8).expect("data");
    let tol = 0.4 * 6.0;
    assert!(
        (rt - 6.0).abs() <= tol + 2.0,
        "should track the goal: observed {rt:.2} vs 6.00"
    );
    assert!(
        sim.plane().total_dedicated_bytes(ClassId(1)) > 0,
        "a tight goal needs dedicated memory"
    );
}

#[test]
fn upper_bound_mode_protects_the_class() {
    let mut cfg = small(2, 0.0, 8.0);
    cfg.satisfaction = SatisfactionMode::UpperBound;
    let mut sim = Simulation::new(cfg);
    sim.run_intervals(30);
    let rt = sim.mean_observed_ms(ClassId(1), 8).expect("data");
    assert!(rt <= 8.0 * 1.6, "upper bound held approximately: {rt:.2}");
}

#[test]
fn goal_controller_beats_no_controller_on_tight_goals() {
    let run = |controller| {
        let mut cfg = small(3, 0.0, 5.0);
        cfg.controller = controller;
        let mut sim = Simulation::new(cfg);
        sim.run_intervals(30);
        sim.mean_observed_ms(ClassId(1), 10).expect("data")
    };
    let with = run(ControllerKind::default());
    let without = run(ControllerKind::None);
    assert!(
        with < without,
        "controller should reduce the goal class's RT: {with:.2} vs {without:.2}"
    );
}

#[test]
fn fencing_baselines_also_approach_goals() {
    for controller in [
        ControllerKind::FragmentFencing,
        ControllerKind::ClassFencing,
    ] {
        let mut cfg = small(4, 0.0, 6.0);
        cfg.controller = controller;
        let mut sim = Simulation::new(cfg);
        sim.run_intervals(30);
        let rt = sim.mean_observed_ms(ClassId(1), 8).expect("data");
        assert!(
            rt < 14.0,
            "{controller:?} should move the class toward 6 ms: {rt:.2}"
        );
    }
}

#[test]
fn calibrated_range_is_ordered_and_spanned() {
    let cfg = small(5, 0.0, 8.0);
    let range = calibrate_goal_range(&cfg, ClassId(1), 3, 4);
    assert!(range.min_ms > 0.0);
    assert!(range.max_ms > range.min_ms, "more memory must be faster");
}

#[test]
fn dynamic_goal_changes_are_followed() {
    let mut sim = Simulation::new(small(6, 0.0, 10.0));
    sim.run_intervals(16);
    let before = sim.plane().total_dedicated_bytes(ClassId(1));
    sim.set_goal(ClassId(1), 4.0).expect("valid goal change");
    sim.run_intervals(16);
    let after = sim.plane().total_dedicated_bytes(ClassId(1));
    assert!(
        after > before,
        "tightening 10 → 4 ms must add memory ({before} → {after})"
    );
}

#[test]
fn every_policy_supports_the_controller() {
    for policy in [
        PolicySpec::Lru,
        PolicySpec::Clock,
        PolicySpec::LruK(2),
        PolicySpec::CostBased,
    ] {
        let mut cfg = small(7, 0.3, 8.0);
        cfg.cluster.policy = policy;
        let mut sim = Simulation::new(cfg);
        sim.run_intervals(12);
        assert!(sim.plane().completions() > 300, "{policy:?} ran");
        assert!(sim.records(ClassId(1)).len() == 12);
    }
}

#[test]
fn objectives_all_converge() {
    for objective in [
        Objective::MinNoGoalRt,
        Objective::MinTotalDedicated,
        Objective::BalanceNodes,
    ] {
        let mut cfg = small(8, 0.0, 6.0);
        cfg.controller = ControllerKind::Hyperplane { objective };
        let mut sim = Simulation::new(cfg);
        sim.run_intervals(24);
        let rt = sim.mean_observed_ms(ClassId(1), 8).expect("data");
        assert!(rt < 12.0, "{objective:?}: observed {rt:.2}");
    }
}

#[test]
fn five_node_cluster_runs() {
    let cfg = SystemConfig::builder()
        .seed(9)
        .goal_ms(8.0)
        .nodes(5)
        .db_pages(1000)
        .buffer_pages_per_node(128)
        .goal_rate_per_ms(0.004)
        .warmup_intervals(3)
        .build()
        .expect("valid test config");
    let mut sim = Simulation::new(cfg);
    sim.run_intervals(20);
    assert!(sim.plane().completions() > 500);
    // The coordinator needs N+1 = 6 independent points before its LP runs;
    // it must still act through probing and converge eventually.
    assert!(sim
        .records(ClassId(1))
        .iter()
        .any(|r| r.satisfied == Some(true)));
}

#[test]
fn static_partitioning_is_applied_and_held() {
    let mut cfg = small(10, 0.0, 8.0);
    cfg.controller = ControllerKind::Static { fraction: 0.25 };
    let mut sim = Simulation::new(cfg);
    let expect = (0.25 * 128.0) as u64 * 3 * 4096;
    assert_eq!(sim.plane().total_dedicated_bytes(ClassId(1)), expect);
    sim.run_intervals(10);
    assert_eq!(
        sim.plane().total_dedicated_bytes(ClassId(1)),
        expect,
        "static partitioning never moves"
    );
}

#[test]
fn per_node_grants_respect_capacity() {
    let mut sim = Simulation::new(small(11, 0.0, 4.0));
    sim.run_intervals(25);
    for n in 0..3 {
        let node = NodeId(n as u16);
        assert!(sim.plane().dedicated_pages(node, ClassId(1)) <= 128);
        assert!(sim.plane().avail_pages(node, ClassId(1)) <= 128);
    }
}

#[test]
fn coordinator_migration_keeps_the_loop_running() {
    let mut sim = Simulation::new(small(12, 0.0, 6.0));
    sim.run_intervals(8);
    let before = sim.plane().network().control_bytes();
    assert_eq!(sim.coordinator_home(ClassId(1)), NodeId(0));
    sim.migrate_coordinator(ClassId(1), NodeId(2))
        .expect("valid migration");
    assert_eq!(sim.coordinator_home(ClassId(1)), NodeId(2));
    assert!(
        sim.plane().network().control_bytes() > before,
        "agents must be informed of the migration"
    );
    sim.run_intervals(15);
    // The loop still converges after the move.
    let rt = sim.mean_observed_ms(ClassId(1), 6).expect("data");
    assert!(rt < 12.0, "post-migration RT {rt:.2}");
}

#[test]
fn workload_shift_triggers_readaptation() {
    use dmm::sim::SimTime;
    use dmm::workload::RateShift;
    let mut cfg = small(13, 0.0, 8.0);
    // The no-goal load rises ~45 % at t = 100 s (interval 20) — a real shift
    // but one that keeps the disks stable on this reduced configuration.
    cfg.workload.classes[0].rate_shifts = vec![RateShift {
        at: SimTime::from_nanos(100 * 1_000_000_000),
        arrival_per_ms: vec![0.026; 3],
    }];
    let mut sim = Simulation::new(cfg);
    sim.run_intervals(60);
    // The system survives and keeps producing goal-class completions at the
    // higher load.
    let late: Vec<_> = sim
        .records(ClassId(1))
        .iter()
        .filter(|r| r.interval > 40)
        .collect();
    assert!(late.iter().filter(|r| r.observed_ms.is_some()).count() > 10);
    assert!(
        late.iter().any(|r| r.satisfied == Some(true)),
        "the controller re-converges after the shift"
    );
}
