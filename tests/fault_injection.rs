//! Fault injection & graceful degradation — the acceptance scenarios.
//!
//! A node crash is volatile-state loss only: the directory drops the dead
//! node's page copies (last copies must be re-read from disk), in-flight
//! work targeting the node completes through error paths, and the control
//! loop re-partitions the surviving memory. These tests pin down that the
//! goal class re-converges on the survivors, that degradation is counted,
//! that a restarted node rejoins cold, and that none of it costs us
//! determinism.

use dmm::prelude::*;

const INTERVAL_MS: u64 = 5_000;

/// Fig2 base configuration (seed 42, theta 0, 15 ms goal) with a fault plan.
fn fig2_with(plan: FaultPlan) -> SystemConfig {
    SystemConfig::builder()
        .seed(42)
        .goal_ms(15.0)
        .fault_plan(plan)
        .build()
        .expect("valid faulted config")
}

/// First interval strictly after `after` the check declared satisfied.
fn first_satisfied_after(sim: &Simulation, class: ClassId, after: u32) -> Option<u32> {
    sim.records(class)
        .iter()
        .filter(|r| r.interval > after)
        .find(|r| r.satisfied == Some(true))
        .map(|r| r.interval)
}

#[test]
fn crash_reconverges_on_surviving_nodes() {
    // Node 2 dies mid-interval 8; the run continues on two nodes.
    let crash_iv = 8u32;
    let plan = FaultPlan::new(42).crash_ms(NodeId(2), u64::from(crash_iv) * INTERVAL_MS + 2_500);
    let mut sim = Simulation::new(fig2_with(plan));
    sim.run_intervals(40);

    let snap = sim.metrics_snapshot();
    assert_eq!(snap.get_counter("cluster.fault.crashes"), Some(1));
    assert_eq!(sim.plane().live_nodes(), 2);
    assert!(!sim.plane().is_up(NodeId(2)));

    // The dead node held sole copies of some pages; losing them is counted
    // and the pages come back via forced disk re-reads at their origin.
    let losses = snap.get_counter("cluster.fault.last_copy_losses").unwrap();
    assert!(losses > 0, "a warm node always holds some last copies");
    assert!(snap.get_counter("cluster.fault.mirror_reads").unwrap() > 0);

    // Bounded re-convergence: the controller re-partitions the surviving
    // two nodes' memory and meets the 15 ms goal again.
    let reconv = first_satisfied_after(&sim, ClassId(1), crash_iv)
        .expect("goal class must re-converge on the survivors");
    assert!(
        reconv - crash_iv <= 25,
        "re-convergence took {} intervals",
        reconv - crash_iv
    );
}

#[test]
fn crashed_coordinator_host_fails_over() {
    // Class 1's coordinator lives on node 0; crashing it must move the
    // coordinator to the lowest-indexed survivor and keep the loop running.
    let plan = FaultPlan::new(42).crash_ms(NodeId(0), 7 * INTERVAL_MS + 2_500);
    let mut sim = Simulation::new(fig2_with(plan));
    assert_eq!(sim.coordinator_home(ClassId(1)), NodeId(0));
    sim.run_intervals(40);

    assert_eq!(sim.coordinator_home(ClassId(1)), NodeId(1));
    assert!(
        first_satisfied_after(&sim, ClassId(1), 7).is_some(),
        "the failed-over coordinator must still converge"
    );
}

#[test]
fn restarted_node_rejoins_cold() {
    let crash_iv = 8u32;
    let restart_iv = 20u32;
    let node = NodeId(2);
    let plan = FaultPlan::new(42)
        .crash_ms(node, u64::from(crash_iv) * INTERVAL_MS + 2_500)
        .restart_ms(node, u64::from(restart_iv) * INTERVAL_MS + 2_500);
    let mut sim = Simulation::new(fig2_with(plan));
    sim.run_intervals(40);

    let snap = sim.metrics_snapshot();
    assert_eq!(snap.get_counter("cluster.fault.crashes"), Some(1));
    assert_eq!(snap.get_counter("cluster.fault.restarts"), Some(1));
    assert!(sim.plane().is_up(node), "node must be back up");
    assert_eq!(sim.plane().live_nodes(), 3);

    // Cold rejoin: the node starts re-filling its pool from empty, so it
    // serves operations again (its arrival stream resumed).
    assert!(
        first_satisfied_after(&sim, ClassId(1), restart_iv).is_some(),
        "the class must converge again after the rejoin"
    );
}

#[test]
fn faulted_runs_are_deterministic_per_seed() {
    let run = || {
        let plan = FaultPlan::new(7)
            .crash_ms(NodeId(1), 6 * INTERVAL_MS + 2_500)
            .restart_ms(NodeId(1), 18 * INTERVAL_MS + 2_500)
            .message_drop(0.02)
            .disk_stall_ms(NodeId(0), 10 * INTERVAL_MS, 14 * INTERVAL_MS, 2.0);
        let cfg = SystemConfig::builder()
            .seed(7)
            .goal_ms(15.0)
            .fault_plan(plan)
            .build()
            .expect("valid faulted config");
        let mut sim = Simulation::new(cfg);
        sim.run_intervals(30);
        let records: Vec<_> = sim
            .records(ClassId(1))
            .iter()
            .map(|r| {
                (
                    r.interval,
                    r.observed_ms.map(f64::to_bits),
                    r.dedicated_bytes,
                )
            })
            .collect();
        (records, sim.metrics_snapshot().to_json().to_string())
    };
    let (records_a, metrics_a) = run();
    let (records_b, metrics_b) = run();
    assert_eq!(
        records_a, records_b,
        "per-interval records must be identical"
    );
    assert_eq!(metrics_a, metrics_b, "every counter must be identical");
}

#[test]
fn message_drop_and_disk_stall_degrade_without_derailing() {
    let plan = FaultPlan::new(3).message_drop(0.05).disk_stall_ms(
        NodeId(1),
        2 * INTERVAL_MS,
        12 * INTERVAL_MS,
        3.0,
    );
    let cfg = SystemConfig::builder()
        .seed(3)
        .goal_ms(15.0)
        .fault_plan(plan)
        .build()
        .expect("valid degraded config");
    let mut sim = Simulation::new(cfg);
    sim.run_intervals(20);

    let snap = sim.metrics_snapshot();
    assert!(snap.get_counter("net.dropped_messages").unwrap() > 0);
    assert!(snap.get_counter("disk.stalled_reads").unwrap() > 0);
    // Degraded, not derailed: the loop still runs and checks goals.
    assert!(snap.get_counter("core.class1.checks").unwrap() > 0);
    assert_eq!(sim.plane().live_nodes(), 3);
}

#[test]
fn mutators_reject_invalid_input_without_panicking() {
    let cfg = SystemConfig::builder()
        .seed(1)
        .goal_ms(15.0)
        .build()
        .expect("valid config");
    let mut sim = Simulation::new(cfg);
    sim.run_intervals(2);

    // set_goal
    assert!(matches!(
        sim.set_goal(ClassId(0), 10.0),
        Err(Error::NotAGoalClass(_))
    ));
    assert!(matches!(
        sim.set_goal(ClassId(9), 10.0),
        Err(Error::UnknownClass(_))
    ));
    assert!(matches!(
        sim.set_goal(ClassId(1), f64::NAN),
        Err(Error::InvalidGoal(_))
    ));
    assert!(matches!(
        sim.set_goal(ClassId(1), -2.0),
        Err(Error::InvalidGoal(_))
    ));
    assert!(sim.set_goal(ClassId(1), 12.0).is_ok());

    // migrate_coordinator
    assert!(matches!(
        sim.migrate_coordinator(ClassId(1), NodeId(99)),
        Err(Error::UnknownNode(_))
    ));
    assert!(matches!(
        sim.migrate_coordinator(ClassId(0), NodeId(1)),
        Err(Error::NotAGoalClass(_))
    ));
    assert!(sim.migrate_coordinator(ClassId(1), NodeId(1)).is_ok());

    // dedicate_fraction
    assert!(matches!(
        sim.dedicate_fraction(ClassId(1), 1.5),
        Err(Error::InvalidFraction(_))
    ));
    assert!(matches!(
        sim.dedicate_fraction(ClassId(1), f64::NAN),
        Err(Error::InvalidFraction(_))
    ));
    assert!(matches!(
        sim.dedicate_fraction(ClassId(0), 0.5),
        Err(Error::NotAGoalClass(_))
    ));
    assert!(sim.dedicate_fraction(ClassId(1), 0.25).is_ok());
}

#[test]
fn migrating_to_a_dead_node_is_an_error() {
    let plan = FaultPlan::new(5).crash_ms(NodeId(2), 6 * INTERVAL_MS + 2_500);
    let mut sim = Simulation::new(fig2_with(plan));
    sim.run_intervals(10);
    assert!(!sim.plane().is_up(NodeId(2)));
    assert!(matches!(
        sim.migrate_coordinator(ClassId(1), NodeId(2)),
        Err(Error::NodeDown(_))
    ));
}
