//! Bit-reproducibility: the whole stack — arrivals, page choice, caching,
//! control loop — is a deterministic function of the seed.

use dmm::buffer::ClassId;
use dmm::core::{Simulation, SystemConfig};
use dmm::workload::GoalRange;

fn config(seed: u64) -> SystemConfig {
    SystemConfig::builder()
        .seed(seed)
        .theta(0.5)
        .goal_ms(8.0)
        .db_pages(600)
        .buffer_pages_per_node(128)
        .goal_range(GoalRange::new(4.0, 16.0))
        .warmup_intervals(2)
        .build()
        .expect("valid test config")
}

fn fingerprint(seed: u64) -> (u64, u64, u64, Vec<(u32, u64, u64)>) {
    let mut sim = Simulation::new(config(seed));
    sim.run_intervals(25);
    let records = sim
        .records(ClassId(1))
        .iter()
        .map(|r| {
            (
                r.interval,
                r.observed_ms.map_or(0, f64::to_bits),
                r.dedicated_bytes,
            )
        })
        .collect();
    (
        sim.plane().completions(),
        sim.plane().network().data_bytes(),
        sim.plane().network().control_bytes(),
        records,
    )
}

#[test]
fn same_seed_identical_everything() {
    let a = fingerprint(77);
    let b = fingerprint(77);
    assert_eq!(a.0, b.0, "completions differ");
    assert_eq!(a.1, b.1, "data bytes differ");
    assert_eq!(a.2, b.2, "control bytes differ");
    assert_eq!(a.3, b.3, "interval records differ");
}

#[test]
fn different_seeds_diverge() {
    let a = fingerprint(77);
    let b = fingerprint(78);
    assert_ne!(
        (a.0, a.1, &a.3),
        (b.0, b.1, &b.3),
        "different seeds should produce different traces"
    );
}

#[test]
fn goal_schedule_is_part_of_the_seed() {
    // The schedule's random goal draws must be reproducible too.
    let goals = |seed: u64| -> Vec<u64> {
        let mut sim = Simulation::new(config(seed));
        sim.run_intervals(25);
        sim.records(ClassId(1))
            .iter()
            .map(|r| r.goal_ms.to_bits())
            .collect()
    };
    assert_eq!(goals(5), goals(5));
}
