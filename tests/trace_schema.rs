//! Golden schema test: every record the simulator emits must match the
//! ordered field lists published by `dmm_trace::schema` — exactly, including
//! field order (the serializer preserves emission order, so this pins the
//! byte layout of every trace line). Any drift between the emitter
//! (`dmm-core`) and the analyzer (`dmm-trace`) fails here rather than
//! silently misparsing downstream.

use std::collections::HashSet;

use dmm::buffer::ClassId;
use dmm::cluster::{FabricSpec, FaultPlan, NodeId};
use dmm::core::{calibrate_goal_range, ProbeSpec, Simulation, SystemConfig};
use dmm::obs::{SpanMode, VecSink};
use dmm::prelude::TierSpec;
use dmm_trace::{
    expected_fields, expected_fields_ext, expected_fields_for, read_str, Trace, RECORD_TYPES,
    SPAN_STAGE_FIELDS,
};

/// Goal-schedule run with span sampling at the paper's base scale, goals
/// drawn from a calibrated attainable range so satisfied streaks complete:
/// interval, optimize, grant, goal_change and span records.
fn goal_schedule_trace(seed: u64) -> Trace {
    let base = SystemConfig::builder()
        .seed(seed)
        .theta(0.5)
        .goal_ms(15.0)
        .build()
        .expect("valid base config");
    let range = calibrate_goal_range(&base, ClassId(1), 6, 6);
    let cfg = SystemConfig::builder()
        .seed(seed)
        .theta(0.5)
        .goal_ms(range.max_ms)
        .goal_range(range)
        .warmup_intervals(2)
        .spans(SpanMode::Sampled { every: 16 })
        .build()
        .expect("valid test config");
    let sink = VecSink::new();
    let mut sim = Simulation::new(cfg);
    sim.set_trace_sink(Box::new(sink.handle()));
    // Long enough for at least one 4-interval satisfied streak (goal_change).
    sim.run_intervals(60);
    read_str(&sink.to_jsonl()).expect("emitted trace parses")
}

/// Faulted run crashing the class-1 coordinator's home node (node 0):
/// fault and failover records.
fn faulted_trace(seed: u64) -> Trace {
    let plan = FaultPlan::new(seed)
        .crash_ms(NodeId(0), 32_500)
        .restart_ms(NodeId(0), 92_500)
        .disk_stall_ms(NodeId(1), 50_000, 70_000, 3.0);
    let cfg = SystemConfig::builder()
        .seed(seed)
        .theta(0.5)
        .goal_ms(8.0)
        .db_pages(400)
        .buffer_pages_per_node(96)
        .goal_rate_per_ms(0.008)
        .warmup_intervals(2)
        .fault_plan(plan)
        .spans(SpanMode::Sampled { every: 16 })
        .build()
        .expect("valid test config");
    let sink = VecSink::new();
    let mut sim = Simulation::new(cfg);
    sim.set_trace_sink(Box::new(sink.handle()));
    sim.run_intervals(30);
    read_str(&sink.to_jsonl()).expect("emitted trace parses")
}

/// Switched-fabric run with batched probing: the same record stream plus
/// one `net_load` record per interval (the record type shared-medium runs
/// never emit).
fn switched_trace(seed: u64) -> Trace {
    let cfg = SystemConfig::builder()
        .seed(seed)
        .theta(0.5)
        .goal_ms(8.0)
        .db_pages(400)
        .buffer_pages_per_node(96)
        .goal_rate_per_ms(0.008)
        .warmup_intervals(2)
        .fabric(FabricSpec::Switched {
            bisection_bits_per_sec: Some(200_000_000),
        })
        .probe(ProbeSpec::Batched { batch: 2 })
        .spans(SpanMode::Sampled { every: 16 })
        .build()
        .expect("valid test config");
    let sink = VecSink::new();
    let mut sim = Simulation::new(cfg);
    sim.set_trace_sink(Box::new(sink.handle()));
    sim.run_intervals(30);
    read_str(&sink.to_jsonl()).expect("emitted trace parses")
}

/// Goal-schedule run with the goal class on a p95 goal: the same record
/// stream, plus the quantile extension fields on interval / optimize /
/// goal_change records.
fn quantile_goal_trace(seed: u64) -> Trace {
    let base = SystemConfig::builder()
        .seed(seed)
        .theta(0.5)
        .goal_ms(15.0)
        .goal_quantile(0.95)
        .build()
        .expect("valid base config");
    let range = calibrate_goal_range(&base, ClassId(1), 6, 6);
    let cfg = SystemConfig::builder()
        .seed(seed)
        .theta(0.5)
        .goal_ms(range.max_ms)
        .goal_range(range)
        .goal_quantile(0.95)
        .warmup_intervals(2)
        .spans(SpanMode::Sampled { every: 16 })
        .build()
        .expect("valid test config");
    let sink = VecSink::new();
    let mut sim = Simulation::new(cfg);
    sim.set_trace_sink(Box::new(sink.handle()));
    sim.run_intervals(60);
    read_str(&sink.to_jsonl()).expect("emitted trace parses")
}

/// Run on an extended (dram + cxl) storage ladder: the same record stream,
/// plus the tier-occupancy extension on interval records.
fn tiered_trace(seed: u64) -> Trace {
    let cfg = SystemConfig::builder()
        .seed(seed)
        .theta(0.5)
        .goal_ms(8.0)
        .db_pages(400)
        .buffer_pages_per_node(48)
        .goal_rate_per_ms(0.008)
        .warmup_intervals(2)
        .tiers(vec![
            TierSpec::new("dram", 0.03),
            TierSpec::new("cxl", 0.25)
                .frames(48)
                .bandwidth(2_000_000_000),
            TierSpec::new("remote", 0.5),
            TierSpec::new("disk", 12.6),
        ])
        .spans(SpanMode::Sampled { every: 16 })
        .build()
        .expect("valid test config");
    let sink = VecSink::new();
    let mut sim = Simulation::new(cfg);
    sim.set_trace_sink(Box::new(sink.handle()));
    sim.run_intervals(30);
    read_str(&sink.to_jsonl()).expect("emitted trace parses")
}

#[test]
fn every_emitted_record_matches_the_published_schema_exactly() {
    let mut seen: HashSet<String> = HashSet::new();
    for trace in [goal_schedule_trace(7), faulted_trace(7), switched_trace(7)] {
        assert!(!trace.records.is_empty());
        for record in &trace.records {
            let expected = expected_fields(&record.kind).unwrap_or_else(|| {
                panic!(
                    "line {}: unknown record type {:?}",
                    record.line, record.kind
                )
            });
            assert_eq!(
                record.field_names(),
                expected,
                "line {}: {} record fields drifted from the schema",
                record.line,
                record.kind
            );
            if record.kind == "span" {
                let stages = record
                    .json
                    .get("stages")
                    .and_then(dmm::obs::Json::as_obj)
                    .expect("span.stages is an object");
                let names: Vec<&str> = stages.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(names, SPAN_STAGE_FIELDS, "line {}", record.line);
            }
            seen.insert(record.kind.clone());
        }
    }
    for kind in RECORD_TYPES {
        assert!(seen.contains(kind), "no {kind} record was emitted");
    }
}

#[test]
fn home_load_records_carry_one_entry_per_node() {
    let trace = faulted_trace(7); // 3-node cluster
    let loads: Vec<_> = trace
        .records
        .iter()
        .filter(|r| r.kind == "home_load")
        .collect();
    assert!(!loads.is_empty(), "no home_load record was emitted");
    for record in &loads {
        for key in ["home_pages", "home_reads", "remote_fanin"] {
            let arr = record
                .json
                .get(key)
                .and_then(dmm::obs::Json::as_arr)
                .unwrap_or_else(|| panic!("line {}: {key} is an array", record.line));
            assert_eq!(arr.len(), 3, "line {}: {key} per node", record.line);
        }
    }
    // Every page has exactly one home under the default static placement.
    let last = loads.last().expect("non-empty");
    let pages: u64 = last
        .json
        .get("home_pages")
        .and_then(dmm::obs::Json::as_arr)
        .expect("array")
        .iter()
        .filter_map(dmm::obs::Json::as_u64)
        .sum();
    assert_eq!(pages, 400, "home_pages sums to db_pages");
}

#[test]
fn net_load_records_carry_one_entry_per_node_and_only_appear_when_switched() {
    // Shared-medium runs (the default) must not emit net_load records.
    let shared = faulted_trace(7);
    assert!(
        !shared.records.iter().any(|r| r.kind == "net_load"),
        "shared-medium trace must carry no net_load records"
    );
    let trace = switched_trace(7); // 3-node cluster
    let loads: Vec<_> = trace
        .records
        .iter()
        .filter(|r| r.kind == "net_load")
        .collect();
    assert_eq!(loads.len(), 30, "one net_load record per interval");
    for record in &loads {
        for key in ["tx_busy", "rx_busy"] {
            let arr = record
                .json
                .get(key)
                .and_then(dmm::obs::Json::as_arr)
                .unwrap_or_else(|| panic!("line {}: {key} is an array", record.line));
            assert_eq!(arr.len(), 3, "line {}: {key} per node", record.line);
            for v in arr.iter().filter_map(dmm::obs::Json::as_f64) {
                assert!((0.0..=1.0).contains(&v), "busy fraction {v} out of range");
            }
        }
        // This run pins a finite bisection capacity, so the core's busy
        // fraction is a number, not null.
        let b = record
            .num("bisection_busy")
            .unwrap_or_else(|| panic!("line {}: bisection_busy is a number", record.line));
        assert!((0.0..=1.0).contains(&b));
    }
}

#[test]
fn quantile_goal_records_append_the_published_extension_exactly() {
    let trace = quantile_goal_trace(7);
    assert!(!trace.records.is_empty());
    let mut extended = 0usize;
    for record in &trace.records {
        // The only goal class in this run carries a quantile goal, so every
        // record of a kind the quantile path extends must use the extended
        // layout; every other kind keeps the base layout bit-for-bit.
        let quantile = matches!(
            record.kind.as_str(),
            "interval" | "optimize" | "goal_change"
        );
        let expected = expected_fields_for(&record.kind, quantile).unwrap_or_else(|| {
            panic!(
                "line {}: unknown record type {:?}",
                record.line, record.kind
            )
        });
        assert_eq!(
            record.field_names(),
            expected,
            "line {}: {} record fields drifted from the quantile schema",
            record.line,
            record.kind
        );
        if quantile {
            extended += 1;
            assert_eq!(
                record.text("goal_metric"),
                Some("p95"),
                "line {}",
                record.line
            );
        }
    }
    assert!(extended > 0, "no extended records were emitted");
}

#[test]
fn tiered_records_append_the_published_extension_exactly() {
    let trace = tiered_trace(7);
    assert!(!trace.records.is_empty());
    let mut extended = 0usize;
    for record in &trace.records {
        // Only interval records grow the tier-occupancy extension; every
        // other kind keeps the base layout bit-for-bit.
        let tiered = record.kind == "interval";
        let expected = expected_fields_ext(&record.kind, false, tiered).unwrap_or_else(|| {
            panic!(
                "line {}: unknown record type {:?}",
                record.line, record.kind
            )
        });
        assert_eq!(
            record.field_names(),
            expected,
            "line {}: {} record fields drifted from the tiered schema",
            record.line,
            record.kind
        );
        if tiered {
            extended += 1;
            let tiers = record
                .json
                .get("tier_occupancy")
                .and_then(dmm::obs::Json::as_obj)
                .expect("tier_occupancy is an object");
            let names: Vec<&str> = tiers.iter().map(|(k, _)| k.as_str()).collect();
            assert_eq!(names, ["dram", "cxl"], "line {}", record.line);
            for (_, stats) in tiers {
                for key in ["resident", "frames"] {
                    assert!(
                        stats.get(key).and_then(dmm::obs::Json::as_u64).is_some(),
                        "line {}: tier stat {key} is a u64",
                        record.line
                    );
                }
            }
        }
    }
    assert!(extended > 0, "no tier-extended records were emitted");
}

#[test]
fn run_config_leads_every_trace_and_carries_the_replay_closure() {
    // Plain, faulted, switched, quantile and tiered runs all lead with one
    // run_config record, and its closure reflects the builder inputs.
    for (name, trace) in [
        ("goal_schedule", goal_schedule_trace(7)),
        ("faulted", faulted_trace(7)),
        ("switched", switched_trace(7)),
        ("quantile", quantile_goal_trace(7)),
        ("tiered", tiered_trace(7)),
    ] {
        let first = trace.records.first().expect("non-empty trace");
        assert_eq!(first.kind, "run_config", "{name}: first record");
        assert_eq!(
            trace
                .records
                .iter()
                .filter(|r| r.kind == "run_config")
                .count(),
            1,
            "{name}: exactly one run_config record"
        );
        assert_eq!(first.uint("seed"), Some(7), "{name}");
        assert_eq!(first.uint("nodes"), Some(3), "{name}");
        assert_eq!(
            first.flag("replayable"),
            Some(true),
            "{name}: builder-generated workloads are replayable"
        );
        // The resolved tier ladder is always serialized, even when implicit.
        let tiers = first
            .json
            .get("tiers")
            .and_then(dmm::obs::Json::as_arr)
            .unwrap_or_else(|| panic!("{name}: tiers is an array"));
        assert!(tiers.len() >= 3, "{name}: at least local/remote/disk rungs");
    }
}

#[test]
fn run_config_serializes_the_fault_plan_and_fabric() {
    let faulted = faulted_trace(7);
    let header = &faulted.records[0];
    let plan = header
        .json
        .get("fault_plan")
        .expect("fault_plan field present");
    let events = plan
        .get("events")
        .and_then(dmm::obs::Json::as_arr)
        .expect("events array");
    assert_eq!(events.len(), 2, "crash + restart");
    assert_eq!(
        events[0].get("kind").and_then(dmm::obs::Json::as_str),
        Some("crash")
    );
    assert_eq!(
        events[0].get("at_ns").and_then(dmm::obs::Json::as_u64),
        Some(32_500_000_000),
        "crash_ms(32_500) recorded in nanoseconds"
    );
    let stalls = plan
        .get("stalls")
        .and_then(dmm::obs::Json::as_arr)
        .expect("stalls array");
    assert_eq!(stalls.len(), 1);
    assert_eq!(
        stalls[0].get("factor").and_then(dmm::obs::Json::as_f64),
        Some(3.0)
    );
    // Plain runs carry a null fault_plan.
    let plain = goal_schedule_trace(7);
    assert!(
        matches!(
            plain.records[0].json.get("fault_plan"),
            Some(dmm::obs::Json::Null)
        ),
        "plain run_config carries fault_plan: null"
    );

    let switched = switched_trace(7);
    let fabric = switched.records[0]
        .json
        .get("fabric")
        .expect("fabric object");
    assert_eq!(
        fabric.get("kind").and_then(dmm::obs::Json::as_str),
        Some("switched")
    );
    assert_eq!(
        fabric
            .get("bisection_bits_per_sec")
            .and_then(dmm::obs::Json::as_u64),
        Some(200_000_000)
    );
    let probe = switched.records[0].json.get("probe").expect("probe object");
    assert_eq!(probe.get("batch").and_then(dmm::obs::Json::as_u64), Some(2));
}

#[test]
fn run_config_quantile_and_tier_closures_reflect_the_builder() {
    let quantile = quantile_goal_trace(7);
    assert_eq!(
        quantile.records[0].num("goal_quantile"),
        Some(0.95),
        "quantile goal recorded"
    );
    let plain = goal_schedule_trace(7);
    assert!(
        matches!(
            plain.records[0].json.get("goal_quantile"),
            Some(dmm::obs::Json::Null)
        ),
        "mean-goal run_config carries goal_quantile: null"
    );

    let tiered = tiered_trace(7);
    let tiers = tiered.records[0]
        .json
        .get("tiers")
        .and_then(dmm::obs::Json::as_arr)
        .expect("tiers array");
    assert_eq!(tiers.len(), 4, "dram/cxl/remote/disk");
    assert_eq!(
        tiers[1].get("name").and_then(dmm::obs::Json::as_str),
        Some("cxl")
    );
    assert_eq!(
        tiers[1].get("frames").and_then(dmm::obs::Json::as_u64),
        Some(48)
    );
    assert_eq!(
        tiers[1]
            .get("bandwidth_bytes_per_sec")
            .and_then(dmm::obs::Json::as_u64),
        Some(2_000_000_000)
    );
}
