//! Determinism harness: the same seed must yield byte-identical structured
//! traces across runs, and the replicated convergence benchmark must yield
//! identical results regardless of how many worker threads it uses.

use std::ops::ControlFlow;

use dmm::buffer::ClassId;
use dmm::cluster::{FabricSpec, FaultPlan, HotRingSpec, NodeId, PlacementSpec};
use dmm::core::{ControllerKind, ProbeSpec, Simulation, SystemConfig};
use dmm::obs::{SpanMode, StreamSink, VecSink};
use dmm::prelude::{ExecMode, SchedulerBackend, TierPolicy, TierSpec};
use dmm::workload::GoalRange;
use dmm_bench::convergence_speed;
use dmm_bench::pool::replicate_in_order;

/// Runs the base system with the trace enabled on the given event-queue
/// backend and returns the full JSON-lines document.
fn traced_run_on(seed: u64, backend: SchedulerBackend) -> String {
    // Small enough to run quickly, busy enough to exercise every record
    // type: goal schedule on, upper-bound satisfaction so goals change.
    let cfg = SystemConfig::builder()
        .seed(seed)
        .theta(0.5)
        .goal_ms(8.0)
        .db_pages(400)
        .buffer_pages_per_node(96)
        .goal_rate_per_ms(0.008)
        .warmup_intervals(2)
        .goal_range(GoalRange::new(4.0, 40.0))
        .scheduler(backend)
        .build()
        .expect("valid test config");
    let sink = VecSink::new();
    let mut sim = Simulation::new(cfg);
    sim.set_trace_sink(Box::new(sink.handle()));
    sim.run_intervals(30);
    sink.to_jsonl()
}

fn traced_run(seed: u64) -> String {
    traced_run_on(seed, SchedulerBackend::default())
}

/// Same system with a crash/restart plan, message drops and a disk stall:
/// the full degraded-mode code path must be just as deterministic.
fn faulted_traced_run_on(seed: u64, backend: SchedulerBackend) -> String {
    let plan = FaultPlan::new(seed)
        .crash_ms(NodeId(2), 32_500)
        .restart_ms(NodeId(2), 92_500)
        .message_drop(0.01)
        .disk_stall_ms(NodeId(0), 50_000, 70_000, 3.0);
    let cfg = SystemConfig::builder()
        .seed(seed)
        .theta(0.5)
        .goal_ms(8.0)
        .db_pages(400)
        .buffer_pages_per_node(96)
        .goal_rate_per_ms(0.008)
        .warmup_intervals(2)
        .fault_plan(plan)
        .scheduler(backend)
        .build()
        .expect("valid test config");
    let sink = VecSink::new();
    let mut sim = Simulation::new(cfg);
    sim.set_trace_sink(Box::new(sink.handle()));
    sim.run_intervals(30);
    sink.to_jsonl()
}

fn faulted_traced_run(seed: u64) -> String {
    faulted_traced_run_on(seed, SchedulerBackend::default())
}

/// The base run with operation-level span tracing on: deterministic 1-in-
/// `every` sampling keyed on the op sequence number, so the sampled set —
/// and the trace bytes — are a pure function of the seed.
fn spanned_traced_run(seed: u64, every: u32) -> String {
    let cfg = SystemConfig::builder()
        .seed(seed)
        .theta(0.5)
        .goal_ms(8.0)
        .db_pages(400)
        .buffer_pages_per_node(96)
        .goal_rate_per_ms(0.008)
        .warmup_intervals(2)
        .goal_range(GoalRange::new(4.0, 40.0))
        .spans(SpanMode::Sampled { every })
        .build()
        .expect("valid test config");
    let sink = VecSink::new();
    let mut sim = Simulation::new(cfg);
    sim.set_trace_sink(Box::new(sink.handle()));
    sim.run_intervals(30);
    sink.to_jsonl()
}

/// Scale-out run at N = 16: configurable placement scheme and execution
/// backend, span sampling on so per-operation records pin the byte layout
/// too. The conservative-window parallel executor must trace byte-for-byte
/// like sequential execution at any worker count.
fn scaled_traced_run(seed: u64, placement: PlacementSpec, exec: ExecMode) -> String {
    let cfg = SystemConfig::builder()
        .seed(seed)
        .theta(0.8)
        .goal_ms(8.0)
        .nodes(16)
        .db_pages(1600)
        .buffer_pages_per_node(64)
        .goal_rate_per_ms(0.004)
        .warmup_intervals(2)
        .spans(SpanMode::Sampled { every: 16 })
        .placement(placement)
        .execution(exec)
        .build()
        .expect("valid test config");
    let sink = VecSink::new();
    let mut sim = Simulation::new(cfg);
    sim.set_trace_sink(Box::new(sink.handle()));
    sim.run_intervals(12);
    sink.to_jsonl()
}

/// The same N = 16 run under a crash/restart plan with message drops and a
/// disk stall: degraded-mode paths execute inline (global events), so the
/// windowed backend must stay byte-identical there too.
fn scaled_faulted_traced_run(seed: u64, placement: PlacementSpec, exec: ExecMode) -> String {
    let plan = FaultPlan::new(seed)
        .crash_ms(NodeId(2), 22_500)
        .restart_ms(NodeId(2), 42_500)
        .message_drop(0.01)
        .disk_stall_ms(NodeId(0), 30_000, 40_000, 3.0);
    let cfg = SystemConfig::builder()
        .seed(seed)
        .theta(0.8)
        .goal_ms(8.0)
        .nodes(16)
        .db_pages(1600)
        .buffer_pages_per_node(64)
        .goal_rate_per_ms(0.004)
        .warmup_intervals(2)
        .fault_plan(plan)
        .placement(placement)
        .execution(exec)
        .build()
        .expect("valid test config");
    let sink = VecSink::new();
    let mut sim = Simulation::new(cfg);
    sim.set_trace_sink(Box::new(sink.handle()));
    sim.run_intervals(12);
    sink.to_jsonl()
}

/// Scale-out run at N = 16 on a switched fabric with batched orthogonal
/// probing: per-node TX/RX links replace the shared medium and the warm-up
/// walks the Hadamard probe plan, so both new code paths must hold the same
/// byte-identity bar — across runs and across worker counts.
fn switched_traced_run(seed: u64, exec: ExecMode) -> String {
    let cfg = SystemConfig::builder()
        .seed(seed)
        .theta(0.8)
        .goal_ms(8.0)
        .nodes(16)
        .db_pages(1600)
        .buffer_pages_per_node(64)
        .goal_rate_per_ms(0.004)
        .warmup_intervals(2)
        .spans(SpanMode::Sampled { every: 16 })
        .fabric(FabricSpec::Switched {
            bisection_bits_per_sec: Some(400_000_000),
        })
        .probe(ProbeSpec::Batched { batch: 4 })
        .execution(exec)
        .build()
        .expect("valid test config");
    let sink = VecSink::new();
    let mut sim = Simulation::new(cfg);
    sim.set_trace_sink(Box::new(sink.handle()));
    sim.run_intervals(12);
    sink.to_jsonl()
}

/// The same switched-fabric run under a crash/restart plan with message
/// drops and a disk stall: degraded mode rides the per-link facilities too.
fn switched_faulted_traced_run(seed: u64, exec: ExecMode) -> String {
    let plan = FaultPlan::new(seed)
        .crash_ms(NodeId(2), 22_500)
        .restart_ms(NodeId(2), 42_500)
        .message_drop(0.01)
        .disk_stall_ms(NodeId(0), 30_000, 40_000, 3.0);
    let cfg = SystemConfig::builder()
        .seed(seed)
        .theta(0.8)
        .goal_ms(8.0)
        .nodes(16)
        .db_pages(1600)
        .buffer_pages_per_node(64)
        .goal_rate_per_ms(0.004)
        .warmup_intervals(2)
        .fault_plan(plan)
        .fabric(FabricSpec::Switched {
            bisection_bits_per_sec: Some(400_000_000),
        })
        .probe(ProbeSpec::Batched { batch: 4 })
        .execution(exec)
        .build()
        .expect("valid test config");
    let sink = VecSink::new();
    let mut sim = Simulation::new(cfg);
    sim.set_trace_sink(Box::new(sink.handle()));
    sim.run_intervals(12);
    sink.to_jsonl()
}

#[test]
fn switched_fabric_traces_are_byte_identical_per_seed_and_across_workers() {
    let sequential = switched_traced_run(7, ExecMode::Sequential);
    assert!(!sequential.is_empty(), "trace must not be empty");
    assert!(
        sequential.contains("\"type\":\"net_load\""),
        "switched runs must emit net_load records"
    );
    assert_eq!(
        sequential.as_bytes(),
        switched_traced_run(7, ExecMode::Sequential).as_bytes(),
        "same seed, same bytes"
    );
    assert_ne!(
        sequential,
        switched_traced_run(8, ExecMode::Sequential),
        "different seed, different trace"
    );
    for workers in [1, 2, 4] {
        let windowed = switched_traced_run(7, ExecMode::Windowed { workers });
        assert_eq!(
            sequential.as_bytes(),
            windowed.as_bytes(),
            "windowed ({workers} workers) switched trace diverged"
        );
    }
}

#[test]
fn switched_fabric_faulted_traces_are_worker_count_invariant() {
    let sequential = switched_faulted_traced_run(7, ExecMode::Sequential);
    assert!(
        sequential.contains("\"kind\":\"crash\"") && sequential.contains("\"kind\":\"restart\""),
        "both crash and restart must appear"
    );
    assert!(
        sequential.contains("\"type\":\"net_load\""),
        "switched runs must emit net_load records"
    );
    for workers in [1, 2, 4] {
        let windowed = switched_faulted_traced_run(7, ExecMode::Windowed { workers });
        assert_eq!(
            sequential.as_bytes(),
            windowed.as_bytes(),
            "windowed ({workers} workers) switched faulted trace diverged"
        );
    }
}

#[test]
fn shared_medium_traces_carry_no_net_load_records() {
    // The fabric extension is purely additive: no shared-medium run — the
    // default — may emit a single net_load record, so pre-fabric traces
    // stay byte-compatible.
    for doc in [
        traced_run(7),
        faulted_traced_run(7),
        scaled_traced_run(7, PlacementSpec::RoundRobin, ExecMode::Sequential),
    ] {
        assert!(
            !doc.contains("net_load"),
            "shared-medium trace leaked net_load records"
        );
    }
}

#[test]
fn windowed_execution_traces_byte_identically_to_sequential() {
    for placement in [
        PlacementSpec::RoundRobin,
        PlacementSpec::HotRing(HotRingSpec::default()),
    ] {
        let sequential = scaled_traced_run(7, placement, ExecMode::Sequential);
        assert!(!sequential.is_empty(), "trace must not be empty");
        assert!(
            sequential.contains("\"type\":\"home_load\""),
            "home_load records missing"
        );
        for workers in [1, 2, 4] {
            let windowed = scaled_traced_run(7, placement, ExecMode::Windowed { workers });
            assert_eq!(
                sequential.as_bytes(),
                windowed.as_bytes(),
                "windowed ({workers} workers) trace diverged ({placement:?})"
            );
        }
    }
}

#[test]
fn windowed_execution_traces_faulted_runs_byte_identically() {
    for placement in [
        PlacementSpec::RoundRobin,
        PlacementSpec::HotRing(HotRingSpec::default()),
    ] {
        let sequential = scaled_faulted_traced_run(7, placement, ExecMode::Sequential);
        assert!(
            sequential.contains("\"kind\":\"crash\"")
                && sequential.contains("\"kind\":\"restart\""),
            "both crash and restart must appear"
        );
        for workers in [2, 4] {
            let windowed = scaled_faulted_traced_run(7, placement, ExecMode::Windowed { workers });
            assert_eq!(
                sequential.as_bytes(),
                windowed.as_bytes(),
                "windowed ({workers} workers) faulted trace diverged ({placement:?})"
            );
        }
    }
}

#[test]
fn hot_ring_traces_are_byte_identical_per_seed_and_differ_from_static() {
    let hot = PlacementSpec::HotRing(HotRingSpec::default());
    let a = scaled_traced_run(7, hot, ExecMode::Sequential);
    let b = scaled_traced_run(7, hot, ExecMode::Sequential);
    assert_eq!(a.as_bytes(), b.as_bytes(), "same seed, same bytes");
    assert_ne!(a, scaled_traced_run(8, hot, ExecMode::Sequential));
    // The scheme must actually change placement: a static round-robin run
    // of the same seed routes differently and leaves different bytes.
    let static_rr = scaled_traced_run(7, PlacementSpec::RoundRobin, ExecMode::Sequential);
    assert_ne!(a, static_rr, "hot ring must change the trace");
}

#[test]
fn same_seed_traces_are_byte_identical() {
    let a = traced_run(7);
    let b = traced_run(7);
    assert!(!a.is_empty(), "trace must not be empty");
    assert_eq!(a.as_bytes(), b.as_bytes(), "same seed, same bytes");
    let c = traced_run(8);
    assert_ne!(a, c, "different seed, different trace");
}

#[test]
fn faulted_traces_are_byte_identical_per_seed() {
    let a = faulted_traced_run(7);
    let b = faulted_traced_run(7);
    assert_eq!(a.as_bytes(), b.as_bytes(), "same seed + plan, same bytes");
    assert_ne!(a, faulted_traced_run(8), "the plan seed matters too");
    // The degradation machinery actually fired and was traced.
    let has = |t: &str| a.lines().any(|l| l.contains(&format!("\"type\":\"{t}\"")));
    assert!(has("fault"), "fault records missing");
    assert!(
        a.contains("\"kind\":\"crash\"") && a.contains("\"kind\":\"restart\""),
        "both crash and restart must appear"
    );
    assert!(a != traced_run(7), "faults must change the trace");
}

#[test]
fn wheel_and_heap_backends_trace_byte_identically() {
    // The timing wheel is the default backend; the binary heap is the
    // reference. A full control-loop run — goal changes, grants, faults —
    // must trace byte-for-byte the same under both, for every seed.
    for seed in [7, 8] {
        let wheel = traced_run_on(seed, SchedulerBackend::Wheel);
        let heap = traced_run_on(seed, SchedulerBackend::Heap);
        assert!(!wheel.is_empty());
        assert_eq!(
            wheel.as_bytes(),
            heap.as_bytes(),
            "backend changed the trace (seed {seed})"
        );
        let wheel_faulted = faulted_traced_run_on(seed, SchedulerBackend::Wheel);
        let heap_faulted = faulted_traced_run_on(seed, SchedulerBackend::Heap);
        assert_eq!(
            wheel_faulted.as_bytes(),
            heap_faulted.as_bytes(),
            "backend changed the faulted trace (seed {seed})"
        );
    }
}

#[test]
fn trace_covers_every_phase_record_type() {
    let doc = traced_run(7);
    let has = |t: &str| {
        doc.lines()
            .any(|l| l.contains(&format!("\"type\":\"{t}\"")))
    };
    assert!(has("interval"), "interval records missing");
    assert!(has("optimize"), "optimize records missing");
    assert!(has("grant"), "grant records missing");
    // Every line parses back as JSON and interval records carry the fields
    // downstream tooling keys on.
    for line in doc.lines() {
        let v = dmm::obs::Json::parse(line).expect("valid JSON line");
        let _ = v;
    }
    let intervals = doc
        .lines()
        .filter(|l| l.contains("\"type\":\"interval\""))
        .count();
    assert_eq!(intervals, 30, "one interval record per check phase");
    for key in [
        "\"observed_ms\":",
        "\"goal_ms\":",
        "\"tolerance_ms\":",
        "\"dedicated_mb\":",
        "\"level_share\":",
        "\"phase\":",
    ] {
        assert!(
            doc.lines()
                .filter(|l| l.contains("\"type\":\"interval\""))
                .all(|l| l.contains(key)),
            "interval records must carry {key}"
        );
    }
}

#[test]
fn span_sampled_traces_are_byte_identical_per_seed() {
    let a = spanned_traced_run(7, 16);
    let b = spanned_traced_run(7, 16);
    assert_eq!(a.as_bytes(), b.as_bytes(), "same seed, same span bytes");
    assert!(
        a.lines().any(|l| l.contains("\"type\":\"span\"")),
        "span records missing"
    );
    assert_ne!(a, spanned_traced_run(8, 16), "seed must steer the spans");
    // Sampling is keyed on the op id, not on event interleaving: the
    // non-span records are exactly the spanless trace of the same seed.
    let without: Vec<&str> = a
        .lines()
        .filter(|l| !l.contains("\"type\":\"span\""))
        .collect();
    let plain = traced_run(7);
    assert_eq!(
        without,
        plain.lines().collect::<Vec<_>>(),
        "span tracing must not perturb the control-loop records"
    );
}

#[test]
fn span_traces_are_invariant_across_worker_threads() {
    let seeds = [7u64, 8, 9];
    let run = |seed: &u64| spanned_traced_run(*seed, 16);
    let collect = |threads: usize| {
        let mut traces = vec![String::new(); seeds.len()];
        replicate_in_order(&seeds, threads, run, |i, t| {
            traces[i] = t;
            ControlFlow::Continue(())
        });
        traces
    };
    let one = collect(1);
    for threads in [2, 4] {
        assert_eq!(one, collect(threads), "threads={threads}");
    }
}

#[test]
fn span_stage_sums_partition_response_time_exactly() {
    // Sample every operation: each span's stage nanoseconds must sum to the
    // operation's response time with integer exactness, and the per-class
    // totals must match the aggregated counter in the metrics snapshot
    // (warm-up 0, so the counters never reset mid-run and cover the same
    // window as the trace).
    let cfg = SystemConfig::builder()
        .seed(11)
        .theta(0.5)
        .goal_ms(8.0)
        .db_pages(400)
        .buffer_pages_per_node(96)
        .goal_rate_per_ms(0.008)
        .warmup_intervals(0)
        .spans(SpanMode::Sampled { every: 1 })
        .build()
        .expect("valid test config");
    let sink = VecSink::new();
    let mut sim = Simulation::new(cfg);
    sim.set_trace_sink(Box::new(sink.handle()));
    sim.run_intervals(12);
    let trace = dmm_trace::read_str(&sink.to_jsonl()).expect("trace parses");
    let mut per_class_ns: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    let mut spans = 0u64;
    for record in trace.of_kind("span") {
        spans += 1;
        let stages = record.json.get("stages").expect("stages object");
        let sum_ns: u64 = dmm_trace::SPAN_STAGE_FIELDS
            .iter()
            .map(|f| stages.get(f).and_then(dmm::obs::Json::as_u64).expect("ns"))
            .sum();
        let response_ms = record.num("response_ms").expect("response_ms");
        assert_eq!(
            (sum_ns as f64 / 1e6).to_bits(),
            response_ms.to_bits(),
            "stage sums must partition the response time exactly (op {:?})",
            record.uint("op")
        );
        *per_class_ns
            .entry(record.uint("class").expect("class"))
            .or_default() += sum_ns;
    }
    assert!(
        spans > 100,
        "expected every completed op sampled, got {spans}"
    );
    let snap = sim.metrics_snapshot();
    for (class, total_ns) in per_class_ns {
        let label = if class == 0 {
            "nogoal".to_string()
        } else {
            format!("class{class}")
        };
        assert_eq!(
            snap.get_counter(&format!("span.{label}.response_ns")),
            Some(total_ns),
            "aggregated span counter must equal the sampled sum for {label}"
        );
    }
}

#[test]
fn dmm_trace_diff_reports_zero_divergence_on_same_seed_runs() {
    let a = dmm_trace::read_str(&spanned_traced_run(7, 16)).expect("a parses");
    let b = dmm_trace::read_str(&spanned_traced_run(7, 16)).expect("b parses");
    let report = dmm_trace::diff(&a, &b, 8);
    assert!(
        report.identical(),
        "same seed must diff clean:\n{}",
        report.render()
    );
    let c = dmm_trace::read_str(&spanned_traced_run(8, 16)).expect("c parses");
    assert!(
        !dmm_trace::diff(&a, &c, 8).identical(),
        "different seeds must diverge"
    );
}

#[test]
fn metrics_snapshot_round_trips_through_json() {
    let cfg = SystemConfig::builder()
        .seed(3)
        .goal_ms(8.0)
        .db_pages(400)
        .buffer_pages_per_node(96)
        .goal_rate_per_ms(0.008)
        .warmup_intervals(2)
        .build()
        .expect("valid test config");
    let mut sim = Simulation::new(cfg);
    sim.run_intervals(8);
    let snap = sim.metrics_snapshot();
    assert!(snap.get_counter("sim.events").unwrap() > 0);
    assert!(snap.get_counter("cluster.accesses").unwrap() > 0);
    assert!(snap.get_counter("core.class1.checks").unwrap() > 0);
    let json = snap.to_json();
    let back = dmm::obs::MetricsSnapshot::from_json(&json).expect("round-trip");
    assert_eq!(json.to_string(), back.to_json().to_string());
    // Records survived too.
    assert!(!sim.records(ClassId(1)).is_empty());
}

#[test]
fn convergence_speed_is_thread_count_invariant() {
    let seeds: Vec<u64> = (1..=6).map(|s| 9000 + s).collect();
    let one = convergence_speed(0.5, &seeds, 120, ControllerKind::default(), 1);
    for threads in [2, 4, 8] {
        let many = convergence_speed(0.5, &seeds, 120, ControllerKind::default(), threads);
        assert_eq!(one.episodes, many.episodes, "threads={threads}");
        assert_eq!(
            one.mean_iterations.to_bits(),
            many.mean_iterations.to_bits(),
            "threads={threads}"
        );
        assert_eq!(
            one.ci99_half_width.to_bits(),
            many.ci99_half_width.to_bits(),
            "threads={threads}"
        );
    }
}

/// The base run with the goal class on a p95 goal: the whole quantile path
/// (agent histograms → merged coordinator quantile → quantile trace fields)
/// must be as deterministic as the mean path.
fn quantile_traced_run(seed: u64) -> (String, Option<f64>) {
    let cfg = SystemConfig::builder()
        .seed(seed)
        .theta(0.5)
        .goal_ms(8.0)
        .db_pages(400)
        .buffer_pages_per_node(96)
        .goal_rate_per_ms(0.008)
        .warmup_intervals(2)
        .goal_range(GoalRange::new(4.0, 40.0))
        .goal_quantile(0.95)
        .build()
        .expect("valid test config");
    let sink = VecSink::new();
    let mut sim = Simulation::new(cfg);
    sim.set_trace_sink(Box::new(sink.handle()));
    sim.run_intervals(30);
    // The tail-compliance statistic downstream scoring keys on.
    let settled_p95 = sim.mean_observed_quantile_ms(ClassId(1), 6);
    (sink.to_jsonl(), settled_p95)
}

#[test]
fn quantile_goal_traces_are_byte_identical_per_seed() {
    let (a, p_a) = quantile_traced_run(7);
    let (b, p_b) = quantile_traced_run(7);
    assert!(!a.is_empty(), "trace must not be empty");
    assert_eq!(a.as_bytes(), b.as_bytes(), "same seed, same bytes");
    assert_eq!(
        p_a.expect("settled p95").to_bits(),
        p_b.expect("settled p95").to_bits(),
        "same seed, same settled p95"
    );
    let (c, _) = quantile_traced_run(8);
    assert_ne!(a, c, "different seed, different trace");
    // The quantile fields are present on every goal-class interval record,
    // in the appended (trailing) position the schema pins.
    let intervals: Vec<&str> = a
        .lines()
        .filter(|l| l.contains("\"type\":\"interval\""))
        .collect();
    assert!(!intervals.is_empty());
    for line in &intervals {
        assert!(
            line.contains("\"observed_p_ms\":") && line.contains("\"goal_metric\":\"p95\""),
            "interval record missing quantile fields: {line}"
        );
    }
    for kind in ["optimize", "goal_change"] {
        let with_metric = a
            .lines()
            .filter(|l| l.contains(&format!("\"type\":\"{kind}\"")))
            .all(|l| l.contains("\"goal_metric\":\"p95\""));
        assert!(with_metric, "{kind} records must carry goal_metric");
    }
}

/// The explicit three-rung ladder of [`dmm::cluster::TierLadder::default`].
fn default_ladder() -> Vec<TierSpec> {
    vec![
        TierSpec::new("local", 0.03),
        TierSpec::new("remote", 0.5),
        TierSpec::new("disk", 12.6),
    ]
}

/// The base run with the default ladder passed *explicitly* through the new
/// `tiers(...)` builder surface.
fn explicit_ladder_traced_run(seed: u64) -> String {
    let cfg = SystemConfig::builder()
        .seed(seed)
        .theta(0.5)
        .goal_ms(8.0)
        .db_pages(400)
        .buffer_pages_per_node(96)
        .goal_rate_per_ms(0.008)
        .warmup_intervals(2)
        .goal_range(GoalRange::new(4.0, 40.0))
        .tiers(default_ladder())
        .build()
        .expect("valid test config");
    let sink = VecSink::new();
    let mut sim = Simulation::new(cfg);
    sim.set_trace_sink(Box::new(sink.handle()));
    sim.run_intervals(30);
    sink.to_jsonl()
}

/// The faulted run with the default ladder passed explicitly.
fn explicit_ladder_faulted_run(seed: u64) -> String {
    let plan = FaultPlan::new(seed)
        .crash_ms(NodeId(2), 32_500)
        .restart_ms(NodeId(2), 92_500)
        .message_drop(0.01)
        .disk_stall_ms(NodeId(0), 50_000, 70_000, 3.0);
    let cfg = SystemConfig::builder()
        .seed(seed)
        .theta(0.5)
        .goal_ms(8.0)
        .db_pages(400)
        .buffer_pages_per_node(96)
        .goal_rate_per_ms(0.008)
        .warmup_intervals(2)
        .fault_plan(plan)
        .tiers(default_ladder())
        .build()
        .expect("valid test config");
    let sink = VecSink::new();
    let mut sim = Simulation::new(cfg);
    sim.set_trace_sink(Box::new(sink.handle()));
    sim.run_intervals(30);
    sink.to_jsonl()
}

/// A run on an extended (dram + cxl) ladder at equal total capacity.
fn extended_ladder_traced_run(seed: u64, policy: TierPolicy) -> String {
    let cfg = SystemConfig::builder()
        .seed(seed)
        .theta(0.5)
        .goal_ms(8.0)
        .db_pages(400)
        .buffer_pages_per_node(48)
        .goal_rate_per_ms(0.008)
        .warmup_intervals(2)
        .goal_range(GoalRange::new(4.0, 40.0))
        .tiers(vec![
            TierSpec::new("dram", 0.03),
            TierSpec::new("cxl", 0.25)
                .frames(48)
                .bandwidth(2_000_000_000),
            TierSpec::new("remote", 0.5),
            TierSpec::new("disk", 12.6),
        ])
        .tier_policy(policy)
        .build()
        .expect("valid test config");
    let sink = VecSink::new();
    let mut sim = Simulation::new(cfg);
    sim.set_trace_sink(Box::new(sink.handle()));
    sim.run_intervals(30);
    sink.to_jsonl()
}

#[test]
fn explicit_default_ladder_traces_byte_identically_to_implicit() {
    // The tiers(...) surface with the default three-rung ladder is the
    // *same system*: traces must be byte-identical to a builder that never
    // mentions tiers, for plain and faulted runs alike.
    for seed in [7u64, 8] {
        assert_eq!(
            traced_run(seed).as_bytes(),
            explicit_ladder_traced_run(seed).as_bytes(),
            "explicit default ladder changed the trace (seed {seed})"
        );
        assert_eq!(
            faulted_traced_run(seed).as_bytes(),
            explicit_ladder_faulted_run(seed).as_bytes(),
            "explicit default ladder changed the faulted trace (seed {seed})"
        );
    }
}

#[test]
fn extended_ladder_traces_are_byte_identical_per_seed() {
    for policy in [TierPolicy::Hotness, TierPolicy::StaticHash] {
        let a = extended_ladder_traced_run(7, policy);
        let b = extended_ladder_traced_run(7, policy);
        assert!(!a.is_empty(), "trace must not be empty");
        assert_eq!(a.as_bytes(), b.as_bytes(), "same seed, same bytes");
        assert_ne!(a, extended_ladder_traced_run(8, policy), "seed steers");
        // Extended runs append the tier-occupancy extension on every
        // interval record, with both configured memory tiers present.
        let intervals: Vec<&str> = a
            .lines()
            .filter(|l| l.contains("\"type\":\"interval\""))
            .collect();
        assert!(!intervals.is_empty());
        for line in &intervals {
            assert!(
                line.contains("\"tier_occupancy\":{\"dram\":")
                    && line.contains("\"cxl\":")
                    && line.contains("\"frames\":"),
                "interval record missing tier occupancy: {line}"
            );
        }
    }
    // The policy must matter: hotness and static-hash runs diverge.
    assert_ne!(
        extended_ladder_traced_run(7, TierPolicy::Hotness),
        extended_ladder_traced_run(7, TierPolicy::StaticHash),
        "tier policy must change the trace"
    );
}

#[test]
fn default_ladder_traces_carry_no_tier_fields() {
    // The tier extension is purely additive: no default-ladder run —
    // implicit or explicit — may emit a single tier field, so pre-tier
    // traces stay byte-compatible.
    for doc in [
        traced_run(7),
        faulted_traced_run(7),
        spanned_traced_run(7, 16),
        explicit_ladder_traced_run(7),
    ] {
        assert!(
            !doc.contains("tier_occupancy"),
            "default-ladder trace leaked tier fields"
        );
    }
}

#[test]
fn mean_goal_traces_carry_no_quantile_fields() {
    // The quantile path is purely additive: a mean-goal run must not emit
    // a single quantile field, so pre-quantile traces stay byte-compatible.
    for doc in [
        traced_run(7),
        faulted_traced_run(7),
        spanned_traced_run(7, 16),
    ] {
        assert!(
            !doc.contains("observed_p_ms") && !doc.contains("goal_metric"),
            "mean-goal trace leaked quantile fields"
        );
    }
}

#[test]
fn quantile_tail_compliance_is_invariant_across_worker_threads() {
    let seeds = [7u64, 8, 9];
    let collect = |threads: usize| {
        let mut results: Vec<(String, u64)> = vec![(String::new(), 0); seeds.len()];
        replicate_in_order(
            &seeds,
            threads,
            |seed| {
                let (trace, p95) = quantile_traced_run(*seed);
                (trace, p95.expect("settled p95").to_bits())
            },
            |i, r| {
                results[i] = r;
                ControlFlow::Continue(())
            },
        );
        results
    };
    let one = collect(1);
    for threads in [2, 4] {
        assert_eq!(one, collect(threads), "threads={threads}");
    }
}

/// The base run captured through the bounded streaming sink (capacity far
/// above the record count, so nothing drops).
fn stream_traced_run(seed: u64) -> (String, u64) {
    let cfg = SystemConfig::builder()
        .seed(seed)
        .theta(0.5)
        .goal_ms(8.0)
        .db_pages(400)
        .buffer_pages_per_node(96)
        .goal_rate_per_ms(0.008)
        .warmup_intervals(2)
        .goal_range(GoalRange::new(4.0, 40.0))
        .build()
        .expect("valid test config");
    let sink = StreamSink::bounded(1 << 20);
    let mut sim = Simulation::new(cfg);
    sim.set_trace_sink(Box::new(sink.handle()));
    sim.run_intervals(30);
    let mut doc: String = sink.drain().into_iter().map(|line| line + "\n").collect();
    doc.shrink_to_fit();
    (doc, sink.dropped_records())
}

#[test]
fn stream_sink_yields_byte_identical_records_to_jsonl_sink() {
    // The streaming sink buffers the same serialized lines the JSONL sink
    // writes: one trace, three capture paths, identical bytes.
    let via_vec = traced_run(7);
    let (via_stream, dropped) = stream_traced_run(7);
    assert_eq!(dropped, 0, "capacity was ample: nothing may drop");
    assert_eq!(via_vec.as_bytes(), via_stream.as_bytes());

    let path =
        std::env::temp_dir().join(format!("dmm_stream_vs_jsonl_{}.jsonl", std::process::id()));
    {
        let cfg = SystemConfig::builder()
            .seed(7)
            .theta(0.5)
            .goal_ms(8.0)
            .db_pages(400)
            .buffer_pages_per_node(96)
            .goal_rate_per_ms(0.008)
            .warmup_intervals(2)
            .goal_range(GoalRange::new(4.0, 40.0))
            .build()
            .expect("valid test config");
        let sink = dmm::obs::JsonLinesSink::create(&path).expect("create trace file");
        let mut sim = Simulation::new(cfg);
        sim.set_trace_sink(Box::new(sink));
        sim.run_intervals(30);
    }
    let via_file = std::fs::read_to_string(&path).expect("read trace file");
    std::fs::remove_file(&path).ok();
    assert_eq!(via_stream.as_bytes(), via_file.as_bytes());
}

#[test]
fn stream_sink_drops_and_counts_under_a_tight_ring() {
    // A deliberately tiny ring: the run must complete untroubled, keep the
    // oldest records contiguously, and count every drop.
    let cfg = SystemConfig::builder()
        .seed(7)
        .theta(0.5)
        .goal_ms(8.0)
        .db_pages(400)
        .buffer_pages_per_node(96)
        .goal_rate_per_ms(0.008)
        .warmup_intervals(2)
        .build()
        .expect("valid test config");
    let sink = StreamSink::bounded(8);
    let mut sim = Simulation::new(cfg);
    sim.set_trace_sink(Box::new(sink.handle()));
    sim.run_intervals(10);
    let kept = sink.drain();
    assert_eq!(kept.len(), 8, "ring holds exactly its capacity");
    assert!(sink.dropped_records() > 0, "overflow must be counted");
    // Drop-newest semantics: the kept records are the contiguous head of
    // the stream, starting with the run_config record.
    assert!(
        kept[0].starts_with("{\"type\":\"run_config\""),
        "{}",
        kept[0]
    );
}

#[test]
fn replay_round_trips_plain_faulted_and_quantile_runs() {
    // The acceptance gate: `replay --expect-identical` must hold on a
    // plain (fig2-like), a faulted, and a quantile-goal recording.
    for (name, doc) in [
        ("plain", traced_run(7)),
        ("faulted", faulted_traced_run(7)),
        ("quantile", quantile_traced_run(7).0),
    ] {
        let report = dmm::core::replay::verify_jsonl(&doc, 4)
            .unwrap_or_else(|e| panic!("{name}: replay failed: {e}"));
        assert!(
            report.identical(),
            "{name}: replay diverged at {} of {} records: {:?}",
            report.mismatches,
            report.original_records,
            report.divergences.first()
        );
    }
}

#[test]
fn replay_round_trips_spanned_recordings_on_control_records() {
    // A spanned recording replays with spans off: the span lines are
    // skipped, the control records must still match byte-for-byte.
    let doc = spanned_traced_run(7, 16);
    assert!(doc.contains("\"type\":\"span\""), "precondition: spans on");
    let report = dmm::core::replay::verify_jsonl(&doc, 4).expect("replayable");
    assert!(
        report.identical(),
        "spanned replay diverged: {:?}",
        report.divergences.first()
    );
}

#[test]
fn watch_snapshot_is_byte_stable_across_runs_and_exec_modes() {
    // The snapshot renderer is a pure function of the record stream, and
    // the record stream is execution-substrate invariant: same bytes
    // across repeated runs, scheduler backends, and worker counts.
    let doc = spanned_traced_run(7, 16);
    let trace = dmm_trace::read_str(&doc).expect("valid trace");
    let frames = dmm_trace::snapshot(&trace, 4);
    assert!(frames.contains("-- frame 1/4 --"), "{frames}");
    assert!(frames.contains("-- frame 4/4 --"), "{frames}");
    assert!(frames.contains("stage waterfall"), "{frames}");

    let again = dmm_trace::snapshot(
        &dmm_trace::read_str(&spanned_traced_run(7, 16)).expect("valid trace"),
        4,
    );
    assert_eq!(frames, again, "same seed, same frames");

    let seq = scaled_traced_run(7, PlacementSpec::RoundRobin, ExecMode::Sequential);
    for workers in [2, 4] {
        let win = scaled_traced_run(7, PlacementSpec::RoundRobin, ExecMode::Windowed { workers });
        assert_eq!(
            dmm_trace::snapshot(&dmm_trace::read_str(&seq).expect("valid"), 3),
            dmm_trace::snapshot(&dmm_trace::read_str(&win).expect("valid"), 3),
            "workers={workers}: snapshot must not depend on thread count"
        );
    }
}
