//! The motivating scenario of the paper's introduction: "there are an
//! increasing number of systems in which — besides the normal OLTP workload —
//! complex decision-support queries are executed. Without an effective load
//! control, the high resource consumption of such decision-support queries
//! will slow down short running OLTP transactions excessively."
//!
//! We build an OLTP goal class (short 2-page transactions, tight goal) and a
//! heavy DSS no-goal class (16-page scans) and compare the OLTP response
//! time with the goal controller on vs. off.
//!
//! ```sh
//! cargo run --release --example oltp_dss_mix
//! ```

use dmm::buffer::{ClassId, PageId, NO_GOAL};
use dmm::core::{ControllerKind, SatisfactionMode, Simulation, SystemConfig};
use dmm::workload::{ClassSpec, GoalMetric, WorkloadSpec};

fn oltp_dss_workload(nodes: usize, db_pages: u32, goal_ms: f64) -> WorkloadSpec {
    let oltp_set = db_pages / 2; // the transactional half of the database
    WorkloadSpec {
        classes: vec![
            // DSS: long scans over the other half, no goal, access-heavy
            // (0.004 ops/ms × 16 pages ≫ the OLTP page rate).
            ClassSpec {
                class: NO_GOAL,
                goal_ms: None,
                goal_metric: GoalMetric::Mean,
                pages_per_op: 16,
                zipf_theta: 0.2,
                pages: (oltp_set..db_pages).map(PageId).collect(),
                arrival_per_ms: vec![0.004; nodes],
                rate_shifts: Vec::new(),
            },
            // OLTP: short transactions with a firm response time goal.
            ClassSpec {
                class: ClassId(1),
                goal_ms: Some(goal_ms),
                goal_metric: GoalMetric::Mean,
                pages_per_op: 4,
                zipf_theta: 0.4,
                pages: (0..oltp_set).map(PageId).collect(),
                arrival_per_ms: vec![0.008; nodes],
                rate_shifts: Vec::new(),
            },
        ],
    }
}

fn run(controller: ControllerKind, label: &str) -> f64 {
    let goal_ms = 6.0;
    let mut cfg = SystemConfig::builder()
        .seed(7)
        .goal_ms(goal_ms)
        .controller(controller)
        // Production SLA reading: the goal is an upper bound; faster is fine.
        .satisfaction(SatisfactionMode::UpperBound)
        .build()
        .expect("valid configuration");
    cfg.workload = oltp_dss_workload(cfg.cluster.nodes, cfg.cluster.db_pages, goal_ms);
    let mut sim = Simulation::new(cfg);
    sim.run_intervals(40);
    let oltp = sim.mean_observed_ms(ClassId(1), 20).expect("oltp data");
    let dss = sim
        .records(ClassId(1))
        .iter()
        .rev()
        .take(20)
        .map(|r| r.nogoal_ms)
        .sum::<f64>()
        / 20.0;
    let dedicated = sim.plane().total_dedicated_bytes(ClassId(1)) as f64 / (1024.0 * 1024.0);
    println!("{label:<22} OLTP {oltp:>6.2} ms   DSS {dss:>7.2} ms   dedicated {dedicated:>5.2} MB");
    oltp
}

fn main() {
    println!("OLTP goal: 6.00 ms; DSS scans run without a goal\n");
    let unprotected = run(ControllerKind::None, "no load control");
    let protected = run(ControllerKind::default(), "goal-oriented buffers");
    println!(
        "\nOLTP response time improved {:.1}x; the goal class is shielded from the scans.",
        unprotected / protected
    );
}
