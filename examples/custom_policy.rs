//! Choosing the local replacement policy (paper §6): the partitioning
//! algorithm works with "almost every replacement strategy", but the
//! cost-based benefit policy of Sinnwell & Weikum makes the best use of the
//! aggregate (local + remote) memory. This example runs the same workload
//! under four policies and compares goal-class response time and pool hit
//! rates.
//!
//! ```sh
//! cargo run --release --example custom_policy
//! ```

use dmm::buffer::{ClassId, PolicySpec, NO_GOAL};
use dmm::cluster::NodeId;
use dmm::core::{Simulation, SystemConfig};

fn run(policy: PolicySpec, label: &str) {
    let mut cfg = SystemConfig::builder()
        .seed(5)
        .theta(0.6)
        .goal_ms(8.0)
        .build()
        .expect("valid configuration");
    cfg.cluster.policy = policy;
    let mut sim = Simulation::new(cfg);
    sim.run_intervals(30);

    let rt = sim.mean_observed_ms(ClassId(1), 15).expect("data");
    let nodes = sim.plane().num_nodes();
    let (mut hits, mut total) = (0u64, 0u64);
    for n in 0..nodes {
        for class in [NO_GOAL, ClassId(1)] {
            let s = sim.plane().pool_stats(NodeId(n as u16), class);
            hits += s.hits;
            total += s.hits + s.misses;
        }
    }
    let remote = sim
        .plane()
        .costs()
        .observations(sim.plane().costs().remote_hit_slot());
    let nogoal = sim
        .records(ClassId(1))
        .iter()
        .rev()
        .take(15)
        .map(|r| r.nogoal_ms)
        .sum::<f64>()
        / 15.0;
    let disk: u64 = (0..nodes)
        .map(|n| sim.plane().disk_reads(NodeId(n as u16)))
        .sum();
    println!(
        "{label:<12} goal RT {rt:>6.2} ms   no-goal RT {nogoal:>6.2} ms   local hits {:>5.1}%   remote hits {remote:>6}   disk reads {disk:>6}",
        100.0 * hits as f64 / total as f64,
    );
}

fn main() {
    println!("same workload (theta 0.6, goal 8 ms), different replacement policies:\n");
    run(PolicySpec::CostBased, "cost-based");
    run(PolicySpec::Lru, "LRU");
    run(PolicySpec::LruK(2), "LRU-2");
    run(PolicySpec::Clock, "CLOCK");
    println!("\nThe cost-based policy prices last cached copies by global heat, so");
    println!("remote-memory hits replace disk reads (the §6 egoism/altruism balance).");
}
