//! SLO vs. batch: a latency-critical class with a **p95 goal** sharing the
//! cluster with a no-goal batch class.
//!
//! The paper's goals constrain the interval *mean*; production SLOs are
//! tail targets. Setting `goal_quantile(0.95)` on the builder switches the
//! goal class's metric to `GoalMetric::Quantile { q: 0.95 }`: agents keep
//! integer-exact response-time histograms, the coordinator merges them and
//! drives check → tolerance → hyperplane fit → LP off the p95 instead of
//! the mean, and the batch class gets whatever memory the tail goal leaves
//! over.
//!
//! ```sh
//! cargo run --release --example slo_vs_batch
//! ```

use dmm::prelude::*;

fn main() {
    let slo = ClassId(1);
    let batch = ClassId(0);
    let config = SystemConfig::builder()
        .seed(7)
        .goal_ms(30.0)
        .goal_quantile(0.95)
        .satisfaction(SatisfactionMode::UpperBound)
        .build()
        .expect("valid configuration");
    assert_eq!(
        config.workload.classes[slo.index()].goal_metric,
        GoalMetric::Quantile { q: 0.95 }
    );

    let mut sim = Simulation::new(config);
    println!("p95 goal 30 ms (upper bound); batch class unconstrained");
    for _ in 0..20 {
        sim.run_intervals(1);
        let r = *sim.records(slo).last().expect("check ran");
        println!(
            "  interval {:>3}: mean {:>6} ms | p95 {:>6} ms | goal {:>5.1} ms | dedicated {:>5.2} MB | {}",
            r.interval,
            fmt(r.observed_ms),
            fmt(r.observed_p_ms),
            r.goal_ms,
            r.dedicated_bytes as f64 / (1024.0 * 1024.0),
            r.satisfied.map_or("-", |s| if s { "ok" } else { "VIOLATED" }),
        );
    }

    let settled = sim
        .mean_observed_quantile_ms(slo, 5)
        .expect("SLO class completed operations");
    println!("\nsettled p95 over the last 5 intervals: {settled:.2} ms");
    println!(
        "batch completions: {} ops; SLO completions: {} ops",
        sim.class_completions(batch),
        sim.class_completions(slo)
    );
    let snap = sim.metrics_snapshot();
    if let Some(p) = snap.get_gauge("core.class1.p95_ms") {
        println!("last merged p95 gauge (core.class1.p95_ms): {p:.2} ms");
    }
}

fn fmt(v: Option<f64>) -> String {
    v.map_or_else(|| "-".into(), |x| format!("{x:.2}"))
}
