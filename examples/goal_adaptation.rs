//! Dynamic goal adjustment (paper §1: the method "allows dynamic adjustments
//! of the class-specific response time goals"): tighten and loosen the goal
//! mid-run and watch the partitioning follow — the Fig. 2 behaviour driven by
//! explicit goal changes instead of the random schedule.
//!
//! ```sh
//! cargo run --release --example goal_adaptation
//! ```

use dmm::prelude::*;

fn main() {
    let class = ClassId(1);
    let config = SystemConfig::builder()
        .seed(21)
        .goal_ms(15.0)
        .build()
        .expect("valid configuration");
    let mut sim = Simulation::new(config);

    println!("phase 1: goal 15 ms");
    run_phase(&mut sim, class, 14);

    println!("\nphase 2: tightened to 7 ms (SLA upgrade)");
    sim.set_goal(class, 7.0).expect("valid goal");
    run_phase(&mut sim, class, 14);

    println!("\nphase 3: loosened to 18 ms (nightly batch window)");
    sim.set_goal(class, 18.0).expect("valid goal");
    run_phase(&mut sim, class, 14);

    let c = sim.convergence(class);
    println!(
        "\nre-converged after each change: {} episodes, mean {:.1} feedback iterations",
        c.episodes(),
        c.mean_iterations()
    );
}

fn run_phase(sim: &mut Simulation, class: ClassId, intervals: u32) {
    for _ in 0..intervals {
        sim.run_intervals(1);
        let r = *sim.records(class).last().expect("check ran");
        println!(
            "  interval {:>3}: observed {:>6} ms | goal {:>5.1} ms | dedicated {:>5.2} MB | {}",
            r.interval,
            r.observed_ms
                .map_or_else(|| "-".into(), |v| format!("{v:.2}")),
            r.goal_ms,
            r.dedicated_bytes as f64 / (1024.0 * 1024.0),
            r.satisfied
                .map_or("-", |s| if s { "ok" } else { "VIOLATED" }),
        );
    }
}
