//! Quickstart: run the paper's base experiment and watch the feedback loop
//! steer the goal class onto its response-time goal.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dmm::prelude::*;

fn main() {
    // 3 nodes × 2 MB cache, 2000 × 4 KB pages, one goal class (15 ms goal)
    // plus the no-goal class — the ICDE'99 §7.2 setup.
    let config = SystemConfig::builder()
        .seed(42)
        .goal_ms(15.0)
        .build()
        .expect("valid configuration");
    let mut sim = Simulation::new(config);

    println!("interval  observed_ms  goal_ms  dedicated_MB  satisfied");
    for _ in 0..24 {
        sim.run_intervals(1);
        let r = *sim.records(ClassId(1)).last().expect("check ran");
        println!(
            "{:>8}  {:>11}  {:>7.2}  {:>12.2}  {:>9}",
            r.interval,
            r.observed_ms
                .map_or_else(|| "-".into(), |v| format!("{v:.2}")),
            r.goal_ms,
            r.dedicated_bytes as f64 / (1024.0 * 1024.0),
            r.satisfied.map_or("-", |s| if s { "yes" } else { "NO" }),
        );
    }

    let tail = sim.mean_observed_ms(ClassId(1), 5).expect("data");
    println!("\nmean response time over the last 5 intervals: {tail:.2} ms (goal 15.00 ms)");
    println!(
        "operations completed: {}, control traffic: {:.4}% of network bytes",
        sim.plane().completions(),
        100.0 * sim.plane().network().control_fraction()
    );
}
