//! Hierarchical timing wheel: the allocation-free event queue behind
//! [`crate::Scheduler`].
//!
//! # Geometry
//!
//! Eight levels of 64 slots each ([`WHEEL_LEVELS`] × [`WHEEL_SLOTS`]). The
//! tick is exactly one nanosecond — the resolution of [`SimTime`] — so no
//! rounding ever happens and the wheel's delivery order is a pure function
//! of the (time, insertion-sequence) pairs, just like the reference binary
//! heap. Level `l` buckets events by bits `[6l, 6(l+1))` of their absolute
//! nanosecond time; together the levels span `2^48` ns (≈ 78 hours of
//! simulated time). Events further out than that go to a single *overflow*
//! chain and are re-bucketed when the wheel rolls over into their epoch.
//!
//! # Storage
//!
//! Every pending event lives in one slab node addressed by a `u32`
//! index; per-slot FIFO chains are intrusive `next` links, and freed nodes
//! go on a free list. After warm-up, pushing and popping events allocates
//! nothing. Per-level occupancy is a single `u64` bitmap, so "find the next
//! non-empty slot" is one mask and a `trailing_zeros` — the wheel never
//! iterates over empty ticks.
//!
//! # Determinism
//!
//! The wheel's position advances eagerly to (a lower bound of) the next
//! event, cascading any higher-level slot it enters down to finer levels.
//! Because of that eager cascade, *the level and slot of a pending event
//! are a pure function of its time and the current position* — two events
//! scheduled for the same instant always sit in the same chain, in
//! insertion order, no matter how far apart they were scheduled. Delivery
//! order is therefore exactly (time, seq): identical to the binary-heap
//! reference, which the differential tests in `tests/` assert.

use crate::time::SimTime;

/// log2 of the slots per wheel level.
const SLOT_BITS: u32 = 6;
/// Slots per wheel level.
pub const WHEEL_SLOTS: usize = 1 << SLOT_BITS;
/// Number of hierarchical levels; together they span `2^48` ns.
pub const WHEEL_LEVELS: usize = 8;
/// Bits of absolute time covered by the wheel levels.
const SPAN_BITS: u32 = SLOT_BITS * WHEEL_LEVELS as u32;
/// Null link / free-list terminator.
const NIL: u32 = u32::MAX;

const SLOT_MASK: u64 = WHEEL_SLOTS as u64 - 1;

struct Node<E> {
    time: u64,
    /// Monotone scheduling sequence; kept for debug assertions (FIFO chains
    /// already deliver same-instant events in scheduling order).
    seq: u64,
    next: u32,
    event: Option<E>,
}

/// An intrusive FIFO chain through the slab (head/tail indices).
#[derive(Clone, Copy)]
struct Chain {
    head: u32,
    tail: u32,
}

impl Chain {
    const EMPTY: Chain = Chain {
        head: NIL,
        tail: NIL,
    };
}

/// The timing-wheel backend. All methods are crate-private; the public
/// surface is [`crate::Scheduler`].
pub(crate) struct TimingWheel<E> {
    arena: Vec<Node<E>>,
    /// Free-list head into `arena` (linked through `Node::next`).
    free: u32,
    slots: [[Chain; WHEEL_SLOTS]; WHEEL_LEVELS],
    /// One occupancy bit per slot per level.
    occupied: [u64; WHEEL_LEVELS],
    /// Events beyond the wheel span, in insertion order.
    overflow: Chain,
    /// Current wheel position in ticks (= nanoseconds). Only advances.
    pos: u64,
    len: usize,
    /// Entries moved by cascades (including overflow re-bucketing).
    cascaded: u64,
    /// Events inserted per level (`[WHEEL_LEVELS]` counts the overflow).
    /// Cascade re-links are not re-counted: each event is attributed to the
    /// level its original `push` landed on.
    level_pushes: [u64; WHEEL_LEVELS + 1],
}

impl<E> TimingWheel<E> {
    pub(crate) fn new() -> Self {
        TimingWheel {
            arena: Vec::new(),
            free: NIL,
            slots: [[Chain::EMPTY; WHEEL_SLOTS]; WHEEL_LEVELS],
            occupied: [0; WHEEL_LEVELS],
            overflow: Chain::EMPTY,
            pos: 0,
            len: 0,
            cascaded: 0,
            level_pushes: [0; WHEEL_LEVELS + 1],
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn cascaded(&self) -> u64 {
        self.cascaded
    }

    pub(crate) fn level_pushes(&self) -> &[u64; WHEEL_LEVELS + 1] {
        &self.level_pushes
    }

    /// Inserts an event. `time` must not precede the wheel position (the
    /// scheduler's `now` is always ≥ the position, and it checks
    /// `time ≥ now`).
    pub(crate) fn push(&mut self, time: u64, seq: u64, event: E) {
        debug_assert!(time >= self.pos, "push into the wheel's past");
        let idx = self.alloc(time, seq, event);
        let level = self.link(idx, time);
        self.level_pushes[level] += 1;
        self.len += 1;
    }

    /// Removes and returns the earliest event if its time is ≤ `limit`.
    ///
    /// Advances the wheel position as far as needed — but never past
    /// `limit`, so a later `push` at any `time ≥ limit` stays valid even
    /// when this returns `None`.
    pub(crate) fn pop_next_before(&mut self, limit: u64) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        loop {
            // Near-future fast path: level 0 has one slot per tick, so the
            // first occupied slot at or after the cursor is the next event,
            // found with one mask + trailing_zeros.
            let cursor = (self.pos & SLOT_MASK) as u32;
            let mask = self.occupied[0] & (!0u64 << cursor);
            if mask != 0 {
                let slot = mask.trailing_zeros() as u64;
                let t = (self.pos & !SLOT_MASK) | slot;
                if t > limit {
                    return None;
                }
                self.pos = t;
                return Some((SimTime::from_nanos(t), self.pop_front_level0(slot as usize)));
            }
            // Coarser levels: enter the first occupied slot ahead of the
            // cursor and cascade its chain down, then rescan from level 0.
            if let Some((level, slot, slot_start)) = self.next_occupied_slot() {
                let chain = self.slots[level][slot];
                if chain.head == chain.tail {
                    // Single-event chain: that event is the wheel's global
                    // minimum (finer levels ahead are empty — just scanned —
                    // and coarser levels hold strictly later times), so
                    // deliver it directly instead of walking it down level
                    // by level. This is the common case in sparse regimes.
                    let t = self.arena[chain.head as usize].time;
                    if t > limit {
                        return None;
                    }
                    self.pos = t;
                    self.slots[level][slot] = Chain::EMPTY;
                    self.occupied[level] &= !(1u64 << slot);
                    let node = &mut self.arena[chain.head as usize];
                    let event = node.event.take().expect("linked node holds an event");
                    node.next = self.free;
                    self.free = chain.head;
                    self.len -= 1;
                    return Some((SimTime::from_nanos(t), event));
                }
                if slot_start > limit {
                    return None;
                }
                self.pos = slot_start;
                self.cascade(level, slot);
                continue;
            }
            // Every wheel level is empty: all pending events sit in the
            // overflow chain, at least one full wheel span ahead. Roll the
            // wheel over to the epoch of the earliest one and re-bucket.
            let min_t = self.overflow_min();
            if min_t > limit {
                return None;
            }
            self.pos = min_t >> SPAN_BITS << SPAN_BITS;
            self.rebucket_overflow();
        }
    }

    /// First occupied slot strictly ahead of the cursor, lowest level
    /// first: `(level, slot, slot start time)`. The slot *containing* the
    /// position is always empty at levels ≥ 1 (its events cascaded to finer
    /// levels when the position entered it), hence "strictly".
    fn next_occupied_slot(&self) -> Option<(usize, usize, u64)> {
        for level in 1..WHEEL_LEVELS {
            let shift = SLOT_BITS * level as u32;
            let cursor = ((self.pos >> shift) & SLOT_MASK) as u32;
            let mask = self.occupied[level] & (!0u64 << cursor) & !(1u64 << cursor);
            if mask != 0 {
                let slot = mask.trailing_zeros() as usize;
                let rotation = self.pos >> (shift + SLOT_BITS) << (shift + SLOT_BITS);
                let slot_start = rotation | (slot as u64) << shift;
                return Some((level, slot, slot_start));
            }
        }
        None
    }

    /// Moves every event of `slots[level][slot]` down to its level for the
    /// (just advanced) position, preserving chain order — which is what
    /// keeps same-instant events in scheduling order end to end.
    fn cascade(&mut self, level: usize, slot: usize) {
        let mut cur = self.slots[level][slot].head;
        self.slots[level][slot] = Chain::EMPTY;
        self.occupied[level] &= !(1u64 << slot);
        while cur != NIL {
            let next = self.arena[cur as usize].next;
            let time = self.arena[cur as usize].time;
            self.link(cur, time);
            self.cascaded += 1;
            cur = next;
        }
    }

    /// Minimum time in the overflow chain (only called when non-empty).
    fn overflow_min(&self) -> u64 {
        let mut min = u64::MAX;
        let mut cur = self.overflow.head;
        debug_assert_ne!(cur, NIL, "wheels empty but no overflow");
        while cur != NIL {
            let node = &self.arena[cur as usize];
            min = min.min(node.time);
            cur = node.next;
        }
        min
    }

    /// Re-links every overflow event against the new position, in chain
    /// order (events still beyond the span re-append to the overflow,
    /// keeping their relative order).
    fn rebucket_overflow(&mut self) {
        let mut cur = self.overflow.head;
        self.overflow = Chain::EMPTY;
        while cur != NIL {
            let next = self.arena[cur as usize].next;
            let time = self.arena[cur as usize].time;
            self.link(cur, time);
            self.cascaded += 1;
            cur = next;
        }
    }

    /// Appends node `idx` to the chain for `time` given the current
    /// position; returns the level index (`WHEEL_LEVELS` = overflow).
    fn link(&mut self, idx: u32, time: u64) -> usize {
        let delta = time ^ self.pos;
        if delta >> SPAN_BITS != 0 {
            Self::append(&mut self.arena, &mut self.overflow, idx);
            return WHEEL_LEVELS;
        }
        let level = if delta == 0 {
            0
        } else {
            ((63 - delta.leading_zeros()) / SLOT_BITS) as usize
        };
        let slot = ((time >> (SLOT_BITS * level as u32)) & SLOT_MASK) as usize;
        Self::append(&mut self.arena, &mut self.slots[level][slot], idx);
        self.occupied[level] |= 1u64 << slot;
        level
    }

    fn append(arena: &mut [Node<E>], chain: &mut Chain, idx: u32) {
        arena[idx as usize].next = NIL;
        if chain.head == NIL {
            chain.head = idx;
        } else {
            arena[chain.tail as usize].next = idx;
        }
        chain.tail = idx;
    }

    /// Pops the FIFO head of a level-0 slot (all its events share one tick).
    fn pop_front_level0(&mut self, slot: usize) -> E {
        let idx = self.slots[0][slot].head;
        debug_assert_ne!(idx, NIL, "occupancy bit set on empty slot");
        let next = self.arena[idx as usize].next;
        debug_assert!(
            next == NIL || self.arena[next as usize].seq > self.arena[idx as usize].seq,
            "level-0 chains must keep scheduling order"
        );
        self.slots[0][slot].head = next;
        if next == NIL {
            self.slots[0][slot].tail = NIL;
            self.occupied[0] &= !(1u64 << slot);
        }
        let node = &mut self.arena[idx as usize];
        let event = node.event.take().expect("linked node holds an event");
        node.next = self.free;
        self.free = idx;
        self.len -= 1;
        event
    }

    fn alloc(&mut self, time: u64, seq: u64, event: E) -> u32 {
        let node = Node {
            time,
            seq,
            next: NIL,
            event: Some(event),
        };
        if self.free != NIL {
            let idx = self.free;
            self.free = self.arena[idx as usize].next;
            self.arena[idx as usize] = node;
            idx
        } else {
            assert!(self.arena.len() < NIL as usize, "too many pending events");
            self.arena.push(node);
            (self.arena.len() - 1) as u32
        }
    }
}

impl<E> std::fmt::Debug for TimingWheel<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimingWheel")
            .field("len", &self.len)
            .field("pos", &self.pos)
            .field("cascaded", &self.cascaded)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut TimingWheel<u32>) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        while let Some((t, e)) = w.pop_next_before(u64::MAX) {
            out.push((t.as_nanos(), e));
        }
        out
    }

    #[test]
    fn delivers_in_time_then_seq_order() {
        let mut w = TimingWheel::new();
        w.push(500, 0, 0);
        w.push(20, 1, 1);
        w.push(500, 2, 2);
        w.push(0, 3, 3);
        assert_eq!(drain(&mut w), vec![(0, 3), (20, 1), (500, 0), (500, 2)]);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn same_instant_burst_mixing_levels_keeps_scheduling_order() {
        // Event 0 is scheduled far ahead (lands on a coarse level); event 1
        // for the same instant is scheduled after time has advanced close
        // to it (lands on level 0 directly). The cascade must still deliver
        // 0 before 1.
        let mut w = TimingWheel::new();
        w.push(100, 0, 0);
        w.push(90, 1, 9);
        let (t, e) = w.pop_next_before(u64::MAX).unwrap();
        assert_eq!((t.as_nanos(), e), (90, 9));
        w.push(100, 2, 1); // near-future direct insert, same instant as 0
        assert_eq!(drain(&mut w), vec![(100, 0), (100, 1)]);
    }

    #[test]
    fn crosses_every_level_boundary() {
        let mut w = TimingWheel::new();
        let mut times = Vec::new();
        for level in 0..WHEEL_LEVELS as u32 {
            let base = 1u64 << (SLOT_BITS * level);
            for t in [base - 1, base, base + 1] {
                times.push(t);
            }
        }
        for (i, &t) in times.iter().enumerate() {
            w.push(t, i as u64, i as u32);
        }
        let out = drain(&mut w);
        let mut sorted: Vec<u64> = times.clone();
        sorted.sort_unstable();
        sorted.dedup();
        // times list is strictly increasing per construction except the
        // shared 0-level overlap; assert global time order.
        assert_eq!(out.len(), times.len());
        for pair in out.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
        }
    }

    #[test]
    fn overflow_rolls_over_and_delivers() {
        let mut w = TimingWheel::new();
        let span = 1u64 << SPAN_BITS;
        w.push(3, 0, 0);
        w.push(span + 5, 1, 1); // next wheel epoch
        w.push(u64::MAX, 2, 2); // saturated `after` lands here
        w.push(4 * span + 7, 3, 3);
        assert_eq!(
            drain(&mut w),
            vec![(3, 0), (span + 5, 1), (4 * span + 7, 3), (u64::MAX, 2)]
        );
        assert!(w.cascaded() > 0, "overflow re-bucketing counts as cascade");
    }

    #[test]
    fn pop_respects_limit_and_later_pushes_stay_valid() {
        let mut w = TimingWheel::new();
        w.push(5, 0, 0);
        w.push(1_000_000, 1, 1);
        assert_eq!(w.pop_next_before(10).map(|(t, _)| t.as_nanos()), Some(5));
        // Next event is far away; the probe must not advance the position
        // past the limit…
        assert_eq!(w.pop_next_before(10), None);
        // …so a push between the limit and the far event still works and
        // comes out first.
        w.push(12, 2, 2);
        assert_eq!(
            drain(&mut w),
            vec![(12, 2), (1_000_000, 1)],
            "intermediate push after a bounded probe must be delivered"
        );
    }

    #[test]
    fn slab_reuses_freed_nodes() {
        let mut w = TimingWheel::new();
        for round in 0..10u64 {
            for i in 0..100u64 {
                w.push(round * 1000 + i, round * 100 + i, i as u32);
            }
            while w.pop_next_before(u64::MAX).is_some() {}
        }
        assert!(w.arena.len() <= 100, "arena grew past peak pending");
    }
}
