//! Generic event loop.
//!
//! The application chooses an event payload type `E` and implements
//! [`Handler<E>`]. Events scheduled for the same instant are delivered in
//! scheduling order (a monotone sequence number breaks ties), which the
//! feedback-control experiments rely on for reproducibility.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// Consumes events and schedules follow-up events.
pub trait Handler<E> {
    /// Handles one event occurring at simulated time `now`.
    fn handle(&mut self, now: SimTime, event: E, sched: &mut Scheduler<E>);
}

struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// The scheduling half of the engine, passed to [`Handler::handle`] so
/// handlers can enqueue follow-up events while the queue is being drained.
pub struct Scheduler<E> {
    queue: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Scheduler<E> {
    fn new() -> Self {
        Scheduler {
            queue: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at the absolute instant `at`. `at` must not precede
    /// the current time.
    pub fn at(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled {
            time: at,
            seq,
            event,
        });
    }

    /// Schedules `event` `delay` after the current time.
    pub fn after(&mut self, delay: SimDuration, event: E) {
        self.at(self.now + delay, event);
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// The event loop: owns the scheduler and drives a [`Handler`].
pub struct Engine<E> {
    sched: Scheduler<E>,
    delivered: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an empty engine at t = 0.
    pub fn new() -> Self {
        Engine {
            sched: Scheduler::new(),
            delivered: 0,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.sched.now
    }

    /// Total number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Access the scheduler to seed initial events.
    pub fn scheduler(&mut self) -> &mut Scheduler<E> {
        &mut self.sched
    }

    /// Runs until the queue is empty or the next event would occur after
    /// `horizon`. Events exactly at the horizon are delivered. Returns the
    /// number of events delivered by this call.
    pub fn run_until<H: Handler<E>>(&mut self, horizon: SimTime, handler: &mut H) -> u64 {
        let mut n = 0;
        loop {
            match self.sched.queue.peek() {
                Some(head) if head.time <= horizon => {}
                _ => break,
            }
            let head = self.sched.queue.pop().expect("peeked");
            debug_assert!(head.time >= self.sched.now, "time went backwards");
            self.sched.now = head.time;
            handler.handle(head.time, head.event, &mut self.sched);
            n += 1;
        }
        self.delivered += n;
        // Advance the clock to the horizon even if the queue drained early,
        // so repeated run_until calls form contiguous observation intervals.
        if self.sched.now < horizon && horizon != SimTime::MAX {
            self.sched.now = horizon;
        }
        n
    }

    /// Runs until the queue is empty.
    pub fn run_to_completion<H: Handler<E>>(&mut self, handler: &mut H) -> u64 {
        self.run_until(SimTime::MAX, handler)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Tick(u32),
        Chain(u32),
    }

    struct Recorder {
        seen: Vec<(u64, Ev)>,
    }

    impl Handler<Ev> for Recorder {
        fn handle(&mut self, now: SimTime, event: Ev, sched: &mut Scheduler<Ev>) {
            if let Ev::Chain(n) = event {
                if n > 0 {
                    sched.after(SimDuration::from_nanos(10), Ev::Chain(n - 1));
                }
            }
            self.seen.push((now.as_nanos(), event));
        }
    }

    #[test]
    fn delivers_in_time_order_with_fifo_ties() {
        let mut eng = Engine::new();
        eng.scheduler().at(SimTime::from_nanos(20), Ev::Tick(1));
        eng.scheduler().at(SimTime::from_nanos(10), Ev::Tick(2));
        eng.scheduler().at(SimTime::from_nanos(20), Ev::Tick(3));
        let mut rec = Recorder { seen: vec![] };
        let n = eng.run_to_completion(&mut rec);
        assert_eq!(n, 3);
        assert_eq!(
            rec.seen,
            vec![
                (10, Ev::Tick(2)),
                (20, Ev::Tick(1)),
                (20, Ev::Tick(3)), // same instant: scheduling order preserved
            ]
        );
    }

    #[test]
    fn handlers_can_chain_events() {
        let mut eng = Engine::new();
        eng.scheduler().at(SimTime::ZERO, Ev::Chain(3));
        let mut rec = Recorder { seen: vec![] };
        eng.run_to_completion(&mut rec);
        assert_eq!(rec.seen.len(), 4);
        assert_eq!(eng.now().as_nanos(), 30);
    }

    #[test]
    fn run_until_respects_horizon_and_advances_clock() {
        let mut eng = Engine::new();
        eng.scheduler().at(SimTime::from_nanos(5), Ev::Tick(1));
        eng.scheduler().at(SimTime::from_nanos(50), Ev::Tick(2));
        let mut rec = Recorder { seen: vec![] };
        let n = eng.run_until(SimTime::from_nanos(10), &mut rec);
        assert_eq!(n, 1);
        assert_eq!(eng.now(), SimTime::from_nanos(10));
        let n = eng.run_until(SimTime::from_nanos(60), &mut rec);
        assert_eq!(n, 1);
        assert_eq!(rec.seen.len(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut eng: Engine<Ev> = Engine::new();
        eng.scheduler().at(SimTime::from_nanos(10), Ev::Tick(1));
        struct Bad;
        impl Handler<Ev> for Bad {
            fn handle(&mut self, _: SimTime, _: Ev, sched: &mut Scheduler<Ev>) {
                sched.at(SimTime::ZERO, Ev::Tick(9));
            }
        }
        eng.run_to_completion(&mut Bad);
    }
}
