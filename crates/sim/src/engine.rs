//! Generic event loop.
//!
//! The application chooses an event payload type `E` and implements
//! [`Handler<E>`]. Events scheduled for the same instant are delivered in
//! scheduling order (a monotone sequence number breaks ties), which the
//! feedback-control experiments rely on for reproducibility.
//!
//! Two interchangeable queue backends exist ([`SchedulerBackend`]): the
//! default hierarchical timing wheel ([`crate::wheel`]) with an
//! allocation-free O(1) near-future path, and the original binary heap,
//! kept as a reference implementation for differential testing. Both
//! deliver in identical (time, scheduling-sequence) order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};
use crate::wheel::{TimingWheel, WHEEL_LEVELS};

/// Consumes events and schedules follow-up events.
pub trait Handler<E> {
    /// Handles one event occurring at simulated time `now`.
    fn handle(&mut self, now: SimTime, event: E, sched: &mut Scheduler<E>);
}

/// Which priority-queue implementation backs the [`Scheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerBackend {
    /// Hierarchical timing wheel: slab-backed FIFO chains, O(1) amortized
    /// push/pop for near-future events. The production default.
    #[default]
    Wheel,
    /// `BinaryHeap` of (time, seq): the reference implementation, O(log n)
    /// per operation. Selectable for differential testing.
    Heap,
}

/// How the event loop executes events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// One event at a time, in (time, seq) order. The reference mode.
    #[default]
    Sequential,
    /// Conservative-window parallel execution: runs of consecutive
    /// *parallel-safe* events (see [`WindowHandler`]) closer together than
    /// the model's minimum cross-partition latency are executed as a batch,
    /// partitioned across up to `workers` OS threads. Delivery and
    /// follow-up scheduling order — and therefore every trace byte — are
    /// identical to [`ExecMode::Sequential`].
    Windowed {
        /// Worker-thread budget for one batch (≥ 1; 1 degenerates to
        /// batched sequential execution).
        workers: usize,
    },
}

/// Engine construction parameters (extend as the kernel grows knobs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimParams {
    /// Event-queue backend.
    pub scheduler: SchedulerBackend,
    /// Event execution mode.
    pub exec: ExecMode,
}

/// A [`Handler`] that additionally knows which of its events are safe to
/// execute as a parallel batch, for [`Engine::run_until_windowed`].
///
/// The contract licensing the windowed loop ("conservative" in the
/// Chandy–Misra sense):
///
/// * `classify` returns `Some(partition)` only for events whose handling
///   (1) mutates state of that partition alone, (2) reads only state no
///   event of any other partition mutates, (3) never produces a completion
///   or other side channel, and (4) schedules **exactly one** follow-up
///   event at least one conservative window after the event's own time.
/// * `execute_run` must leave the handler in exactly the state a sequence
///   of ordinary [`Handler::handle`] calls would have, and push exactly one
///   follow-up per event into `out` **in run order** — the engine re-plays
///   them into the scheduler in that order, so sequence numbers (and hence
///   tie-breaks and trace bytes) match sequential execution.
pub trait WindowHandler<E>: Handler<E> {
    /// Partition index of a parallel-safe event, or `None` for a *global*
    /// event that must be executed inline with exclusive state access.
    fn classify(&self, event: &E) -> Option<u32>;

    /// Executes a run of parallel-safe events (every one classified
    /// `Some`), appending each event's single follow-up to `out` in run
    /// order. `workers` is the thread budget; using fewer (or none) is
    /// always correct.
    fn execute_run(&mut self, run: &[(SimTime, E)], workers: usize, out: &mut Vec<(SimTime, E)>);

    /// Known per-event lookahead: a lower bound, available **before** the
    /// event executes, on the delay between this parallel-safe event and
    /// its single follow-up. Returning `Some(d)` with `d` larger than the
    /// conservative window lets the engine keep the run open until
    /// `t + d` instead of `t + window`, growing batches without changing
    /// delivery order (the follow-up provably sorts after everything the
    /// run may still pop). Returning a bound the handler cannot honour
    /// breaks the determinism contract. The default — no extra knowledge —
    /// leaves the conservative window in force.
    fn lookahead(&self, _event: &E) -> Option<SimDuration> {
        None
    }
}

/// Windowed-executor batch counters, for observability and benchmarks: how
/// many parallel runs were flushed and how many events they carried. The
/// ratio is the mean batch size — the lever lookahead is meant to grow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowStats {
    /// Parallel runs flushed.
    pub runs: u64,
    /// Events executed inside those runs (the rest ran inline as globals).
    pub run_events: u64,
}

/// Counters describing scheduler work, for observability surfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedStats {
    /// Total events ever pushed.
    pub pushes: u64,
    /// High-water mark of pending events.
    pub peak_pending: u64,
    /// Wheel entries re-linked by cascades / overflow re-bucketing
    /// (always 0 under the heap backend).
    pub cascaded: u64,
    /// Pushes that landed on each wheel level; the final entry counts the
    /// overflow chain. All-zero under the heap backend.
    pub level_pushes: [u64; WHEEL_LEVELS + 1],
}

struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

enum Queue<E> {
    // Boxed: the wheel's inline slot/occupancy arrays are ~4 KB, which
    // would otherwise bloat every Scheduler regardless of backend.
    Wheel(Box<TimingWheel<E>>),
    Heap(BinaryHeap<Scheduled<E>>),
}

/// The scheduling half of the engine, passed to [`Handler::handle`] so
/// handlers can enqueue follow-up events while the queue is being drained.
pub struct Scheduler<E> {
    queue: Queue<E>,
    next_seq: u64,
    now: SimTime,
    pushes: u64,
    peak_pending: u64,
}

impl<E> Scheduler<E> {
    fn new(backend: SchedulerBackend) -> Self {
        Scheduler {
            queue: match backend {
                SchedulerBackend::Wheel => Queue::Wheel(Box::new(TimingWheel::new())),
                SchedulerBackend::Heap => Queue::Heap(BinaryHeap::new()),
            },
            next_seq: 0,
            now: SimTime::ZERO,
            pushes: 0,
            peak_pending: 0,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at the absolute instant `at`. `at` must not precede
    /// the current time.
    pub fn at(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        match &mut self.queue {
            Queue::Wheel(w) => w.push(at.as_nanos(), seq, event),
            Queue::Heap(h) => h.push(Scheduled {
                time: at,
                seq,
                event,
            }),
        }
        self.pushes += 1;
        self.peak_pending = self.peak_pending.max(self.pending() as u64);
    }

    /// Schedules `event` `delay` after the current time. The instant
    /// saturates at [`SimTime::MAX`] rather than overflowing, so horizons
    /// near the end of representable time stay well-defined.
    pub fn after(&mut self, delay: SimDuration, event: E) {
        self.at(self.now.saturating_add(delay), event);
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        match &self.queue {
            Queue::Wheel(w) => w.len(),
            Queue::Heap(h) => h.len(),
        }
    }

    /// Scheduler work counters (see [`SchedStats`]).
    pub fn stats(&self) -> SchedStats {
        let (cascaded, level_pushes) = match &self.queue {
            Queue::Wheel(w) => (w.cascaded(), *w.level_pushes()),
            Queue::Heap(_) => (0, [0; WHEEL_LEVELS + 1]),
        };
        SchedStats {
            pushes: self.pushes,
            peak_pending: self.peak_pending,
            cascaded,
            level_pushes,
        }
    }

    /// Removes the earliest pending event if its time is ≤ `limit`, and
    /// advances `now` to it. Never advances `now` past `limit`.
    fn pop_next_before(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        let popped = match &mut self.queue {
            Queue::Wheel(w) => w.pop_next_before(limit.as_nanos()),
            Queue::Heap(h) => match h.peek() {
                Some(head) if head.time <= limit => {
                    let head = h.pop().expect("peeked");
                    Some((head.time, head.event))
                }
                _ => None,
            },
        };
        if let Some((t, _)) = &popped {
            debug_assert!(*t >= self.now, "time went backwards");
            self.now = *t;
        }
        popped
    }
}

/// The event loop: owns the scheduler and drives a [`Handler`].
pub struct Engine<E> {
    sched: Scheduler<E>,
    delivered: u64,
    window_stats: WindowStats,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an empty engine at t = 0 with the default backend.
    pub fn new() -> Self {
        Self::with_params(SimParams::default())
    }

    /// Creates an empty engine at t = 0 with explicit parameters.
    pub fn with_params(params: SimParams) -> Self {
        Engine {
            sched: Scheduler::new(params.scheduler),
            delivered: 0,
            window_stats: WindowStats::default(),
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.sched.now
    }

    /// Total number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Access the scheduler to seed initial events.
    pub fn scheduler(&mut self) -> &mut Scheduler<E> {
        &mut self.sched
    }

    /// Scheduler work counters (see [`SchedStats`]).
    pub fn sched_stats(&self) -> SchedStats {
        self.sched.stats()
    }

    /// Windowed-executor batch counters (see [`WindowStats`]); all-zero
    /// unless [`Engine::run_until_windowed`] has run.
    pub fn window_stats(&self) -> WindowStats {
        self.window_stats
    }

    /// Runs until the queue is empty or the next event would occur after
    /// `horizon`. Events exactly at the horizon are delivered. Returns the
    /// number of events delivered by this call.
    pub fn run_until<H: Handler<E>>(&mut self, horizon: SimTime, handler: &mut H) -> u64 {
        let mut n = 0;
        while let Some((time, event)) = self.sched.pop_next_before(horizon) {
            handler.handle(time, event, &mut self.sched);
            n += 1;
        }
        self.delivered += n;
        // Advance the clock to the horizon even if the queue drained early,
        // so repeated run_until calls form contiguous observation intervals.
        if self.sched.now < horizon && horizon != SimTime::MAX {
            self.sched.now = horizon;
        }
        n
    }

    /// Runs until the queue is empty or the next event would occur after
    /// `horizon`, accumulating *parallel-safe* events (per
    /// [`WindowHandler::classify`]) into runs bounded by the conservative
    /// `window` and executing each run as one batch. Equivalent to
    /// [`Engine::run_until`] event for event: every follow-up of a run lands
    /// at least `window` after the run's first event, i.e. strictly after
    /// everything the run may still pop, so batching cannot reorder
    /// delivery; global events flush the open run first and then execute
    /// inline with exclusive state access.
    pub fn run_until_windowed<H: WindowHandler<E>>(
        &mut self,
        horizon: SimTime,
        window: SimDuration,
        workers: usize,
        handler: &mut H,
    ) -> u64 {
        assert!(
            window.as_nanos() > 0,
            "conservative window must be positive"
        );
        let mut n = 0;
        let mut run: Vec<(SimTime, E)> = Vec::new();
        let mut out: Vec<(SimTime, E)> = Vec::new();
        // Earliest instant any event of the open run could schedule its
        // follow-up at: min over the run of `t + max(window, lookahead(e))`.
        // With no lookahead this degenerates to `first + window` exactly.
        let mut run_end = SimTime::MAX;
        loop {
            // While a run is open, only events strictly before `run_end`
            // may be popped: anything at or past it could be a follow-up of
            // the run itself and must sort after the flush.
            let limit = if run.is_empty() {
                horizon
            } else {
                horizon.min(SimTime::from_nanos(run_end.as_nanos() - 1))
            };
            match self.sched.pop_next_before(limit) {
                Some((t, e)) => {
                    if handler.classify(&e).is_some() {
                        let d = handler.lookahead(&e).map_or(window, |l| l.max(window));
                        run_end = run_end.min(t.saturating_add(d));
                        run.push((t, e));
                    } else {
                        // Global event: everything before it must be applied
                        // first, then it runs inline with exclusive access.
                        n += self.flush_run(&mut run, workers, &mut out, handler);
                        run_end = SimTime::MAX;
                        handler.handle(t, e, &mut self.sched);
                        n += 1;
                    }
                }
                None => {
                    if run.is_empty() {
                        break;
                    }
                    n += self.flush_run(&mut run, workers, &mut out, handler);
                    run_end = SimTime::MAX;
                }
            }
        }
        self.delivered += n;
        if self.sched.now < horizon && horizon != SimTime::MAX {
            self.sched.now = horizon;
        }
        n
    }

    /// Executes an accumulated run as one batch and re-plays its follow-ups
    /// into the scheduler in run order (preserving sequential sequence
    /// numbering). Returns the number of events executed.
    fn flush_run<H: WindowHandler<E>>(
        &mut self,
        run: &mut Vec<(SimTime, E)>,
        workers: usize,
        out: &mut Vec<(SimTime, E)>,
        handler: &mut H,
    ) -> u64 {
        if run.is_empty() {
            return 0;
        }
        let n = run.len() as u64;
        self.window_stats.runs += 1;
        self.window_stats.run_events += n;
        out.clear();
        handler.execute_run(run, workers, out);
        for (t, e) in out.drain(..) {
            self.sched.at(t, e);
        }
        run.clear();
        n
    }

    /// Delivers at most `max` events regardless of their times. Returns the
    /// number delivered (less than `max` only if the queue drained). Used by
    /// benchmarks and drivers that meter by event count rather than time.
    pub fn run_events<H: Handler<E>>(&mut self, max: u64, handler: &mut H) -> u64 {
        let mut n = 0;
        while n < max {
            match self.sched.pop_next_before(SimTime::MAX) {
                Some((time, event)) => {
                    handler.handle(time, event, &mut self.sched);
                    n += 1;
                }
                None => break,
            }
        }
        self.delivered += n;
        n
    }

    /// Runs until the queue is empty.
    pub fn run_to_completion<H: Handler<E>>(&mut self, handler: &mut H) -> u64 {
        self.run_until(SimTime::MAX, handler)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOTH: [SchedulerBackend; 2] = [SchedulerBackend::Wheel, SchedulerBackend::Heap];

    fn engine(backend: SchedulerBackend) -> Engine<Ev> {
        Engine::with_params(SimParams {
            scheduler: backend,
            ..SimParams::default()
        })
    }

    #[derive(Debug, PartialEq)]
    enum Ev {
        Tick(u32),
        Chain(u32),
    }

    struct Recorder {
        seen: Vec<(u64, Ev)>,
    }

    impl Handler<Ev> for Recorder {
        fn handle(&mut self, now: SimTime, event: Ev, sched: &mut Scheduler<Ev>) {
            if let Ev::Chain(n) = event {
                if n > 0 {
                    sched.after(SimDuration::from_nanos(10), Ev::Chain(n - 1));
                }
            }
            self.seen.push((now.as_nanos(), event));
        }
    }

    #[test]
    fn delivers_in_time_order_with_fifo_ties() {
        for backend in BOTH {
            let mut eng = engine(backend);
            eng.scheduler().at(SimTime::from_nanos(20), Ev::Tick(1));
            eng.scheduler().at(SimTime::from_nanos(10), Ev::Tick(2));
            eng.scheduler().at(SimTime::from_nanos(20), Ev::Tick(3));
            let mut rec = Recorder { seen: vec![] };
            let n = eng.run_to_completion(&mut rec);
            assert_eq!(n, 3);
            assert_eq!(
                rec.seen,
                vec![
                    (10, Ev::Tick(2)),
                    (20, Ev::Tick(1)),
                    (20, Ev::Tick(3)), // same instant: scheduling order preserved
                ],
                "backend {backend:?}"
            );
        }
    }

    #[test]
    fn handlers_can_chain_events() {
        for backend in BOTH {
            let mut eng = engine(backend);
            eng.scheduler().at(SimTime::ZERO, Ev::Chain(3));
            let mut rec = Recorder { seen: vec![] };
            eng.run_to_completion(&mut rec);
            assert_eq!(rec.seen.len(), 4);
            assert_eq!(eng.now().as_nanos(), 30);
        }
    }

    #[test]
    fn run_until_respects_horizon_and_advances_clock() {
        for backend in BOTH {
            let mut eng = engine(backend);
            eng.scheduler().at(SimTime::from_nanos(5), Ev::Tick(1));
            eng.scheduler().at(SimTime::from_nanos(50), Ev::Tick(2));
            let mut rec = Recorder { seen: vec![] };
            let n = eng.run_until(SimTime::from_nanos(10), &mut rec);
            assert_eq!(n, 1);
            assert_eq!(eng.now(), SimTime::from_nanos(10));
            let n = eng.run_until(SimTime::from_nanos(60), &mut rec);
            assert_eq!(n, 1);
            assert_eq!(rec.seen.len(), 2);
        }
    }

    #[test]
    fn events_scheduled_between_horizons_are_honored() {
        // A failed probe at one horizon must not corrupt delivery of events
        // scheduled just past it afterwards (wheel position must not run
        // ahead of the clock).
        for backend in BOTH {
            let mut eng = engine(backend);
            eng.scheduler()
                .at(SimTime::from_nanos(1_000_000), Ev::Tick(1));
            let mut rec = Recorder { seen: vec![] };
            assert_eq!(eng.run_until(SimTime::from_nanos(100), &mut rec), 0);
            eng.scheduler().at(SimTime::from_nanos(150), Ev::Tick(2));
            eng.run_to_completion(&mut rec);
            assert_eq!(rec.seen, vec![(150, Ev::Tick(2)), (1_000_000, Ev::Tick(1))]);
        }
    }

    #[test]
    fn far_future_events_cross_wheel_rollover() {
        for backend in BOTH {
            let mut eng = engine(backend);
            let span = 1u64 << 48; // wheel coverage; forces overflow + rollover
            eng.scheduler().at(SimTime::from_nanos(7), Ev::Tick(0));
            eng.scheduler()
                .at(SimTime::from_nanos(span + 3), Ev::Tick(1));
            eng.scheduler()
                .at(SimTime::from_nanos(3 * span), Ev::Tick(2));
            let mut rec = Recorder { seen: vec![] };
            assert_eq!(eng.run_to_completion(&mut rec), 3);
            assert_eq!(
                rec.seen,
                vec![
                    (7, Ev::Tick(0)),
                    (span + 3, Ev::Tick(1)),
                    (3 * span, Ev::Tick(2)),
                ]
            );
        }
    }

    #[test]
    fn after_saturates_near_simtime_max() {
        for backend in BOTH {
            let mut eng = engine(backend);
            eng.scheduler()
                .at(SimTime::from_nanos(u64::MAX - 5), Ev::Tick(0));
            struct Saturator {
                fired: u64,
            }
            impl Handler<Ev> for Saturator {
                fn handle(&mut self, now: SimTime, event: Ev, sched: &mut Scheduler<Ev>) {
                    self.fired += 1;
                    if let Ev::Tick(0) = event {
                        // now + 100 would overflow u64; must clamp to MAX.
                        sched.after(SimDuration::from_nanos(100), Ev::Tick(1));
                        assert_eq!(now.as_nanos(), u64::MAX - 5);
                    } else {
                        assert_eq!(now, SimTime::MAX);
                    }
                }
            }
            let mut h = Saturator { fired: 0 };
            eng.run_to_completion(&mut h);
            assert_eq!(h.fired, 2, "backend {backend:?}");
        }
    }

    #[test]
    fn stats_track_pushes_peak_and_cascades() {
        let mut eng = engine(SchedulerBackend::Wheel);
        for i in 0..100u64 {
            eng.scheduler()
                .at(SimTime::from_nanos(i * 1000), Ev::Tick(i as u32));
        }
        let mut rec = Recorder { seen: vec![] };
        eng.run_to_completion(&mut rec);
        let stats = eng.sched_stats();
        assert_eq!(stats.pushes, 100);
        assert_eq!(stats.peak_pending, 100);
        assert!(stats.cascaded > 0, "1000ns spacing spans level 1+");
        assert_eq!(stats.level_pushes.iter().sum::<u64>(), 100);
    }

    /// Toy model for the windowed loop: per-partition counters mutated by
    /// `Local` events that chain follow-ups ≥ one window ahead, plus
    /// `Global` events that read every partition. The windowed loop must
    /// reproduce the sequential delivery log exactly.
    #[derive(Debug, Clone, PartialEq)]
    enum WEv {
        Local { part: u32, hops: u32 },
        Global,
    }

    const WINDOW_NS: u64 = 100;

    struct WinH {
        per_part: Vec<u64>,
        log: Vec<(u64, String)>,
        /// Base chain delay in ns (≥ WINDOW_NS, per the windowed contract).
        chain_delay: u64,
        /// Expose the (exact) chain delay as per-event lookahead.
        lookahead_on: bool,
    }

    impl WinH {
        fn new(parts: usize) -> Self {
            Self::chained(parts, WINDOW_NS, false)
        }

        fn chained(parts: usize, chain_delay: u64, lookahead_on: bool) -> Self {
            assert!(chain_delay >= WINDOW_NS);
            WinH {
                per_part: vec![0; parts],
                log: Vec::new(),
                chain_delay,
                lookahead_on,
            }
        }

        fn delay_ns(&self, part: u32) -> u64 {
            self.chain_delay + u64::from(part % 7)
        }

        fn apply_local(&mut self, t: SimTime, part: u32, hops: u32) -> Option<(SimTime, WEv)> {
            self.per_part[part as usize] =
                self.per_part[part as usize].wrapping_mul(31) ^ t.as_nanos();
            self.log.push((t.as_nanos(), format!("local{part}:{hops}")));
            (hops > 0).then(|| {
                let next = t.as_nanos() + self.delay_ns(part);
                (
                    SimTime::from_nanos(next),
                    WEv::Local {
                        part,
                        hops: hops - 1,
                    },
                )
            })
        }
    }

    impl Handler<WEv> for WinH {
        fn handle(&mut self, now: SimTime, event: WEv, sched: &mut Scheduler<WEv>) {
            match event {
                WEv::Local { part, hops } => {
                    if let Some((t, e)) = self.apply_local(now, part, hops) {
                        sched.at(t, e);
                    }
                }
                WEv::Global => {
                    let digest = self.per_part.iter().fold(0u64, |a, &v| a ^ v);
                    self.log.push((now.as_nanos(), format!("global:{digest}")));
                }
            }
        }
    }

    impl WindowHandler<WEv> for WinH {
        fn classify(&self, event: &WEv) -> Option<u32> {
            match event {
                WEv::Local { part, .. } => Some(*part),
                WEv::Global => None,
            }
        }

        fn execute_run(
            &mut self,
            run: &[(SimTime, WEv)],
            _workers: usize,
            out: &mut Vec<(SimTime, WEv)>,
        ) {
            for &(t, ref e) in run {
                let WEv::Local { part, hops } = *e else {
                    panic!("global event in a run");
                };
                if let Some(follow) = self.apply_local(t, part, hops) {
                    out.push(follow);
                }
            }
        }

        fn lookahead(&self, event: &WEv) -> Option<SimDuration> {
            match event {
                WEv::Local { part, .. } if self.lookahead_on => {
                    Some(SimDuration::from_nanos(self.delay_ns(*part)))
                }
                _ => None,
            }
        }
    }

    fn seed_windowed(eng: &mut Engine<WEv>) {
        // Bursts of same-instant cross-partition events, straddling window
        // boundaries, plus interleaved globals.
        for i in 0..40u64 {
            let t = SimTime::from_nanos(i * 37);
            eng.scheduler().at(
                t,
                WEv::Local {
                    part: (i % 5) as u32,
                    hops: 3,
                },
            );
            if i % 8 == 0 {
                eng.scheduler().at(t, WEv::Global);
            }
        }
    }

    #[test]
    fn windowed_execution_matches_sequential() {
        for backend in BOTH {
            let mut seq_eng: Engine<WEv> = Engine::with_params(SimParams {
                scheduler: backend,
                ..SimParams::default()
            });
            seed_windowed(&mut seq_eng);
            let mut seq = WinH::new(5);
            let n_seq = seq_eng.run_to_completion(&mut seq);

            for workers in [1, 2, 4] {
                let mut win_eng: Engine<WEv> = Engine::with_params(SimParams {
                    scheduler: backend,
                    exec: ExecMode::Windowed { workers },
                });
                seed_windowed(&mut win_eng);
                let mut win = WinH::new(5);
                let n_win = win_eng.run_until_windowed(
                    SimTime::MAX,
                    SimDuration::from_nanos(WINDOW_NS),
                    workers,
                    &mut win,
                );
                assert_eq!(n_seq, n_win, "{backend:?} workers={workers}");
                assert_eq!(seq.log, win.log, "{backend:?} workers={workers}");
                assert_eq!(seq.per_part, win.per_part);
                // Follow-up scheduling order matched, so the engines pushed
                // identical event counts.
                assert_eq!(seq_eng.sched_stats().pushes, win_eng.sched_stats().pushes);
            }
        }
    }

    #[test]
    fn windowed_horizon_splits_like_sequential() {
        let mut a: Engine<WEv> = Engine::new();
        let mut b: Engine<WEv> = Engine::new();
        seed_windowed(&mut a);
        seed_windowed(&mut b);
        let mut ha = WinH::new(5);
        let mut hb = WinH::new(5);
        let w = SimDuration::from_nanos(WINDOW_NS);
        for horizon in [500, 1_000, 1_500] {
            a.run_until(SimTime::from_nanos(horizon), &mut ha);
            b.run_until_windowed(SimTime::from_nanos(horizon), w, 4, &mut hb);
            assert_eq!(a.now(), b.now());
        }
        a.run_to_completion(&mut ha);
        b.run_until_windowed(SimTime::MAX, w, 4, &mut hb);
        assert_eq!(ha.log, hb.log);
    }

    #[test]
    fn lookahead_grows_batches_without_reordering() {
        // Chains whose follow-ups land five windows out: exposing the chain
        // delay as per-event lookahead lets the engine keep runs open across
        // window boundaries. Delivery must stay byte-for-byte sequential;
        // only the batch count may change.
        const DELAY_NS: u64 = 5 * WINDOW_NS;
        let seed = |eng: &mut Engine<WEv>| {
            for i in 0..25u64 {
                let t = SimTime::from_nanos(i * 37);
                eng.scheduler().at(
                    t,
                    WEv::Local {
                        part: (i % 5) as u32,
                        hops: 4,
                    },
                );
                if i % 8 == 0 {
                    eng.scheduler().at(t, WEv::Global);
                }
            }
        };
        for backend in BOTH {
            let mut seq_eng: Engine<WEv> = Engine::with_params(SimParams {
                scheduler: backend,
                ..SimParams::default()
            });
            seed(&mut seq_eng);
            let mut seq = WinH::chained(5, DELAY_NS, false);
            seq_eng.run_to_completion(&mut seq);

            let mut stats = Vec::new();
            for lookahead_on in [false, true] {
                let mut win_eng: Engine<WEv> = Engine::with_params(SimParams {
                    scheduler: backend,
                    exec: ExecMode::Windowed { workers: 2 },
                });
                seed(&mut win_eng);
                let mut win = WinH::chained(5, DELAY_NS, lookahead_on);
                win_eng.run_until_windowed(
                    SimTime::MAX,
                    SimDuration::from_nanos(WINDOW_NS),
                    2,
                    &mut win,
                );
                assert_eq!(seq.log, win.log, "{backend:?} lookahead={lookahead_on}");
                assert_eq!(seq.per_part, win.per_part);
                stats.push(win_eng.window_stats());
            }
            let (base, look) = (stats[0], stats[1]);
            assert_eq!(base.run_events, look.run_events, "same events batched");
            assert!(
                look.runs < base.runs,
                "{backend:?}: lookahead must coalesce runs ({} vs {})",
                look.runs,
                base.runs
            );
        }
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut eng: Engine<Ev> = Engine::new();
        eng.scheduler().at(SimTime::from_nanos(10), Ev::Tick(1));
        struct Bad;
        impl Handler<Ev> for Bad {
            fn handle(&mut self, _: SimTime, _: Ev, sched: &mut Scheduler<Ev>) {
                sched.at(SimTime::ZERO, Ev::Tick(9));
            }
        }
        eng.run_to_completion(&mut Bad);
    }
}
