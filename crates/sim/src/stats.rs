//! Online statistics.
//!
//! * [`Welford`] — numerically stable running mean/variance.
//! * [`WindowMean`] — per-observation-interval mean that can be drained at
//!   interval boundaries (what the paper's agents report every 5000 ms).
//! * [`ConfidenceInterval`] — normal-approximation CI used to decide when the
//!   convergence experiments (§7.1) have been replicated enough ("accuracy of
//!   less than 1 iteration … with a statistical confidence of 99 percent").

/// Running mean / variance via Welford's algorithm.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 if fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (σ/μ), 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev() / self.mean.abs()
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
    }
}

/// A mean accumulated over one observation interval, then drained.
#[derive(Debug, Clone, Default)]
pub struct WindowMean {
    sum: f64,
    n: u64,
}

impl WindowMean {
    /// Empty window.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation to the current window.
    pub fn push(&mut self, x: f64) {
        self.sum += x;
        self.n += 1;
    }

    /// Observations in the current window.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the current window, `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.sum / self.n as f64)
        }
    }

    /// Returns the window mean (if any) and resets for the next interval.
    pub fn drain(&mut self) -> Option<(f64, u64)> {
        let out = self.mean().map(|m| (m, self.n));
        self.sum = 0.0;
        self.n = 0;
        out
    }
}

/// Two-sided confidence interval on a mean, normal approximation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate.
    pub mean: f64,
    /// Half-width of the interval.
    pub half_width: f64,
}

/// z-quantile for 99% two-sided confidence.
pub const Z_99: f64 = 2.5758;
/// z-quantile for 95% two-sided confidence.
pub const Z_95: f64 = 1.9600;

impl ConfidenceInterval {
    /// CI from a Welford accumulator at z-score `z` (see [`Z_99`]).
    /// With fewer than 2 observations the half-width is infinite.
    pub fn from_welford(w: &Welford, z: f64) -> Self {
        if w.count() < 2 {
            return ConfidenceInterval {
                mean: w.mean(),
                half_width: f64::INFINITY,
            };
        }
        let se = w.std_dev() / (w.count() as f64).sqrt();
        ConfidenceInterval {
            mean: w.mean(),
            half_width: z * se,
        }
    }

    /// True if the half-width is below `target`.
    pub fn is_tighter_than(&self, target: f64) -> bool {
        self.half_width < target
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of that classic dataset is 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let mut a = Welford::new();
        let mut b = Welford::new();
        let mut all = Welford::new();
        for i in 0..50 {
            let x = (i as f64).sin() * 10.0;
            if i % 2 == 0 {
                a.push(x)
            } else {
                b.push(x)
            }
            all.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn window_mean_drains() {
        let mut w = WindowMean::new();
        assert_eq!(w.drain(), None);
        w.push(1.0);
        w.push(3.0);
        assert_eq!(w.drain(), Some((2.0, 2)));
        assert_eq!(w.drain(), None);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let mut w = Welford::new();
        w.push(1.0);
        let ci = ConfidenceInterval::from_welford(&w, Z_99);
        assert!(ci.half_width.is_infinite());
        for i in 0..1000 {
            w.push(if i % 2 == 0 { 0.9 } else { 1.1 });
        }
        let ci = ConfidenceInterval::from_welford(&w, Z_99);
        assert!(ci.is_tighter_than(0.05), "half width {}", ci.half_width);
        assert!((ci.mean - 1.0).abs() < 0.01);
    }
}
