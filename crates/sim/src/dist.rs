//! The stochastic inputs of the ICDE'99 evaluation.
//!
//! * [`Exponential`] — interarrival times (§7.1: "inter-arrival time 1/λ
//!   assumed to be exponentially distributed").
//! * [`Zipf`] — page identities (§7.1: access frequency of page `p` is
//!   `C · 1/p^θ` with `C = 1/Σ_{q=1..M} q^{-θ}`). Implemented by inverse
//!   transform over a precomputed CDF (O(M) setup, O(log M) per sample),
//!   which is exact for any skew including θ = 0.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// Exponential distribution with the given mean, sampled by inverse
/// transform.
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    mean_ns: f64,
}

impl Exponential {
    /// Creates a distribution of durations with mean `mean`.
    pub fn from_mean(mean: SimDuration) -> Self {
        assert!(!mean.is_zero(), "exponential mean must be positive");
        Exponential {
            mean_ns: mean.as_nanos() as f64,
        }
    }

    /// Mean as a duration.
    pub fn mean(&self) -> SimDuration {
        SimDuration::from_nanos(self.mean_ns as u64)
    }

    /// Draws one interarrival time.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        // 1 - U avoids ln(0); U ∈ [0,1) so 1-U ∈ (0,1].
        let u = 1.0 - rng.uniform01();
        let x = -self.mean_ns * u.ln();
        SimDuration::from_nanos(x.max(0.0).round() as u64)
    }
}

/// Zipf distribution over `{0, 1, …, m-1}` with skew `theta ≥ 0`;
/// `theta = 0` degenerates to the uniform distribution.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    theta: f64,
}

impl Zipf {
    /// Builds the distribution over `m` items (ranks 1..=m internally; the
    /// sampler returns 0-based indices where index 0 is the hottest item).
    pub fn new(m: usize, theta: f64) -> Self {
        assert!(m > 0, "Zipf needs at least one item");
        assert!(theta >= 0.0, "Zipf skew must be non-negative");
        let mut cdf = Vec::with_capacity(m);
        let mut acc = 0.0;
        for rank in 1..=m {
            acc += 1.0 / (rank as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against FP slop at the top end.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Zipf { cdf, theta }
    }

    /// Number of items.
    pub fn items(&self) -> usize {
        self.cdf.len()
    }

    /// The skew parameter θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Probability mass of 0-based index `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }

    /// Draws one 0-based index.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.uniform01();
        // First index whose CDF value exceeds u.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN in CDF"))
        {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_mean_converges() {
        let mut rng = SimRng::seed_from_u64(11);
        let dist = Exponential::from_mean(SimDuration::from_millis(20));
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| dist.sample(&mut rng).as_millis_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 20.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for i in 0..4 {
            assert!((z.pmf(i) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_pmf_matches_formula() {
        let m = 5;
        let theta = 0.8;
        let z = Zipf::new(m, theta);
        let c: f64 = (1..=m).map(|q| 1.0 / (q as f64).powf(theta)).sum();
        for i in 0..m {
            let expect = (1.0 / ((i + 1) as f64).powf(theta)) / c;
            assert!((z.pmf(i) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_samples_follow_pmf() {
        let m = 100;
        let z = Zipf::new(m, 1.0);
        let mut rng = SimRng::seed_from_u64(5);
        let n = 200_000;
        let mut counts = vec![0u32; m];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        // Hottest item should dominate and match its mass within noise.
        let p0 = counts[0] as f64 / n as f64;
        assert!((p0 - z.pmf(0)).abs() < 0.01, "p0 {p0} vs {}", z.pmf(0));
        assert!(counts[0] > counts[m / 2]);
        // CDF coverage: every index reachable.
        assert!(counts.iter().filter(|&&c| c > 0).count() > m / 2);
    }

    #[test]
    fn zipf_sample_in_range_at_extremes() {
        let z = Zipf::new(1, 2.0);
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }
}
