//! Integer-nanosecond simulated time.
//!
//! All simulated clocks, latencies and service times are expressed as whole
//! nanoseconds. Integer time keeps the event queue total order independent of
//! floating-point rounding, which is what makes simulation runs with the same
//! seed bit-reproducible.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute point on the simulated clock, in nanoseconds since simulation
/// start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time as fractional milliseconds (for statistics and reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Addition that clamps at [`SimTime::MAX`] instead of overflowing;
    /// used where "as late as representable" is the right meaning (e.g.
    /// relative scheduling near the end of time).
    pub const fn saturating_add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional milliseconds, rounding to the
    /// nearest nanosecond. Negative inputs clamp to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        if ms <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((ms * 1.0e6).round() as u64)
        }
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// Duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1.0e9
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("negative SimDuration"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("negative SimDuration"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_nanos(5_000);
        let d = SimDuration::from_micros(3);
        assert_eq!((t + d).as_nanos(), 8_000);
        assert_eq!((t + d) - t, SimDuration::from_nanos(3_000));
        assert_eq!((t + d).since(t).as_nanos(), 3_000);
        assert_eq!(t.since(t + d), SimDuration::ZERO);
    }

    #[test]
    fn saturating_add_clamps_at_max() {
        let near_end = SimTime::from_nanos(u64::MAX - 10);
        let d = SimDuration::from_nanos(100);
        assert_eq!(near_end.saturating_add(d), SimTime::MAX);
        assert_eq!(
            SimTime::from_nanos(5).saturating_add(d),
            SimTime::from_nanos(105)
        );
    }

    #[test]
    fn millis_conversion() {
        let d = SimDuration::from_millis_f64(12.5);
        assert_eq!(d.as_nanos(), 12_500_000);
        assert!((d.as_millis_f64() - 12.5).abs() < 1e-12);
        assert_eq!(SimDuration::from_millis_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimDuration::from_millis(1) > SimDuration::from_micros(999));
    }

    #[test]
    #[should_panic(expected = "negative SimDuration")]
    fn negative_duration_panics() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    fn display_formats_millis() {
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
    }
}
