//! Deterministic random number streams.
//!
//! Every stochastic input of an experiment (arrival process, page choice,
//! goal schedule) draws from its own [`SimRng`] derived from the experiment
//! seed, so adding a new consumer never perturbs existing streams.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded random stream. Thin wrapper over `SmallRng` exposing exactly the
/// draws the simulator needs.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates a stream from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent sub-stream. `salt` distinguishes consumers
    /// (e.g. one stream per node per class).
    pub fn derive(&self, salt: u64) -> SimRng {
        // SplitMix64-style mixing of the parent's next output with the salt.
        let mut base = self.clone();
        let x = base.inner.random::<u64>() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from_u64(x)
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform01(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi > lo);
        lo + (hi - lo) * self.uniform01()
    }

    /// Uniform integer in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        self.inner.random_range(0..n)
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.random::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derive_is_deterministic_and_distinct() {
        let parent = SimRng::seed_from_u64(42);
        let mut c1 = parent.derive(1);
        let mut c1b = parent.derive(1);
        let mut c2 = parent.derive(2);
        assert_eq!(c1.next_u64(), c1b.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn uniform_bounds() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.uniform(2.0, 5.0);
            assert!((2.0..5.0).contains(&x));
            let i = r.index(10);
            assert!(i < 10);
        }
    }
}
