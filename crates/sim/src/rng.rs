//! Deterministic random number streams.
//!
//! Every stochastic input of an experiment (arrival process, page choice,
//! goal schedule) draws from its own [`SimRng`] derived from the experiment
//! seed, so adding a new consumer never perturbs existing streams.
//!
//! The generator is an in-house xoshiro256++ (Blackman & Vigna) seeded
//! through SplitMix64, so the workspace carries no external RNG dependency
//! and the streams are bit-stable across toolchains and platforms — a
//! requirement for the byte-identical trace determinism the observability
//! layer is tested against.

/// SplitMix64 step: used for seeding and for salt mixing in [`SimRng::derive`].
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded random stream exposing exactly the draws the simulator needs.
///
/// Internally xoshiro256++: 256 bits of state, period 2^256 − 1; the `++`
/// output scrambling avoids the low-linearity weakness of the `+` variant's
/// low bits.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a stream from a 64-bit seed (expanded via SplitMix64, per the
    /// xoshiro authors' recommendation).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero is the one invalid xoshiro state; SplitMix64 cannot
        // produce four zeros from any seed, but keep the guard explicit.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SimRng { s }
    }

    /// Derives an independent sub-stream. `salt` distinguishes consumers
    /// (e.g. one stream per node per class). Does not advance `self`.
    pub fn derive(&self, salt: u64) -> SimRng {
        let mut probe = self.clone();
        let x = probe.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from_u64(x)
    }

    /// Uniform `u64` (the raw xoshiro256++ output).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn uniform01(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi > lo);
        lo + (hi - lo) * self.uniform01()
    }

    /// Uniform integer in `[0, n)` (Lemire's unbiased multiply-shift
    /// rejection method).
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        let n = n as u64;
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                low = m as u64;
            }
        }
        (m >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derive_is_deterministic_and_distinct() {
        let parent = SimRng::seed_from_u64(42);
        let mut c1 = parent.derive(1);
        let mut c1b = parent.derive(1);
        let mut c2 = parent.derive(2);
        assert_eq!(c1.next_u64(), c1b.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn uniform_bounds() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.uniform(2.0, 5.0);
            assert!((2.0..5.0).contains(&x));
            let i = r.index(10);
            assert!(i < 10);
            let u = r.uniform01();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn stream_is_pinned() {
        // Pins the stream so a generator refactor cannot silently change
        // every seeded experiment in the repo.
        let mut r = SimRng::seed_from_u64(0);
        let first: [u64; 2] = [r.next_u64(), r.next_u64()];
        let mut r2 = SimRng::seed_from_u64(0);
        assert_eq!(first, [r2.next_u64(), r2.next_u64()]);
        let mut r3 = SimRng::seed_from_u64(1);
        assert_ne!(first[0], r3.next_u64());
    }

    #[test]
    fn index_is_roughly_uniform() {
        let mut r = SimRng::seed_from_u64(9);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.index(8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }
}
