//! Time-series recording for experiment output.
//!
//! The base experiment (paper Fig. 2) plots three series against elapsed
//! observation intervals: observed response time, response time goal, and
//! total dedicated cache. [`Series`] is the shared recorder for those plots
//! and for CSV export from the bench harnesses.

use std::fmt::Write as _;

use crate::time::SimTime;

/// A named sequence of `(time, value)` samples.
#[derive(Debug, Clone)]
pub struct Series {
    name: String,
    samples: Vec<(SimTime, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            samples: Vec::new(),
        }
    }

    /// The series name (used as CSV column header).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends one sample. Samples must be pushed in non-decreasing time
    /// order.
    pub fn push(&mut self, t: SimTime, v: f64) {
        if let Some(&(last, _)) = self.samples.last() {
            debug_assert!(t >= last, "series samples out of order");
        }
        self.samples.push((t, v));
    }

    /// All samples.
    pub fn samples(&self) -> &[(SimTime, f64)] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Last recorded value, if any.
    pub fn last(&self) -> Option<f64> {
        self.samples.last().map(|&(_, v)| v)
    }

    /// Mean of all values (None if empty).
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().map(|&(_, v)| v).sum::<f64>() / self.samples.len() as f64)
        }
    }
}

/// Renders aligned series as CSV: one row per sample index, first column the
/// sample time in milliseconds taken from the first series. All series must
/// have equal length.
pub fn to_csv(series: &[&Series]) -> String {
    let mut out = String::new();
    out.push_str("time_ms");
    for s in series {
        let _ = write!(out, ",{}", s.name());
    }
    out.push('\n');
    let n = series.first().map_or(0, |s| s.len());
    for s in series {
        assert_eq!(s.len(), n, "series '{}' length mismatch", s.name());
    }
    for i in 0..n {
        let t = series[0].samples()[i].0;
        let _ = write!(out, "{:.3}", t.as_millis_f64());
        for s in series {
            let _ = write!(out, ",{}", s.samples()[i].1);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes() {
        let mut s = Series::new("rt");
        assert!(s.is_empty());
        s.push(SimTime::from_nanos(0), 1.0);
        s.push(SimTime::from_nanos(10), 3.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.last(), Some(3.0));
        assert_eq!(s.mean(), Some(2.0));
    }

    #[test]
    fn csv_layout() {
        let mut a = Series::new("a");
        let mut b = Series::new("b");
        a.push(SimTime::from_nanos(1_000_000), 1.0);
        b.push(SimTime::from_nanos(1_000_000), 2.0);
        let csv = to_csv(&[&a, &b]);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("time_ms,a,b"));
        assert_eq!(lines.next(), Some("1.000,1,2"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn csv_rejects_ragged_series() {
        let mut a = Series::new("a");
        a.push(SimTime::ZERO, 1.0);
        let b = Series::new("b");
        let _ = to_csv(&[&a, &b]);
    }
}
