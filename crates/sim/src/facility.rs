//! FCFS single-server facilities.
//!
//! A [`Facility`] models one serially-used resource — a disk arm, a node CPU,
//! or the shared LAN medium of the ICDE'99 setup. Callers *reserve* a service
//! span and get back the completion instant; the facility keeps track of when
//! it next becomes free and of cumulative busy time, from which utilization
//! and queueing delay statistics fall out.
//!
//! This "reservation" style fits an event-driven simulator without callbacks:
//! the handler computes the completion time up front and schedules the
//! completion event itself.

use crate::time::{SimDuration, SimTime};
use dmm_obs::Histogram;

/// A first-come-first-served, non-preemptive single resource.
#[derive(Debug, Clone)]
pub struct Facility {
    name: &'static str,
    free_at: SimTime,
    busy: SimDuration,
    jobs: u64,
    total_wait: SimDuration,
    wait_hist: Histogram,
}

impl Facility {
    /// Creates an idle facility.
    pub fn new(name: &'static str) -> Self {
        Facility {
            name,
            free_at: SimTime::ZERO,
            busy: SimDuration::ZERO,
            jobs: 0,
            total_wait: SimDuration::ZERO,
            // Nanosecond queue waits: 1 µs first edge, doubling through ~1 s.
            wait_hist: Histogram::exponential(1_000, 21),
        }
    }

    /// The facility's diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Reserves the facility at `now` for `service` time, queueing FCFS
    /// behind any in-flight reservation. Returns the completion instant.
    pub fn reserve(&mut self, now: SimTime, service: SimDuration) -> SimTime {
        self.reserve_split(now, service).0
    }

    /// Like [`reserve`](Self::reserve), but also returns the FCFS queue
    /// wait, so callers attributing latency can split queueing from
    /// service without re-deriving the facility's internal arithmetic.
    pub fn reserve_split(&mut self, now: SimTime, service: SimDuration) -> (SimTime, SimDuration) {
        let start = self.free_at.max(now);
        let done = start + service;
        let wait = start.since(now);
        self.total_wait += wait;
        self.wait_hist.record(wait.as_nanos());
        self.free_at = done;
        self.busy += service;
        self.jobs += 1;
        (done, wait)
    }

    /// Instant at which the facility next becomes free.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Number of jobs served (including queued, in-flight ones).
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Cumulative service (busy) time.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Cumulative time jobs spent waiting before service began.
    pub fn total_wait(&self) -> SimDuration {
        self.total_wait
    }

    /// Mean wait per job in milliseconds (0 if no jobs).
    pub fn mean_wait_ms(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.total_wait.as_millis_f64() / self.jobs as f64
        }
    }

    /// Utilization over `[0, now]`: fraction of elapsed time spent busy.
    /// Busy time already committed past `now` counts as if it had occurred,
    /// so the value can transiently exceed 1 only when the queue is backed up
    /// beyond `now`; callers measuring at quiesce points see a true fraction.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let elapsed = now.as_nanos();
        if elapsed == 0 {
            0.0
        } else {
            self.busy.as_nanos() as f64 / elapsed as f64
        }
    }

    /// Histogram of per-job queue waits (nanoseconds) since the last
    /// [`reset_stats`](Self::reset_stats).
    pub fn wait_histogram(&self) -> &Histogram {
        &self.wait_hist
    }

    /// Resets counters (not the `free_at` horizon) — used at the end of a
    /// warm-up period so statistics cover only the measured window.
    pub fn reset_stats(&mut self) {
        self.busy = SimDuration::ZERO;
        self.jobs = 0;
        self.total_wait = SimDuration::ZERO;
        self.wait_hist.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }
    fn d(ns: u64) -> SimDuration {
        SimDuration::from_nanos(ns)
    }

    #[test]
    fn idle_facility_serves_immediately() {
        let mut f = Facility::new("disk");
        let done = f.reserve(t(100), d(50));
        assert_eq!(done, t(150));
        assert_eq!(f.total_wait(), SimDuration::ZERO);
    }

    #[test]
    fn queued_jobs_wait_fcfs() {
        let mut f = Facility::new("disk");
        assert_eq!(f.reserve(t(0), d(100)), t(100));
        // Arrives at 10, must wait until 100.
        assert_eq!(f.reserve(t(10), d(30)), t(130));
        assert_eq!(f.total_wait(), d(90));
        assert_eq!(f.jobs(), 2);
        assert_eq!(f.busy_time(), d(130));
        assert!((f.mean_wait_ms() - d(90).as_millis_f64() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn gap_between_jobs_leaves_idle_time() {
        let mut f = Facility::new("net");
        f.reserve(t(0), d(10));
        f.reserve(t(100), d(10));
        assert_eq!(f.busy_time(), d(20));
        assert!((f.utilization(t(200)) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn wait_histogram_tracks_waits() {
        let mut f = Facility::new("disk");
        f.reserve(t(0), d(100));
        f.reserve(t(10), d(30)); // waits 90 ns
        assert_eq!(f.wait_histogram().count(), 2);
        assert_eq!(f.wait_histogram().total(), 90);
        f.reset_stats();
        assert_eq!(f.wait_histogram().count(), 0);
    }

    #[test]
    fn reset_stats_keeps_horizon() {
        let mut f = Facility::new("cpu");
        f.reserve(t(0), d(100));
        f.reset_stats();
        assert_eq!(f.jobs(), 0);
        // Still busy until 100: a new job queues behind it.
        assert_eq!(f.reserve(t(0), d(10)), t(110));
    }
}
