//! Pooled slot arena for per-entity scratch state.
//!
//! A [`SlotArena`] is a slab of `T` slots with an intrusive free list:
//! `alloc` pops a recycled slot (or grows the slab once), `release` pushes
//! it back. After the initial ramp-up the arena reaches a high-water mark
//! equal to the peak number of live entities and never allocates again, so
//! per-operation span accumulation stays allocation-free on the hot path.
//!
//! Slots are addressed by dense `u32` indices, cheap enough to embed in
//! per-operation state; [`SlotArena::NONE`] is the reserved "no slot"
//! sentinel for entities that opted out.

/// A slab of reusable `T` slots addressed by dense `u32` ids.
#[derive(Debug, Clone, Default)]
pub struct SlotArena<T> {
    slots: Vec<T>,
    free: Vec<u32>,
    live: u32,
    high_water: u32,
}

impl<T: Default> SlotArena<T> {
    /// Sentinel id meaning "no slot allocated".
    pub const NONE: u32 = u32::MAX;

    /// An empty arena.
    pub fn new() -> Self {
        SlotArena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            high_water: 0,
        }
    }

    /// Claims a slot reset to `T::default()` and returns its id.
    pub fn alloc(&mut self) -> u32 {
        self.live += 1;
        self.high_water = self.high_water.max(self.live);
        if let Some(id) = self.free.pop() {
            self.slots[id as usize] = T::default();
            return id;
        }
        let id = u32::try_from(self.slots.len()).expect("slot arena overflow");
        assert!(id != Self::NONE, "slot arena exhausted");
        self.slots.push(T::default());
        id
    }

    /// Shared access to a live slot.
    pub fn get(&self, id: u32) -> &T {
        &self.slots[id as usize]
    }

    /// Exclusive access to a live slot.
    pub fn get_mut(&mut self, id: u32) -> &mut T {
        &mut self.slots[id as usize]
    }

    /// Returns the slot to the free list; its contents are dropped on the
    /// next [`alloc`](Self::alloc) that recycles it.
    pub fn release(&mut self, id: u32) {
        debug_assert!(
            (id as usize) < self.slots.len(),
            "release of unallocated slot"
        );
        self.live -= 1;
        self.free.push(id);
    }

    /// Copies the slot's value out and releases the slot in one step.
    pub fn take(&mut self, id: u32) -> T
    where
        T: Copy,
    {
        let value = self.slots[id as usize];
        self.release(id);
        value
    }

    /// Number of currently claimed slots.
    pub fn live(&self) -> u32 {
        self.live
    }

    /// Peak number of simultaneously claimed slots — the arena's resident
    /// footprint after ramp-up.
    pub fn high_water(&self) -> u32 {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_release_recycles_slots() {
        let mut arena: SlotArena<[u64; 4]> = SlotArena::new();
        let a = arena.alloc();
        let b = arena.alloc();
        assert_ne!(a, b);
        arena.get_mut(a)[2] = 7;
        assert_eq!(arena.get(a)[2], 7);
        assert_eq!(arena.take(a), [0, 0, 7, 0]);
        // The freed slot is reused and comes back zeroed.
        let c = arena.alloc();
        assert_eq!(c, a);
        assert_eq!(*arena.get(c), [0; 4]);
        assert_eq!(arena.live(), 2);
        arena.release(b);
        arena.release(c);
        assert_eq!(arena.live(), 0);
        assert_eq!(arena.high_water(), 2);
    }

    #[test]
    fn steady_state_does_not_grow() {
        let mut arena: SlotArena<u64> = SlotArena::new();
        let warm: Vec<u32> = (0..8).map(|_| arena.alloc()).collect();
        for id in warm {
            arena.release(id);
        }
        for _ in 0..100 {
            let id = arena.alloc();
            *arena.get_mut(id) = 1;
            arena.release(id);
        }
        assert_eq!(arena.high_water(), 8);
    }
}
