//! # dmm-sim — discrete-event simulation kernel
//!
//! A small, deterministic discrete-event simulation (DES) substrate used by
//! the distributed-memory-management reproduction. It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-nanosecond simulated time, so the
//!   event queue is free of floating-point drift and runs are bit-reproducible.
//! * [`Engine`] — a generic event loop: the application defines an event
//!   payload type and a [`Handler`] that consumes events and schedules new
//!   ones through the [`Scheduler`].
//! * [`Facility`] — a first-come-first-served single resource (CPU, disk arm,
//!   shared network medium) that serializes usage and tracks utilization.
//! * [`dist`] — the stochastic inputs the ICDE'99 evaluation needs:
//!   exponential interarrival times and Zipf-distributed page identities.
//! * [`stats`] — online statistics (Welford mean/variance, windowed means,
//!   normal-approximation confidence intervals) and time-series recording.
//!
//! The kernel is logically sequential: the simulated systems in the paper
//! (buffer managers, coordinators, disks) share state freely inside one
//! `Handler` implementation, which keeps the model faithful and simple. For
//! scale-out runs, [`engine::ExecMode::Windowed`] executes runs of
//! independent per-partition events inside a conservative time window on a
//! worker pool ([`engine::WindowHandler`]) while delivering — provably and
//! test-enforced — byte-identical traces to sequential execution.

pub mod arena;
pub mod dist;
pub mod engine;
pub mod facility;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;
pub mod wheel;

pub use arena::SlotArena;
pub use engine::{
    Engine, ExecMode, Handler, SchedStats, Scheduler, SchedulerBackend, SimParams, WindowHandler,
    WindowStats,
};
pub use facility::Facility;
pub use rng::SimRng;
pub use series::Series;
pub use time::{SimDuration, SimTime};
