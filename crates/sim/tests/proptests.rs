//! Property tests for the simulation kernel: total event ordering, facility
//! accounting, and distribution sanity.

use dmm_sim::{Engine, Facility, Handler, Scheduler, SimDuration, SimTime};
use proptest::prelude::*;

struct Recorder {
    delivered: Vec<(u64, u32)>,
}

impl Handler<u32> for Recorder {
    fn handle(&mut self, now: SimTime, event: u32, _sched: &mut Scheduler<u32>) {
        self.delivered.push((now.as_nanos(), event));
    }
}

proptest! {
    /// Events always come out in non-decreasing time order with FIFO ties,
    /// regardless of insertion order.
    #[test]
    fn engine_orders_any_schedule(times in proptest::collection::vec(0u64..1_000, 1..100)) {
        let mut eng = Engine::new();
        for (i, &t) in times.iter().enumerate() {
            eng.scheduler().at(SimTime::from_nanos(t), i as u32);
        }
        let mut rec = Recorder { delivered: vec![] };
        let n = eng.run_to_completion(&mut rec);
        prop_assert_eq!(n as usize, times.len());
        for w in rec.delivered.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                // Same instant: scheduling (insertion) order is preserved.
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// Facility: completions never overlap, never precede arrivals, and
    /// total busy time equals the sum of service times.
    #[test]
    fn facility_serializes_any_arrivals(
        jobs in proptest::collection::vec((0u64..10_000, 1u64..500), 1..60),
    ) {
        let mut f = Facility::new("x");
        let mut sorted = jobs.clone();
        sorted.sort();
        let mut prev_done = SimTime::ZERO;
        let mut total_service = 0u64;
        for &(arrive, service) in &sorted {
            let done = f.reserve(SimTime::from_nanos(arrive), SimDuration::from_nanos(service));
            prop_assert!(done.as_nanos() >= arrive + service, "service cannot finish early");
            prop_assert!(done >= prev_done, "FCFS completions are ordered");
            prop_assert!(done.as_nanos() >= prev_done.as_nanos().max(arrive) + service);
            prev_done = done;
            total_service += service;
        }
        prop_assert_eq!(f.busy_time().as_nanos(), total_service);
        prop_assert_eq!(f.jobs() as usize, jobs.len());
    }

    /// Zipf sanity across parameters: samples stay in range and the head
    /// half is at least as likely as the tail half.
    #[test]
    fn zipf_head_dominates(m in 2usize..500, theta in 0.0..1.5f64, seed in 0u64..1000) {
        use dmm_sim::dist::Zipf;
        use dmm_sim::SimRng;
        let z = Zipf::new(m, theta);
        let mut rng = SimRng::seed_from_u64(seed);
        let mut head = 0u32;
        let mut tail = 0u32;
        for _ in 0..2000 {
            let i = z.sample(&mut rng);
            prop_assert!(i < m);
            if i < m.div_ceil(2) { head += 1 } else { tail += 1 }
        }
        prop_assert!(head + 200 >= tail,
            "first half cannot be much rarer: {head} vs {tail}");
    }
}
