//! Randomized-input tests for the simulation kernel: total event ordering,
//! facility accounting, and distribution sanity. Inputs are generated from
//! seeded [`SimRng`] streams, so every case is deterministic and
//! reproducible by seed — no external property-testing dependency.

use dmm_sim::{Engine, Facility, Handler, Scheduler, SimDuration, SimRng, SimTime};

struct Recorder {
    delivered: Vec<(u64, u32)>,
}

impl Handler<u32> for Recorder {
    fn handle(&mut self, now: SimTime, event: u32, _sched: &mut Scheduler<u32>) {
        self.delivered.push((now.as_nanos(), event));
    }
}

/// Events always come out in non-decreasing time order with FIFO ties,
/// regardless of insertion order.
#[test]
fn engine_orders_any_schedule() {
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(seed);
        let n = 1 + rng.index(99);
        let times: Vec<u64> = (0..n).map(|_| rng.index(1_000) as u64).collect();
        let mut eng = Engine::new();
        for (i, &t) in times.iter().enumerate() {
            eng.scheduler().at(SimTime::from_nanos(t), i as u32);
        }
        let mut rec = Recorder { delivered: vec![] };
        let delivered = eng.run_to_completion(&mut rec);
        assert_eq!(delivered as usize, times.len());
        for w in rec.delivered.windows(2) {
            assert!(w[0].0 <= w[1].0, "time order violated (seed {seed})");
            if w[0].0 == w[1].0 {
                // Same instant: scheduling (insertion) order is preserved.
                assert!(w[0].1 < w[1].1, "FIFO tie-break violated (seed {seed})");
            }
        }
    }
}

/// Facility: completions never overlap, never precede arrivals, and total
/// busy time equals the sum of service times.
#[test]
fn facility_serializes_any_arrivals() {
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(1000 + seed);
        let n = 1 + rng.index(59);
        let mut jobs: Vec<(u64, u64)> = (0..n)
            .map(|_| (rng.index(10_000) as u64, 1 + rng.index(499) as u64))
            .collect();
        jobs.sort_unstable();
        let mut f = Facility::new("x");
        let mut prev_done = SimTime::ZERO;
        let mut total_service = 0u64;
        for &(arrive, service) in &jobs {
            let done = f.reserve(
                SimTime::from_nanos(arrive),
                SimDuration::from_nanos(service),
            );
            assert!(
                done.as_nanos() >= arrive + service,
                "service cannot finish early (seed {seed})"
            );
            assert!(
                done >= prev_done,
                "FCFS completions are ordered (seed {seed})"
            );
            assert!(done.as_nanos() >= prev_done.as_nanos().max(arrive) + service);
            prev_done = done;
            total_service += service;
        }
        assert_eq!(f.busy_time().as_nanos(), total_service);
        assert_eq!(f.jobs() as usize, jobs.len());
    }
}

/// Zipf sanity across parameters: samples stay in range and the head half is
/// at least as likely as the tail half.
#[test]
fn zipf_head_dominates() {
    use dmm_sim::dist::Zipf;
    let mut param_rng = SimRng::seed_from_u64(77);
    for case in 0..48u64 {
        let m = 2 + param_rng.index(498);
        let theta = param_rng.uniform(0.0, 1.5);
        let z = Zipf::new(m, theta);
        let mut rng = SimRng::seed_from_u64(5000 + case);
        let mut head = 0u32;
        let mut tail = 0u32;
        for _ in 0..2000 {
            let i = z.sample(&mut rng);
            assert!(i < m, "sample out of range (case {case})");
            if i < m.div_ceil(2) {
                head += 1;
            } else {
                tail += 1;
            }
        }
        assert!(
            head + 200 >= tail,
            "first half cannot be much rarer: {head} vs {tail} (m={m} theta={theta})"
        );
    }
}
