//! Differential property tests: the timing-wheel backend must deliver the
//! exact same (time, event) sequence as the binary-heap reference for
//! arbitrary schedules — including clustered near-future delays, far-future
//! outliers that land in the overflow chain, same-instant bursts, horizon
//! boundary probes, and delays sized to straddle wheel level boundaries and
//! force cascades.

use dmm_sim::{
    Engine, Handler, Scheduler, SchedulerBackend, SimDuration, SimParams, SimRng, SimTime,
};

/// A chaos workload: each delivered event logs itself and (driven by a
/// per-run deterministic RNG) schedules up to two follow-ups with delays
/// drawn from magnitude classes that cover every wheel level plus the
/// overflow, with frequent zero delays to create same-instant bursts.
struct Chaos {
    rng: SimRng,
    log: Vec<(u64, u32)>,
    next_id: u32,
    spawned: u32,
    budget: u32,
}

impl Chaos {
    fn new(seed: u64, budget: u32) -> Self {
        Chaos {
            rng: SimRng::seed_from_u64(seed),
            log: Vec::new(),
            next_id: 1_000,
            spawned: 0,
            budget,
        }
    }

    fn delay(&mut self) -> SimDuration {
        // Magnitude classes: 0 = same instant, then per-wheel-level ranges
        // (6 bits each), then far-future outliers past the 48-bit span.
        let class = self.rng.index(11);
        let ns = match class {
            0 => 0,
            1..=8 => {
                let bits = 6 * class as u32;
                let lo = 1u64 << (bits - 6);
                lo + self.rng.next_u64() % (1u64 << bits).saturating_sub(lo).max(1)
            }
            9 => 1u64 << 48, // exactly the wheel span: first overflow tick
            _ => (1u64 << 48) + self.rng.next_u64() % (1u64 << 52),
        };
        SimDuration::from_nanos(ns)
    }
}

impl Handler<u32> for Chaos {
    fn handle(&mut self, now: SimTime, event: u32, sched: &mut Scheduler<u32>) {
        self.log.push((now.as_nanos(), event));
        let follow_ups = self.rng.index(3) as u32;
        for _ in 0..follow_ups {
            if self.spawned >= self.budget {
                return;
            }
            self.spawned += 1;
            let id = self.next_id;
            self.next_id += 1;
            let d = self.delay();
            sched.after(d, id);
        }
    }
}

fn seed_initial(eng: &mut Engine<u32>, seed: u64) {
    let mut rng = SimRng::seed_from_u64(seed ^ 0xA5A5_A5A5);
    for id in 0..32u32 {
        let t = rng.next_u64() % 10_000;
        eng.scheduler().at(SimTime::from_nanos(t), id);
    }
    // Same-instant burst at a fixed tick and near a level boundary.
    for id in 100..108u32 {
        eng.scheduler().at(SimTime::from_nanos(4_096), id);
    }
}

fn run_one(backend: SchedulerBackend, seed: u64) -> (Vec<(u64, u32)>, u64, u64) {
    let mut eng = Engine::with_params(SimParams {
        scheduler: backend,
        ..SimParams::default()
    });
    seed_initial(&mut eng, seed);
    let mut h = Chaos::new(seed, 4_000);
    eng.run_to_completion(&mut h);
    (h.log, eng.delivered(), eng.now().as_nanos())
}

#[test]
fn wheel_and_heap_deliver_identical_sequences() {
    for seed in 0..48u64 {
        let wheel = run_one(SchedulerBackend::Wheel, seed);
        let heap = run_one(SchedulerBackend::Heap, seed);
        assert_eq!(wheel.1, heap.1, "delivered count diverged (seed {seed})");
        assert_eq!(wheel.2, heap.2, "final clock diverged (seed {seed})");
        assert_eq!(wheel.0, heap.0, "delivery sequence diverged (seed {seed})");
        // Sanity: the schedule actually exercised interesting territory.
        assert!(wheel.0.len() > 100, "degenerate schedule (seed {seed})");
    }
}

#[test]
fn wheel_and_heap_agree_across_random_horizon_steps() {
    // Stepping run_until at arbitrary horizons exercises the bounded-probe
    // path (failed peeks must not advance the wheel past the horizon) and
    // the drained-queue clock advance.
    for seed in 0..24u64 {
        let mut logs = Vec::new();
        for backend in [SchedulerBackend::Wheel, SchedulerBackend::Heap] {
            let mut eng = Engine::with_params(SimParams {
                scheduler: backend,
                ..SimParams::default()
            });
            seed_initial(&mut eng, seed);
            let mut h = Chaos::new(seed, 2_000);
            let mut horizon_rng = SimRng::seed_from_u64(seed ^ 0x5151);
            let mut horizon = 0u64;
            let mut checkpoints = Vec::new();
            for _ in 0..64 {
                // Mixed step sizes: some smaller than typical event gaps
                // (empty intervals), some spanning cascade boundaries.
                let step = 1 + horizon_rng.next_u64() % (1u64 << (6 + horizon_rng.index(10) * 3));
                horizon = horizon.saturating_add(step);
                let n = eng.run_until(SimTime::from_nanos(horizon), &mut h);
                checkpoints.push((n, eng.now().as_nanos(), eng.scheduler().pending()));
            }
            eng.run_to_completion(&mut h);
            checkpoints.push((eng.delivered(), eng.now().as_nanos(), 0));
            logs.push((h.log, checkpoints));
        }
        assert_eq!(logs[0].1, logs[1].1, "checkpoints diverged (seed {seed})");
        assert_eq!(logs[0].0, logs[1].0, "delivery diverged (seed {seed})");
    }
}

#[test]
fn backends_agree_on_saturated_far_future() {
    // Events scheduled with saturating `after` near SimTime::MAX must come
    // out last on both backends, in scheduling order.
    for backend in [SchedulerBackend::Wheel, SchedulerBackend::Heap] {
        let mut eng = Engine::with_params(SimParams {
            scheduler: backend,
            ..SimParams::default()
        });
        eng.scheduler().at(SimTime::from_nanos(u64::MAX - 1), 0);
        eng.scheduler().at(SimTime::MAX, 1);
        eng.scheduler().at(SimTime::from_nanos(3), 2);
        eng.scheduler().at(SimTime::MAX, 3);
        struct Log(Vec<(u64, u32)>);
        impl Handler<u32> for Log {
            fn handle(&mut self, now: SimTime, ev: u32, _: &mut Scheduler<u32>) {
                self.0.push((now.as_nanos(), ev));
            }
        }
        let mut h = Log(Vec::new());
        eng.run_to_completion(&mut h);
        assert_eq!(
            h.0,
            vec![(3, 2), (u64::MAX - 1, 0), (u64::MAX, 1), (u64::MAX, 3),],
            "backend {backend:?}"
        );
    }
}
