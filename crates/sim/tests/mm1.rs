//! M/M/1 analytic validation of the FCFS facility.
//!
//! With Poisson arrivals at rate λ and exponential service at rate μ the
//! mean queueing delay (time in queue, excluding service) is
//! `Wq = ρ/(μ − λ)` with `ρ = λ/μ`. We drive one [`Facility`] with both
//! streams, read the observed mean wait off the queue-wait histogram the
//! observability layer added, and require the analytic value to fall inside
//! a 3-sigma confidence band built from independent replications — at a
//! moderate and a high utilization.

use dmm_sim::{Facility, SimDuration, SimRng, SimTime};

/// One exponential variate with the given rate (events per ms), in ms.
fn exp_ms(rng: &mut SimRng, rate_per_ms: f64) -> f64 {
    -(1.0 - rng.uniform01()).ln() / rate_per_ms
}

/// Runs `jobs` M/M/1 customers through a facility; returns the mean
/// queueing wait in ms as measured by the wait histogram.
fn mm1_mean_wait_ms(seed: u64, lambda: f64, mu: f64, jobs: u64) -> f64 {
    let mut arrivals = SimRng::seed_from_u64(seed);
    let mut services = arrivals.derive(0x5EAC);
    let mut facility = Facility::new("mm1");
    let mut t_ms = 0.0f64;
    for _ in 0..jobs {
        t_ms += exp_ms(&mut arrivals, lambda);
        let service = exp_ms(&mut services, mu);
        facility.reserve(
            SimTime::ZERO + SimDuration::from_millis_f64(t_ms),
            SimDuration::from_millis_f64(service),
        );
    }
    let hist = facility.wait_histogram();
    assert_eq!(hist.count(), jobs, "every job recorded one wait");
    hist.mean() / 1_000_000.0 // exact ns total / count, converted to ms
}

/// Replicated estimate: analytic Wq must lie within mean ± 3·stderr.
fn check_utilization(lambda: f64, mu: f64, jobs: u64) {
    let analytic = (lambda / mu) / (mu - lambda);
    let means: Vec<f64> = (0..8)
        .map(|r| mm1_mean_wait_ms(0xA11CE + r, lambda, mu, jobs))
        .collect();
    let n = means.len() as f64;
    let mean = means.iter().sum::<f64>() / n;
    let var = means.iter().map(|m| (m - mean).powi(2)).sum::<f64>() / (n - 1.0);
    let stderr = (var / n).sqrt();
    let band = 3.0 * stderr;
    assert!(
        (mean - analytic).abs() <= band,
        "rho={}: observed {mean:.4} ms vs analytic {analytic:.4} ms, band ±{band:.4}",
        lambda / mu
    );
    // And the point estimate itself is close in relative terms.
    assert!(
        (mean - analytic).abs() / analytic < 0.1,
        "rho={}: relative error too large: {mean:.4} vs {analytic:.4}",
        lambda / mu
    );
}

#[test]
fn mm1_wait_matches_theory_at_moderate_load() {
    // ρ = 0.5: Wq = 0.5 / 0.5 = 1 ms.
    check_utilization(0.5, 1.0, 120_000);
}

#[test]
fn mm1_wait_matches_theory_at_high_load() {
    // ρ = 0.8: Wq = 0.8 / 0.2 = 4 ms.
    check_utilization(0.8, 1.0, 240_000);
}
