//! M/M/1 analytic validation of the FCFS facility.
//!
//! With Poisson arrivals at rate λ and exponential service at rate μ the
//! mean queueing delay (time in queue, excluding service) is
//! `Wq = ρ/(μ − λ)` with `ρ = λ/μ`. We drive one [`Facility`] with both
//! streams, read the observed mean wait off the queue-wait histogram the
//! observability layer added, and require the analytic value to fall inside
//! a 3-sigma confidence band built from independent replications — at a
//! moderate and a high utilization.

use dmm_sim::{Facility, SimDuration, SimRng, SimTime};

/// One exponential variate with the given rate (events per ms), in ms.
fn exp_ms(rng: &mut SimRng, rate_per_ms: f64) -> f64 {
    -(1.0 - rng.uniform01()).ln() / rate_per_ms
}

/// Runs `jobs` M/M/1 customers through a facility; returns the mean
/// queueing wait in ms as measured by the wait histogram.
fn mm1_mean_wait_ms(seed: u64, lambda: f64, mu: f64, jobs: u64) -> f64 {
    let mut arrivals = SimRng::seed_from_u64(seed);
    let mut services = arrivals.derive(0x5EAC);
    let mut facility = Facility::new("mm1");
    let mut t_ms = 0.0f64;
    for _ in 0..jobs {
        t_ms += exp_ms(&mut arrivals, lambda);
        let service = exp_ms(&mut services, mu);
        facility.reserve(
            SimTime::ZERO + SimDuration::from_millis_f64(t_ms),
            SimDuration::from_millis_f64(service),
        );
    }
    let hist = facility.wait_histogram();
    assert_eq!(hist.count(), jobs, "every job recorded one wait");
    hist.mean() / 1_000_000.0 // exact ns total / count, converted to ms
}

/// Replicated estimate: analytic Wq must lie within mean ± 3·stderr.
fn check_utilization(lambda: f64, mu: f64, jobs: u64) {
    let analytic = (lambda / mu) / (mu - lambda);
    let means: Vec<f64> = (0..8)
        .map(|r| mm1_mean_wait_ms(0xA11CE + r, lambda, mu, jobs))
        .collect();
    let n = means.len() as f64;
    let mean = means.iter().sum::<f64>() / n;
    let var = means.iter().map(|m| (m - mean).powi(2)).sum::<f64>() / (n - 1.0);
    let stderr = (var / n).sqrt();
    let band = 3.0 * stderr;
    assert!(
        (mean - analytic).abs() <= band,
        "rho={}: observed {mean:.4} ms vs analytic {analytic:.4} ms, band ±{band:.4}",
        lambda / mu
    );
    // And the point estimate itself is close in relative terms.
    assert!(
        (mean - analytic).abs() / analytic < 0.1,
        "rho={}: relative error too large: {mean:.4} vs {analytic:.4}",
        lambda / mu
    );
}

#[test]
fn mm1_wait_matches_theory_at_moderate_load() {
    // ρ = 0.5: Wq = 0.5 / 0.5 = 1 ms.
    check_utilization(0.5, 1.0, 120_000);
}

#[test]
fn mm1_wait_matches_theory_at_high_load() {
    // ρ = 0.8: Wq = 0.8 / 0.2 = 4 ms.
    check_utilization(0.8, 1.0, 240_000);
}

// ---------------------------------------------------------------------------
// Analytical cross-check suite: multiclass waits, product-form tandems, and
// closed-form wait quantiles — the queueing identities the quantile-goal
// controller implicitly relies on, checked at ρ ∈ {0.5, 0.8}.
// ---------------------------------------------------------------------------

use dmm_obs::Histogram;

/// 3·stderr over independent replications of `estimate` — the tolerance is
/// set by the run length, not hard-coded.
fn replicate(reps: u64, estimate: impl Fn(u64) -> f64) -> (f64, f64) {
    let means: Vec<f64> = (0..reps).map(|r| estimate(0xA11CE + r)).collect();
    let n = means.len() as f64;
    let mean = means.iter().sum::<f64>() / n;
    let var = means.iter().map(|m| (m - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, 3.0 * (var / n).sqrt())
}

fn assert_in_band(observed: f64, band: f64, analytic: f64, ctx: &str) {
    assert!(
        (observed - analytic).abs() <= band.max(0.08 * analytic),
        "{ctx}: observed {observed:.4} ms vs analytic {analytic:.4} ms, band ±{band:.4}"
    );
}

/// Two Poisson classes sharing one FCFS server. PASTA + FCFS: both classes
/// see the *same* mean queueing delay, `Wq = ρ/(μ − λ)` with `λ = λ₁ + λ₂`
/// — class identity buys nothing without dedicated resources, which is the
/// premise the paper's memory dedication mechanism starts from.
fn two_class_mm1_waits_ms(seed: u64, l1: f64, l2: f64, mu: f64, jobs: u64) -> (f64, f64) {
    let lambda = l1 + l2;
    let mut arrivals = SimRng::seed_from_u64(seed);
    let mut services = arrivals.derive(0x5EAC);
    let mut classes = arrivals.derive(0xC1A5);
    let mut facility = Facility::new("mm1-2class");
    let mut t_ms = 0.0f64;
    let (mut sum, mut count) = ([0.0f64; 2], [0u64; 2]);
    for _ in 0..jobs {
        t_ms += exp_ms(&mut arrivals, lambda);
        // Poisson splitting: each arrival is class 1 with probability λ₁/λ.
        let k = usize::from(classes.uniform01() >= l1 / lambda);
        let service = exp_ms(&mut services, mu);
        let (_, wait) = facility.reserve_split(
            SimTime::ZERO + SimDuration::from_millis_f64(t_ms),
            SimDuration::from_millis_f64(service),
        );
        sum[k] += wait.as_millis_f64();
        count[k] += 1;
    }
    assert!(count[0] > 0 && count[1] > 0);
    (sum[0] / count[0] as f64, sum[1] / count[1] as f64)
}

fn check_two_class(l1: f64, l2: f64, mu: f64, jobs: u64) {
    let rho = (l1 + l2) / mu;
    let analytic = rho / (mu - l1 - l2);
    for class in 0..2 {
        let (mean, band) = replicate(8, |seed| {
            let waits = two_class_mm1_waits_ms(seed, l1, l2, mu, jobs);
            if class == 0 {
                waits.0
            } else {
                waits.1
            }
        });
        assert_in_band(mean, band, analytic, &format!("rho={rho} class={class}"));
    }
}

#[test]
fn two_class_fcfs_waits_match_theory_at_moderate_load() {
    // ρ = 0.5 split 0.2 + 0.3: both classes wait Wq = 0.5/0.5 = 1 ms.
    check_two_class(0.2, 0.3, 1.0, 120_000);
}

#[test]
fn two_class_fcfs_waits_match_theory_at_high_load() {
    // ρ = 0.8 split 0.3 + 0.5: both classes wait Wq = 0.8/0.2 = 4 ms.
    check_two_class(0.3, 0.5, 1.0, 240_000);
}

/// Two FCFS stations in series. Burke's theorem: the departure process of
/// the first M/M/1 station is Poisson(λ), so the tandem is product-form and
/// each station independently satisfies `Wq_i = ρ_i/(μ_i − λ)`.
fn tandem_waits_ms(seed: u64, lambda: f64, mu1: f64, mu2: f64, jobs: u64) -> (f64, f64) {
    let mut arrivals = SimRng::seed_from_u64(seed);
    let mut s1 = arrivals.derive(0x5EAC);
    let mut s2 = arrivals.derive(0x7A2D);
    let mut st1 = Facility::new("tandem-1");
    let mut st2 = Facility::new("tandem-2");
    let mut t_ms = 0.0f64;
    for _ in 0..jobs {
        t_ms += exp_ms(&mut arrivals, lambda);
        let done1 = st1.reserve(
            SimTime::ZERO + SimDuration::from_millis_f64(t_ms),
            SimDuration::from_millis_f64(exp_ms(&mut s1, mu1)),
        );
        // The station-1 completion instant is the station-2 arrival.
        st2.reserve(done1, SimDuration::from_millis_f64(exp_ms(&mut s2, mu2)));
    }
    (
        st1.wait_histogram().mean() / 1e6,
        st2.wait_histogram().mean() / 1e6,
    )
}

fn check_tandem(lambda: f64, mu1: f64, mu2: f64, jobs: u64) {
    for station in 0..2 {
        let mu = if station == 0 { mu1 } else { mu2 };
        let analytic = (lambda / mu) / (mu - lambda);
        let (mean, band) = replicate(8, |seed| {
            let waits = tandem_waits_ms(seed, lambda, mu1, mu2, jobs);
            if station == 0 {
                waits.0
            } else {
                waits.1
            }
        });
        assert_in_band(
            mean,
            band,
            analytic,
            &format!("tandem lambda={lambda} station={station}"),
        );
    }
}

#[test]
fn tandem_product_form_waits_match_theory_at_moderate_load() {
    // Both stations at ρ = 0.5.
    check_tandem(0.5, 1.0, 1.0, 120_000);
}

#[test]
fn tandem_product_form_waits_match_theory_at_high_load() {
    // Station 1 at ρ = 0.8, station 2 at ρ = 0.5: Burke's theorem says the
    // second station is oblivious to the first one's congestion.
    check_tandem(0.8, 1.0, 1.6, 240_000);
}

/// M/M/1 FCFS waiting-time distribution: `P(Wq ≤ t) = 1 − ρ·e^{−(μ−λ)t}`,
/// so the p-quantile is `t_p = ln(ρ/(1−p)) / (μ − λ)` for `p > 1 − ρ`.
/// Cross-checks [`Histogram::quantile`] — the same extraction the
/// quantile-goal controller runs on — against the closed form.
fn mm1_wait_quantile_ms(seed: u64, lambda: f64, mu: f64, jobs: u64, p: f64) -> f64 {
    let mut arrivals = SimRng::seed_from_u64(seed);
    let mut services = arrivals.derive(0x5EAC);
    let mut facility = Facility::new("mm1-q");
    // Fine log-linear buckets (≈ 4.4 % worst-case width) so bucket
    // granularity stays well inside the statistical band.
    let mut hist = Histogram::log_linear(1_000, 10_000_000_000, 16);
    let mut t_ms = 0.0f64;
    for _ in 0..jobs {
        t_ms += exp_ms(&mut arrivals, lambda);
        let (_, wait) = facility.reserve_split(
            SimTime::ZERO + SimDuration::from_millis_f64(t_ms),
            SimDuration::from_millis_f64(exp_ms(&mut services, mu)),
        );
        hist.record(wait.as_nanos());
    }
    hist.quantile(p).expect("jobs recorded") as f64 / 1e6
}

fn check_wait_quantile(lambda: f64, mu: f64, jobs: u64, p: f64) {
    let rho = lambda / mu;
    assert!(p > 1.0 - rho, "quantile must exceed the no-wait atom");
    let analytic = (rho / (1.0 - p)).ln() / (mu - lambda);
    let (mean, band) = replicate(8, |seed| mm1_wait_quantile_ms(seed, lambda, mu, jobs, p));
    // One-sided bucket slack: nearest-rank on bucketed data reports the
    // bucket's upper edge, biasing up to one bucket width (1/16 octave).
    let bucket_slack = analytic * (1.0 / 16.0);
    assert!(
        mean - analytic <= band + bucket_slack && analytic - mean <= band + bucket_slack,
        "rho={rho} p={p}: observed {mean:.4} ms vs analytic {analytic:.4} ms, band ±{band:.4}+{bucket_slack:.4}"
    );
}

#[test]
fn mm1_wait_quantiles_match_theory_at_moderate_load() {
    // ρ = 0.5: t₉₀ = ln(5)/0.5 ≈ 3.22 ms, t₉₅ = ln(10)/0.5 ≈ 4.61 ms.
    check_wait_quantile(0.5, 1.0, 120_000, 0.90);
    check_wait_quantile(0.5, 1.0, 120_000, 0.95);
}

#[test]
fn mm1_wait_quantiles_match_theory_at_high_load() {
    // ρ = 0.8: t₉₀ = ln(8)/0.2 ≈ 10.40 ms, t₉₅ = ln(16)/0.2 ≈ 13.86 ms.
    check_wait_quantile(0.8, 1.0, 240_000, 0.90);
    check_wait_quantile(0.8, 1.0, 240_000, 0.95);
}
