//! Deterministic fault injection: scheduled node crashes and restarts,
//! probabilistic LAN message loss, and disk-stall windows.
//!
//! A [`FaultPlan`] is pure data — a seeded, declarative schedule of faults —
//! so the same plan under the same master seed reproduces byte-identical
//! runs. The plan is installed into the [`crate::DataPlane`] (drop model,
//! stall windows) and its scheduled events are injected by the embedding
//! simulator, which calls [`crate::DataPlane::crash_node`] /
//! [`crate::DataPlane::restart_node`] at the planned instants.
//!
//! Failure model (DESIGN.md §6): a crash loses a node's *volatile* state —
//! buffer contents, heat bookkeeping, CPU and network presence — while its
//! disk-resident data stays readable by the survivors (dual-ported /
//! shared-disk assumption). Pages whose only cached copy lived on the
//! crashed node are *lost from memory* and must be re-read from disk;
//! protocol steps that would touch the dead node complete through error
//! paths (bounce to home, or a mirror read at the origin's disk) instead of
//! hanging. A restarted node rejoins with a cold buffer.

use dmm_sim::{SimDuration, SimTime};

use crate::ids::NodeId;

/// A single scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The node loses its volatile state and stops serving.
    Crash(NodeId),
    /// The node rejoins with a cold buffer.
    Restart(NodeId),
}

impl FaultKind {
    /// The node the fault targets.
    pub fn node(&self) -> NodeId {
        match *self {
            FaultKind::Crash(n) | FaultKind::Restart(n) => n,
        }
    }
}

/// A fault with its absolute injection instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledFault {
    /// When the fault strikes.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A window during which one node's disk serves reads `factor`× slower
/// (controller firmware hiccup, RAID rebuild, competing scan).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskStall {
    /// The stalled node.
    pub node: NodeId,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Service-time multiplier, ≥ 1.
    pub factor: f64,
}

/// A deterministic, schedulable fault-injection plan.
///
/// Built fluently and handed to the system configuration:
///
/// ```
/// use dmm_cluster::{FaultPlan, NodeId};
///
/// let plan = FaultPlan::new(7)
///     .crash_ms(NodeId(2), 100_000)
///     .restart_ms(NodeId(2), 200_000)
///     .message_drop(0.01)
///     .disk_stall_ms(NodeId(0), 50_000, 60_000, 4.0);
/// assert!(plan.validate(3).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the plan's stochastic parts (message drops). Derived from —
    /// but independent of — the experiment's master seed, so fault dice
    /// never perturb workload dice.
    pub seed: u64,
    /// Scheduled crashes and restarts.
    pub events: Vec<ScheduledFault>,
    /// Probability that any one LAN message is dropped and must be
    /// retransmitted (0 disables the drop model).
    pub drop_probability: f64,
    /// Back-off before a dropped message is retransmitted.
    pub retransmit: SimDuration,
    /// Disk-stall windows.
    pub stalls: Vec<DiskStall>,
}

impl FaultPlan {
    /// An empty plan with the given fault seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
            drop_probability: 0.0,
            retransmit: SimDuration::from_micros(500),
            stalls: Vec::new(),
        }
    }

    /// Schedules a crash of `node` at `at`.
    pub fn crash(mut self, node: NodeId, at: SimTime) -> Self {
        self.events.push(ScheduledFault {
            at,
            kind: FaultKind::Crash(node),
        });
        self
    }

    /// Schedules a crash of `node` at `at_ms` milliseconds of simulated time.
    pub fn crash_ms(self, node: NodeId, at_ms: u64) -> Self {
        self.crash(node, SimTime::ZERO + SimDuration::from_millis(at_ms))
    }

    /// Schedules a restart of `node` at `at`.
    pub fn restart(mut self, node: NodeId, at: SimTime) -> Self {
        self.events.push(ScheduledFault {
            at,
            kind: FaultKind::Restart(node),
        });
        self
    }

    /// Schedules a restart of `node` at `at_ms` milliseconds.
    pub fn restart_ms(self, node: NodeId, at_ms: u64) -> Self {
        self.restart(node, SimTime::ZERO + SimDuration::from_millis(at_ms))
    }

    /// Enables the LAN message-drop model with per-message probability `p`.
    pub fn message_drop(mut self, p: f64) -> Self {
        self.drop_probability = p;
        self
    }

    /// Overrides the retransmission back-off (default 0.5 ms).
    pub fn retransmit_ms(mut self, ms: f64) -> Self {
        self.retransmit = SimDuration::from_millis_f64(ms);
        self
    }

    /// Adds a disk-stall window on `node` over `[from_ms, until_ms)` with the
    /// given service-time multiplier.
    pub fn disk_stall_ms(mut self, node: NodeId, from_ms: u64, until_ms: u64, factor: f64) -> Self {
        self.stalls.push(DiskStall {
            node,
            from: SimTime::ZERO + SimDuration::from_millis(from_ms),
            until: SimTime::ZERO + SimDuration::from_millis(until_ms),
            factor,
        });
        self
    }

    /// The scheduled events sorted by injection instant (stable, so two
    /// faults at the same instant keep their insertion order).
    pub fn events_in_order(&self) -> Vec<ScheduledFault> {
        let mut ev = self.events.clone();
        ev.sort_by_key(|e| e.at);
        ev
    }

    /// True when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.drop_probability == 0.0 && self.stalls.is_empty()
    }

    /// Checks the plan against a cluster of `nodes` nodes.
    pub fn validate(&self, nodes: usize) -> Result<(), &'static str> {
        if !(0.0..1.0).contains(&self.drop_probability) {
            return Err("message-drop probability must be in [0, 1)");
        }
        if self.drop_probability > 0.0 && self.retransmit <= SimDuration::ZERO {
            return Err("retransmission back-off must be positive");
        }
        for e in &self.events {
            if e.kind.node().index() >= nodes {
                return Err("fault event targets an unknown node");
            }
        }
        let crashes = self
            .events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Crash(_)))
            .count();
        if crashes >= nodes && nodes > 0 {
            // Conservative static check: crashing every node (even at
            // different times, without restarts in between) could leave the
            // cluster empty, which the degradation machinery cannot survive.
            let restarts = self
                .events
                .iter()
                .filter(|e| matches!(e.kind, FaultKind::Restart(_)))
                .count();
            if restarts == 0 {
                return Err("plan would crash every node with no restarts");
            }
        }
        for s in &self.stalls {
            if s.node.index() >= nodes {
                return Err("disk stall targets an unknown node");
            }
            if s.factor < 1.0 || !s.factor.is_finite() {
                return Err("disk-stall factor must be a finite value ≥ 1");
            }
            if s.from >= s.until {
                return Err("disk-stall window must have positive length");
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_and_orders_events() {
        let plan = FaultPlan::new(1)
            .restart_ms(NodeId(1), 200)
            .crash_ms(NodeId(1), 100);
        let ev = plan.events_in_order();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].kind, FaultKind::Crash(NodeId(1)));
        assert_eq!(ev[1].kind, FaultKind::Restart(NodeId(1)));
        assert!(ev[0].at < ev[1].at);
    }

    #[test]
    fn validate_rejects_bad_plans() {
        assert!(FaultPlan::new(0).message_drop(1.0).validate(3).is_err());
        assert!(FaultPlan::new(0).message_drop(-0.1).validate(3).is_err());
        assert!(FaultPlan::new(0)
            .crash_ms(NodeId(5), 1)
            .validate(3)
            .is_err());
        assert!(FaultPlan::new(0)
            .disk_stall_ms(NodeId(0), 10, 10, 2.0)
            .validate(3)
            .is_err());
        assert!(FaultPlan::new(0)
            .disk_stall_ms(NodeId(0), 10, 20, 0.5)
            .validate(3)
            .is_err());
        assert!(FaultPlan::new(0)
            .crash_ms(NodeId(0), 1)
            .crash_ms(NodeId(1), 2)
            .crash_ms(NodeId(2), 3)
            .validate(3)
            .is_err());
    }

    #[test]
    fn validate_accepts_reasonable_plans() {
        let plan = FaultPlan::new(9)
            .crash_ms(NodeId(2), 100_000)
            .restart_ms(NodeId(2), 150_000)
            .message_drop(0.05)
            .disk_stall_ms(NodeId(1), 0, 5_000, 3.0);
        assert!(plan.validate(3).is_ok());
        assert!(!plan.is_empty());
        assert!(FaultPlan::new(0).is_empty());
    }
}
