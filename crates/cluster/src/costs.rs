//! Per-storage-level access-cost estimation.
//!
//! §6: "the access cost to different levels in the storage hierarchy are
//! needed, too. Tagging each page request with the storage level the page has
//! been accessed from, this information can be gathered with low overhead by
//! observing the response times of already finished requests." Each level
//! keeps an exponentially weighted moving average seeded with a conservative
//! prior so benefits are sensible before the first observation.
//!
//! The estimator is sized by the configured [`TierLadder`]:
//! one slot per local memory tier, one for remote-memory hits, and a
//! local/remote pair for the disk rung (the ship over the LAN makes a remote
//! home's disk read strictly more expensive). The historical fixed hierarchy
//! is the default ladder's 4-slot special case.

use crate::tier::TierLadder;

/// Index into the per-slot cost estimates: `0..K_mem` are the local memory
/// tiers' hit slots, then remote hit, local disk, remote disk. Obtain slots
/// from [`TierLadder`] or [`AccessCosts`] accessors rather than hardcoding
/// indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CostSlot(pub u8);

impl CostSlot {
    /// The slot's position as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The storage level a page access was served from (NOW hierarchy of §1:
/// local memory, remote memory, disk).
#[deprecated(
    since = "0.8.0",
    note = "storage levels are data-driven now: use `CostSlot` via `TierLadder` / \
            `AccessCosts` slot accessors instead of this fixed enum"
)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CostLevel {
    /// Hit in a local pool.
    LocalHit,
    /// Served from another node's memory over the LAN.
    RemoteHit,
    /// Read from the local disk (requester is the home).
    LocalDisk,
    /// Read from a remote node's disk and shipped over the LAN.
    RemoteDisk,
}

#[allow(deprecated)]
impl CostLevel {
    /// All levels, for iteration.
    pub const ALL: [CostLevel; 4] = [
        CostLevel::LocalHit,
        CostLevel::RemoteHit,
        CostLevel::LocalDisk,
        CostLevel::RemoteDisk,
    ];

    /// Stable snake-case name, used as a metric/trace key.
    pub fn name(self) -> &'static str {
        match self {
            CostLevel::LocalHit => "local_hit",
            CostLevel::RemoteHit => "remote_hit",
            CostLevel::LocalDisk => "local_disk",
            CostLevel::RemoteDisk => "remote_disk",
        }
    }
}

/// The deprecated fixed levels map onto the default ladder's slot layout
/// (one local memory tier): slots 0–3 in declaration order.
#[allow(deprecated)]
impl From<CostLevel> for CostSlot {
    fn from(level: CostLevel) -> CostSlot {
        CostSlot(match level {
            CostLevel::LocalHit => 0,
            CostLevel::RemoteHit => 1,
            CostLevel::LocalDisk => 2,
            CostLevel::RemoteDisk => 3,
        })
    }
}

/// EWMA cost (milliseconds) per storage slot.
#[derive(Debug, Clone)]
pub struct AccessCosts {
    alpha: f64,
    mem_tiers: usize,
    est_ms: Vec<f64>,
    observations: Vec<u64>,
}

impl Default for AccessCosts {
    fn default() -> Self {
        Self::new(0.05)
    }
}

impl AccessCosts {
    /// Estimator for the default ladder with smoothing factor
    /// `alpha ∈ (0, 1]` and late-1990s priors (0.03 ms local hit, 0.5 ms
    /// remote hit, ~13 ms disk).
    pub fn new(alpha: f64) -> Self {
        Self::for_ladder(alpha, &TierLadder::default())
    }

    /// Estimator sized and seeded by `ladder`: one slot per memory tier plus
    /// remote hit and the local/remote disk pair, priors from the quoted
    /// tier latencies.
    pub fn for_ladder(alpha: f64, ladder: &TierLadder) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0);
        let est_ms = ladder.slot_priors();
        AccessCosts {
            alpha,
            mem_tiers: ladder.num_memory_tiers(),
            observations: vec![0; est_ms.len()],
            est_ms,
        }
    }

    /// Number of local memory tiers this estimator prices.
    pub fn mem_tiers(&self) -> usize {
        self.mem_tiers
    }

    /// Number of cost slots.
    pub fn num_slots(&self) -> usize {
        self.est_ms.len()
    }

    /// Slot of a hit in local memory tier `t`.
    pub fn hit_slot(&self, t: usize) -> CostSlot {
        debug_assert!(t < self.mem_tiers);
        CostSlot(t as u8)
    }

    /// Slot of a remote-memory hit.
    pub fn remote_hit_slot(&self) -> CostSlot {
        CostSlot(self.mem_tiers as u8)
    }

    /// Slot of a local-disk read.
    pub fn local_disk_slot(&self) -> CostSlot {
        CostSlot(self.mem_tiers as u8 + 1)
    }

    /// Slot of a remote-disk read.
    pub fn remote_disk_slot(&self) -> CostSlot {
        CostSlot(self.mem_tiers as u8 + 2)
    }

    /// Records an observed access latency (including queueing) for `slot`.
    pub fn observe(&mut self, slot: impl Into<CostSlot>, latency_ms: f64) {
        debug_assert!(latency_ms >= 0.0);
        let i = slot.into().index();
        self.observations[i] += 1;
        if self.observations[i] == 1 {
            self.est_ms[i] = latency_ms;
        } else {
            self.est_ms[i] += self.alpha * (latency_ms - self.est_ms[i]);
        }
    }

    /// Current estimate for `slot` in milliseconds.
    pub fn estimate_ms(&self, slot: impl Into<CostSlot>) -> f64 {
        self.est_ms[slot.into().index()]
    }

    /// Observation count for `slot`.
    pub fn observations(&self, slot: impl Into<CostSlot>) -> u64 {
        self.observations[slot.into().index()]
    }

    /// Cost of a miss that falls through to disk, blended over local/remote
    /// disk by the observed traffic mix; callers that know the home use the
    /// precise slot instead. Before both sides have been observed the split
    /// is unknown, so the blend falls back to the midpoint.
    pub fn blended_disk_ms(&self) -> f64 {
        let (l, r) = (self.local_disk_slot(), self.remote_disk_slot());
        let (nl, nr) = (self.observations(l), self.observations(r));
        let (el, er) = (self.estimate_ms(l), self.estimate_ms(r));
        if nl == 0 || nr == 0 {
            0.5 * (el + er)
        } else {
            (nl as f64 * el + nr as f64 * er) / ((nl + nr) as f64)
        }
    }

    /// Midpoint-weighted disk cost, kept for one release.
    #[deprecated(since = "0.8.0", note = "use `blended_disk_ms`")]
    pub fn disk_ms(&self) -> f64 {
        self.blended_disk_ms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tier::TierSpec;

    fn extended() -> TierLadder {
        TierLadder::new(vec![
            TierSpec::new("dram", 0.03),
            TierSpec::new("cxl", 0.25).frames(64),
            TierSpec::new("remote", 0.5),
            TierSpec::new("disk", 12.6),
        ])
        .unwrap()
    }

    #[test]
    fn priors_are_ordered() {
        let c = AccessCosts::default();
        assert!(c.estimate_ms(c.hit_slot(0)) < c.estimate_ms(c.remote_hit_slot()));
        assert!(c.estimate_ms(c.remote_hit_slot()) < c.estimate_ms(c.local_disk_slot()));
    }

    #[test]
    fn default_priors_match_historical_values_bit_exactly() {
        // The estimator's priors price the first evictions of every run;
        // byte-identical default traces require these exact f64 bits.
        let c = AccessCosts::default();
        assert_eq!(c.num_slots(), 4);
        for (i, expect) in [0.03f64, 0.5, 12.6, 13.1].into_iter().enumerate() {
            assert_eq!(c.estimate_ms(CostSlot(i as u8)).to_bits(), expect.to_bits());
        }
    }

    #[test]
    fn first_observation_replaces_prior() {
        let mut c = AccessCosts::new(0.1);
        let s = c.remote_hit_slot();
        c.observe(s, 0.8);
        assert!((c.estimate_ms(s) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn ewma_converges() {
        let mut c = AccessCosts::new(0.2);
        let s = c.local_disk_slot();
        for _ in 0..200 {
            c.observe(s, 15.0);
        }
        assert!((c.estimate_ms(s) - 15.0).abs() < 1e-6);
        assert_eq!(c.observations(s), 200);
    }

    #[test]
    fn ewma_tracks_shifts() {
        let mut c = AccessCosts::new(0.5);
        let s = c.remote_hit_slot();
        c.observe(s, 1.0);
        c.observe(s, 2.0);
        // 1.0 + 0.5·(2−1) = 1.5.
        assert!((c.estimate_ms(s) - 1.5).abs() < 1e-12);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_levels_map_to_default_slots() {
        let mut c = AccessCosts::new(0.1);
        c.observe(CostLevel::LocalDisk, 9.0);
        assert_eq!(c.observations(c.local_disk_slot()), 1);
        assert!((c.estimate_ms(CostLevel::LocalDisk) - 9.0).abs() < 1e-12);
        for (level, slot) in CostLevel::ALL.into_iter().zip(0u8..) {
            assert_eq!(CostSlot::from(level), CostSlot(slot));
        }
    }

    #[test]
    fn extended_ladder_sizes_estimator() {
        let c = AccessCosts::for_ladder(0.05, &extended());
        assert_eq!(c.mem_tiers(), 2);
        assert_eq!(c.num_slots(), 5);
        assert!((c.estimate_ms(c.hit_slot(1)) - 0.25).abs() < 1e-12);
        assert!((c.estimate_ms(c.remote_disk_slot()) - 13.1).abs() < 1e-12);
    }

    #[test]
    fn blended_disk_weights_by_observed_mix() {
        let mut c = AccessCosts::new(1.0);
        let (l, r) = (c.local_disk_slot(), c.remote_disk_slot());
        // Unobserved: midpoint of the priors.
        assert!((c.blended_disk_ms() - 0.5 * (12.6 + 13.1)).abs() < 1e-12);
        // One side observed only: still the midpoint fallback.
        c.observe(l, 8.0);
        assert!((c.blended_disk_ms() - 0.5 * (8.0 + 13.1)).abs() < 1e-12);
        // Both observed: weight by counts — 3 local @ 8 ms, 1 remote @ 12 ms.
        c.observe(l, 8.0);
        c.observe(l, 8.0);
        c.observe(r, 12.0);
        assert!((c.blended_disk_ms() - (3.0 * 8.0 + 12.0) / 4.0).abs() < 1e-12);
    }
}
