//! Per-storage-level access-cost estimation.
//!
//! §6: "the access cost to different levels in the storage hierarchy are
//! needed, too. Tagging each page request with the storage level the page has
//! been accessed from, this information can be gathered with low overhead by
//! observing the response times of already finished requests." Each level
//! keeps an exponentially weighted moving average seeded with a conservative
//! prior so benefits are sensible before the first observation.

/// The storage level a page access was served from (NOW hierarchy of §1:
/// local memory, remote memory, disk).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CostLevel {
    /// Hit in a local pool.
    LocalHit,
    /// Served from another node's memory over the LAN.
    RemoteHit,
    /// Read from the local disk (requester is the home).
    LocalDisk,
    /// Read from a remote node's disk and shipped over the LAN.
    RemoteDisk,
}

impl CostLevel {
    /// All levels, for iteration.
    pub const ALL: [CostLevel; 4] = [
        CostLevel::LocalHit,
        CostLevel::RemoteHit,
        CostLevel::LocalDisk,
        CostLevel::RemoteDisk,
    ];

    /// Stable snake-case name, used as a metric/trace key.
    pub fn name(self) -> &'static str {
        match self {
            CostLevel::LocalHit => "local_hit",
            CostLevel::RemoteHit => "remote_hit",
            CostLevel::LocalDisk => "local_disk",
            CostLevel::RemoteDisk => "remote_disk",
        }
    }

    fn index(self) -> usize {
        match self {
            CostLevel::LocalHit => 0,
            CostLevel::RemoteHit => 1,
            CostLevel::LocalDisk => 2,
            CostLevel::RemoteDisk => 3,
        }
    }
}

/// EWMA cost (milliseconds) per storage level.
#[derive(Debug, Clone)]
pub struct AccessCosts {
    alpha: f64,
    est_ms: [f64; 4],
    observations: [u64; 4],
}

impl Default for AccessCosts {
    fn default() -> Self {
        Self::new(0.05)
    }
}

impl AccessCosts {
    /// Estimator with smoothing factor `alpha ∈ (0, 1]` and late-1990s
    /// priors (0.03 ms local hit, 0.5 ms remote hit, ~13 ms disk).
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0);
        AccessCosts {
            alpha,
            est_ms: [0.03, 0.5, 12.6, 13.1],
            observations: [0; 4],
        }
    }

    /// Records an observed access latency (including queueing) for `level`.
    pub fn observe(&mut self, level: CostLevel, latency_ms: f64) {
        debug_assert!(latency_ms >= 0.0);
        let i = level.index();
        self.observations[i] += 1;
        if self.observations[i] == 1 {
            self.est_ms[i] = latency_ms;
        } else {
            self.est_ms[i] += self.alpha * (latency_ms - self.est_ms[i]);
        }
    }

    /// Current estimate for `level` in milliseconds.
    pub fn estimate_ms(&self, level: CostLevel) -> f64 {
        self.est_ms[level.index()]
    }

    /// Observation count for `level`.
    pub fn observations(&self, level: CostLevel) -> u64 {
        self.observations[level.index()]
    }

    /// Cost of a miss that falls through to disk, blended over local/remote
    /// disk by whether the requester would be the home. Callers that know
    /// the home use the precise level instead.
    pub fn disk_ms(&self) -> f64 {
        // Weighted toward remote disk: with N nodes, (N−1)/N of homes are
        // remote; use a simple midpoint as the directory-free fallback.
        0.5 * (self.estimate_ms(CostLevel::LocalDisk) + self.estimate_ms(CostLevel::RemoteDisk))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priors_are_ordered() {
        let c = AccessCosts::default();
        assert!(c.estimate_ms(CostLevel::LocalHit) < c.estimate_ms(CostLevel::RemoteHit));
        assert!(c.estimate_ms(CostLevel::RemoteHit) < c.estimate_ms(CostLevel::LocalDisk));
    }

    #[test]
    fn first_observation_replaces_prior() {
        let mut c = AccessCosts::new(0.1);
        c.observe(CostLevel::RemoteHit, 0.8);
        assert!((c.estimate_ms(CostLevel::RemoteHit) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn ewma_converges() {
        let mut c = AccessCosts::new(0.2);
        for _ in 0..200 {
            c.observe(CostLevel::LocalDisk, 15.0);
        }
        assert!((c.estimate_ms(CostLevel::LocalDisk) - 15.0).abs() < 1e-6);
        assert_eq!(c.observations(CostLevel::LocalDisk), 200);
    }

    #[test]
    fn ewma_tracks_shifts() {
        let mut c = AccessCosts::new(0.5);
        c.observe(CostLevel::RemoteHit, 1.0);
        c.observe(CostLevel::RemoteHit, 2.0);
        // 1.0 + 0.5·(2−1) = 1.5.
        assert!((c.estimate_ms(CostLevel::RemoteHit) - 1.5).abs() < 1e-12);
    }
}
