//! Benefit pricing for the cost-based replacement of §6.
//!
//! "The benefit of a page is defined as the difference in the access cost
//! between keeping the page in the local cache versus dropping it." For a
//! copy of page `p` held at node `i`:
//!
//! * the **local** term: the node's own future accesses (rate = the heat the
//!   pool ranks by: the class heat in a dedicated pool, the accumulated heat
//!   in the no-goal pool) would pay `C_remote` (another copy exists) or
//!   `C_disk` (this is the last copy) instead of `C_local`;
//! * the **global** term (altruism): if this is the last cached copy, every
//!   *other* node's accesses — rate ≈ global heat − local heat — would pay
//!   `C_disk` instead of `C_remote`.
//!
//! Balancing these two terms is exactly the egoistic-vs-altruistic trade-off
//! of \[27, 26\]: a locally cold but globally hot last copy stays cached, a
//! page with plenty of remote copies competes on local merit only.

use crate::costs::{AccessCosts, CostLevel};

/// Inputs to one benefit computation, assembled by the data plane.
#[derive(Debug, Clone, Copy)]
pub struct BenefitInputs {
    /// Heat the holding pool ranks by (class heat in a dedicated pool,
    /// accumulated heat in the no-goal pool), accesses/ms.
    pub ranking_heat_per_ms: f64,
    /// System-wide heat of the page, accesses/ms.
    pub global_heat_per_ms: f64,
    /// True if this node holds the only cached copy.
    pub last_copy: bool,
    /// True if the page's home is this node (disk fallback is local).
    pub home_is_local: bool,
}

/// Benefit of keeping the copy, in expected milliseconds saved per
/// millisecond of residency (dimensionless rate × ms).
pub fn benefit_ms(inputs: BenefitInputs, costs: &AccessCosts) -> f64 {
    let c_local = costs.estimate_ms(CostLevel::LocalHit);
    let c_remote = costs.estimate_ms(CostLevel::RemoteHit);
    let c_disk = if inputs.home_is_local {
        costs.estimate_ms(CostLevel::LocalDisk)
    } else {
        costs.estimate_ms(CostLevel::RemoteDisk)
    };

    let c_drop_local = if inputs.last_copy { c_disk } else { c_remote };
    let local_term = inputs.ranking_heat_per_ms * (c_drop_local - c_local).max(0.0);

    let global_term = if inputs.last_copy {
        let remote_heat = (inputs.global_heat_per_ms - inputs.ranking_heat_per_ms).max(0.0);
        remote_heat * (c_disk - c_remote).max(0.0)
    } else {
        0.0
    };

    local_term + global_term
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs() -> AccessCosts {
        AccessCosts::default() // priors: 0.03 / 0.5 / 12.6 / 13.1 ms
    }

    #[test]
    fn replicated_page_priced_on_local_merit() {
        let b = benefit_ms(
            BenefitInputs {
                ranking_heat_per_ms: 0.1,
                global_heat_per_ms: 5.0, // global heat irrelevant here
                last_copy: false,
                home_is_local: false,
            },
            &costs(),
        );
        // 0.1 × (0.5 − 0.03).
        assert!((b - 0.047).abs() < 1e-9);
    }

    #[test]
    fn last_copy_gains_altruistic_term() {
        let common = BenefitInputs {
            ranking_heat_per_ms: 0.1,
            global_heat_per_ms: 0.5,
            last_copy: false,
            home_is_local: false,
        };
        let replicated = benefit_ms(common, &costs());
        let last = benefit_ms(
            BenefitInputs {
                last_copy: true,
                ..common
            },
            &costs(),
        );
        assert!(
            last > replicated * 10.0,
            "last copy must be far more valuable: {last} vs {replicated}"
        );
    }

    #[test]
    fn globally_hot_last_copy_beats_locally_hotter_replicated_page() {
        // Egoism vs altruism: a locally cold last copy of a globally hot page
        // outranks a locally warm page with other copies in the system.
        let cold_last = benefit_ms(
            BenefitInputs {
                ranking_heat_per_ms: 0.01,
                global_heat_per_ms: 1.0,
                last_copy: true,
                home_is_local: false,
            },
            &costs(),
        );
        let warm_replicated = benefit_ms(
            BenefitInputs {
                ranking_heat_per_ms: 0.2,
                global_heat_per_ms: 0.2,
                last_copy: false,
                home_is_local: false,
            },
            &costs(),
        );
        assert!(cold_last > warm_replicated);
    }

    #[test]
    fn zero_heat_zero_benefit() {
        let b = benefit_ms(
            BenefitInputs {
                ranking_heat_per_ms: 0.0,
                global_heat_per_ms: 0.0,
                last_copy: true,
                home_is_local: true,
            },
            &costs(),
        );
        assert_eq!(b, 0.0);
    }

    #[test]
    fn local_home_uses_local_disk_cost() {
        let local = benefit_ms(
            BenefitInputs {
                ranking_heat_per_ms: 1.0,
                global_heat_per_ms: 1.0,
                last_copy: true,
                home_is_local: true,
            },
            &costs(),
        );
        let remote = benefit_ms(
            BenefitInputs {
                ranking_heat_per_ms: 1.0,
                global_heat_per_ms: 1.0,
                last_copy: true,
                home_is_local: false,
            },
            &costs(),
        );
        assert!(remote > local, "remote-disk fallback is more expensive");
    }
}
