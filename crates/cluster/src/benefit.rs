//! Benefit pricing for the cost-based replacement of §6.
//!
//! "The benefit of a page is defined as the difference in the access cost
//! between keeping the page in the local cache versus dropping it." For a
//! copy of page `p` held at node `i` in memory tier `t`:
//!
//! * the **local** term: the node's own future accesses (rate = the heat the
//!   pool ranks by: the class heat in a dedicated pool, the accumulated heat
//!   in the no-goal pool) would pay the *next rung's* cost instead of the
//!   tier-`t` hit cost. On the last memory tier the next rung is off-node:
//!   `C_remote` (another copy exists) or `C_disk` (this is the last copy).
//!   On an intermediate tier the drop is a demotion to tier `t+1`, still on
//!   this node.
//! * the **global** term (altruism): only when the drop would leave the node
//!   entirely — i.e. from the last memory tier — and this is the last cached
//!   copy, every *other* node's accesses (rate ≈ global heat − local heat)
//!   would pay `C_disk` instead of `C_remote`. A demotion keeps the copy
//!   servable over the LAN, so intermediate tiers carry no global term.
//!
//! Balancing these two terms is exactly the egoistic-vs-altruistic trade-off
//! of \[27, 26\]: a locally cold but globally hot last copy stays cached, a
//! page with plenty of remote copies competes on local merit only. With the
//! default single-memory-tier ladder (`mem_tier = 0` is also the last
//! memory tier) this reduces bit-exactly to the original two-term formula.

use crate::costs::AccessCosts;

/// Inputs to one benefit computation, assembled by the data plane.
#[derive(Debug, Clone, Copy)]
pub struct BenefitInputs {
    /// Heat the holding pool ranks by (class heat in a dedicated pool,
    /// accumulated heat in the no-goal pool), accesses/ms.
    pub ranking_heat_per_ms: f64,
    /// System-wide heat of the page, accesses/ms.
    pub global_heat_per_ms: f64,
    /// True if this node holds the only cached copy.
    pub last_copy: bool,
    /// True if the page's home is this node (disk fallback is local).
    pub home_is_local: bool,
    /// Local memory tier currently holding the copy (0 = fastest). With the
    /// default ladder this is always 0.
    pub mem_tier: u8,
}

/// Benefit of keeping the copy, in expected milliseconds saved per
/// millisecond of residency (dimensionless rate × ms).
pub fn benefit_ms(inputs: BenefitInputs, costs: &AccessCosts) -> f64 {
    let t = inputs.mem_tier as usize;
    debug_assert!(t < costs.mem_tiers());
    let c_keep = costs.estimate_ms(costs.hit_slot(t));

    if t + 1 < costs.mem_tiers() {
        // Dropping from an intermediate tier demotes to tier t+1 on this
        // node: the copy count is unchanged, so no global term.
        let c_drop = costs.estimate_ms(costs.hit_slot(t + 1));
        return inputs.ranking_heat_per_ms * (c_drop - c_keep).max(0.0);
    }

    let c_remote = costs.estimate_ms(costs.remote_hit_slot());
    let c_disk = if inputs.home_is_local {
        costs.estimate_ms(costs.local_disk_slot())
    } else {
        costs.estimate_ms(costs.remote_disk_slot())
    };

    let c_drop_local = if inputs.last_copy { c_disk } else { c_remote };
    let local_term = inputs.ranking_heat_per_ms * (c_drop_local - c_keep).max(0.0);

    let global_term = if inputs.last_copy {
        let remote_heat = (inputs.global_heat_per_ms - inputs.ranking_heat_per_ms).max(0.0);
        remote_heat * (c_disk - c_remote).max(0.0)
    } else {
        0.0
    };

    local_term + global_term
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tier::{TierLadder, TierSpec};

    fn costs() -> AccessCosts {
        AccessCosts::default() // priors: 0.03 / 0.5 / 12.6 / 13.1 ms
    }

    #[test]
    fn replicated_page_priced_on_local_merit() {
        let b = benefit_ms(
            BenefitInputs {
                ranking_heat_per_ms: 0.1,
                global_heat_per_ms: 5.0, // global heat irrelevant here
                last_copy: false,
                home_is_local: false,
                mem_tier: 0,
            },
            &costs(),
        );
        // 0.1 × (0.5 − 0.03).
        assert!((b - 0.047).abs() < 1e-9);
    }

    #[test]
    fn last_copy_gains_altruistic_term() {
        let common = BenefitInputs {
            ranking_heat_per_ms: 0.1,
            global_heat_per_ms: 0.5,
            last_copy: false,
            home_is_local: false,
            mem_tier: 0,
        };
        let replicated = benefit_ms(common, &costs());
        let last = benefit_ms(
            BenefitInputs {
                last_copy: true,
                ..common
            },
            &costs(),
        );
        assert!(
            last > replicated * 10.0,
            "last copy must be far more valuable: {last} vs {replicated}"
        );
    }

    #[test]
    fn globally_hot_last_copy_beats_locally_hotter_replicated_page() {
        // Egoism vs altruism: a locally cold last copy of a globally hot page
        // outranks a locally warm page with other copies in the system.
        let cold_last = benefit_ms(
            BenefitInputs {
                ranking_heat_per_ms: 0.01,
                global_heat_per_ms: 1.0,
                last_copy: true,
                home_is_local: false,
                mem_tier: 0,
            },
            &costs(),
        );
        let warm_replicated = benefit_ms(
            BenefitInputs {
                ranking_heat_per_ms: 0.2,
                global_heat_per_ms: 0.2,
                last_copy: false,
                home_is_local: false,
                mem_tier: 0,
            },
            &costs(),
        );
        assert!(cold_last > warm_replicated);
    }

    #[test]
    fn zero_heat_zero_benefit() {
        let b = benefit_ms(
            BenefitInputs {
                ranking_heat_per_ms: 0.0,
                global_heat_per_ms: 0.0,
                last_copy: true,
                home_is_local: true,
                mem_tier: 0,
            },
            &costs(),
        );
        assert_eq!(b, 0.0);
    }

    #[test]
    fn local_home_uses_local_disk_cost() {
        let local = benefit_ms(
            BenefitInputs {
                ranking_heat_per_ms: 1.0,
                global_heat_per_ms: 1.0,
                last_copy: true,
                home_is_local: true,
                mem_tier: 0,
            },
            &costs(),
        );
        let remote = benefit_ms(
            BenefitInputs {
                ranking_heat_per_ms: 1.0,
                global_heat_per_ms: 1.0,
                last_copy: true,
                home_is_local: false,
                mem_tier: 0,
            },
            &costs(),
        );
        assert!(remote > local, "remote-disk fallback is more expensive");
    }

    #[test]
    fn intermediate_tier_prices_demotion_without_global_term() {
        let ladder = TierLadder::new(vec![
            TierSpec::new("dram", 0.03),
            TierSpec::new("cxl", 0.25).frames(64),
            TierSpec::new("remote", 0.5),
            TierSpec::new("disk", 12.6),
        ])
        .unwrap();
        let costs = AccessCosts::for_ladder(0.05, &ladder);
        let common = BenefitInputs {
            ranking_heat_per_ms: 0.1,
            global_heat_per_ms: 10.0,
            last_copy: true, // irrelevant on an intermediate tier
            home_is_local: false,
            mem_tier: 0,
        };
        let b = benefit_ms(common, &costs);
        // 0.1 × (0.25 − 0.03): demotion to cxl, no altruism despite the
        // huge global heat, because the copy stays on the node.
        assert!((b - 0.1 * 0.22).abs() < 1e-9);
        // The last memory tier prices exactly like the classic formula.
        let last_tier = benefit_ms(
            BenefitInputs {
                mem_tier: 1,
                ..common
            },
            &costs,
        );
        assert!(last_tier > b * 10.0, "off-node drop dominates: {last_tier}");
    }
}
