//! Per-node disk: a FCFS facility with the page-read service time.

use dmm_sim::{Facility, SimTime};

use crate::params::DiskParams;

/// One node's local SCSI disk.
#[derive(Debug, Clone)]
pub struct Disk {
    facility: Facility,
    params: DiskParams,
    reads: u64,
}

impl Disk {
    /// Idle disk with the given characteristics.
    pub fn new(params: DiskParams) -> Self {
        Disk {
            facility: Facility::new("disk"),
            params,
            reads: 0,
        }
    }

    /// Queues one page read arriving at `now`; returns its completion time.
    pub fn read_page(&mut self, now: SimTime) -> SimTime {
        self.reads += 1;
        self.facility.reserve(now, self.params.page_read())
    }

    /// Number of page reads issued.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Disk utilization over `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.facility.utilization(now)
    }

    /// Mean queueing delay per read in milliseconds.
    pub fn mean_wait_ms(&self) -> f64 {
        self.facility.mean_wait_ms()
    }

    /// Histogram of per-read queueing waits (nanoseconds).
    pub fn wait_histogram(&self) -> &dmm_obs::Histogram {
        self.facility.wait_histogram()
    }

    /// Resets counters for post-warm-up measurement.
    pub fn reset_stats(&mut self) {
        self.reads = 0;
        self.facility.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmm_sim::SimDuration;

    #[test]
    fn reads_queue_fcfs() {
        let mut d = Disk::new(DiskParams::default());
        let t0 = SimTime::ZERO;
        let first = d.read_page(t0);
        let second = d.read_page(t0);
        assert_eq!(second.since(first), first.since(t0));
        assert_eq!(d.reads(), 2);
    }

    #[test]
    fn idle_gap_not_counted_busy() {
        let mut d = Disk::new(DiskParams::default());
        let done = d.read_page(SimTime::ZERO);
        let later = done + SimDuration::from_millis(100);
        d.read_page(later);
        // Two ~12.6 ms reads over >112 ms elapsed.
        assert!(d.utilization(later) < 0.25);
    }
}
