//! Per-node disk: a FCFS facility with the page-read service time.

use dmm_sim::{Facility, SimDuration, SimTime};

use crate::params::DiskParams;

/// A fault-injection window during which reads take `factor`× the normal
/// service time.
#[derive(Debug, Clone, Copy)]
struct StallWindow {
    from: SimTime,
    until: SimTime,
    factor: f64,
}

/// One node's local SCSI disk.
#[derive(Debug, Clone)]
pub struct Disk {
    facility: Facility,
    params: DiskParams,
    reads: u64,
    stalls: Vec<StallWindow>,
    stalled_reads: u64,
}

impl Disk {
    /// Idle disk with the given characteristics.
    pub fn new(params: DiskParams) -> Self {
        Disk {
            facility: Facility::new("disk"),
            params,
            reads: 0,
            stalls: Vec::new(),
            stalled_reads: 0,
        }
    }

    /// Adds a stall window: reads arriving in `[from, until)` are served
    /// `factor`× slower (fault injection; `factor ≥ 1`).
    pub fn add_stall_window(&mut self, from: SimTime, until: SimTime, factor: f64) {
        assert!(factor >= 1.0 && factor.is_finite());
        assert!(from < until);
        self.stalls.push(StallWindow {
            from,
            until,
            factor,
        });
    }

    /// Queues one page read arriving at `now`; returns its completion time.
    pub fn read_page(&mut self, now: SimTime) -> SimTime {
        self.read_page_split(now).0
    }

    /// Like [`read_page`](Self::read_page), but also returns the FCFS
    /// queue wait so span attribution can split queueing from service
    /// (service, including stall inflation, is `done - now - wait`).
    pub fn read_page_split(&mut self, now: SimTime) -> (SimTime, SimDuration) {
        self.reads += 1;
        let mut service = self.params.page_read();
        if let Some(w) = self.stalls.iter().find(|w| now >= w.from && now < w.until) {
            self.stalled_reads += 1;
            service = SimDuration::from_nanos((service.as_nanos() as f64 * w.factor) as u64);
        }
        self.facility.reserve_split(now, service)
    }

    /// Number of page reads issued.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of reads served inside a stall window.
    pub fn stalled_reads(&self) -> u64 {
        self.stalled_reads
    }

    /// Disk utilization over `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.facility.utilization(now)
    }

    /// Mean queueing delay per read in milliseconds.
    pub fn mean_wait_ms(&self) -> f64 {
        self.facility.mean_wait_ms()
    }

    /// Histogram of per-read queueing waits (nanoseconds).
    pub fn wait_histogram(&self) -> &dmm_obs::Histogram {
        self.facility.wait_histogram()
    }

    /// Resets counters for post-warm-up measurement.
    pub fn reset_stats(&mut self) {
        self.reads = 0;
        self.facility.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmm_sim::SimDuration;

    #[test]
    fn reads_queue_fcfs() {
        let mut d = Disk::new(DiskParams::default());
        let t0 = SimTime::ZERO;
        let first = d.read_page(t0);
        let second = d.read_page(t0);
        assert_eq!(second.since(first), first.since(t0));
        assert_eq!(d.reads(), 2);
    }

    #[test]
    fn idle_gap_not_counted_busy() {
        let mut d = Disk::new(DiskParams::default());
        let done = d.read_page(SimTime::ZERO);
        let later = done + SimDuration::from_millis(100);
        d.read_page(later);
        // Two ~12.6 ms reads over >112 ms elapsed.
        assert!(d.utilization(later) < 0.25);
    }

    #[test]
    fn stall_window_slows_reads_inside_it_only() {
        let mut d = Disk::new(DiskParams::default());
        let t1s = SimTime::ZERO + SimDuration::from_secs(1);
        let t2s = SimTime::ZERO + SimDuration::from_secs(2);
        d.add_stall_window(t1s, t2s, 4.0);
        let normal = d.read_page(SimTime::ZERO).since(SimTime::ZERO);
        let stalled = d.read_page(t1s).since(t1s);
        let after = d.read_page(t2s).since(t2s);
        assert_eq!(d.stalled_reads(), 1);
        assert_eq!(after, normal, "window over, normal service again");
        let ratio = stalled.as_millis_f64() / normal.as_millis_f64();
        assert!((ratio - 4.0).abs() < 1e-6, "stalled/normal = {ratio}");
    }
}
