//! The cache directory: who caches which page, last-copy status, and global
//! heat.
//!
//! The simulator is a single process, so the directory holds exact global
//! state; the *costs* of keeping it coherent are still charged: the
//! threshold-based dissemination protocol of \[27, 26\] sends a control message
//! to the page's home whenever the page's global heat estimate drifts by more
//! than a configured fraction from its last published value, and every
//! location change (copy added/removed, last-copy transitions) is a control
//! message too. The data plane asks the directory where copies live and
//! whether a local copy is the system-wide last one — the two inputs of the
//! §6 benefit formula.

use dmm_buffer::{ClassId, HeatEstimator, IdHashMap, PageId};
use dmm_sim::SimTime;

use crate::ids::NodeId;

/// Exact global cache state plus heat-dissemination bookkeeping.
#[derive(Debug, Clone)]
pub struct Directory {
    /// page → nodes currently caching a copy (small, usually ≤ N).
    holders: IdHashMap<PageId, Vec<NodeId>>,
    /// page → global (system-wide) heat estimator.
    global_heat: IdHashMap<PageId, HeatEstimator>,
    /// page → heat value as of its last dissemination message.
    published: IdHashMap<PageId, f64>,
    /// Per goal class: number of dedicated pools in the whole system. A
    /// class's heat is tracked only while this is non-zero (§6).
    dedicated_pools: Vec<u32>,
    heat_k: usize,
    publish_threshold: f64,
    /// Control messages the coherence protocol generated (charged by the
    /// data plane).
    publish_events: u64,
}

impl Directory {
    /// Empty directory for `goal_classes` goal classes.
    pub fn new(goal_classes: usize, heat_k: usize, publish_threshold: f64) -> Self {
        Directory {
            holders: IdHashMap::default(),
            global_heat: IdHashMap::default(),
            published: IdHashMap::default(),
            dedicated_pools: vec![0; goal_classes + 1],
            heat_k,
            publish_threshold,
            publish_events: 0,
        }
    }

    /// Nodes currently caching `page`.
    pub fn holders(&self, page: PageId) -> &[NodeId] {
        self.holders.get(&page).map_or(&[], Vec::as_slice)
    }

    /// Number of cached copies of `page`.
    pub fn copies(&self, page: PageId) -> usize {
        self.holders(page).len()
    }

    /// True if `node` holds the only cached copy of `page`.
    pub fn is_last_copy(&self, page: PageId, node: NodeId) -> bool {
        let h = self.holders(page);
        h.len() == 1 && h[0] == node
    }

    /// A caching node other than `requester`, preferring the one listed
    /// first (deterministic). Returns `None` if no other copy exists.
    pub fn pick_holder(&self, page: PageId, requester: NodeId) -> Option<NodeId> {
        self.holders(page).iter().copied().find(|&n| n != requester)
    }

    /// Registers a copy of `page` at `node`. Idempotent.
    pub fn add_copy(&mut self, page: PageId, node: NodeId) {
        let h = self.holders.entry(page).or_default();
        if !h.contains(&node) {
            h.push(node);
        }
    }

    /// Removes `node`'s copy. Returns the remaining copy count.
    pub fn remove_copy(&mut self, page: PageId, node: NodeId) -> usize {
        if let Some(h) = self.holders.get_mut(&page) {
            h.retain(|&n| n != node);
            let left = h.len();
            if left == 0 {
                self.holders.remove(&page);
            }
            left
        } else {
            0
        }
    }

    /// Records a system-wide access to `page` at `now`. Returns `true` when
    /// the threshold protocol would publish the new heat (the caller charges
    /// one control message to the page's home).
    pub fn record_access(&mut self, page: PageId, now: SimTime) -> bool {
        let k = self.heat_k;
        let est = self
            .global_heat
            .entry(page)
            .or_insert_with(|| HeatEstimator::new(k));
        est.record(now);
        let heat = est.heat_per_ms(now);
        let published = self.published.get(&page).copied().unwrap_or(0.0);
        let drift = (heat - published).abs();
        if drift > self.publish_threshold * published.max(1e-9) {
            self.published.insert(page, heat);
            self.publish_events += 1;
            true
        } else {
            false
        }
    }

    /// Global heat of `page` in accesses/ms.
    pub fn global_heat_per_ms(&self, page: PageId, now: SimTime) -> f64 {
        self.global_heat
            .get(&page)
            .map_or(0.0, |e| e.heat_per_ms(now))
    }

    /// Number of dissemination messages generated so far.
    pub fn publish_events(&self) -> u64 {
        self.publish_events
    }

    /// Called when a dedicated pool for `class` appears (`delta = +1`) or
    /// disappears (`delta = −1`) on some node.
    pub fn dedicated_pool_changed(&mut self, class: ClassId, delta: i32) {
        let c = &mut self.dedicated_pools[class.index()];
        if delta > 0 {
            *c += delta as u32;
        } else {
            *c = c.saturating_sub((-delta) as u32);
        }
    }

    /// True while at least one dedicated pool for `class` exists anywhere —
    /// the §6 condition for collecting that class's heat.
    pub fn class_tracked(&self, class: ClassId) -> bool {
        if class.is_no_goal() {
            return false;
        }
        self.dedicated_pools[class.index()] > 0
    }

    /// Debug invariant: no duplicate holders.
    pub fn check_invariants(&self) {
        for (page, h) in &self.holders {
            let mut sorted: Vec<NodeId> = h.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), h.len(), "duplicate holders for {page}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmm_buffer::NO_GOAL;

    fn ms(x: u64) -> SimTime {
        SimTime::from_nanos(x * 1_000_000)
    }

    #[test]
    fn copy_tracking_and_last_copy() {
        let mut d = Directory::new(2, 2, 0.2);
        d.add_copy(PageId(1), NodeId(0));
        assert!(d.is_last_copy(PageId(1), NodeId(0)));
        d.add_copy(PageId(1), NodeId(2));
        d.add_copy(PageId(1), NodeId(2)); // idempotent
        assert_eq!(d.copies(PageId(1)), 2);
        assert!(!d.is_last_copy(PageId(1), NodeId(0)));
        assert_eq!(d.pick_holder(PageId(1), NodeId(0)), Some(NodeId(2)));
        assert_eq!(d.pick_holder(PageId(1), NodeId(2)), Some(NodeId(0)));
        assert_eq!(d.remove_copy(PageId(1), NodeId(0)), 1);
        assert!(d.is_last_copy(PageId(1), NodeId(2)));
        assert_eq!(d.remove_copy(PageId(1), NodeId(2)), 0);
        assert_eq!(d.pick_holder(PageId(1), NodeId(0)), None);
        d.check_invariants();
    }

    #[test]
    fn first_access_publishes() {
        let mut d = Directory::new(1, 2, 0.2);
        assert!(d.record_access(PageId(1), ms(1)));
        assert_eq!(d.publish_events(), 1);
    }

    #[test]
    fn steady_heat_stops_publishing() {
        let mut d = Directory::new(1, 2, 0.5);
        // Perfectly regular accesses: after the window fills, heat is
        // constant and no further publishes occur.
        let mut publishes = 0;
        for i in 1..100u64 {
            if d.record_access(PageId(1), ms(i * 10)) {
                publishes += 1;
            }
        }
        assert!(publishes < 6, "published {publishes} times");
        assert!(d.global_heat_per_ms(PageId(1), ms(1000)) > 0.0);
    }

    #[test]
    fn class_tracking_counts_pools() {
        let mut d = Directory::new(2, 2, 0.2);
        assert!(!d.class_tracked(ClassId(1)));
        assert!(!d.class_tracked(NO_GOAL));
        d.dedicated_pool_changed(ClassId(1), 1);
        d.dedicated_pool_changed(ClassId(1), 1);
        assert!(d.class_tracked(ClassId(1)));
        d.dedicated_pool_changed(ClassId(1), -1);
        assert!(d.class_tracked(ClassId(1)));
        d.dedicated_pool_changed(ClassId(1), -1);
        assert!(!d.class_tracked(ClassId(1)));
        // Underflow-safe.
        d.dedicated_pool_changed(ClassId(1), -1);
        assert!(!d.class_tracked(ClassId(1)));
    }
}
