//! Standalone driver for a [`DataPlane`] outside a full [`dmm_sim::Engine`]
//! deployment — the one event loop shared by unit tests, property tests and
//! benches that want to run the access protocol to quiescence without
//! wiring up a whole control plane.

use dmm_sim::{Engine, Handler, Scheduler, SimDuration, SimTime, WindowHandler};

use crate::op::OpCompletion;
use crate::plane::{ClusterEvent, DataPlane};

/// Hard ceiling on delivered events per drive; hitting it means the access
/// protocol is not terminating.
const EVENT_STORM_LIMIT: u64 = 200_000;

struct Driver<'a> {
    plane: &'a mut DataPlane,
    done: Vec<OpCompletion>,
}

impl Handler<ClusterEvent> for Driver<'_> {
    fn handle(&mut self, now: SimTime, event: ClusterEvent, sched: &mut Scheduler<ClusterEvent>) {
        let out = self.plane.handle(now, event);
        if let Some((t, e)) = out.schedule {
            sched.at(t, e); // asserts t >= now: events must not go backwards
        }
        if let Some(c) = out.completed {
            self.done.push(c);
        }
    }
}

impl WindowHandler<ClusterEvent> for Driver<'_> {
    fn classify(&self, event: &ClusterEvent) -> Option<u32> {
        self.plane.classify(event)
    }

    fn execute_run(
        &mut self,
        run: &[(SimTime, ClusterEvent)],
        workers: usize,
        out: &mut Vec<(SimTime, ClusterEvent)>,
    ) {
        self.plane.execute_window(run, workers, out);
    }

    fn lookahead(&self, event: &ClusterEvent) -> Option<SimDuration> {
        self.plane.lookahead(event)
    }
}

/// Delivers `start` and every follow-up the plane schedules, in
/// (time, scheduling-order) order, until no events remain; returns the
/// operation completions observed. Panics if the protocol fails to
/// terminate within a generous event budget.
pub fn drive_to_quiescence(
    plane: &mut DataPlane,
    start: impl IntoIterator<Item = (SimTime, ClusterEvent)>,
) -> Vec<OpCompletion> {
    let mut eng = Engine::new();
    for (t, e) in start {
        eng.scheduler().at(t, e);
    }
    let mut driver = Driver {
        plane,
        done: Vec::new(),
    };
    eng.run_events(EVENT_STORM_LIMIT, &mut driver);
    assert_eq!(
        eng.scheduler().pending(),
        0,
        "event storm: protocol does not terminate"
    );
    driver.done
}

/// [`drive_to_quiescence`] through the conservative-window parallel
/// executor with a `workers`-thread budget. Produces identical completions
/// (and identical plane state) to the sequential driver at any worker
/// count — the contract the trace-determinism suite pins.
pub fn drive_to_quiescence_windowed(
    plane: &mut DataPlane,
    start: impl IntoIterator<Item = (SimTime, ClusterEvent)>,
    workers: usize,
) -> Vec<OpCompletion> {
    let window = plane.params().conservative_window();
    let mut eng = Engine::new();
    for (t, e) in start {
        eng.scheduler().at(t, e);
    }
    let mut driver = Driver {
        plane,
        done: Vec::new(),
    };
    eng.run_until_windowed(SimTime::MAX, window, workers, &mut driver);
    assert_eq!(
        eng.scheduler().pending(),
        0,
        "event storm: protocol does not terminate"
    );
    driver.done
}
