//! Hardware and protocol parameters.
//!
//! Defaults follow the paper's §7.1 setup (3 nodes, 100 MIPS CPUs,
//! 100 Mbit/s LAN, 2 MB cache per node, 4 KB pages) with typical late-1990s
//! SCSI disk characteristics for the constants the paper does not publish
//! (see DESIGN.md "Substitutions").

use dmm_buffer::{PolicySpec, TierPolicy};
use dmm_obs::SpanMode;
use dmm_sim::SimDuration;

use crate::homes::PlacementSpec;
use crate::tier::TierLadder;

/// Size of one data page in bytes (§7.1: 4 KByte pages).
pub const PAGE_BYTES: u64 = 4096;

/// Disk service model: one page read costs
/// `avg_seek + avg_rotation + page_transfer`, served FCFS per node.
#[derive(Debug, Clone, Copy)]
pub struct DiskParams {
    /// Average seek time.
    pub avg_seek: SimDuration,
    /// Average rotational delay.
    pub avg_rotation: SimDuration,
    /// Sustained transfer rate in bytes per second.
    pub transfer_bytes_per_sec: u64,
}

impl Default for DiskParams {
    fn default() -> Self {
        // A high-end SCSI disk circa 1998 (10k rpm class): 5.2 ms seek,
        // 2.99 ms rotational delay, 18 MB/s sustained. Chosen so that even
        // the worst-case partitioning (one class forced to miss everything)
        // keeps the disks below saturation at the paper-scale workload.
        DiskParams {
            avg_seek: SimDuration::from_micros(5_200),
            avg_rotation: SimDuration::from_micros(2_990),
            transfer_bytes_per_sec: 18_000_000,
        }
    }
}

impl DiskParams {
    /// Service time for reading one page.
    pub fn page_read(&self) -> SimDuration {
        let transfer_ns = PAGE_BYTES.saturating_mul(1_000_000_000) / self.transfer_bytes_per_sec;
        self.avg_seek + self.avg_rotation + SimDuration::from_nanos(transfer_ns)
    }
}

/// Interconnect topology: the paper's single shared medium, or a switched
/// fabric with one full-duplex link per node.
///
/// Under [`FabricSpec::SharedMedium`] every message serializes through one
/// FCFS facility — aggregate bandwidth is fixed at `bits_per_sec` no matter
/// how many nodes contend, which is exactly the §7.1 model and the first
/// N = 64 scale wall. Under [`FabricSpec::Switched`] each node owns a TX and
/// an RX link of `bits_per_sec` each (store-and-forward through the switch),
/// so bisection bandwidth grows with `N`; an optional core-capacity facility
/// models an oversubscribed switch fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FabricSpec {
    /// One shared FCFS medium (the paper's LAN).
    #[default]
    SharedMedium,
    /// Per-node full-duplex links through a switch.
    Switched {
        /// Aggregate capacity of the switch core in bits per second, shared
        /// by all messages in flight. `None` models a non-blocking switch.
        bisection_bits_per_sec: Option<u64>,
    },
}

/// Network model (§7.1: "fast local network, transfer-rate of 100 Mbit/s").
/// Each message occupies its facility (the shared medium, or a TX and an RX
/// link) for `bytes·8/bandwidth` plus a fixed per-message latency.
#[derive(Debug, Clone, Copy)]
pub struct NetParams {
    /// Bandwidth in bits per second (of the medium, or of each link).
    pub bits_per_sec: u64,
    /// Fixed per-message latency (propagation + protocol stack).
    pub per_message_latency: SimDuration,
    /// Size of a control/request message in bytes.
    pub request_bytes: u64,
    /// Header bytes added to a page transfer.
    pub page_header_bytes: u64,
    /// Interconnect topology (default: the paper's shared medium).
    pub fabric: FabricSpec,
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams {
            bits_per_sec: 100_000_000,
            per_message_latency: SimDuration::from_micros(50),
            request_bytes: 128,
            page_header_bytes: 128,
            fabric: FabricSpec::default(),
        }
    }
}

impl NetParams {
    /// Medium occupancy for a message of `bytes`.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos(bytes.saturating_mul(8_000_000_000) / self.bits_per_sec)
    }
}

/// CPU cost model (§7.1: 100 MIPS). Costs are instruction counts.
#[derive(Debug, Clone, Copy)]
pub struct CpuParams {
    /// Node speed in instructions per second.
    pub mips: u64,
    /// Buffer lookup + hit bookkeeping per page access.
    pub lookup_instr: u64,
    /// Handling one incoming request/forward at a serving node.
    pub serve_instr: u64,
    /// Installing a fetched page (frame copy + bookkeeping).
    pub install_instr: u64,
}

impl Default for CpuParams {
    fn default() -> Self {
        CpuParams {
            mips: 100,
            lookup_instr: 3_000,
            serve_instr: 5_000,
            install_instr: 3_000,
        }
    }
}

impl CpuParams {
    /// Duration of `instr` instructions.
    pub fn time(&self, instr: u64) -> SimDuration {
        SimDuration::from_nanos(instr.saturating_mul(1_000) / self.mips)
    }

    /// Lookup cost.
    pub fn lookup(&self) -> SimDuration {
        self.time(self.lookup_instr)
    }
    /// Serve cost.
    pub fn serve(&self) -> SimDuration {
        self.time(self.serve_instr)
    }
    /// Install cost.
    pub fn install(&self) -> SimDuration {
        self.time(self.install_instr)
    }
}

/// How the §6 cost-based benefits are kept current as heat decays between
/// accesses. Irrelevant for the other policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RepricingMode {
    /// Re-price every resident page on every node once per observation
    /// interval (the original reference implementation): simple, always
    /// current, O(total resident pages · log pool) per interval.
    Eager,
    /// Epoch-based lazy invalidation: benefits carry the epoch they were
    /// priced at, hits invalidate in O(1), and only stale heap minima are
    /// re-priced right before an eviction decision. A per-epoch
    /// multiplicative decay keeps stale over-estimates from pinning cold
    /// pages. Per-interval cost drops to O(evictions · log pool).
    #[default]
    Lazy,
}

/// Full cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterParams {
    /// Number of nodes `N`.
    pub nodes: usize,
    /// Buffer frames per node (512 = the paper's 2 MB of 4 KB pages).
    pub buffer_pages_per_node: usize,
    /// Database size in pages (`M`, §7.1: 2000).
    pub db_pages: u32,
    /// Number of goal classes `K`.
    pub goal_classes: usize,
    /// Replacement policy for every pool.
    pub policy: PolicySpec,
    /// Benefit maintenance strategy for the cost-based policy.
    pub repricing: RepricingMode,
    /// LRU-K window used for heat estimation (§6 uses LRU-k).
    pub heat_k: usize,
    /// Relative change of a page's global heat that triggers a dissemination
    /// message (threshold-based protocol of \[27, 26\]).
    pub heat_publish_threshold: f64,
    /// Disk model.
    pub disk: DiskParams,
    /// Network model.
    pub net: NetParams,
    /// CPU model.
    pub cpu: CpuParams,
    /// Operation-level span accumulation (per-class × per-stage response
    /// time attribution). [`SpanMode::Off`] by default: no arena traffic,
    /// one branch per attribution point.
    pub spans: SpanMode,
    /// Page-home placement scheme.
    pub placement: PlacementSpec,
    /// The storage hierarchy. The default three-rung ladder reproduces the
    /// paper's fixed local/remote/disk model exactly; extended ladders add
    /// capacity-capped intermediate memory tiers with demotion/promotion.
    pub tiers: TierLadder,
    /// Placement policy across the local memory tiers of an extended
    /// ladder. Irrelevant for the default ladder.
    pub tier_policy: TierPolicy,
    /// Lets the windowed executor advance each parallel window past the
    /// conservative minimum hop for events whose follow-up delay is known at
    /// schedule time (a served request cannot produce anything before its
    /// CPU service completes). Purely a wall-clock optimization: the event
    /// order — and therefore every trace byte — is unchanged.
    pub lookahead: bool,
}

impl Default for ClusterParams {
    fn default() -> Self {
        ClusterParams {
            nodes: 3,
            buffer_pages_per_node: 512, // 2 MB / 4 KB
            db_pages: 2000,
            goal_classes: 1,
            policy: PolicySpec::CostBased,
            repricing: RepricingMode::default(),
            heat_k: 2,
            heat_publish_threshold: 0.2,
            disk: DiskParams::default(),
            net: NetParams::default(),
            cpu: CpuParams::default(),
            spans: SpanMode::default(),
            placement: PlacementSpec::default(),
            tiers: TierLadder::default(),
            tier_policy: TierPolicy::default(),
            lookahead: true,
        }
    }
}

impl ClusterParams {
    /// Conservative parallel-execution window: no protocol step can
    /// schedule a follow-up event sooner than the cheapest single hop —
    /// the smallest of the CPU step costs and the fixed per-message network
    /// latency. Events closer together than this that touch *different*
    /// nodes are causally independent, which is what licenses the windowed
    /// executor (`dmm-sim`'s `ExecMode::Windowed`) to run them in parallel.
    pub fn conservative_window(&self) -> SimDuration {
        let cpu_min = self
            .cpu
            .lookup()
            .min(self.cpu.serve())
            .min(self.cpu.install());
        cpu_min.min(self.net.per_message_latency)
    }

    /// Per-node frame capacity of each local memory tier, with tier 0
    /// inheriting `buffer_pages_per_node` when the ladder leaves it unset.
    pub fn memory_tier_frames(&self) -> Vec<usize> {
        self.tiers.memory_frames(self.buffer_pages_per_node)
    }

    /// Total local memory frames per node, summed over the memory tiers.
    /// Equals `buffer_pages_per_node` for the default ladder.
    pub fn local_frames_per_node(&self) -> usize {
        self.memory_tier_frames().iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_page_read_is_disk_bound() {
        let d = DiskParams::default();
        let t = d.page_read().as_millis_f64();
        // ≈ 5.2 + 2.99 + 0.23 ms.
        assert!((t - 8.42).abs() < 0.05, "page read {t} ms");
    }

    #[test]
    fn network_page_transfer_is_much_faster_than_disk() {
        let n = NetParams::default();
        let page = n.transfer_time(PAGE_BYTES + n.page_header_bytes);
        assert!(page.as_millis_f64() < 0.5);
        assert!(page.as_millis_f64() > 0.2);
        let d = DiskParams::default();
        assert!(d.page_read().as_nanos() > 10 * page.as_nanos());
        // Worst-case stability at the base workload: all accesses missing
        // must keep each disk below ~85% utilization.
        let worst_reads_per_ms = 0.024 * 3.0 * 4.0 / 3.0;
        let rho = worst_reads_per_ms * d.page_read().as_millis_f64();
        assert!(rho < 0.85, "worst-case disk utilization {rho}");
    }

    #[test]
    fn cpu_costs_are_tens_of_microseconds() {
        let c = CpuParams::default();
        assert_eq!(c.lookup(), SimDuration::from_micros(30));
        assert_eq!(c.serve(), SimDuration::from_micros(50));
    }

    #[test]
    fn defaults_match_paper_setup() {
        let p = ClusterParams::default();
        assert_eq!(p.nodes, 3);
        assert_eq!(p.buffer_pages_per_node * PAGE_BYTES as usize, 2 << 20);
        assert_eq!(p.db_pages, 2000);
        assert_eq!(p.placement, PlacementSpec::RoundRobin);
        assert_eq!(p.net.fabric, FabricSpec::SharedMedium);
        assert!(p.lookahead);
    }

    #[test]
    fn conservative_window_is_the_cheapest_hop() {
        let p = ClusterParams::default();
        // min(lookup 30µs, serve 50µs, install 30µs, net latency 50µs).
        assert_eq!(p.conservative_window(), SimDuration::from_micros(30));
    }
}
