//! Seeded consistent-hash ring with virtual nodes.
//!
//! The ring places `vnodes` points per physical node on a 64-bit circle
//! using a deterministic seeded hash; a key's **primary** owner is the node
//! of the first point at or clockwise-after the key's own hash, and its
//! **replica set** of degree `r` is the first `r` *distinct* nodes met on
//! that walk. Two properties make this the placement substrate for
//! hotness-aware homes ([`crate::homes`]):
//!
//! * **balance** — with `V` virtual nodes per physical node the arc share
//!   of each node concentrates around `1/N` (relative spread ≈ `1/√V`), so
//!   uniform key traffic lands near-uniformly on nodes;
//! * **minimal reassignment** — adding or removing a node only moves the
//!   keys whose clockwise successor arcs belonged to that node's points;
//!   every other key keeps its owner. The property tests in
//!   `crates/cluster/tests/proptests.rs` pin both.
//!
//! Everything is derived from `(seed, node, vnode)` with a splitmix64-style
//! mix, so a ring is a pure function of its construction parameters —
//! required by the byte-identical-trace contract of the simulator.

use crate::ids::NodeId;

/// Hard cap on the per-key replication degree (the stack buffers used by
/// the allocation-free replica walk are sized by it).
pub const MAX_RING_REPLICAS: usize = 8;

/// Finalizing 64-bit mixer (splitmix64): every input bit avalanches.
#[inline]
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A consistent-hash ring over a fixed set of physical nodes.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Ring points sorted by hash position: `(position, node)`.
    points: Vec<(u64, u16)>,
    /// Number of distinct physical nodes on the ring.
    nodes: usize,
    seed: u64,
}

impl HashRing {
    /// Ring over nodes `0..nodes`, `vnodes` points each.
    pub fn new(nodes: usize, vnodes: u16, seed: u64) -> Self {
        let ids: Vec<u16> = (0..nodes).map(|n| n as u16).collect();
        Self::from_nodes(&ids, vnodes, seed)
    }

    /// Ring over an explicit node set (used by the reassignment tests to
    /// model joins and leaves; `Homes` always uses the dense `0..N` set).
    pub fn from_nodes(node_ids: &[u16], vnodes: u16, seed: u64) -> Self {
        assert!(!node_ids.is_empty(), "ring needs at least one node");
        assert!(vnodes > 0, "ring needs at least one virtual node per node");
        let mut points = Vec::with_capacity(node_ids.len() * vnodes as usize);
        for &n in node_ids {
            for v in 0..vnodes {
                let pos = mix64(seed ^ (((n as u64) << 32) | v as u64));
                points.push((pos, n));
            }
        }
        // Position ties (astronomically rare) break by node id so the ring
        // is a pure function of its inputs, not of sort stability.
        points.sort_unstable();
        HashRing {
            points,
            nodes: node_ids.len(),
            seed,
        }
    }

    /// Number of distinct physical nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Ring position of a key.
    #[inline]
    pub fn key_position(&self, key: u64) -> u64 {
        mix64(self.seed.rotate_left(32) ^ key)
    }

    /// Index of the first ring point at or clockwise-after `pos`.
    #[inline]
    fn successor_index(&self, pos: u64) -> usize {
        let i = self.points.partition_point(|&(p, _)| p < pos);
        if i == self.points.len() {
            0
        } else {
            i
        }
    }

    /// Primary owner of `key`.
    pub fn primary(&self, key: u64) -> NodeId {
        let i = self.successor_index(self.key_position(key));
        NodeId(self.points[i].1)
    }

    /// The first `r` *distinct* nodes clockwise from `key`'s position,
    /// written into `buf` (primary first). Returns the count actually
    /// found: `min(r, nodes)`. Allocation-free.
    pub fn replicas(&self, key: u64, r: usize, buf: &mut [u16; MAX_RING_REPLICAS]) -> usize {
        let want = r.clamp(1, MAX_RING_REPLICAS.min(self.nodes));
        let start = self.successor_index(self.key_position(key));
        let mut found = 0;
        for step in 0..self.points.len() {
            let (_, node) = self.points[(start + step) % self.points.len()];
            if !buf[..found].contains(&node) {
                buf[found] = node;
                found += 1;
                if found == want {
                    break;
                }
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_is_deterministic() {
        let a = HashRing::new(8, 64, 7);
        let b = HashRing::new(8, 64, 7);
        for key in 0..500 {
            assert_eq!(a.primary(key), b.primary(key));
        }
    }

    #[test]
    fn different_seeds_give_different_rings() {
        let a = HashRing::new(8, 64, 1);
        let b = HashRing::new(8, 64, 2);
        let moved = (0..1000).filter(|&k| a.primary(k) != b.primary(k)).count();
        assert!(moved > 500, "only {moved}/1000 keys moved across seeds");
    }

    #[test]
    fn replica_walk_yields_distinct_nodes_primary_first() {
        let ring = HashRing::new(6, 32, 3);
        let mut buf = [0u16; MAX_RING_REPLICAS];
        for key in 0..200 {
            let found = ring.replicas(key, 4, &mut buf);
            assert_eq!(found, 4);
            assert_eq!(NodeId(buf[0]), ring.primary(key));
            let mut seen = buf[..found].to_vec();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), found, "duplicate replica for key {key}");
        }
    }

    #[test]
    fn replica_count_saturates_at_node_count() {
        let ring = HashRing::new(3, 16, 0);
        let mut buf = [0u16; MAX_RING_REPLICAS];
        assert_eq!(ring.replicas(42, 8, &mut buf), 3);
    }

    #[test]
    fn single_node_ring_owns_everything() {
        let ring = HashRing::new(1, 8, 9);
        for key in 0..50 {
            assert_eq!(ring.primary(key), NodeId(0));
        }
    }
}
