//! The data-driven storage hierarchy: an ordered ladder of [`TierSpec`]s.
//!
//! The paper's cost model is a fixed three-rung ladder — local buffer,
//! remote buffer, disk. This module generalizes it into an arbitrary
//! K-level hierarchy (e.g. DRAM over CXL-style far memory over remote
//! memory over disk) described by data instead of an enum: each rung names
//! itself, quotes its hit latency, and — for the intermediate memory tiers —
//! caps its per-node capacity in frames and optionally its bandwidth.
//!
//! Ladder shape (validated by [`TierLadder::new`]):
//!
//! * positions `0 .. K−2` are **local memory tiers**, fastest first. Tier 0
//!   may leave `frames` unset to inherit the node's configured buffer size;
//!   every deeper memory tier must pin a nonzero capacity.
//! * position `K−2` is the **remote rung** — another node's memory over the
//!   LAN. Unbounded (`frames` unset): capacity lives on the other nodes.
//! * position `K−1` is the **disk rung**. Unbounded: every page has a disk
//!   home.
//!
//! The default ladder is exactly the paper's: `local` (0.03 ms) / `remote`
//! (0.5 ms) / `disk` (12.6 ms). Its derived cost-slot names and priors are
//! bit-identical to the historical hardcoded ones, which is what keeps
//! default-configuration traces byte-identical (DESIGN.md §5i).

use dmm_sim::SimDuration;

use crate::costs::CostSlot;
use crate::params::PAGE_BYTES;

/// Index of a tier within its [`TierLadder`] (0 = fastest local memory;
/// the last two indices are the remote and disk rungs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TierId(pub u8);

impl TierId {
    /// The tier's position as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One rung of the storage hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct TierSpec {
    /// Stable snake-case name; used to derive metric and trace keys.
    pub name: String,
    /// Unloaded access latency of a hit in this tier, milliseconds.
    pub hit_ms: f64,
    /// Per-node capacity in page frames. `None` on tier 0 inherits the
    /// node's configured buffer size; must be `None` on the remote and disk
    /// rungs (their capacity is not a local property).
    pub frames: Option<usize>,
    /// Sustained transfer bandwidth in bytes/second, if the tier is
    /// bandwidth-capped (CXL-style far memory). Adds a per-page transfer
    /// term to the tier's service time.
    pub bandwidth_bytes_per_sec: Option<u64>,
}

impl TierSpec {
    /// A tier with `name` and `hit_ms`, no pinned capacity and no bandwidth
    /// cap. Chain [`TierSpec::frames`] / [`TierSpec::bandwidth`] to refine.
    pub fn new(name: impl Into<String>, hit_ms: f64) -> Self {
        TierSpec {
            name: name.into(),
            hit_ms,
            frames: None,
            bandwidth_bytes_per_sec: None,
        }
    }

    /// Pins the per-node capacity to `frames` pages.
    pub fn frames(mut self, frames: usize) -> Self {
        self.frames = Some(frames);
        self
    }

    /// Caps the tier's bandwidth (bytes per second).
    pub fn bandwidth(mut self, bytes_per_sec: u64) -> Self {
        self.bandwidth_bytes_per_sec = Some(bytes_per_sec);
        self
    }

    /// Service time of fetching one page from this tier: the hit latency
    /// plus the page-transfer time when the tier is bandwidth-capped.
    pub fn service_time(&self) -> SimDuration {
        let lat = SimDuration::from_nanos((self.hit_ms * 1_000_000.0).round() as u64);
        match self.bandwidth_bytes_per_sec {
            Some(b) => lat + SimDuration::from_nanos(PAGE_BYTES.saturating_mul(1_000_000_000) / b),
            None => lat,
        }
    }
}

/// Hard cap on the ladder length: cost slots index with a `u8` and every
/// per-tier structure is sized by this.
pub const MAX_TIERS: usize = 16;

/// A validated, ordered storage hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct TierLadder {
    tiers: Vec<TierSpec>,
}

impl Default for TierLadder {
    /// The paper's three-rung NOW hierarchy; see the module docs for why
    /// these exact values are load-bearing.
    fn default() -> Self {
        TierLadder::new(vec![
            TierSpec::new("local", 0.03),
            TierSpec::new("remote", 0.5),
            TierSpec::new("disk", 12.6),
        ])
        .expect("default ladder is valid")
    }
}

impl TierLadder {
    /// Validates and constructs a ladder. Errors describe the violated
    /// rule: at least 3 and at most [`MAX_TIERS`] tiers, unique nonempty
    /// names, strictly increasing positive finite latencies, nonzero pinned
    /// capacities on intermediate memory tiers, unbounded remote/disk rungs,
    /// positive bandwidth caps.
    pub fn new(tiers: Vec<TierSpec>) -> Result<Self, String> {
        if tiers.len() < 3 {
            return Err(format!(
                "a tier ladder needs at least 3 rungs (local memory, remote, disk), got {}",
                tiers.len()
            ));
        }
        if tiers.len() > MAX_TIERS {
            return Err(format!(
                "a tier ladder supports at most {MAX_TIERS} rungs, got {}",
                tiers.len()
            ));
        }
        let mem_tiers = tiers.len() - 2;
        for (i, t) in tiers.iter().enumerate() {
            if t.name.is_empty() {
                return Err(format!("tier {i} has an empty name"));
            }
            if tiers[..i].iter().any(|o| o.name == t.name) {
                return Err(format!("duplicate tier name {:?}", t.name));
            }
            if t.hit_ms <= 0.0 || !t.hit_ms.is_finite() {
                return Err(format!(
                    "tier {:?} needs a positive finite hit latency, got {} ms",
                    t.name, t.hit_ms
                ));
            }
            if i > 0 && tiers[i - 1].hit_ms >= t.hit_ms {
                return Err(format!(
                    "tier latencies must be strictly increasing: {:?} ({} ms) is not \
                     slower than {:?} ({} ms)",
                    t.name,
                    t.hit_ms,
                    tiers[i - 1].name,
                    tiers[i - 1].hit_ms
                ));
            }
            if let Some(b) = t.bandwidth_bytes_per_sec {
                if b == 0 {
                    return Err(format!("tier {:?} has a zero bandwidth cap", t.name));
                }
            }
            match t.frames {
                Some(0) => {
                    return Err(format!("tier {:?} has zero capacity", t.name));
                }
                Some(_) if i >= mem_tiers => {
                    return Err(format!(
                        "tier {:?} is the {} rung; its capacity is not a local property \
                         and must be left unset",
                        t.name,
                        if i == mem_tiers { "remote" } else { "disk" }
                    ));
                }
                None if i > 0 && i < mem_tiers => {
                    return Err(format!(
                        "intermediate memory tier {:?} must pin a nonzero frame capacity",
                        t.name
                    ));
                }
                _ => {}
            }
        }
        Ok(TierLadder { tiers })
    }

    /// Number of rungs, including the remote and disk rungs.
    pub fn len(&self) -> usize {
        self.tiers.len()
    }

    /// Ladders are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// All rungs, fastest first.
    pub fn tiers(&self) -> &[TierSpec] {
        &self.tiers
    }

    /// The rung at `tier`.
    pub fn get(&self, tier: TierId) -> &TierSpec {
        &self.tiers[tier.index()]
    }

    /// Number of *local memory* tiers (everything above the remote rung).
    pub fn num_memory_tiers(&self) -> usize {
        self.tiers.len() - 2
    }

    /// The remote rung.
    pub fn remote(&self) -> &TierSpec {
        &self.tiers[self.tiers.len() - 2]
    }

    /// The disk rung.
    pub fn disk(&self) -> &TierSpec {
        &self.tiers[self.tiers.len() - 1]
    }

    /// True when the ladder goes beyond the paper's single local memory
    /// tier. Extended ladders unlock the tier trace fields and the
    /// promotion/demotion protocol; the default ladder keeps the exact
    /// historical behaviour (and byte-identical traces).
    pub fn is_extended(&self) -> bool {
        self.num_memory_tiers() > 1
    }

    /// Per-node frame capacity of every memory tier, with tier 0 inheriting
    /// `default_tier0_frames` when unpinned.
    pub fn memory_frames(&self, default_tier0_frames: usize) -> Vec<usize> {
        (0..self.num_memory_tiers())
            .map(|t| match self.tiers[t].frames {
                Some(f) => f,
                None => default_tier0_frames,
            })
            .collect()
    }

    /// Number of cost slots the ladder prices: one hit slot per memory
    /// tier, the remote-hit slot, and the local/remote disk pair.
    pub fn num_slots(&self) -> usize {
        self.num_memory_tiers() + 3
    }

    /// Cost slot of a hit in memory tier `t`.
    pub fn hit_slot(&self, t: usize) -> CostSlot {
        debug_assert!(t < self.num_memory_tiers());
        CostSlot(t as u8)
    }

    /// Cost slot of a remote-memory hit.
    pub fn remote_hit_slot(&self) -> CostSlot {
        CostSlot(self.num_memory_tiers() as u8)
    }

    /// Cost slot of a local-disk read.
    pub fn local_disk_slot(&self) -> CostSlot {
        CostSlot(self.num_memory_tiers() as u8 + 1)
    }

    /// Cost slot of a remote-disk read.
    pub fn remote_disk_slot(&self) -> CostSlot {
        CostSlot(self.num_memory_tiers() as u8 + 2)
    }

    /// Stable metric/trace name per cost slot: `{tier}_hit` for the memory
    /// tiers and the remote rung, `local_{disk}` / `remote_{disk}` for the
    /// disk pair. The default ladder yields the historical
    /// `local_hit` / `remote_hit` / `local_disk` / `remote_disk`.
    pub fn slot_names(&self) -> Vec<String> {
        let mem = self.num_memory_tiers();
        let mut names: Vec<String> = (0..mem)
            .map(|t| format!("{}_hit", self.tiers[t].name))
            .collect();
        names.push(format!("{}_hit", self.remote().name));
        names.push(format!("local_{}", self.disk().name));
        names.push(format!("remote_{}", self.disk().name));
        names
    }

    /// Conservative cost priors per slot, from the quoted latencies: each
    /// memory tier's hit latency, the remote rung's, the disk rung's, and
    /// disk + remote for a remote-disk read (the ship adds a network hop).
    /// For the default ladder this reproduces the historical priors
    /// `[0.03, 0.5, 12.6, 13.1]` bit-exactly.
    pub fn slot_priors(&self) -> Vec<f64> {
        let mem = self.num_memory_tiers();
        let mut priors: Vec<f64> = (0..mem).map(|t| self.tiers[t].hit_ms).collect();
        priors.push(self.remote().hit_ms);
        priors.push(self.disk().hit_ms);
        priors.push(self.disk().hit_ms + self.remote().hit_ms);
        priors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn four_tier() -> TierLadder {
        TierLadder::new(vec![
            TierSpec::new("dram", 0.03),
            TierSpec::new("cxl", 0.25).frames(64).bandwidth(30_000_000),
            TierSpec::new("remote", 0.5),
            TierSpec::new("disk", 12.6),
        ])
        .expect("valid 4-tier ladder")
    }

    #[test]
    fn default_ladder_reproduces_historical_slots() {
        let l = TierLadder::default();
        assert_eq!(l.num_memory_tiers(), 1);
        assert!(!l.is_extended());
        assert_eq!(
            l.slot_names(),
            vec!["local_hit", "remote_hit", "local_disk", "remote_disk"]
        );
        // Bit-exact: these priors seed the cost estimator, which prices the
        // first evictions of every run — any drift breaks byte-identical
        // traces.
        let priors = l.slot_priors();
        let historical = [0.03f64, 0.5, 12.6, 13.1];
        for (p, h) in priors.iter().zip(historical) {
            assert_eq!(p.to_bits(), h.to_bits(), "prior {p} != historical {h}");
        }
        assert_eq!(l.memory_frames(512), vec![512]);
    }

    #[test]
    fn extended_ladder_layout() {
        let l = four_tier();
        assert_eq!(l.num_memory_tiers(), 2);
        assert!(l.is_extended());
        assert_eq!(l.memory_frames(512), vec![512, 64]);
        assert_eq!(
            l.slot_names(),
            vec![
                "dram_hit",
                "cxl_hit",
                "remote_hit",
                "local_disk",
                "remote_disk"
            ]
        );
        assert_eq!(l.hit_slot(1), CostSlot(1));
        assert_eq!(l.remote_hit_slot(), CostSlot(2));
        assert_eq!(l.remote_disk_slot(), CostSlot(4));
    }

    #[test]
    fn bandwidth_cap_extends_service_time() {
        let l = four_tier();
        let cxl = &l.tiers()[1];
        let uncapped = TierSpec::new("x", 0.25).service_time();
        // 4096 B at 30 MB/s ≈ 136 µs on top of the 250 µs latency.
        assert!(cxl.service_time() > uncapped);
        let extra = cxl.service_time().as_nanos() - uncapped.as_nanos();
        assert_eq!(extra, 4096 * 1_000_000_000 / 30_000_000);
    }

    #[test]
    fn validation_rejects_bad_ladders() {
        let err = |tiers: Vec<TierSpec>| TierLadder::new(tiers).unwrap_err();
        assert!(err(vec![TierSpec::new("a", 1.0), TierSpec::new("b", 2.0)]).contains("at least 3"));
        assert!(err((0..17)
            .map(|i| TierSpec::new(format!("t{i}"), 1.0 + i as f64).frames(1))
            .collect())
        .contains("at most 16"));
        // Non-monotone latencies.
        assert!(err(vec![
            TierSpec::new("a", 0.5),
            TierSpec::new("b", 0.5),
            TierSpec::new("c", 1.0),
        ])
        .contains("strictly increasing"));
        // Zero capacity.
        assert!(err(vec![
            TierSpec::new("a", 0.1).frames(0),
            TierSpec::new("b", 0.5),
            TierSpec::new("c", 1.0),
        ])
        .contains("zero capacity"));
        // Intermediate memory tier without a pinned capacity.
        assert!(err(vec![
            TierSpec::new("a", 0.1),
            TierSpec::new("b", 0.2),
            TierSpec::new("c", 0.5),
            TierSpec::new("d", 1.0),
        ])
        .contains("pin a nonzero frame capacity"));
        // Capacity on the remote/disk rungs.
        assert!(err(vec![
            TierSpec::new("a", 0.1),
            TierSpec::new("b", 0.5).frames(8),
            TierSpec::new("c", 1.0),
        ])
        .contains("remote"));
        // Duplicate names, empty names, bad latencies, zero bandwidth.
        assert!(err(vec![
            TierSpec::new("a", 0.1),
            TierSpec::new("a", 0.5),
            TierSpec::new("c", 1.0),
        ])
        .contains("duplicate"));
        assert!(err(vec![
            TierSpec::new("", 0.1),
            TierSpec::new("b", 0.5),
            TierSpec::new("c", 1.0),
        ])
        .contains("empty name"));
        assert!(err(vec![
            TierSpec::new("a", -0.1),
            TierSpec::new("b", 0.5),
            TierSpec::new("c", 1.0),
        ])
        .contains("positive finite"));
        assert!(err(vec![
            TierSpec::new("a", 0.1).bandwidth(0),
            TierSpec::new("b", 0.5),
            TierSpec::new("c", 1.0),
        ])
        .contains("bandwidth"));
    }
}
