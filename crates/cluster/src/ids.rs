//! Node and operation identifiers.

/// Identifies a workstation in the NOW.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Identifies one in-flight operation (unique over a simulation run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub u64);

impl std::fmt::Display for OpId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "op{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(NodeId(2).to_string(), "node2");
        assert_eq!(OpId(5).to_string(), "op5");
        assert_eq!(NodeId(3).index(), 3);
    }
}
