//! Page-home assignment.
//!
//! §3: "each data page has a permanent, disk-resident copy at a specific node
//! called its home. The homes themselves are distributed across the nodes
//! using a hash function or some catalog-driven partitioning function."
//! §7.1 distributes the database round-robin over all nodes' disks.

use dmm_buffer::PageId;

use crate::ids::NodeId;

/// Maps pages to their home node.
#[derive(Debug, Clone)]
pub struct Homes {
    nodes: u16,
    scheme: Scheme,
}

#[derive(Debug, Clone, Copy)]
enum Scheme {
    RoundRobin,
    Hash,
}

impl Homes {
    /// Round-robin placement (the paper's §7.1 choice).
    pub fn round_robin(nodes: usize) -> Self {
        assert!(nodes > 0 && nodes <= u16::MAX as usize);
        Homes {
            nodes: nodes as u16,
            scheme: Scheme::RoundRobin,
        }
    }

    /// Hash placement (the §3 alternative).
    pub fn hashed(nodes: usize) -> Self {
        assert!(nodes > 0 && nodes <= u16::MAX as usize);
        Homes {
            nodes: nodes as u16,
            scheme: Scheme::Hash,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes as usize
    }

    /// The home of `page`.
    pub fn home(&self, page: PageId) -> NodeId {
        match self.scheme {
            Scheme::RoundRobin => NodeId((page.0 % self.nodes as u32) as u16),
            Scheme::Hash => {
                let h = (page.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
                NodeId((h % self.nodes as u64) as u16)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles() {
        let h = Homes::round_robin(3);
        assert_eq!(h.home(PageId(0)), NodeId(0));
        assert_eq!(h.home(PageId(1)), NodeId(1));
        assert_eq!(h.home(PageId(2)), NodeId(2));
        assert_eq!(h.home(PageId(3)), NodeId(0));
    }

    #[test]
    fn hash_is_deterministic_and_balanced() {
        let h = Homes::hashed(4);
        let mut counts = [0u32; 4];
        for p in 0..4000 {
            let n = h.home(PageId(p));
            assert_eq!(n, h.home(PageId(p)));
            counts[n.index()] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "imbalanced: {counts:?}");
        }
    }
}
