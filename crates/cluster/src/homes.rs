//! Page-home assignment.
//!
//! §3: "each data page has a permanent, disk-resident copy at a specific node
//! called its home. The homes themselves are distributed across the nodes
//! using a hash function or some catalog-driven partitioning function."
//! §7.1 distributes the database round-robin over all nodes' disks.
//!
//! Three placement schemes are selectable ([`PlacementSpec`]):
//!
//! * **round-robin** — `page % N`, the paper's §7.1 choice;
//! * **hash** — multiply-shift hash, the §3 alternative;
//! * **hot ring** — a seeded consistent-hash ring with virtual nodes
//!   ([`crate::ring`]) whose per-page *replication degree* scales with the
//!   page's observed home-request heat. A hot page's disk image is mirrored
//!   at `r > 1` ring successors and read requests spread across them
//!   deterministically by origin, so no single home node is hammered. The
//!   data plane feeds per-interval home-request counts back through
//!   [`Homes::retarget_replication`].
//!
//! The disk mirror follows the shared-disk assumption the fault layer
//! already makes (a dead home's pages stay readable elsewhere, DESIGN.md
//! §6): widening a page's home set never has to ship state, it only widens
//! where requests may land.

use dmm_buffer::PageId;

use crate::ids::NodeId;
use crate::ring::{HashRing, MAX_RING_REPLICAS};

/// Which page-home placement scheme the cluster runs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum PlacementSpec {
    /// `page % N` (the paper's §7.1 choice; the reference default).
    #[default]
    RoundRobin,
    /// Static multiply-shift hash (the §3 alternative).
    Hash,
    /// Hotness-aware consistent-hash ring with heat-scaled replication.
    HotRing(HotRingSpec),
}

/// Tuning of the [`PlacementSpec::HotRing`] scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotRingSpec {
    /// Virtual nodes per physical node; the ring's arc-share spread falls
    /// as `1/√vnodes`.
    pub vnodes: u16,
    /// Per-page replication-degree ceiling (≤ [`MAX_RING_REPLICAS`]).
    pub max_replicas: u8,
    /// Ring layout seed. Fixed config, deliberately *not* derived from the
    /// workload seed: the same configuration must map pages identically
    /// across runs for the determinism contract.
    pub seed: u64,
}

impl Default for HotRingSpec {
    fn default() -> Self {
        HotRingSpec {
            vnodes: 512,
            max_replicas: MAX_RING_REPLICAS as u8,
            seed: 0xD1_57_12_B0,
        }
    }
}

/// Why a placement could not be constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementError {
    /// The cluster needs at least one node.
    NoNodes,
    /// Node ids are `u16`; more nodes than `u16::MAX` would silently
    /// truncate the home index.
    TooManyNodes(usize),
    /// A hot ring needs at least one virtual node per physical node.
    NoVirtualNodes,
    /// The replication ceiling must lie in `1..=MAX_RING_REPLICAS`.
    BadReplicaCap(u8),
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::NoNodes => write!(f, "placement needs at least one node"),
            PlacementError::TooManyNodes(n) => {
                write!(f, "{n} nodes exceed the u16 node-id space ({})", u16::MAX)
            }
            PlacementError::NoVirtualNodes => {
                write!(f, "hot ring needs at least one virtual node per node")
            }
            PlacementError::BadReplicaCap(r) => {
                write!(f, "replica cap {r} outside 1..={MAX_RING_REPLICAS}")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// Maps pages to their home node(s).
#[derive(Debug, Clone)]
pub struct Homes {
    nodes: u16,
    scheme: Scheme,
}

#[derive(Debug, Clone)]
enum Scheme {
    RoundRobin,
    Hash,
    HotRing {
        ring: HashRing,
        /// Per-page replication degree, indexed densely by page id; pages
        /// beyond the tracked range stay at degree 1.
        degree: Vec<u8>,
        max_replicas: u8,
    },
}

fn check_nodes(nodes: usize) -> Result<u16, PlacementError> {
    if nodes == 0 {
        return Err(PlacementError::NoNodes);
    }
    u16::try_from(nodes).map_err(|_| PlacementError::TooManyNodes(nodes))
}

impl Homes {
    /// Round-robin placement (the paper's §7.1 choice).
    pub fn round_robin(nodes: usize) -> Result<Self, PlacementError> {
        Ok(Homes {
            nodes: check_nodes(nodes)?,
            scheme: Scheme::RoundRobin,
        })
    }

    /// Hash placement (the §3 alternative).
    pub fn hashed(nodes: usize) -> Result<Self, PlacementError> {
        Ok(Homes {
            nodes: check_nodes(nodes)?,
            scheme: Scheme::Hash,
        })
    }

    /// Hotness-aware ring placement over a database of `db_pages` pages.
    pub fn hot_ring(
        nodes: usize,
        db_pages: u32,
        spec: HotRingSpec,
    ) -> Result<Self, PlacementError> {
        let n = check_nodes(nodes)?;
        if spec.vnodes == 0 {
            return Err(PlacementError::NoVirtualNodes);
        }
        if spec.max_replicas == 0 || spec.max_replicas as usize > MAX_RING_REPLICAS {
            return Err(PlacementError::BadReplicaCap(spec.max_replicas));
        }
        Ok(Homes {
            nodes: n,
            scheme: Scheme::HotRing {
                ring: HashRing::new(nodes, spec.vnodes, spec.seed),
                degree: vec![1; db_pages as usize],
                max_replicas: spec.max_replicas,
            },
        })
    }

    /// Placement for `spec` over `nodes` nodes and `db_pages` pages.
    pub fn from_spec(
        spec: &PlacementSpec,
        nodes: usize,
        db_pages: u32,
    ) -> Result<Self, PlacementError> {
        match spec {
            PlacementSpec::RoundRobin => Self::round_robin(nodes),
            PlacementSpec::Hash => Self::hashed(nodes),
            PlacementSpec::HotRing(hr) => Self::hot_ring(nodes, db_pages, *hr),
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes as usize
    }

    /// Current replication degree of `page` (1 for the static schemes).
    pub fn replication(&self, page: PageId) -> usize {
        match &self.scheme {
            Scheme::RoundRobin | Scheme::Hash => 1,
            Scheme::HotRing { degree, .. } => {
                degree.get(page.index()).copied().unwrap_or(1).max(1) as usize
            }
        }
    }

    /// The *primary* home of `page` (origin-independent; the node a static
    /// scheme would always use).
    pub fn home(&self, page: PageId) -> NodeId {
        match &self.scheme {
            Scheme::RoundRobin => NodeId((page.0 % self.nodes as u32) as u16),
            Scheme::Hash => {
                let h = (page.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
                NodeId((h % self.nodes as u64) as u16)
            }
            Scheme::HotRing { ring, .. } => ring.primary(page.0 as u64),
        }
    }

    /// The home node an access from `origin` should be routed to. Static
    /// schemes route every origin to the single home; the hot ring spreads
    /// origins across the page's replica set — preferring `origin` itself
    /// when it is a replica (its mirror read is a local disk read), else
    /// picking deterministically by origin index so the read fan-in divides
    /// evenly.
    pub fn home_for(&self, page: PageId, origin: NodeId) -> NodeId {
        match &self.scheme {
            Scheme::RoundRobin | Scheme::Hash => self.home(page),
            Scheme::HotRing { ring, .. } => {
                let r = self.replication(page);
                if r == 1 {
                    return ring.primary(page.0 as u64);
                }
                let mut buf = [0u16; MAX_RING_REPLICAS];
                let found = ring.replicas(page.0 as u64, r, &mut buf);
                if buf[..found].contains(&origin.0) {
                    return origin;
                }
                NodeId(buf[origin.index() % found])
            }
        }
    }

    /// Writes `page`'s full home set into `buf` (primary first) and returns
    /// its size. Static schemes have exactly one home. Allocation-free.
    pub fn homes_of(&self, page: PageId, buf: &mut [u16; MAX_RING_REPLICAS]) -> usize {
        match &self.scheme {
            Scheme::RoundRobin | Scheme::Hash => {
                buf[0] = self.home(page).0;
                1
            }
            Scheme::HotRing { ring, .. } => {
                ring.replicas(page.0 as u64, self.replication(page), buf)
            }
        }
    }

    /// True when `node` is (one of) `page`'s home(s).
    pub fn is_home(&self, page: PageId, node: NodeId) -> bool {
        match &self.scheme {
            Scheme::RoundRobin | Scheme::Hash => self.home(page) == node,
            Scheme::HotRing { ring, .. } => {
                let r = self.replication(page);
                if r == 1 {
                    return ring.primary(page.0 as u64) == node;
                }
                let mut buf = [0u16; MAX_RING_REPLICAS];
                let found = ring.replicas(page.0 as u64, r, &mut buf);
                buf[..found].contains(&node.0)
            }
        }
    }

    /// True when the scheme adapts replication to heat (the data plane only
    /// maintains per-page home-request counters when this is set).
    pub fn adapts_replication(&self) -> bool {
        matches!(self.scheme, Scheme::HotRing { .. })
    }

    /// A page is "hot" once its single-home request load exceeds
    /// `1/OVERLOAD` of a node's fair share of all home requests. Real
    /// workloads spread their misses over many warm pages (local caches
    /// absorb the very head of the skew), so no single page ever nears a
    /// full node-share — without this headroom factor the replication loop
    /// never engages.
    const OVERLOAD: u64 = 4;

    /// Re-targets per-page replication from one interval's home-request
    /// counts (`counts[page]`, summing to `total`). A page carrying share
    /// `s` of all home requests gets `⌈s·N·OVERLOAD⌉` replicas — enough
    /// that its per-home fan-in drops back under `1/OVERLOAD` of a node's
    /// fair share — capped by the spec; unrequested pages cool by one
    /// degree per interval. No-op for the static schemes.
    pub fn retarget_replication(&mut self, counts: &[u32], total: u64) {
        let nodes = self.nodes as u64;
        let Scheme::HotRing {
            degree,
            max_replicas,
            ..
        } = &mut self.scheme
        else {
            return;
        };
        let cap = (*max_replicas as u64).min(nodes) as u8;
        for (d, &c) in degree.iter_mut().zip(counts) {
            if c == 0 {
                *d = (*d).saturating_sub(1).max(1);
            } else {
                let want = (c as u64 * nodes * Self::OVERLOAD).div_ceil(total);
                *d = want.clamp(1, cap as u64) as u8;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles() {
        let h = Homes::round_robin(3).expect("3 nodes fit");
        assert_eq!(h.home(PageId(0)), NodeId(0));
        assert_eq!(h.home(PageId(1)), NodeId(1));
        assert_eq!(h.home(PageId(2)), NodeId(2));
        assert_eq!(h.home(PageId(3)), NodeId(0));
        // Static schemes: routed home == primary for every origin.
        assert_eq!(h.home_for(PageId(3), NodeId(2)), NodeId(0));
        assert!(h.is_home(PageId(3), NodeId(0)));
        assert!(!h.is_home(PageId(3), NodeId(1)));
        assert!(!h.adapts_replication());
    }

    #[test]
    fn hash_is_deterministic_and_balanced() {
        let h = Homes::hashed(4).expect("4 nodes fit");
        let mut counts = [0u32; 4];
        for p in 0..4000 {
            let n = h.home(PageId(p));
            assert_eq!(n, h.home(PageId(p)));
            counts[n.index()] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "imbalanced: {counts:?}");
        }
    }

    #[test]
    fn constructors_reject_bad_node_counts() {
        assert_eq!(Homes::round_robin(0).unwrap_err(), PlacementError::NoNodes);
        assert_eq!(Homes::hashed(0).unwrap_err(), PlacementError::NoNodes);
        let too_many = u16::MAX as usize + 1;
        assert_eq!(
            Homes::round_robin(too_many).unwrap_err(),
            PlacementError::TooManyNodes(too_many)
        );
        assert_eq!(
            Homes::hot_ring(too_many, 10, HotRingSpec::default()).unwrap_err(),
            PlacementError::TooManyNodes(too_many)
        );
        // The u16::MAX boundary itself is fine.
        assert_eq!(
            Homes::round_robin(u16::MAX as usize)
                .expect("boundary ok")
                .nodes(),
            u16::MAX as usize
        );
    }

    #[test]
    fn hot_ring_spec_is_validated() {
        let bad_v = HotRingSpec {
            vnodes: 0,
            ..HotRingSpec::default()
        };
        assert_eq!(
            Homes::hot_ring(4, 100, bad_v).unwrap_err(),
            PlacementError::NoVirtualNodes
        );
        let bad_r = HotRingSpec {
            max_replicas: 0,
            ..HotRingSpec::default()
        };
        assert_eq!(
            Homes::hot_ring(4, 100, bad_r).unwrap_err(),
            PlacementError::BadReplicaCap(0)
        );
    }

    #[test]
    fn hot_ring_replication_spreads_and_cools() {
        let mut h = Homes::hot_ring(8, 100, HotRingSpec::default()).expect("valid");
        assert_eq!(h.replication(PageId(0)), 1);
        // Page 0 carries ~10 % of all home requests — OVERLOAD× hotter
        // than a node-fair page slice: ⌈0.101·8·4⌉ = 4 replicas. The warm
        // tail (0.9 % each) stays below the threshold and keeps 1.
        let mut counts = vec![9u32; 100];
        counts[0] = 100;
        let total: u64 = counts.iter().map(|&c| c as u64).sum();
        assert_eq!(total, 991);
        h.retarget_replication(&counts, total);
        assert_eq!(h.replication(PageId(0)), 4);
        assert_eq!(h.replication(PageId(1)), 1);

        // Replicated page: every origin routes to a home in the replica
        // set, a replica origin routes to itself, and the fan-in spreads
        // over more than one node.
        let homes: std::collections::BTreeSet<NodeId> =
            (0..8).map(|o| h.home_for(PageId(0), NodeId(o))).collect();
        assert!(homes.len() > 1, "hot page fan-in not spread: {homes:?}");
        for &target in &homes {
            assert!(h.is_home(PageId(0), target));
            assert_eq!(
                h.home_for(PageId(0), target),
                target,
                "replica reads locally"
            );
        }

        // An idle interval cools the page one degree at a time back to 1.
        for expect in [3, 2, 1, 1] {
            h.retarget_replication(&vec![0u32; 100], 0);
            assert_eq!(h.replication(PageId(0)), expect);
        }
    }

    #[test]
    fn from_spec_matches_direct_constructors() {
        let a = Homes::from_spec(&PlacementSpec::RoundRobin, 5, 100).expect("valid");
        assert_eq!(a.home(PageId(7)), NodeId(2));
        let b = Homes::from_spec(&PlacementSpec::Hash, 5, 100).expect("valid");
        let c = Homes::hashed(5).expect("valid");
        for p in 0..100 {
            assert_eq!(b.home(PageId(p)), c.home(PageId(p)));
        }
        let d = Homes::from_spec(&PlacementSpec::HotRing(HotRingSpec::default()), 5, 100)
            .expect("valid");
        assert!(d.adapts_replication());
    }

    #[test]
    fn placement_error_displays() {
        assert!(PlacementError::TooManyNodes(70_000)
            .to_string()
            .contains("70000"));
        assert!(PlacementError::BadReplicaCap(9).to_string().contains('9'));
    }
}
