//! The data plane: event-driven execution of operations on the cluster.
//!
//! Every stage of a page access — lookup CPU, request messages, serve CPU at
//! the home or a caching holder, disk read, page shipment, install CPU —
//! reserves its FCFS facility *at the simulated instant the work arrives
//! there*, so queueing delays and contention are modelled faithfully. The
//! plane emits [`StepOutput`]s containing the events to schedule next plus
//! any operation completion; the embedding simulator (the `dmm-core`
//! system) owns the event loop and forwards [`ClusterEvent`]s back in.
//!
//! Protocol (read-only workload, §3):
//!
//! ```text
//! lookup at origin ──hit──▶ done (§6 may migrate the page between pools)
//!    │ miss
//!    ├─ origin is home ─ holder exists ──▶ request→holder ─ serve ─ ship ─▶ install
//!    │                 └ no copy     ───▶ local disk ────────────────────▶ install
//!    └─ otherwise ───────▶ request→home ─ serve ┬ home caches → ship ────▶ install
//!                                               ├ holder known → forward ▶ (as above)
//!                                               └ none → home disk → ship▶ install
//! ```
//!
//! A holder that evicted the page while a forward was in flight bounces the
//! request back to the home; after one bounce the home reads from disk
//! unconditionally, so every access terminates.

use dmm_buffer::{
    ClassId, IdHashMap, PageHeat, PageId, PolicySpec, PoolStats, TierPolicy, TieredAccess,
    TieredBuffer, NO_GOAL,
};
use dmm_obs::{Histogram, Stage, StageNanos, STAGES};
use dmm_sim::{Facility, SimDuration, SimTime, SlotArena};

use crate::benefit::{benefit_ms, BenefitInputs};
use crate::costs::{AccessCosts, CostSlot};
use crate::directory::Directory;
use crate::disk::Disk;
use crate::fault::FaultPlan;
use crate::homes::Homes;
use crate::ids::{NodeId, OpId};
use crate::network::{Network, TrafficKind};
use crate::op::{OpCompletion, Operation};
use crate::params::{ClusterParams, RepricingMode};
use crate::ring::MAX_RING_REPLICAS;

/// Events of the access protocol. The embedding simulator schedules these at
/// the instants returned in [`StepOutput::schedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ClusterEvent {
    /// Lookup CPU finished at the origin; consult the local buffer.
    Lookup {
        /// Operation.
        op: OpId,
    },
    /// Request message delivered at the page's home node.
    ReqAtHome {
        /// Operation.
        op: OpId,
    },
    /// Home CPU finished; decide serve / forward / disk.
    ServeAtHome {
        /// Operation.
        op: OpId,
    },
    /// Forward delivered at a caching holder.
    ReqAtHolder {
        /// Operation.
        op: OpId,
        /// The node the forward targeted.
        holder: NodeId,
    },
    /// Holder CPU finished; ship the page or bounce to home.
    ServeAtHolder {
        /// Operation.
        op: OpId,
        /// The serving node.
        holder: NodeId,
    },
    /// Home disk read finished; ship the page to the origin.
    DiskDone {
        /// Operation.
        op: OpId,
    },
    /// Page delivered at the origin; reserve install CPU.
    PageArrived {
        /// Operation.
        op: OpId,
        /// Cost slot of the storage level that served this access (for
        /// cost estimation).
        level: CostSlot,
    },
    /// Install CPU finished; install the page and advance the operation.
    AccessDone {
        /// Operation.
        op: OpId,
        /// Cost slot of the storage level that served this access.
        level: CostSlot,
    },
}

/// What the data plane wants done after handling one event.
///
/// Every protocol step schedules at most one follow-up event, so `schedule`
/// is an `Option` rather than a `Vec`: a `Vec` here costs one heap
/// allocation and free per simulated event, which is pure overhead on the
/// event-loop hot path. (`Option` is `IntoIterator`, so consumers loop over
/// it exactly as they would a vector.)
#[derive(Debug, Default)]
pub struct StepOutput {
    /// The event to schedule, with its absolute instant, if any.
    pub schedule: Option<(SimTime, ClusterEvent)>,
    /// An operation that finished in this step, if any.
    pub completed: Option<OpCompletion>,
}

impl StepOutput {
    fn at(mut self, t: SimTime, e: ClusterEvent) -> Self {
        debug_assert!(self.schedule.is_none(), "one follow-up event per step");
        self.schedule = Some((t, e));
        self
    }
}

/// Per-node simulated state.
#[derive(Debug)]
struct NodeState {
    cpu: Facility,
    disk: Disk,
    buffer: TieredBuffer,
    heat: IdHashMap<PageId, PageHeat>,
    /// One FCFS facility per memory tier beyond tier 0, modelling the
    /// tier's (possibly bandwidth-capped) transfer channel. Empty for the
    /// default single-memory-tier ladder.
    tier_fac: Vec<Facility>,
}

#[derive(Debug)]
struct OpState {
    op: Operation,
    next_idx: usize,
    access_start: SimTime,
    bounced: bool,
    /// Home node the current access was routed to, fixed at lookup time so
    /// a mid-flight replication retarget cannot redirect the protocol.
    home: NodeId,
    /// Span-arena slot accumulating this op's per-stage nanoseconds
    /// ([`SlotArena::NONE`] when spans are off).
    span_slot: u32,
    /// FCFS wait of the current access's lookup reservation; attributed to
    /// a stage only once the hit/miss outcome is known at lookup time.
    lookup_wait_ns: u64,
    /// Full duration (wait + service) of the current access's lookup
    /// reservation.
    lookup_total_ns: u64,
}

/// Counters describing how much work benefit maintenance performed; the
/// acceptance evidence that lazy repricing does far less than the eager
/// full sweep. Exposed via [`DataPlane::reprice_stats`] and as
/// `cluster.reprice.*` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepriceStats {
    /// Every benefit computation performed, in either mode: access-path
    /// pricing, sweep visits, stale-min refreshes. The honest total-work
    /// comparison between an eager and a lazy run over the same workload.
    pub recomputes: u64,
    /// Benefit recomputations performed in lazy mode (installs, stale-min
    /// refreshes, resize refreshes). Compare against `sweep_pages` of an
    /// eager run over the same workload.
    pub lazy_recomputes: u64,
    /// Stale heap minima re-priced by the lazy victim loop (retries before
    /// an eviction decision).
    pub heap_retries: u64,
    /// O(1) invalidations that replaced an eager access-path reprice.
    pub stale_marks: u64,
    /// Global-heat lookups answered from the per-epoch cache.
    pub heat_cache_hits: u64,
    /// Global-heat lookups that had to walk the directory.
    pub heat_cache_misses: u64,
    /// Full sweeps executed (eager mode, plus lazy resize refreshes count
    /// their pages below without bumping this).
    pub sweeps: u64,
    /// Pages visited by full-pool repricing walks.
    pub sweep_pages: u64,
}

/// Degradation counters of the fault-injection layer (DESIGN.md §6).
/// Exposed via [`DataPlane::fault_stats`] and as `cluster.fault.*` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Node crashes injected.
    pub crashes: u64,
    /// Node restarts injected.
    pub restarts: u64,
    /// Pages whose *only* cached copy lived on a crashed node — lost from
    /// aggregate memory; their next access is a forced disk re-read.
    pub last_copy_losses: u64,
    /// In-flight operations aborted because their origin node crashed.
    pub ops_aborted: u64,
    /// Reads served from the origin's local disk because the page's home
    /// was down (the shared-disk mirror path).
    pub mirror_reads: u64,
}

/// Per-node home-placement load: how many pages call each node home and how
/// much home-request traffic it absorbed. Snapshot via
/// [`DataPlane::home_load`]; also exported as `cluster.node{n}.home_*`
/// metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HomeLoad {
    /// Pages whose home set includes the node (a replicated page counts at
    /// every one of its homes).
    pub home_pages: Vec<u32>,
    /// Home-miss requests routed to the node since the last stats reset.
    pub home_reads: Vec<u64>,
    /// Of those, requests originating at a *different* node — the remote
    /// read fan-in a hot page concentrates on its home(s).
    pub remote_fanin: Vec<u64>,
}

/// The simulated NOW: nodes, network, directory, cost model, and the §6
/// replacement integration.
#[derive(Debug)]
pub struct DataPlane {
    params: ClusterParams,
    nodes: Vec<NodeState>,
    network: Network,
    directory: Directory,
    homes: Homes,
    costs: AccessCosts,
    inflight: IdHashMap<OpId, OpState>,
    completions: u64,
    accesses: u64,
    /// Observation-interval sequence number; stamps every computed benefit.
    epoch: u64,
    /// Per-epoch memo of `Directory::global_heat_per_ms`, indexed densely by
    /// page id: `[page] = (epoch + 1, heat)` (0 = never cached). Only
    /// consulted in lazy mode so the eager path stays the exact reference
    /// behaviour.
    heat_cache: Vec<(u64, f64)>,
    /// Benefit-maintenance work counters.
    reprice_stats: RepriceStats,
    /// Reusable page-id buffer for full-pool repricing walks (avoids a Vec
    /// allocation per pool per sweep).
    sweep_scratch: Vec<PageId>,
    /// Cumulative per-node count of home-miss requests routed to the node.
    home_reads: Vec<u64>,
    /// Of those, requests whose origin was a different node.
    home_remote_reads: Vec<u64>,
    /// Per-interval per-page home-request counts driving the hot ring's
    /// replication retargeting (empty for static placements).
    page_home_reads: Vec<u32>,
    /// Sum of `page_home_reads` over the current interval.
    interval_home_reads: u64,
    /// Liveness mask: `up[i]` is false while node `i` is crashed.
    up: Vec<bool>,
    /// Degradation counters.
    fault_stats: FaultStats,
    /// Pooled per-op span storage (allocation-free after ramp-up). Only
    /// touched when `params.spans` is enabled.
    span_arena: SlotArena<StageNanos>,
    /// Per-class (index 0 = no-goal) × per-stage response-time histograms,
    /// nanoseconds. Empty unless spans are enabled.
    span_hists: Vec<[Histogram; STAGES]>,
    /// Per-class sum of completed-op response times in nanoseconds — the
    /// integer-exact companion the stage histograms must add up to.
    span_response_ns: Vec<u64>,
    /// Per-class *total* response-time histograms, nanoseconds (arrival to
    /// completion, all stages included). Empty unless spans are enabled.
    /// The tail distribution of an op is not recoverable from the per-stage
    /// histograms — stages of one op land in different buckets — so tail
    /// studies need the end-to-end distribution collected directly.
    resp_hists: Vec<Histogram>,
    /// Service time per memory tier beyond tier 0 (hit latency plus the
    /// page-transfer term when bandwidth-capped); index `t - 1` for tier
    /// `t`. Empty for the default ladder.
    tier_service: Vec<SimDuration>,
}

impl DataPlane {
    /// Builds an idle cluster from `params`.
    pub fn new(params: ClusterParams) -> Self {
        assert!(params.nodes > 0);
        let homes = Homes::from_spec(&params.placement, params.nodes, params.db_pages)
            .expect("invalid placement configuration");
        let tier_frames = params.memory_tier_frames();
        let tier_service: Vec<SimDuration> = params.tiers.tiers()[1..tier_frames.len()]
            .iter()
            .map(|t| t.service_time())
            .collect();
        let nodes = (0..params.nodes)
            .map(|_| NodeState {
                cpu: Facility::new("cpu"),
                disk: Disk::new(params.disk),
                buffer: TieredBuffer::new(
                    &tier_frames,
                    params.goal_classes,
                    params.policy,
                    params.tier_policy,
                ),
                heat: IdHashMap::default(),
                tier_fac: (1..tier_frames.len())
                    .map(|_| Facility::new("tier"))
                    .collect(),
            })
            .collect();
        DataPlane {
            tier_service,
            network: Network::new(params.net, params.nodes),
            directory: Directory::new(
                params.goal_classes,
                params.heat_k,
                params.heat_publish_threshold,
            ),
            costs: AccessCosts::for_ladder(0.05, &params.tiers),
            inflight: IdHashMap::default(),
            completions: 0,
            accesses: 0,
            epoch: 0,
            heat_cache: vec![(0, 0.0); params.db_pages as usize],
            reprice_stats: RepriceStats::default(),
            sweep_scratch: Vec::new(),
            home_reads: vec![0; params.nodes],
            home_remote_reads: vec![0; params.nodes],
            page_home_reads: if homes.adapts_replication() {
                vec![0; params.db_pages as usize]
            } else {
                Vec::new()
            },
            interval_home_reads: 0,
            homes,
            up: vec![true; params.nodes],
            fault_stats: FaultStats::default(),
            span_arena: SlotArena::new(),
            span_hists: if params.spans.enabled() {
                (0..=params.goal_classes)
                    .map(|_| std::array::from_fn(|_| Histogram::exponential(1_000, 24)))
                    .collect()
            } else {
                Vec::new()
            },
            span_response_ns: vec![0; params.goal_classes + 1],
            resp_hists: if params.spans.enabled() {
                // Same fine log-linear layout the control plane's agents
                // use (10 µs – 10 s, 8 steps/octave): quantiles read from
                // either side of the system agree to bucket precision.
                (0..=params.goal_classes)
                    .map(|_| Histogram::log_linear(10_000, 10_000_000_000, 8))
                    .collect()
            } else {
                Vec::new()
            },
            params,
            nodes,
        }
    }

    /// Cluster configuration.
    pub fn params(&self) -> &ClusterParams {
        &self.params
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Operations currently in flight.
    pub fn inflight_ops(&self) -> usize {
        self.inflight.len()
    }

    /// Total page accesses started.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total operations completed.
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// Network reference (byte accounting, utilization).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Directory reference (copy counts, publish events).
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// Access-cost estimator.
    pub fn costs(&self) -> &AccessCosts {
        &self.costs
    }

    /// Number of local memory tiers per node.
    fn mem_tiers(&self) -> usize {
        self.costs.mem_tiers()
    }

    /// Cluster-wide occupancy per memory tier: `(tier name, resident
    /// pages, total frames)` summed over live and dead nodes alike (a
    /// crashed node's tiers read empty, its frames still count).
    pub fn tier_occupancy(&self) -> Vec<(String, u64, u64)> {
        (0..self.mem_tiers())
            .map(|t| {
                let name = self.params.tiers.tiers()[t].name.clone();
                let mut resident = 0u64;
                let mut frames = 0u64;
                for n in &self.nodes {
                    resident += n.buffer.tier_resident(t) as u64;
                    frames += n.buffer.tier_frames(t) as u64;
                }
                (name, resident, frames)
            })
            .collect()
    }

    /// Benefit-maintenance work counters.
    pub fn reprice_stats(&self) -> &RepriceStats {
        &self.reprice_stats
    }

    /// Degradation counters.
    pub fn fault_stats(&self) -> &FaultStats {
        &self.fault_stats
    }

    /// Page-home placement.
    pub fn homes(&self) -> &Homes {
        &self.homes
    }

    /// Per-node home-placement load snapshot: page counts from the current
    /// placement, traffic counters since the last stats reset.
    pub fn home_load(&self) -> HomeLoad {
        let mut home_pages = vec![0u32; self.nodes.len()];
        let mut buf = [0u16; MAX_RING_REPLICAS];
        for page in (0..self.params.db_pages).map(PageId) {
            let n = self.homes.homes_of(page, &mut buf);
            for &node in &buf[..n] {
                home_pages[node as usize] += 1;
            }
        }
        HomeLoad {
            home_pages,
            home_reads: self.home_reads.clone(),
            remote_fanin: self.home_remote_reads.clone(),
        }
    }

    /// True while `node` is serving (not crashed).
    pub fn is_up(&self, node: NodeId) -> bool {
        self.up[node.index()]
    }

    /// Number of nodes currently up.
    pub fn live_nodes(&self) -> usize {
        self.up.iter().filter(|&&u| u).count()
    }

    /// Current benefit epoch (observation-interval sequence number).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Pool statistics of `class`'s pool at `node`.
    pub fn pool_stats(&self, node: NodeId, class: ClassId) -> PoolStats {
        self.nodes[node.index()].buffer.pool_stats(class)
    }

    /// Dedicated pages of `class` at `node`.
    pub fn dedicated_pages(&self, node: NodeId, class: ClassId) -> usize {
        self.nodes[node.index()].buffer.dedicated_pages(class)
    }

    /// Total dedicated bytes for `class` across all nodes.
    pub fn total_dedicated_bytes(&self, class: ClassId) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.buffer.dedicated_pages(class) as u64 * crate::params::PAGE_BYTES)
            .sum()
    }

    /// Disk read count of `node`.
    pub fn disk_reads(&self, node: NodeId) -> u64 {
        self.nodes[node.index()].disk.reads()
    }

    /// The busiest disk's utilization over `[0, now]` — with the shared
    /// LAN's [`Network::utilization`], the two capacity dials that decide
    /// whether a scaled-out configuration is feasible at all.
    pub fn max_disk_utilization(&self, now: SimTime) -> f64 {
        self.nodes
            .iter()
            .map(|n| n.disk.utilization(now))
            .fold(0.0, f64::max)
    }

    /// Frames on `node` still available to `class`:
    /// `SIZEᵢ − Σ_{l≠class} LM_{l,i}` (paper Eq. 6).
    pub fn avail_pages(&self, node: NodeId, class: ClassId) -> usize {
        let buf = &self.nodes[node.index()].buffer;
        let others: usize = (1..=buf.num_goal_classes())
            .map(|l| ClassId(l as u16))
            .filter(|&l| l != class)
            .map(|l| buf.dedicated_pages(l))
            .sum();
        buf.total_pages() - others
    }

    // -- span attribution --------------------------------------------------

    /// Whether per-op span accumulation is on. The disabled case is the
    /// single branch each attribution point pays.
    #[inline]
    fn spans_on(&self) -> bool {
        self.params.spans.enabled()
    }

    /// Adds `ns` to `stage` of `op`'s span. No-op when spans are off.
    #[inline]
    fn span_add(&mut self, op: OpId, stage: Stage, ns: u64) {
        if !self.spans_on() {
            return;
        }
        let slot = self.inflight[&op].span_slot;
        self.span_arena.get_mut(slot)[stage.index()] += ns;
    }

    /// Attributes the deferred lookup segment once the hit/miss outcome is
    /// known: a hit's whole segment (queue + service) is the local-hit
    /// stage; a miss splits into pool-queue wait and CPU service.
    fn span_lookup_outcome(&mut self, op: OpId, hit: bool) {
        if !self.spans_on() {
            return;
        }
        let (slot, wait, total) = {
            let s = &self.inflight[&op];
            (s.span_slot, s.lookup_wait_ns, s.lookup_total_ns)
        };
        let cell = self.span_arena.get_mut(slot);
        if hit {
            cell[Stage::LocalHit.index()] += total;
        } else {
            cell[Stage::PoolQueue.index()] += wait;
            cell[Stage::Cpu.index()] += total - wait;
        }
    }

    /// Fills `snap` with the data plane's observability metrics: per-level
    /// access counts and cost estimates, network byte/message counters and
    /// medium queueing, aggregate disk and CPU queueing, and per-class pool
    /// accounting summed over nodes.
    pub fn fill_metrics(&self, snap: &mut dmm_obs::MetricsSnapshot, now: SimTime) {
        snap.counter("cluster.accesses", self.accesses);
        snap.counter("cluster.completions", self.completions);
        for (i, name) in self.params.tiers.slot_names().iter().enumerate() {
            let slot = CostSlot(i as u8);
            snap.counter(
                format!("cluster.level.{name}.accesses"),
                self.costs.observations(slot),
            );
            snap.gauge(
                format!("cluster.level.{name}.est_ms"),
                self.costs.estimate_ms(slot),
            );
        }
        for (n, node) in self.nodes.iter().enumerate() {
            for t in 0..node.buffer.num_tiers() {
                let key = format!("cluster.node{n}.tier{t}");
                snap.gauge(format!("{key}.frames"), node.buffer.tier_frames(t) as f64);
                snap.gauge(
                    format!("{key}.resident"),
                    node.buffer.tier_resident(t) as f64,
                );
                snap.counter(format!("{key}.promotions"), node.buffer.promotions()[t]);
                snap.counter(format!("{key}.demotions"), node.buffer.demotions()[t]);
            }
        }

        let r = &self.reprice_stats;
        snap.counter("cluster.reprice.recomputes", r.recomputes);
        snap.counter("cluster.reprice.lazy_recomputes", r.lazy_recomputes);
        snap.counter("cluster.reprice.heap_retries", r.heap_retries);
        snap.counter("cluster.reprice.stale_marks", r.stale_marks);
        snap.counter("cluster.reprice.heat_cache_hits", r.heat_cache_hits);
        snap.counter("cluster.reprice.heat_cache_misses", r.heat_cache_misses);
        snap.counter("cluster.reprice.sweeps", r.sweeps);
        snap.counter("cluster.reprice.sweep_pages", r.sweep_pages);

        let f = &self.fault_stats;
        snap.counter("cluster.fault.crashes", f.crashes);
        snap.counter("cluster.fault.restarts", f.restarts);
        snap.counter("cluster.fault.last_copy_losses", f.last_copy_losses);
        snap.counter("cluster.fault.ops_aborted", f.ops_aborted);
        snap.counter("cluster.fault.mirror_reads", f.mirror_reads);
        snap.gauge("cluster.fault.live_nodes", self.live_nodes() as f64);

        let hl = self.home_load();
        for i in 0..self.nodes.len() {
            snap.gauge(
                format!("cluster.node{i}.home_pages"),
                hl.home_pages[i] as f64,
            );
            snap.counter(format!("cluster.node{i}.home_reads"), hl.home_reads[i]);
            snap.counter(
                format!("cluster.node{i}.home_remote_reads"),
                hl.remote_fanin[i],
            );
        }

        snap.counter("net.data_bytes", self.network.data_bytes());
        snap.counter("net.control_bytes", self.network.control_bytes());
        let (data_msgs, control_msgs) = self.network.message_counts();
        snap.counter("net.data_messages", data_msgs);
        snap.counter("net.control_messages", control_msgs);
        snap.gauge("net.utilization", self.network.utilization(now));
        snap.counter("net.dropped_messages", self.network.dropped_messages());
        snap.histogram("net.queue_wait_ns", self.network.wait_histogram().clone());
        // Per-link gauges only exist on the switched fabric; shared-medium
        // snapshots keep the exact seed key set.
        if self.network.is_switched() {
            for i in 0..self.nodes.len() {
                let u = self.network.link_utilization(i, now).expect("switched");
                snap.gauge(format!("cluster.node{i}.net.tx_utilization"), u.tx);
                snap.gauge(format!("cluster.node{i}.net.rx_utilization"), u.rx);
            }
            if let Some(b) = self.network.bisection_utilization(now) {
                snap.gauge("net.bisection_utilization", b);
            }
        }

        let mut disk_wait = None;
        let mut cpu_wait = None;
        let mut disk_reads = 0u64;
        let mut stalled_reads = 0u64;
        for n in &self.nodes {
            disk_reads += n.disk.reads();
            stalled_reads += n.disk.stalled_reads();
            match &mut disk_wait {
                None => disk_wait = Some(n.disk.wait_histogram().clone()),
                Some(h) => h.merge(n.disk.wait_histogram()),
            }
            match &mut cpu_wait {
                None => cpu_wait = Some(n.cpu.wait_histogram().clone()),
                Some(h) => h.merge(n.cpu.wait_histogram()),
            }
        }
        snap.counter("disk.reads", disk_reads);
        snap.counter("disk.stalled_reads", stalled_reads);
        if let Some(h) = disk_wait {
            snap.histogram("disk.queue_wait_ns", h);
        }
        if let Some(h) = cpu_wait {
            snap.histogram("cpu.queue_wait_ns", h);
        }

        for c in 0..=self.params.goal_classes {
            let class = ClassId(c as u16);
            let mut stats = PoolStats::default();
            for n in &self.nodes {
                stats.merge(&n.buffer.pool_stats(class));
            }
            let key = format!("buffer.{}", class.metric_label());
            snap.counter(format!("{key}.hits"), stats.hits);
            snap.counter(format!("{key}.misses"), stats.misses);
            snap.counter(format!("{key}.insertions"), stats.insertions);
            snap.counter(format!("{key}.evictions"), stats.evictions);
            snap.counter(format!("{key}.resizes"), stats.resizes);
            snap.gauge(format!("{key}.hit_rate"), stats.hit_rate());
        }

        if self.spans_on() {
            for c in 0..=self.params.goal_classes {
                let class = ClassId(c as u16);
                let key = format!("span.{}", class.metric_label());
                snap.counter(format!("{key}.response_ns"), self.span_response_ns[c]);
                snap.histogram(
                    format!("{key}.response_time_ns"),
                    self.resp_hists[c].clone(),
                );
                for stage in Stage::ALL {
                    snap.histogram(
                        format!("{key}.{}_ns", stage.name()),
                        self.span_hists[c][stage.index()].clone(),
                    );
                }
            }
        }
    }

    /// Resets all measurement counters (pool stats, network bytes, disk
    /// stats) after warm-up; simulation state is untouched.
    pub fn reset_stats(&mut self) {
        for n in &mut self.nodes {
            n.buffer.reset_stats();
            n.disk.reset_stats();
        }
        self.network.reset_stats();
        self.home_reads.fill(0);
        self.home_remote_reads.fill(0);
        for hists in &mut self.span_hists {
            for h in hists.iter_mut() {
                h.reset();
            }
        }
        for h in &mut self.resp_hists {
            h.reset();
        }
        self.span_response_ns.fill(0);
    }

    /// Sends a goal-management (control-plane) message and returns its
    /// delivery instant. Same-node messages are free and instantaneous.
    pub fn send_control(&mut self, from: NodeId, to: NodeId, bytes: u64, now: SimTime) -> SimTime {
        if from == to {
            now
        } else {
            self.network
                .send(now, bytes, TrafficKind::Control, from, to)
        }
    }

    /// Applies a dedicated-buffer allocation for `class` at `node`
    /// (best-effort, §5(e)); returns the granted size in pages.
    pub fn apply_allocation(
        &mut self,
        node: NodeId,
        class: ClassId,
        pages: usize,
        now: SimTime,
    ) -> usize {
        if !self.up[node.index()] {
            // A crashed node grants nothing; the coordinator learns the node
            // is gone through its own liveness tracking.
            return 0;
        }
        // Resizing evicts in bulk through the replacement policy, so in lazy
        // mode the pool that is about to shrink gets one fresh pricing walk
        // first — bounded, and rare (resizes happen at most once per check
        // phase per class), unlike the every-interval eager sweep.
        if self.lazy_cost() {
            let buf = &self.nodes[node.index()].buffer;
            // Mirror set_dedicated's grant arithmetic to find the shrinker.
            // Capacities and residencies are summed over tiers; the
            // fastest-first per-tier split grants the same total.
            let others: usize = (1..=buf.num_goal_classes())
                .map(|l| ClassId(l as u16))
                .filter(|&l| l != class)
                .map(|l| buf.dedicated_pages(l))
                .sum();
            let granted = pages.min(buf.total_pages() - others);
            let no_goal_cap = buf.total_pages() - others - granted;
            if buf.pool_len(class) > granted {
                self.reprice_pool(node, class, now);
            } else if buf.pool_len(NO_GOAL) > no_goal_cap {
                self.reprice_pool(node, NO_GOAL, now);
            }
        }
        let had = self.nodes[node.index()].buffer.has_dedicated(class);
        let (granted, evicted) = self.nodes[node.index()].buffer.set_dedicated(class, pages);
        self.on_evicted(node, &evicted, now);
        let has = self.nodes[node.index()].buffer.has_dedicated(class);
        match (had, has) {
            (false, true) => self.directory.dedicated_pool_changed(class, 1),
            (true, false) => self.directory.dedicated_pool_changed(class, -1),
            _ => {}
        }
        granted
    }

    // -- fault injection ---------------------------------------------------

    /// Installs a fault plan's ambient models: the LAN message-drop model
    /// and the per-node disk-stall windows. Scheduled crashes/restarts are
    /// injected by the embedding simulator via [`DataPlane::crash_node`] /
    /// [`DataPlane::restart_node`] at the planned instants.
    pub fn install_faults(&mut self, plan: &FaultPlan) {
        if plan.drop_probability > 0.0 {
            self.network
                .set_drop_model(plan.drop_probability, plan.retransmit, plan.seed);
        }
        for s in &plan.stalls {
            self.nodes[s.node.index()]
                .disk
                .add_stall_window(s.from, s.until, s.factor);
        }
    }

    /// Crashes `node`: its volatile state — buffer contents, heat
    /// bookkeeping, dedicated allocations — is lost and the node stops
    /// serving protocol steps. The directory drops the node's copies
    /// (pages whose *only* copy lived there are counted as last-copy
    /// losses), survivors holding a newly-last copy are re-priced, and
    /// every in-flight operation that originated at the node is aborted.
    /// Disk-resident data stays readable by survivors (shared-disk mirror
    /// model, DESIGN.md §6). Idempotent while the node is already down.
    pub fn crash_node(&mut self, node: NodeId, now: SimTime) {
        if !self.up[node.index()] {
            return;
        }
        self.up[node.index()] = false;
        self.fault_stats.crashes += 1;

        // The node's dedicated pools vanish with it: census first (the
        // directory untracks classes with no pools left), then the frames.
        for c in 1..=self.params.goal_classes {
            let class = ClassId(c as u16);
            if self.nodes[node.index()].buffer.has_dedicated(class) {
                self.directory.dedicated_pool_changed(class, -1);
            }
        }

        // Drop every cached page; detect last copies. No network charges:
        // a crash sends no location updates (the survivors discover the
        // loss through the directory, modelled here as exact).
        let mut resident: Vec<PageId> = Vec::new();
        for t in 0..self.nodes[node.index()].buffer.num_tiers() {
            for c in 0..=self.params.goal_classes {
                resident.extend(
                    self.nodes[node.index()]
                        .buffer
                        .pool_at(t, ClassId(c as u16))
                        .pages(),
                );
            }
        }
        resident.sort_unstable();
        for page in resident {
            let dropped = self.nodes[node.index()].buffer.drop_page(page);
            debug_assert!(dropped, "resident page must drop");
            let left = self.directory.remove_copy(page, node);
            if left == 0 {
                // Lost from aggregate memory: the next access is a forced
                // disk re-read.
                self.fault_stats.last_copy_losses += 1;
            } else if left == 1 {
                if let Some(&last) = self.directory.holders(page).first() {
                    // The survivor's copy gains the altruistic last-copy
                    // benefit term.
                    if self.lazy_cost() {
                        self.mark_stale(last, page);
                    } else {
                        self.reprice(last, page, now);
                    }
                }
            }
        }
        for c in 1..=self.params.goal_classes {
            let (granted, evicted) = self.nodes[node.index()]
                .buffer
                .set_dedicated(ClassId(c as u16), 0);
            debug_assert_eq!(granted, 0);
            debug_assert!(evicted.is_empty(), "pools were already drained");
        }
        self.nodes[node.index()].heat.clear();

        // Abort in-flight operations that originated at the dead node;
        // their orphaned events are swallowed by `handle`'s guard. Sorted
        // for a deterministic abort order regardless of map iteration.
        let mut doomed: Vec<OpId> = self
            .inflight
            .iter()
            .filter(|(_, s)| s.op.origin == node)
            .map(|(&id, _)| id)
            .collect();
        doomed.sort_unstable();
        for id in doomed {
            let state = self.inflight.remove(&id).expect("doomed op in flight");
            if state.span_slot != SlotArena::<StageNanos>::NONE {
                // Aborted ops never complete: recycle their span slot so
                // the arena's footprint stays bounded by live operations.
                self.span_arena.release(state.span_slot);
            }
            self.fault_stats.ops_aborted += 1;
        }
    }

    /// Restarts a crashed `node`: it rejoins with a cold buffer (all frames
    /// in the no-goal pool, no dedicated allocations) and starts serving
    /// protocol steps again. Idempotent while the node is already up.
    pub fn restart_node(&mut self, node: NodeId) {
        if self.up[node.index()] {
            return;
        }
        self.up[node.index()] = true;
        self.fault_stats.restarts += 1;
    }

    /// Begins executing `op`. Returns the first event to schedule.
    pub fn start_operation(&mut self, op: Operation, now: SimTime) -> StepOutput {
        assert!(!op.pages.is_empty(), "operation must access pages");
        let id = op.id;
        let span_slot = if self.spans_on() {
            self.span_arena.alloc()
        } else {
            SlotArena::<StageNanos>::NONE
        };
        let state = OpState {
            // Placeholder until the first lookup routes the access.
            home: op.origin,
            op,
            next_idx: 0,
            access_start: now,
            bounced: false,
            span_slot,
            lookup_wait_ns: 0,
            lookup_total_ns: 0,
        };
        let prev = self.inflight.insert(id, state);
        assert!(prev.is_none(), "duplicate operation id");
        self.begin_access(id, now)
    }

    /// Handles one protocol event.
    pub fn handle(&mut self, now: SimTime, event: ClusterEvent) -> StepOutput {
        let id = match event {
            ClusterEvent::Lookup { op }
            | ClusterEvent::ReqAtHome { op }
            | ClusterEvent::ServeAtHome { op }
            | ClusterEvent::ReqAtHolder { op, .. }
            | ClusterEvent::ServeAtHolder { op, .. }
            | ClusterEvent::DiskDone { op }
            | ClusterEvent::PageArrived { op, .. }
            | ClusterEvent::AccessDone { op, .. } => op,
        };
        if !self.inflight.contains_key(&id) {
            // Orphaned event: its operation was aborted when the origin
            // node crashed while this protocol step was in flight.
            return StepOutput::default();
        }
        match event {
            ClusterEvent::Lookup { op } => self.on_lookup(op, now),
            ClusterEvent::ReqAtHome { op } => {
                let home = self.inflight[&op].home;
                if !self.up[home.index()] {
                    // The home died while the request was in flight.
                    return self.mirror_read(op, now);
                }
                let done = self.nodes[home.index()]
                    .cpu
                    .reserve(now, self.params.cpu.serve());
                self.span_add(op, Stage::RemoteHit, done.since(now).as_nanos());
                StepOutput::default().at(done, ClusterEvent::ServeAtHome { op })
            }
            ClusterEvent::ServeAtHome { op } => self.on_serve_at_home(op, now),
            ClusterEvent::ReqAtHolder { op, holder } => {
                if !self.up[holder.index()] {
                    // The holder died while the forward was in flight.
                    return self.bounce_to_home(op, now);
                }
                let done = self.nodes[holder.index()]
                    .cpu
                    .reserve(now, self.params.cpu.serve());
                self.span_add(op, Stage::RemoteHit, done.since(now).as_nanos());
                StepOutput::default().at(done, ClusterEvent::ServeAtHolder { op, holder })
            }
            ClusterEvent::ServeAtHolder { op, holder } => self.on_serve_at_holder(op, holder, now),
            ClusterEvent::DiskDone { op } => {
                let home = self.inflight[&op].home;
                if !self.up[home.index()] {
                    // The home's disk read completed but the node died
                    // before shipping: read the mirror instead.
                    return self.mirror_read(op, now);
                }
                // Disk read finished at the home; ship the page to the origin
                // (the local-disk case never raises DiskDone).
                let origin = self.inflight[&op].op.origin;
                let delivered = self.network.send_page(now, home, origin);
                self.span_add(op, Stage::NetTransfer, delivered.since(now).as_nanos());
                StepOutput::default().at(
                    delivered,
                    ClusterEvent::PageArrived {
                        op,
                        level: self.costs.remote_disk_slot(),
                    },
                )
            }
            ClusterEvent::PageArrived { op, level } => {
                let origin = self.inflight[&op].op.origin;
                let (done, wait) = self.nodes[origin.index()]
                    .cpu
                    .reserve_split(now, self.params.cpu.install());
                self.span_add(op, Stage::PoolQueue, wait.as_nanos());
                self.span_add(op, Stage::Cpu, done.since(now).as_nanos() - wait.as_nanos());
                StepOutput::default().at(done, ClusterEvent::AccessDone { op, level })
            }
            ClusterEvent::AccessDone { op, level } => self.on_access_done(op, level, now),
        }
    }

    // -- conservative-window parallel execution ----------------------------

    /// Partition index (the node whose state the event touches) for a
    /// *parallel-safe* protocol event, or `None` for an event that needs
    /// exclusive access to the whole plane.
    ///
    /// Safe events are exactly the three that (with their target node up
    /// and their operation live) reserve a single node's CPU, read only
    /// run-stable state (`params`, `inflight`, `up`), never complete an
    /// operation, and schedule exactly one follow-up at least
    /// [`ClusterParams::conservative_window`] after their own instant:
    ///
    /// * [`ClusterEvent::ReqAtHome`] — serve-CPU reservation at the home;
    /// * [`ClusterEvent::ReqAtHolder`] — serve-CPU reservation at the holder;
    /// * [`ClusterEvent::PageArrived`] — install-CPU reservation at the origin.
    ///
    /// Their dead-node variants fall back to mirror/bounce paths that touch
    /// the shared disk, network, and fault counters, so they classify as
    /// global; `up` only changes in global events, which flush any open run
    /// first, keeping the classification stable for the run's lifetime.
    pub fn classify(&self, event: &ClusterEvent) -> Option<u32> {
        match *event {
            ClusterEvent::ReqAtHome { op } => {
                let home = self.inflight.get(&op)?.home;
                self.up[home.index()].then(|| home.index() as u32)
            }
            ClusterEvent::ReqAtHolder { op, holder } => {
                self.inflight.get(&op)?;
                self.up[holder.index()].then(|| holder.index() as u32)
            }
            ClusterEvent::PageArrived { op, .. } => {
                // A live op's origin is always up (crashes abort its ops).
                self.inflight.get(&op).map(|s| s.op.origin.index() as u32)
            }
            _ => None,
        }
    }

    /// Known follow-up delay of a parallel-safe event, or `None` to fall
    /// back on the conservative window. The three safe events each reserve
    /// one CPU facility and schedule their single follow-up no earlier than
    /// their service time after their own instant — a bound known at
    /// schedule time, before the event executes — so the windowed executor
    /// may keep the run open up to that horizon instead of the 30 µs
    /// minimum hop. Gated on [`ClusterParams::lookahead`].
    pub fn lookahead(&self, event: &ClusterEvent) -> Option<SimDuration> {
        if !self.params.lookahead {
            return None;
        }
        match *event {
            ClusterEvent::ReqAtHome { .. } | ClusterEvent::ReqAtHolder { .. } => {
                Some(self.params.cpu.serve())
            }
            ClusterEvent::PageArrived { .. } => Some(self.params.cpu.install()),
            _ => None,
        }
    }

    /// Executes a run of parallel-safe events (each classified `Some` by
    /// [`DataPlane::classify`]) and appends each event's single follow-up
    /// to `out` in run order. Per-node work executes on up to `workers`
    /// scoped threads when the run is worth splitting; the result is
    /// byte-identical to sequential [`DataPlane::handle`] calls either way,
    /// because each partition replays its events in run order against its
    /// own `Facility` and span writes are applied on the caller's thread in
    /// run order afterwards.
    pub fn execute_window(
        &mut self,
        run: &[(SimTime, ClusterEvent)],
        workers: usize,
        out: &mut Vec<(SimTime, ClusterEvent)>,
    ) {
        /// Below this size the thread-spawn overhead dwarfs the work
        /// (a CPU reservation is a few dozen nanoseconds of host time).
        const MIN_PARALLEL_RUN: usize = 16;

        // Completion time, span-stage effects, and live effect count for one
        // executed step — what a worker hands back to the merge loop.
        type Outcome = (SimTime, [(Stage, u64); 2], usize);

        // One prepared step per event, resolved against `inflight` up front.
        struct Step {
            node: u16,
            op: OpId,
            t: SimTime,
            install: Option<CostSlot>,
            follow: ClusterEvent,
        }
        let steps: Vec<Step> = run
            .iter()
            .map(|&(t, e)| match e {
                ClusterEvent::ReqAtHome { op } => Step {
                    node: self.inflight[&op].home.0,
                    op,
                    t,
                    install: None,
                    follow: ClusterEvent::ServeAtHome { op },
                },
                ClusterEvent::ReqAtHolder { op, holder } => Step {
                    node: holder.0,
                    op,
                    t,
                    install: None,
                    follow: ClusterEvent::ServeAtHolder { op, holder },
                },
                ClusterEvent::PageArrived { op, level } => Step {
                    node: self.inflight[&op].op.origin.0,
                    op,
                    t,
                    install: Some(level),
                    follow: ClusterEvent::AccessDone { op, level },
                },
                other => unreachable!("unsafe event {other:?} in a parallel run"),
            })
            .collect();

        let mut order: Vec<u16> = Vec::new(); // distinct nodes, first-seen order
        for s in &steps {
            if !order.contains(&s.node) {
                order.push(s.node);
            }
        }

        if workers < 2 || order.len() < 2 || steps.len() < MIN_PARALLEL_RUN {
            // Inline execution — the literal sequential code path.
            for &(t, e) in run {
                let step = self.handle(t, e);
                debug_assert!(step.completed.is_none(), "safe events never complete");
                out.extend(step.schedule);
            }
            return;
        }

        let serve_d = self.params.cpu.serve();
        let install_d = self.params.cpu.install();
        // (done, span effects) per run index, filled by the workers.
        let mut results: Vec<Option<Outcome>> = (0..steps.len()).map(|_| None).collect();
        {
            let num_nodes = self.nodes.len();
            // Hand each worker exclusive &mut access to its nodes' CPUs.
            let mut cpus: Vec<Option<&mut Facility>> =
                self.nodes.iter_mut().map(|n| Some(&mut n.cpu)).collect();
            let threads = workers.min(order.len());
            let mut jobs: Vec<(Vec<&mut Facility>, Vec<usize>)> =
                (0..threads).map(|_| (Vec::new(), Vec::new())).collect();
            let mut lane_of = vec![usize::MAX; num_nodes];
            for (i, &node) in order.iter().enumerate() {
                let lane = i % threads;
                lane_of[node as usize] = jobs[lane].0.len();
                jobs[lane]
                    .0
                    .push(cpus[node as usize].take().expect("distinct nodes"));
            }
            for (idx, s) in steps.iter().enumerate() {
                let lane = order.iter().position(|&n| n == s.node).expect("seen") % threads;
                jobs[lane].1.push(idx);
            }
            let steps = &steps;
            let lane_of = &lane_of;
            let out_chunks: Vec<Vec<(usize, Outcome)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = jobs
                    .into_iter()
                    .map(|(mut cpus, idxs)| {
                        scope.spawn(move || {
                            let mut acc = Vec::with_capacity(idxs.len());
                            for idx in idxs {
                                let s = &steps[idx];
                                let cpu = &mut *cpus[lane_of[s.node as usize]];
                                let (done, fx, n) = if s.install.is_some() {
                                    let (done, wait) = cpu.reserve_split(s.t, install_d);
                                    let svc = done.since(s.t).as_nanos() - wait.as_nanos();
                                    (
                                        done,
                                        [(Stage::PoolQueue, wait.as_nanos()), (Stage::Cpu, svc)],
                                        2,
                                    )
                                } else {
                                    let done = cpu.reserve(s.t, serve_d);
                                    let ns = done.since(s.t).as_nanos();
                                    (done, [(Stage::RemoteHit, ns); 2], 1)
                                };
                                acc.push((idx, (done, fx, n)));
                            }
                            acc
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("window worker panicked"))
                    .collect()
            });
            for chunk in out_chunks {
                for (idx, outcome) in chunk {
                    results[idx] = Some(outcome);
                }
            }
        }
        // Apply span effects and emit follow-ups in run order, exactly as
        // sequential execution would have.
        for (idx, s) in steps.iter().enumerate() {
            let (done, fx, n) = results[idx].take().expect("every step executed");
            for &(stage, ns) in &fx[..n] {
                self.span_add(s.op, stage, ns);
            }
            out.push((done, s.follow));
        }
    }

    // -- access pipeline ---------------------------------------------------

    fn current_page(&self, op: OpId) -> PageId {
        let s = &self.inflight[&op];
        s.op.pages[s.next_idx]
    }

    fn begin_access(&mut self, op: OpId, now: SimTime) -> StepOutput {
        self.accesses += 1;
        let origin = {
            let s = self.inflight.get_mut(&op).expect("op in flight");
            s.access_start = now;
            s.bounced = false;
            s.op.origin
        };
        let (done, wait) = self.nodes[origin.index()]
            .cpu
            .reserve_split(now, self.params.cpu.lookup());
        if self.spans_on() {
            // The segment's stage depends on the hit/miss outcome, which is
            // only known when the Lookup event fires: park both components.
            let s = self.inflight.get_mut(&op).expect("op in flight");
            s.lookup_wait_ns = wait.as_nanos();
            s.lookup_total_ns = done.since(now).as_nanos();
        }
        StepOutput::default().at(done, ClusterEvent::Lookup { op })
    }

    fn on_lookup(&mut self, op: OpId, now: SimTime) -> StepOutput {
        let (origin, class, page) = {
            let s = &self.inflight[&op];
            (s.op.origin, s.op.class, s.op.pages[s.next_idx])
        };
        self.record_heat(origin, class, page, now);

        if self.mem_tiers() > 1 {
            if let Some((t, _)) = self.nodes[origin.index()].buffer.locate(page) {
                if t > 0 {
                    // Hit in a slower memory tier: the page is served through
                    // that tier's bandwidth-capped facility, then handled as
                    // an install at the origin (promotion under the hotness
                    // policy happens at `AccessDone`, when the transfer has
                    // actually completed). Safe to schedule `PageArrived`
                    // here: `Lookup` is a global event.
                    self.span_lookup_outcome(op, false);
                    let svc = self.tier_service[t - 1];
                    let (done, wait) =
                        self.nodes[origin.index()].tier_fac[t - 1].reserve_split(now, svc);
                    self.span_add(op, Stage::PoolQueue, wait.as_nanos());
                    self.span_add(
                        op,
                        Stage::LocalHit,
                        done.since(now).as_nanos() - wait.as_nanos(),
                    );
                    return StepOutput::default().at(
                        done,
                        ClusterEvent::PageArrived {
                            op,
                            level: self.costs.hit_slot(t),
                        },
                    );
                }
            }
        }

        self.prepare_for_install(origin, class, page, now);
        let outcome = self.nodes[origin.index()].buffer.access(class, page, now);
        match outcome {
            TieredAccess::Hit { moved: false, .. } => {
                self.span_lookup_outcome(op, true);
                // Lazy: the heat change is noted in O(1); the benefit is
                // recomputed only if the page ever reaches a heap minimum.
                if self.lazy_cost() {
                    self.mark_stale(origin, page);
                } else {
                    self.reprice(origin, page, now);
                }
                self.finish_access(op, self.costs.hit_slot(0), now)
            }
            TieredAccess::Hit {
                moved: true,
                evicted,
                demoted,
                ..
            } => {
                self.span_lookup_outcome(op, true);
                self.on_evicted(origin, &evicted, now);
                // Every page that changed pools re-entered at ∞ benefit;
                // price them now in both modes so none can sit unevictable
                // forever.
                for &d in &demoted {
                    self.reprice(origin, d, now);
                }
                self.reprice(origin, page, now);
                self.finish_access(op, self.costs.hit_slot(0), now)
            }
            TieredAccess::Miss => {
                self.span_lookup_outcome(op, false);
                let home = self.homes.home_for(page, origin);
                self.inflight.get_mut(&op).expect("op in flight").home = home;
                self.note_home_read(home, origin, page);
                if home == origin {
                    if let Some(holder) = self.directory.pick_holder(page, origin) {
                        let delivered = self.network.send_request(now, origin, holder);
                        self.span_add(op, Stage::NetRequest, delivered.since(now).as_nanos());
                        StepOutput::default()
                            .at(delivered, ClusterEvent::ReqAtHolder { op, holder })
                    } else {
                        // Local disk read; no network involved.
                        let (done, wait) = self.nodes[origin.index()].disk.read_page_split(now);
                        self.span_add(op, Stage::DiskQueue, wait.as_nanos());
                        self.span_add(
                            op,
                            Stage::DiskService,
                            done.since(now).as_nanos() - wait.as_nanos(),
                        );
                        StepOutput::default().at(
                            done,
                            ClusterEvent::PageArrived {
                                op,
                                level: self.costs.local_disk_slot(),
                            },
                        )
                    }
                } else if !self.up[home.index()] {
                    // The remote home is down: serve from the origin's
                    // local mirror of the page (shared-disk model).
                    self.mirror_read(op, now)
                } else {
                    let delivered = self.network.send_request(now, origin, home);
                    self.span_add(op, Stage::NetRequest, delivered.since(now).as_nanos());
                    StepOutput::default().at(delivered, ClusterEvent::ReqAtHome { op })
                }
            }
        }
    }

    /// Accounts one home-miss request routed to `home`, feeding both the
    /// per-node load gauges and (for adaptive placements) the per-page
    /// counters the hot ring retargets replication from each interval.
    fn note_home_read(&mut self, home: NodeId, origin: NodeId, page: PageId) {
        self.home_reads[home.index()] += 1;
        if home != origin {
            self.home_remote_reads[home.index()] += 1;
        }
        if let Some(c) = self.page_home_reads.get_mut(page.index()) {
            *c += 1;
            self.interval_home_reads += 1;
        }
    }

    /// Error path for a dead home: the page's disk image is reachable
    /// through the origin's local disk (dual-ported / shared-disk
    /// assumption), at local-disk cost.
    fn mirror_read(&mut self, op: OpId, now: SimTime) -> StepOutput {
        let origin = self.inflight[&op].op.origin;
        self.fault_stats.mirror_reads += 1;
        let (done, wait) = self.nodes[origin.index()].disk.read_page_split(now);
        self.span_add(op, Stage::DiskQueue, wait.as_nanos());
        self.span_add(
            op,
            Stage::DiskService,
            done.since(now).as_nanos() - wait.as_nanos(),
        );
        StepOutput::default().at(
            done,
            ClusterEvent::PageArrived {
                op,
                level: self.costs.local_disk_slot(),
            },
        )
    }

    /// Error path for a vanished or dead holder: bounce the request back to
    /// the page's home (which serves from disk if needed), falling through
    /// to a mirror read when the home itself is down.
    fn bounce_to_home(&mut self, op: OpId, now: SimTime) -> StepOutput {
        let s = self.inflight.get_mut(&op).expect("op in flight");
        s.bounced = true;
        let origin = s.op.origin;
        let home = s.home;
        if home == origin {
            // Origin is the home: read its disk directly, no more messages.
            let (done, wait) = self.nodes[home.index()].disk.read_page_split(now);
            self.span_add(op, Stage::DiskQueue, wait.as_nanos());
            self.span_add(
                op,
                Stage::DiskService,
                done.since(now).as_nanos() - wait.as_nanos(),
            );
            return StepOutput::default().at(
                done,
                ClusterEvent::PageArrived {
                    op,
                    level: self.costs.local_disk_slot(),
                },
            );
        }
        if !self.up[home.index()] {
            return self.mirror_read(op, now);
        }
        // The re-request is issued on behalf of the origin (the node that
        // dispatched the vanished forward cannot be trusted to be up).
        let delivered = self.network.send_request(now, origin, home);
        self.span_add(op, Stage::NetRequest, delivered.since(now).as_nanos());
        StepOutput::default().at(delivered, ClusterEvent::ReqAtHome { op })
    }

    fn on_serve_at_home(&mut self, op: OpId, now: SimTime) -> StepOutput {
        let (origin, page, bounced, home) = {
            let s = &self.inflight[&op];
            (s.op.origin, s.op.pages[s.next_idx], s.bounced, s.home)
        };
        if !self.up[home.index()] {
            // The home died between its CPU grant and the serve step.
            return self.mirror_read(op, now);
        }

        if self.nodes[home.index()].buffer.resident(page) {
            let delivered = self.network.send_page(now, home, origin);
            self.span_add(op, Stage::NetTransfer, delivered.since(now).as_nanos());
            return StepOutput::default().at(
                delivered,
                ClusterEvent::PageArrived {
                    op,
                    level: self.costs.remote_hit_slot(),
                },
            );
        }
        if !bounced {
            // Forward to a caching node, if the directory knows one that is
            // neither the origin (it missed) nor the home (checked above).
            let holder = self
                .directory
                .holders(page)
                .iter()
                .copied()
                .find(|&n| n != origin && n != home);
            if let Some(holder) = holder {
                let delivered = self.network.send_request(now, home, holder);
                self.span_add(op, Stage::NetRequest, delivered.since(now).as_nanos());
                return StepOutput::default()
                    .at(delivered, ClusterEvent::ReqAtHolder { op, holder });
            }
        }
        // No copy reachable: read from the home disk.
        let (done, wait) = self.nodes[home.index()].disk.read_page_split(now);
        self.span_add(op, Stage::DiskQueue, wait.as_nanos());
        self.span_add(
            op,
            Stage::DiskService,
            done.since(now).as_nanos() - wait.as_nanos(),
        );
        StepOutput::default().at(done, ClusterEvent::DiskDone { op })
    }

    fn on_serve_at_holder(&mut self, op: OpId, holder: NodeId, now: SimTime) -> StepOutput {
        let page = self.current_page(op);
        if self.up[holder.index()] && self.nodes[holder.index()].buffer.resident(page) {
            let origin = self.inflight[&op].op.origin;
            let delivered = self.network.send_page(now, holder, origin);
            self.span_add(op, Stage::NetTransfer, delivered.since(now).as_nanos());
            return StepOutput::default().at(
                delivered,
                ClusterEvent::PageArrived {
                    op,
                    level: self.costs.remote_hit_slot(),
                },
            );
        }
        // The copy vanished (eviction, or the holder crashed) while the
        // forward was in flight: bounce to the home, which serves from disk
        // if needed.
        self.bounce_to_home(op, now)
    }

    fn on_access_done(&mut self, op: OpId, level: CostSlot, now: SimTime) -> StepOutput {
        let (origin, class, page) = {
            let s = &self.inflight[&op];
            (s.op.origin, s.op.class, s.op.pages[s.next_idx])
        };
        // True when the page just entered a pool (install, migration, or
        // promotion) and therefore sits at ∞ benefit until priced.
        let mut freshly_pooled = false;
        self.prepare_for_install(origin, class, page, now);
        if self.nodes[origin.index()].buffer.resident(page) {
            // A concurrent operation installed the page while ours was in
            // flight — or this is a slow-tier hit arriving through the tier
            // facility; treat as the §6 access it is (the hotness policy
            // promotes here).
            match self.nodes[origin.index()].buffer.access(class, page, now) {
                TieredAccess::Hit {
                    moved: true,
                    evicted,
                    demoted,
                    ..
                } => {
                    self.on_evicted(origin, &evicted, now);
                    for &d in &demoted {
                        self.reprice(origin, d, now);
                    }
                    freshly_pooled = true;
                }
                TieredAccess::Hit { moved: false, .. } => {}
                TieredAccess::Miss => unreachable!("page checked resident"),
            }
        } else {
            let outcome = self.nodes[origin.index()].buffer.install(class, page, now);
            self.on_evicted(origin, &outcome.evicted, now);
            for &d in &outcome.demoted {
                self.reprice(origin, d, now);
            }
            if outcome.cached {
                freshly_pooled = true;
                self.directory.add_copy(page, origin);
                // A second copy demotes the previous last copy: its benefit
                // loses the altruistic term. This *drop* must be applied
                // eagerly even in lazy mode: a stale over-estimate never
                // surfaces at the heap minimum, so the victim loop cannot
                // correct it, and the order-preserving decay never sinks it
                // relative to its peers — the holder would keep the duplicate
                // and evict last copies instead, pushing cluster-wide misses
                // from memory to disk. The cost is one recompute per
                // second-copy install, well within the eviction-rate budget.
                if self.directory.copies(page) == 2 {
                    let other = self
                        .directory
                        .holders(page)
                        .iter()
                        .copied()
                        .find(|&n| n != origin);
                    if let Some(other) = other {
                        self.reprice(other, page, now);
                    }
                }
            }
        }
        if freshly_pooled || !self.lazy_cost() {
            self.reprice(origin, page, now);
        } else {
            self.mark_stale(origin, page);
        }
        self.finish_access(op, level, now)
    }

    fn finish_access(&mut self, op: OpId, level: CostSlot, now: SimTime) -> StepOutput {
        let elapsed_ms = {
            let s = &self.inflight[&op];
            now.since(s.access_start).as_millis_f64()
        };
        self.costs.observe(level, elapsed_ms);

        let finished = {
            let s = self.inflight.get_mut(&op).expect("op in flight");
            s.next_idx += 1;
            s.next_idx == s.op.pages.len()
        };
        if finished {
            let s = self.inflight.remove(&op).expect("op in flight");
            self.completions += 1;
            let span = if s.span_slot != SlotArena::<StageNanos>::NONE {
                let stages = self.span_arena.take(s.span_slot);
                let class_idx = usize::from(s.op.class.0);
                for (hist, &ns) in self.span_hists[class_idx].iter_mut().zip(stages.iter()) {
                    // Skip zeros so a stage's count reads "ops that touched
                    // this stage"; the totals are unaffected either way.
                    if ns > 0 {
                        hist.record(ns);
                    }
                }
                self.span_response_ns[class_idx] += now.since(s.op.arrival).as_nanos();
                self.resp_hists[class_idx].record(now.since(s.op.arrival).as_nanos());
                self.params.spans.samples(s.op.id.0).then_some(stages)
            } else {
                None
            };
            StepOutput {
                schedule: None,
                completed: Some(OpCompletion {
                    id: s.op.id,
                    class: s.op.class,
                    origin: s.op.origin,
                    arrival: s.op.arrival,
                    finished: now,
                    span,
                }),
            }
        } else {
            self.begin_access(op, now)
        }
    }

    // -- bookkeeping -------------------------------------------------------

    fn record_heat(&mut self, node: NodeId, class: ClassId, page: PageId, now: SimTime) {
        let tracked = self.directory.class_tracked(class);
        let k = self.params.heat_k;
        self.nodes[node.index()]
            .heat
            .entry(page)
            .or_insert_with(|| PageHeat::new(k))
            .record(class, now, tracked);
        if self.directory.record_access(page, now) {
            // Threshold crossed: the heat update is published to the page's
            // home — coherence traffic of the caching substrate, accounted
            // as data-plane bytes (§7.5 counts only goal-management traffic
            // as control).
            let bytes = self.params.net.request_bytes;
            let home = self.homes.home_for(page, node);
            self.network.send(now, bytes, TrafficKind::Data, node, home);
        }
    }

    fn on_evicted(&mut self, node: NodeId, evicted: &[PageId], now: SimTime) {
        for &q in evicted {
            let left = self.directory.remove_copy(q, node);
            // Location update to the page's home (coherence traffic).
            let bytes = self.params.net.request_bytes;
            let home = self.homes.home_for(q, node);
            self.network.send(now, bytes, TrafficKind::Data, node, home);
            if left == 1 {
                // The surviving copy becomes the last one and gains the
                // altruistic benefit term. A directory inconsistency must
                // not panic a run: skip gracefully (the copy will be priced
                // on its next touch) but trip debug builds loudly.
                let Some(&last) = self.directory.holders(q).first() else {
                    debug_assert!(
                        false,
                        "directory claims one copy of {q} left after eviction at \
                         node{} but lists no holder",
                        node.index()
                    );
                    continue;
                };
                // Lazy: a stale *under*-estimate is safe — the victim loop
                // re-prices the page before it could be evicted on it.
                if self.lazy_cost() {
                    self.mark_stale(last, q);
                } else {
                    self.reprice(last, q, now);
                }
            }
        }
    }

    /// True when benefits are maintained lazily (cost-based policy in
    /// [`RepricingMode::Lazy`]).
    fn lazy_cost(&self) -> bool {
        self.params.policy == PolicySpec::CostBased && self.params.repricing == RepricingMode::Lazy
    }

    /// `Directory::global_heat_per_ms` memoized per (page, epoch). Lazy mode
    /// only: the eager path keeps the exact reference semantics.
    fn cached_global_heat(&mut self, page: PageId, now: SimTime) -> f64 {
        let stamp = self.epoch + 1;
        if let Some(&(e, heat)) = self.heat_cache.get(page.index()) {
            if e == stamp {
                self.reprice_stats.heat_cache_hits += 1;
                return heat;
            }
        }
        self.reprice_stats.heat_cache_misses += 1;
        let heat = self.directory.global_heat_per_ms(page, now);
        if let Some(slot) = self.heat_cache.get_mut(page.index()) {
            *slot = (stamp, heat);
        }
        heat
    }

    /// Marks `page`'s benefit at `node` stale in O(1); the lazy victim loop
    /// re-prices it if it ever becomes a heap minimum.
    fn mark_stale(&mut self, node: NodeId, page: PageId) {
        let Some((tier, pool_class)) = self.nodes[node.index()].buffer.locate(page) else {
            return;
        };
        if let Some(cost_policy) = self.nodes[node.index()]
            .buffer
            .pool_mut_at(tier, pool_class)
            .policy_mut()
            .as_cost_based_mut()
        {
            cost_policy.invalidate(page);
            self.reprice_stats.stale_marks += 1;
        }
    }

    /// Lazy mode: called before any buffer operation that may evict from
    /// the pool an access by `class` targets. Checks cheaply whether an
    /// eviction is possible (migration out of the no-goal pool into a full
    /// dedicated pool, or an install into a full pool) and, if so, makes
    /// sure the pool's heap minimum carries a fresh benefit.
    fn prepare_for_install(&mut self, node: NodeId, class: ClassId, page: PageId, now: SimTime) {
        if !self.lazy_cost() {
            return;
        }
        let buf = &self.nodes[node.index()].buffer;
        // Resolve the (tier, pool) a displacement would pop a victim from,
        // mirroring `TieredBuffer`'s access/install routing. Cascade
        // demotions past that first pool may still evict on stale minima;
        // that only degrades pricing quality, never correctness.
        let (tier, target) = match buf.locate(page) {
            Some((t, owner)) => {
                let promo = (buf.policy() == TierPolicy::Hotness)
                    .then(|| {
                        (0..t).find(|&u| {
                            let tgt = buf.target_pool_at(u, class);
                            buf.pool_at(u, tgt).capacity() > 0
                        })
                    })
                    .flatten();
                match promo {
                    // Hotness promotion installs into tier `u`'s target pool.
                    Some(u) => (u, buf.target_pool_at(u, class)),
                    // Within tier `t`: only a no-goal → dedicated migration
                    // can evict.
                    None => {
                        let tgt = buf.target_pool_at(t, class);
                        if !owner.is_no_goal() || tgt.is_no_goal() {
                            return;
                        }
                        (t, tgt)
                    }
                }
            }
            // Not resident: an install evicts when the install tier's target
            // pool is full.
            None => match buf.policy() {
                TierPolicy::Hotness => {
                    let Some(dest) = buf.install_target(class) else {
                        return;
                    };
                    dest
                }
                TierPolicy::StaticHash => {
                    let t = buf.static_tier(page);
                    (t, buf.target_pool_at(t, class))
                }
            },
        };
        let pool = self.nodes[node.index()].buffer.pool_at(tier, target);
        if pool.capacity() > 0 && pool.len() >= pool.capacity() {
            self.ensure_fresh_victim(node, tier, target, now);
        }
    }

    /// The lazy victim loop (the classic stale-priority-queue trick): peek
    /// the heap minimum; if its benefit is stale, re-price it — the entry
    /// sifts to its true position — and retry until the minimum is fresh.
    /// Each retry freshens one page, so the loop is bounded by the pool
    /// size; in practice a handful of retries suffice because decay has
    /// already pushed stale entries near the minimum close to their true
    /// rank.
    fn ensure_fresh_victim(
        &mut self,
        node: NodeId,
        tier: usize,
        pool_class: ClassId,
        now: SimTime,
    ) {
        let epoch = self.epoch;
        for _ in 0..=self.nodes[node.index()]
            .buffer
            .pool_at(tier, pool_class)
            .len()
        {
            let min = self.nodes[node.index()]
                .buffer
                .pool_at(tier, pool_class)
                .policy()
                .as_cost_based()
                .and_then(|p| p.min_with_freshness(epoch));
            match min {
                None | Some((_, true)) => return,
                Some((page, false)) => {
                    self.reprice_stats.heap_retries += 1;
                    self.reprice(node, page, now);
                }
            }
        }
        debug_assert!(false, "lazy victim loop failed to converge");
    }

    /// Recomputes the §6 benefit of `page`'s copy at `node` if the pools use
    /// the cost-based policy, stamping it fresh at the current epoch.
    fn reprice(&mut self, node: NodeId, page: PageId, now: SimTime) {
        if self.params.policy != PolicySpec::CostBased {
            return;
        }
        let Some((tier, pool_class)) = self.nodes[node.index()].buffer.locate(page) else {
            return;
        };
        let ranking_heat = {
            let heat = self.nodes[node.index()].heat.get(&page);
            match heat {
                Some(h) if pool_class.is_no_goal() => h.accumulated_heat_per_ms(now),
                Some(h) => h.class_heat_per_ms(pool_class, now),
                None => 0.0,
            }
        };
        let lazy = self.lazy_cost();
        let global_heat = if lazy {
            self.cached_global_heat(page, now)
        } else {
            self.directory.global_heat_per_ms(page, now)
        };
        let inputs = BenefitInputs {
            ranking_heat_per_ms: ranking_heat,
            global_heat_per_ms: global_heat,
            last_copy: self.directory.is_last_copy(page, node),
            home_is_local: self.homes.is_home(page, node),
            mem_tier: tier as u8,
        };
        let b = benefit_ms(inputs, &self.costs);
        let epoch = self.epoch;
        if let Some(cost_policy) = self.nodes[node.index()]
            .buffer
            .pool_mut_at(tier, pool_class)
            .policy_mut()
            .as_cost_based_mut()
        {
            cost_policy.set_benefit(page, b, epoch);
            self.reprice_stats.recomputes += 1;
            if lazy {
                self.reprice_stats.lazy_recomputes += 1;
            }
        }
    }

    /// Advances the benefit epoch at an observation-interval boundary and
    /// performs the per-interval maintenance of the configured
    /// [`RepricingMode`]: the eager full sweep, or the lazy order-preserving
    /// benefit decay (all other lazy bookkeeping happens on demand).
    pub fn on_interval(&mut self, now: SimTime) {
        self.epoch += 1;
        if self.homes.adapts_replication() {
            self.homes
                .retarget_replication(&self.page_home_reads, self.interval_home_reads);
            self.page_home_reads.fill(0);
            self.interval_home_reads = 0;
        }
        if self.params.policy != PolicySpec::CostBased {
            return;
        }
        match self.params.repricing {
            RepricingMode::Eager => self.reprice_all(now),
            RepricingMode::Lazy => self.decay_benefits(),
        }
    }

    /// Decays every benefit in every cost-based pool. Scaling is
    /// order-preserving per pool (and O(1) per pool — only the policy's
    /// implicit scale factor moves), so victim order within an epoch is
    /// untouched; across epochs it drives pages that stopped being re-priced
    /// (stale over-estimates) below freshly priced entries and into the lazy
    /// victim loop, which re-prices before evicting. The factor trades
    /// freshness against work: too aggressive and fresh-priced pages are
    /// *under*-cut by decayed stale ones, flooding the victim loop with
    /// retries; too gentle and stale over-estimates pin cold pages for many
    /// epochs. 0.65 per 5-second interval is the sweet spot measured at the
    /// paper-scale base run: it matches the eager baseline's disk I/O within
    /// a few percent while keeping victim-loop retries a small fraction of
    /// what the sweep would visit (0.5 floods the loop with retries, 0.7
    /// already lets over-estimates linger enough to lift disk I/O).
    fn decay_benefits(&mut self) {
        const DECAY: f64 = 0.65;
        for node in &mut self.nodes {
            for t in 0..node.buffer.num_tiers() {
                for c in 0..=self.params.goal_classes {
                    if let Some(p) = node
                        .buffer
                        .pool_mut_at(t, ClassId(c as u16))
                        .policy_mut()
                        .as_cost_based_mut()
                    {
                        p.scale_benefits(DECAY);
                    }
                }
            }
        }
    }

    /// Re-prices every page of one pool, reusing the scratch buffer instead
    /// of collecting a fresh `Vec` per pool per sweep.
    fn reprice_pool(&mut self, node: NodeId, pool_class: ClassId, now: SimTime) {
        let mut scratch = std::mem::take(&mut self.sweep_scratch);
        scratch.clear();
        for t in 0..self.nodes[node.index()].buffer.num_tiers() {
            scratch.extend(
                self.nodes[node.index()]
                    .buffer
                    .pool_at(t, pool_class)
                    .pages(),
            );
        }
        self.reprice_stats.sweep_pages += scratch.len() as u64;
        for &page in &scratch {
            self.reprice(node, page, now);
        }
        self.sweep_scratch = scratch;
    }

    /// Re-prices every cached page on every node (cost-based policy only).
    /// Heat decays between accesses, so benefits computed at access time go
    /// stale; the paper's threshold protocols propagate heat updates that
    /// have the same effect. The eager per-interval maintenance; cost is
    /// O(total resident pages · log pool).
    pub fn reprice_all(&mut self, now: SimTime) {
        if self.params.policy != PolicySpec::CostBased {
            return;
        }
        self.reprice_stats.sweeps += 1;
        for i in 0..self.nodes.len() {
            let node = NodeId(i as u16);
            for c in 0..=self.params.goal_classes {
                self.reprice_pool(node, ClassId(c as u16), now);
            }
        }
    }

    /// Debug invariant: buffers, directory and in-flight records agree.
    pub fn check_invariants(&self) {
        self.directory.check_invariants();
        for (i, n) in self.nodes.iter().enumerate() {
            n.buffer.check_invariants();
            for page in (0..self.params.db_pages).map(PageId) {
                let in_dir = self.directory.holders(page).contains(&NodeId(i as u16));
                assert_eq!(
                    in_dir,
                    n.buffer.resident(page),
                    "directory/buffer disagree on {page} at node{i}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::homes::PlacementSpec;

    /// Drives the plane's returned events through the shared engine-backed
    /// event loop, collecting completions.
    fn drive(
        plane: &mut DataPlane,
        start: impl IntoIterator<Item = (SimTime, ClusterEvent)>,
    ) -> Vec<OpCompletion> {
        crate::drive::drive_to_quiescence(plane, start)
    }

    fn op(id: u64, class: u16, origin: u16, pages: &[u32], at: SimTime) -> Operation {
        Operation {
            id: OpId(id),
            class: ClassId(class),
            origin: NodeId(origin),
            pages: pages.iter().map(|&p| PageId(p)).collect(),
            arrival: at,
        }
    }

    fn plane() -> DataPlane {
        DataPlane::new(ClusterParams::default())
    }

    #[test]
    fn cold_read_of_local_page_costs_one_disk_read() {
        let mut p = plane();
        // Page 0's home is node 0 (round robin).
        let out = p.start_operation(op(1, 0, 0, &[0], SimTime::ZERO), SimTime::ZERO);
        let done = drive(&mut p, out.schedule);
        assert_eq!(done.len(), 1);
        let rt = done[0].response_ms();
        // lookup CPU + disk read + install CPU ≈ 0.03 + 8.42 + 0.03 ms.
        assert!((8.0..9.5).contains(&rt), "cold local read {rt} ms");
        assert_eq!(p.disk_reads(NodeId(0)), 1);
        assert_eq!(p.network().data_bytes(), 128, "one location update only");
        p.check_invariants();
    }

    #[test]
    fn second_read_hits_locally() {
        let mut p = plane();
        let out = p.start_operation(op(1, 0, 0, &[0], SimTime::ZERO), SimTime::ZERO);
        let done = drive(&mut p, out.schedule);
        let t1 = done[0].finished;
        let out = p.start_operation(op(2, 0, 0, &[0], t1), t1);
        let done = drive(&mut p, out.schedule);
        let rt = done[0].response_ms();
        assert!(rt < 0.1, "local hit {rt} ms");
        assert_eq!(p.disk_reads(NodeId(0)), 1, "no second disk read");
        p.check_invariants();
    }

    #[test]
    fn remote_page_read_uses_home_disk_and_network() {
        let mut p = plane();
        // Page 1's home is node 1; requester is node 0.
        let out = p.start_operation(op(1, 0, 0, &[1], SimTime::ZERO), SimTime::ZERO);
        let done = drive(&mut p, out.schedule);
        let rt = done[0].response_ms();
        assert!((8.5..11.0).contains(&rt), "remote disk read {rt} ms");
        assert_eq!(p.disk_reads(NodeId(1)), 1);
        assert_eq!(p.disk_reads(NodeId(0)), 0);
        // Request + page ship + location update crossed the network.
        assert!(p.network().data_bytes() > 4096);
        p.check_invariants();
    }

    #[test]
    fn remote_cache_hit_avoids_disk() {
        let mut p = plane();
        // Node 1 reads its own page 1 from disk (now cached at node 1).
        let out = p.start_operation(op(1, 0, 1, &[1], SimTime::ZERO), SimTime::ZERO);
        let t1 = drive(&mut p, out.schedule)[0].finished;
        // Node 0 then reads page 1: served from node 1's memory.
        let out = p.start_operation(op(2, 0, 0, &[1], t1), t1);
        let done = drive(&mut p, out.schedule);
        let rt = done[0].response_ms();
        assert!(rt < 2.0, "remote hit {rt} ms");
        assert_eq!(p.disk_reads(NodeId(1)), 1, "no extra disk read");
        // Both nodes now cache the page.
        assert_eq!(p.directory().copies(PageId(1)), 2);
        p.check_invariants();
    }

    #[test]
    fn multi_page_operation_accumulates_latency() {
        let mut p = plane();
        let out = p.start_operation(op(1, 0, 0, &[0, 3, 6, 9], SimTime::ZERO), SimTime::ZERO);
        let done = drive(&mut p, out.schedule);
        assert_eq!(done.len(), 1);
        // Four cold local-disk reads, sequential.
        let rt = done[0].response_ms();
        assert!((4.0 * 8.0..4.0 * 9.5).contains(&rt), "4-page op {rt} ms");
        assert_eq!(p.disk_reads(NodeId(0)), 4);
    }

    #[test]
    fn dedicated_pool_receives_goal_class_pages() {
        let mut p = plane();
        let granted = p.apply_allocation(NodeId(0), ClassId(1), 64, SimTime::ZERO);
        assert_eq!(granted, 64);
        let out = p.start_operation(op(1, 1, 0, &[0], SimTime::ZERO), SimTime::ZERO);
        drive(&mut p, out.schedule);
        assert_eq!(p.dedicated_pages(NodeId(0), ClassId(1)), 64);
        assert_eq!(p.pool_stats(NodeId(0), ClassId(1)).insertions, 1);
        assert!(p.directory().class_tracked(ClassId(1)));
        p.check_invariants();
    }

    #[test]
    fn deallocating_all_pools_untracks_class() {
        let mut p = plane();
        p.apply_allocation(NodeId(0), ClassId(1), 64, SimTime::ZERO);
        p.apply_allocation(NodeId(1), ClassId(1), 32, SimTime::ZERO);
        assert!(p.directory().class_tracked(ClassId(1)));
        p.apply_allocation(NodeId(0), ClassId(1), 0, SimTime::ZERO);
        assert!(p.directory().class_tracked(ClassId(1)));
        p.apply_allocation(NodeId(1), ClassId(1), 0, SimTime::ZERO);
        assert!(!p.directory().class_tracked(ClassId(1)));
    }

    #[test]
    fn eviction_updates_directory() {
        let params = ClusterParams {
            buffer_pages_per_node: 2, // tiny cache forces evictions
            // LRU makes the victim deterministic (cost-based benefits of two
            // once-touched pages depend on pricing instants).
            policy: dmm_buffer::PolicySpec::Lru,
            ..ClusterParams::default()
        };
        let mut p = DataPlane::new(params);
        let mut t = SimTime::ZERO;
        for (i, page) in [0u32, 3, 6].iter().enumerate() {
            let out = p.start_operation(op(i as u64, 0, 0, &[*page], t), t);
            t = drive(&mut p, out.schedule)[0].finished;
        }
        // Page 0 was evicted by page 6's install.
        assert_eq!(p.directory().copies(PageId(0)), 0);
        assert_eq!(p.directory().copies(PageId(6)), 1);
        p.check_invariants();
    }

    #[test]
    fn concurrent_ops_queue_at_the_disk() {
        let mut p = plane();
        let o1 = p.start_operation(op(1, 0, 0, &[0], SimTime::ZERO), SimTime::ZERO);
        let o2 = p.start_operation(op(2, 0, 0, &[3], SimTime::ZERO), SimTime::ZERO);
        let done = drive(&mut p, o1.schedule.into_iter().chain(o2.schedule));
        assert_eq!(done.len(), 2);
        let mut rts: Vec<f64> = done.iter().map(|c| c.response_ms()).collect();
        rts.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        // Second op waits for the first's disk read: roughly double latency.
        assert!(rts[1] > rts[0] * 1.7, "no queueing visible: {rts:?}");
    }

    #[test]
    fn concurrent_fetch_of_same_page_is_safe() {
        let mut p = plane();
        let o1 = p.start_operation(op(1, 0, 0, &[0], SimTime::ZERO), SimTime::ZERO);
        let o2 = p.start_operation(op(2, 0, 0, &[0], SimTime::ZERO), SimTime::ZERO);
        let done = drive(&mut p, o1.schedule.into_iter().chain(o2.schedule));
        assert_eq!(done.len(), 2);
        assert_eq!(p.directory().copies(PageId(0)), 1);
        p.check_invariants();
    }

    #[test]
    fn control_messages_are_accounted_separately() {
        let mut p = plane();
        let delivered = p.send_control(NodeId(0), NodeId(1), 200, SimTime::ZERO);
        assert!(delivered > SimTime::ZERO);
        assert_eq!(p.network().control_bytes(), 200);
        assert_eq!(p.network().data_bytes(), 0);
        // Same-node control is free.
        let t = p.send_control(NodeId(0), NodeId(0), 200, delivered);
        assert_eq!(t, delivered);
        assert_eq!(p.network().control_bytes(), 200);
    }

    #[test]
    fn cost_estimates_learn_from_traffic() {
        let mut p = plane();
        let out = p.start_operation(op(1, 0, 0, &[0], SimTime::ZERO), SimTime::ZERO);
        drive(&mut p, out.schedule);
        let slot = p.costs().local_disk_slot();
        assert_eq!(p.costs().observations(slot), 1);
        let est = p.costs().estimate_ms(slot);
        assert!((8.0..9.5).contains(&est));
    }

    #[test]
    fn crash_drops_copies_and_counts_last_copy_losses() {
        let mut p = plane();
        // Node 1 caches its own page 1 (sole copy).
        let out = p.start_operation(op(1, 0, 1, &[1], SimTime::ZERO), SimTime::ZERO);
        let t1 = drive(&mut p, out.schedule)[0].finished;
        assert_eq!(p.directory().copies(PageId(1)), 1);

        p.crash_node(NodeId(1), t1);
        assert!(!p.is_up(NodeId(1)));
        assert_eq!(p.live_nodes(), 2);
        assert_eq!(p.directory().copies(PageId(1)), 0);
        assert_eq!(p.fault_stats().crashes, 1);
        assert_eq!(p.fault_stats().last_copy_losses, 1);
        p.check_invariants();

        // Node 0 now reads page 1: its home (node 1) is down, so the read
        // is served from node 0's local mirror disk.
        let out = p.start_operation(op(2, 0, 0, &[1], t1), t1);
        let done = drive(&mut p, out.schedule);
        assert_eq!(done.len(), 1, "op must complete despite the dead home");
        assert_eq!(p.fault_stats().mirror_reads, 1);
        assert_eq!(p.disk_reads(NodeId(0)), 1);
        p.check_invariants();
    }

    #[test]
    fn crash_aborts_inflight_ops_of_the_dead_origin() {
        let mut p = plane();
        let o1 = p.start_operation(op(1, 0, 1, &[4], SimTime::ZERO), SimTime::ZERO);
        // Crash the origin while the op is mid-protocol; its pending event
        // becomes an orphan that `handle` must swallow without panicking.
        p.crash_node(NodeId(1), SimTime::ZERO);
        let done = drive(&mut p, o1.schedule);
        assert!(done.is_empty(), "aborted op must not complete");
        assert_eq!(p.fault_stats().ops_aborted, 1);
        assert_eq!(p.inflight_ops(), 0);
        p.check_invariants();
    }

    #[test]
    fn restart_rejoins_cold_and_serves_again() {
        let mut p = plane();
        p.apply_allocation(NodeId(1), ClassId(1), 32, SimTime::ZERO);
        let out = p.start_operation(op(1, 1, 1, &[1], SimTime::ZERO), SimTime::ZERO);
        let t1 = drive(&mut p, out.schedule)[0].finished;
        p.crash_node(NodeId(1), t1);
        assert_eq!(p.dedicated_pages(NodeId(1), ClassId(1)), 0);
        assert_eq!(p.apply_allocation(NodeId(1), ClassId(1), 32, t1), 0);

        p.restart_node(NodeId(1));
        assert!(p.is_up(NodeId(1)));
        assert_eq!(p.fault_stats().restarts, 1);
        // Cold: nothing resident, allocations work again.
        assert_eq!(p.pool_stats(NodeId(1), ClassId(1)).hits, 0);
        assert_eq!(p.apply_allocation(NodeId(1), ClassId(1), 32, t1), 32);
        let out = p.start_operation(op(2, 1, 1, &[1], t1), t1);
        let done = drive(&mut p, out.schedule);
        assert_eq!(done.len(), 1);
        assert_eq!(p.disk_reads(NodeId(1)), 2, "cold rejoin re-reads disk");
        p.check_invariants();
    }

    #[test]
    fn dead_holder_bounces_to_home() {
        let mut p = plane();
        // Node 2 reads page 0 (home: node 0, which serves from disk without
        // caching) — the only cached copy ends up at node 2.
        let out = p.start_operation(op(1, 0, 2, &[0], SimTime::ZERO), SimTime::ZERO);
        let t1 = drive(&mut p, out.schedule)[0].finished;
        assert_eq!(p.directory().copies(PageId(0)), 1);
        // Node 1 requests page 0; the home forwards to holder node 2 —
        // which dies while the forward is on the wire. The op must still
        // terminate via bounce + home disk read.
        let mut next = p.start_operation(op(2, 0, 1, &[0], t1), t1).schedule;
        let mut completed = None;
        while let Some((t, e)) = next {
            if matches!(e, ClusterEvent::ReqAtHolder { holder, .. } if holder == NodeId(2)) {
                p.crash_node(NodeId(2), t);
            }
            let step = p.handle(t, e);
            completed = completed.or(step.completed);
            next = step.schedule;
        }
        assert!(completed.is_some(), "bounced op completes from home disk");
        assert_eq!(p.fault_stats().crashes, 1);
        assert!(p.disk_reads(NodeId(0)) >= 2, "home disk served the bounce");
        p.check_invariants();
    }

    /// A dense cross-node workload: every node misses on every other
    /// node's pages, so ReqAtHome/PageArrived events pile up across
    /// partitions within single conservative windows.
    fn cross_node_ops(nodes: u16, ops_per_node: u64) -> Vec<Operation> {
        let mut ops = Vec::new();
        let mut id = 0u64;
        for i in 0..ops_per_node {
            for origin in 0..nodes {
                id += 1;
                let page = (origin as u32 + 1 + i as u32 * nodes as u32) % 60;
                let at = SimTime::from_nanos(i * 7_000 + origin as u64 * 13);
                ops.push(op(id, 0, origin, &[page], at));
            }
        }
        ops
    }

    fn run_workload(
        params: ClusterParams,
        ops: &[Operation],
        workers: Option<usize>,
    ) -> (Vec<(u64, u64)>, DataPlane) {
        let mut p = DataPlane::new(params);
        let mut start = Vec::new();
        for o in ops {
            let at = o.arrival;
            let out = p.start_operation(o.clone(), at);
            start.extend(out.schedule);
        }
        let done = match workers {
            None => drive(&mut p, start),
            Some(w) => crate::drive::drive_to_quiescence_windowed(&mut p, start, w),
        };
        let log = done
            .iter()
            .map(|c| (c.id.0, c.finished.as_nanos()))
            .collect();
        (log, p)
    }

    #[test]
    fn windowed_execution_matches_sequential_exactly() {
        for placement in [
            PlacementSpec::RoundRobin,
            PlacementSpec::HotRing(crate::homes::HotRingSpec::default()),
        ] {
            let params = ClusterParams {
                nodes: 8,
                placement,
                spans: dmm_obs::SpanMode::Sampled { every: 1 },
                ..ClusterParams::default()
            };
            let ops = cross_node_ops(8, 40);
            let (seq_log, seq_plane) = run_workload(params.clone(), &ops, None);
            assert_eq!(seq_log.len(), ops.len());
            for workers in [1, 2, 4] {
                let (win_log, win_plane) = run_workload(params.clone(), &ops, Some(workers));
                assert_eq!(seq_log, win_log, "workers={workers} {placement:?}");
                assert_eq!(
                    seq_plane.home_load(),
                    win_plane.home_load(),
                    "workers={workers}"
                );
                assert_eq!(seq_plane.completions(), win_plane.completions());
                win_plane.check_invariants();
            }
        }
    }

    #[test]
    fn parallel_window_path_matches_inline_execution() {
        // A constructed run dense enough (32 events, 8 partitions) to take
        // the scoped-thread path at workers=4; workers=1 forces the inline
        // path. Outputs and downstream completions must match exactly.
        let params = ClusterParams {
            nodes: 8,
            ..ClusterParams::default()
        };
        let mut p1 = DataPlane::new(params.clone());
        let mut p2 = DataPlane::new(params);
        let remote_disk = p1.costs().remote_disk_slot();
        let mut run = Vec::new();
        for i in 0..32u64 {
            let o = op(i + 1, 0, (i % 8) as u16, &[(i as u32) % 50], SimTime::ZERO);
            // Register the op in flight; the initial lookup event is
            // dropped — this run injects mid-protocol events directly.
            let _ = p1.start_operation(o.clone(), SimTime::ZERO);
            let _ = p2.start_operation(o, SimTime::ZERO);
            let t = SimTime::from_nanos(1_000 + i * 13);
            let e = if i % 2 == 0 {
                ClusterEvent::PageArrived {
                    op: OpId(i + 1),
                    level: remote_disk,
                }
            } else {
                ClusterEvent::ReqAtHolder {
                    op: OpId(i + 1),
                    holder: NodeId(((i + 3) % 8) as u16),
                }
            };
            assert!(p1.classify(&e).is_some(), "constructed event must be safe");
            run.push((t, e));
        }
        let (mut out1, mut out2) = (Vec::new(), Vec::new());
        p1.execute_window(&run, 4, &mut out1);
        p2.execute_window(&run, 1, &mut out2);
        assert_eq!(out1.len(), run.len(), "one follow-up per safe event");
        assert_eq!(out1, out2, "parallel and inline outputs diverge");
        let log = |d: Vec<OpCompletion>| -> Vec<(u64, u64)> {
            d.iter().map(|c| (c.id.0, c.finished.as_nanos())).collect()
        };
        let d1 = log(drive(&mut p1, out1));
        let d2 = log(drive(&mut p2, out2));
        assert_eq!(d1.len(), 32);
        assert_eq!(d1, d2, "facility states diverged after the window");
        p1.check_invariants();
        p2.check_invariants();
    }

    #[test]
    fn home_load_accounts_requests_and_fanin() {
        let mut p = plane();
        // Node 0 misses page 1 (home node 1): one remote home read.
        let out = p.start_operation(op(1, 0, 0, &[1], SimTime::ZERO), SimTime::ZERO);
        let t1 = drive(&mut p, out.schedule)[0].finished;
        // Node 0 misses page 0 (its own home): local home read, no fan-in.
        let out = p.start_operation(op(2, 0, 0, &[0], t1), t1);
        drive(&mut p, out.schedule);
        let hl = p.home_load();
        assert_eq!(hl.home_reads, vec![1, 1, 0]);
        assert_eq!(hl.remote_fanin, vec![0, 1, 0]);
        // Round-robin homes 2000 pages over 3 nodes: 667/667/666.
        assert_eq!(hl.home_pages.iter().sum::<u32>(), 2000);
        assert_eq!(hl.home_pages[0], 667);
    }

    #[test]
    fn hot_ring_spreads_a_hot_page_across_homes() {
        let params = ClusterParams {
            nodes: 8,
            placement: PlacementSpec::HotRing(crate::homes::HotRingSpec::default()),
            ..ClusterParams::default()
        };
        let mut p = DataPlane::new(params);
        let hot = PageId(7);
        assert_eq!(p.homes().replication(hot), 1);
        // One interval of traffic concentrated on one page...
        let mut t = SimTime::ZERO;
        for i in 0..40u64 {
            let origin = (i % 8) as u16;
            let out = p.start_operation(op(i + 1, 0, origin, &[7], t), t);
            t = drive(&mut p, out.schedule)
                .last()
                .map(|c| c.finished)
                .unwrap_or(t);
        }
        p.on_interval(t);
        // ...drives its replication degree up, so different origins now
        // route home reads to different nodes.
        assert!(
            p.homes().replication(hot) > 1,
            "hot page kept degree {}",
            p.homes().replication(hot)
        );
        let homes: std::collections::BTreeSet<NodeId> =
            (0..8).map(|o| p.homes().home_for(hot, NodeId(o))).collect();
        assert!(homes.len() > 1, "fan-in not spread: {homes:?}");
        // An idle interval cools it back down.
        for _ in 0..8 {
            p.on_interval(t);
        }
        assert_eq!(p.homes().replication(hot), 1);
    }

    #[test]
    fn install_faults_wires_drop_model_and_stalls() {
        let mut p = plane();
        let plan = FaultPlan::new(3)
            .message_drop(0.9)
            .disk_stall_ms(NodeId(0), 0, 1_000, 8.0);
        p.install_faults(&plan);
        let out = p.start_operation(op(1, 0, 0, &[0], SimTime::ZERO), SimTime::ZERO);
        let done = drive(&mut p, out.schedule);
        assert_eq!(done.len(), 1);
        // The cold local read hit the stall window.
        assert!(done[0].response_ms() > 8.0 * 8.0);
        assert_eq!(p.nodes[0].disk.stalled_reads(), 1);
    }

    /// A 4-rung ladder (dram + cxl + remote + disk) with per-node capacities
    /// small enough that a 20-page working set overflows dram.
    fn extended_params() -> ClusterParams {
        let tiers = crate::tier::TierLadder::new(vec![
            crate::tier::TierSpec::new("dram", 0.03),
            crate::tier::TierSpec::new("cxl", 0.25)
                .frames(24)
                .bandwidth(2_000_000_000),
            crate::tier::TierSpec::new("remote", 0.5),
            crate::tier::TierSpec::new("disk", 12.6),
        ])
        .expect("valid ladder");
        ClusterParams {
            buffer_pages_per_node: 8,
            tiers,
            ..ClusterParams::default()
        }
    }

    #[test]
    fn extended_ladder_promotes_demotes_and_completes() {
        let mut p = DataPlane::new(extended_params());
        let mut id = 0u64;
        let mut completed = 0usize;
        // Three passes over a working set larger than dram but within
        // dram + cxl: pass 1 installs and demotes the overflow, later
        // passes hit the cxl copies and promote them back.
        for round in 0..3u64 {
            let mut start = Vec::new();
            for page in 0..20u32 {
                id += 1;
                let at = SimTime::from_nanos(round * 1_000_000_000 + u64::from(page) * 10_000_000);
                let out = p.start_operation(op(id, 0, 0, &[page], at), at);
                start.extend(out.schedule);
            }
            completed += drive(&mut p, start).len();
        }
        assert_eq!(completed, 60);
        let b = &p.nodes[0].buffer;
        assert!(
            b.demotions().iter().sum::<u64>() > 0,
            "dram overflow must demote into cxl"
        );
        assert!(
            b.promotions().iter().sum::<u64>() > 0,
            "slow-tier hits must promote"
        );
        let occ = p.tier_occupancy();
        assert_eq!(occ.len(), 2);
        assert_eq!(occ[0].0, "dram");
        assert_eq!(occ[0].2, 8 * 3);
        assert_eq!((occ[1].0.as_str(), occ[1].2), ("cxl", 24 * 3));
        assert!(
            p.costs().observations(p.costs().hit_slot(1)) > 0,
            "cxl hits must be observed in their own cost slot"
        );
        p.check_invariants();
    }

    #[test]
    fn windowed_execution_matches_sequential_on_extended_ladder() {
        let params = ClusterParams {
            nodes: 8,
            ..extended_params()
        };
        let ops = cross_node_ops(8, 40);
        let (seq_log, seq_plane) = run_workload(params.clone(), &ops, None);
        assert_eq!(seq_log.len(), ops.len());
        for workers in [2, 4] {
            let (win_log, win_plane) = run_workload(params.clone(), &ops, Some(workers));
            assert_eq!(seq_log, win_log, "workers={workers}");
            assert_eq!(seq_plane.completions(), win_plane.completions());
            win_plane.check_invariants();
        }
    }
}
