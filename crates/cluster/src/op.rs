//! Operations: the unit of work whose response time the goals constrain.

use dmm_buffer::{ClassId, PageId};
use dmm_obs::StageNanos;
use dmm_sim::SimTime;

use crate::ids::{NodeId, OpId};

/// One operation: a sequence of page accesses executed at its origin node by
/// data shipping (§3). Accesses run sequentially; the operation is
/// disk-bound, so its response time is dominated by the accesses that miss.
#[derive(Debug, Clone)]
pub struct Operation {
    /// Unique id.
    pub id: OpId,
    /// Workload class.
    pub class: ClassId,
    /// Node where the operation was initiated.
    pub origin: NodeId,
    /// Pages accessed, in order.
    pub pages: Vec<PageId>,
    /// Arrival instant.
    pub arrival: SimTime,
}

/// Completion record handed back to the measurement layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpCompletion {
    /// The finished operation.
    pub id: OpId,
    /// Its class.
    pub class: ClassId,
    /// Its origin node.
    pub origin: NodeId,
    /// Arrival instant.
    pub arrival: SimTime,
    /// Completion instant.
    pub finished: SimTime,
    /// Per-stage response-time decomposition (simulated nanoseconds),
    /// present only for operations selected by the deterministic span
    /// sampler ([`SpanMode::Sampled`](dmm_obs::SpanMode::Sampled)).
    pub span: Option<StageNanos>,
}

impl OpCompletion {
    /// Response time in milliseconds.
    pub fn response_ms(&self) -> f64 {
        self.finished.since(self.arrival).as_millis_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_time() {
        let c = OpCompletion {
            id: OpId(1),
            class: ClassId(1),
            origin: NodeId(0),
            arrival: SimTime::from_nanos(1_000_000),
            finished: SimTime::from_nanos(3_500_000),
            span: None,
        };
        assert!((c.response_ms() - 2.5).abs() < 1e-12);
    }
}
