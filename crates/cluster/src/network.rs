//! The cluster interconnect.
//!
//! Two topologies (selected by [`FabricSpec`]):
//!
//! * **Shared medium** — one FCFS facility models the paper's 100 Mbit/s
//!   LAN; every message occupies it for its serialization time and is
//!   delivered a fixed latency after transmission ends. Aggregate bandwidth
//!   is constant in `N`, which is the §7.1 model and the first N = 64 scale
//!   wall.
//! * **Switched** — every node owns a full-duplex link: one TX and one RX
//!   facility of `bits_per_sec` each. A message serializes through the
//!   sender's TX link, optionally through a shared bisection facility (an
//!   oversubscribed switch core; `None` models a non-blocking switch), and
//!   then through the receiver's RX link (store-and-forward). Distinct
//!   node pairs no longer contend, so bisection bandwidth grows with `N`.
//!
//! Byte counters split **data** traffic (page shipping and requests of the
//! access protocol) from **control** traffic (agents, coordinators, heat
//! dissemination), which is exactly the split the §7.5 overhead experiment
//! reports.

use dmm_obs::Histogram;
use dmm_sim::{Facility, SimDuration, SimRng, SimTime};

use crate::ids::NodeId;
use crate::params::{FabricSpec, NetParams, PAGE_BYTES};

/// Traffic class for accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficKind {
    /// Access-protocol traffic: requests, forwards, page transfers.
    Data,
    /// Goal-management traffic: agent reports, new allocations, heat
    /// dissemination.
    Control,
}

/// Seeded per-message loss model (fault injection): each transmission is
/// dropped with a fixed probability and retransmitted after a back-off, so
/// losses surface as extra latency and extra medium occupancy — never as a
/// hung protocol step.
#[derive(Debug, Clone)]
struct DropModel {
    rng: SimRng,
    probability: f64,
    retransmit: SimDuration,
    dropped: u64,
}

/// Per-link TX/RX busy fractions of one node's full-duplex link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkUtilization {
    /// Transmit-side busy fraction over the observation window.
    pub tx: f64,
    /// Receive-side busy fraction over the observation window.
    pub rx: f64,
}

/// The transmission facilities behind the chosen topology.
#[derive(Debug, Clone)]
enum Links {
    /// One shared FCFS medium.
    Shared(Facility),
    /// Per-node full-duplex links, plus an optional switch-core capacity.
    Switched {
        tx: Vec<Facility>,
        rx: Vec<Facility>,
        bisection: Option<Facility>,
        /// Combined TX + RX queueing wait per message, in nanoseconds
        /// (the switched analogue of the shared medium's wait histogram).
        wait: Histogram,
    },
}

/// The cluster network.
#[derive(Debug, Clone)]
pub struct Network {
    links: Links,
    params: NetParams,
    data_bytes: u64,
    control_bytes: u64,
    data_messages: u64,
    control_messages: u64,
    drop: Option<DropModel>,
}

impl Network {
    /// Idle network joining `nodes` nodes, with the topology named by
    /// `params.fabric`.
    pub fn new(params: NetParams, nodes: usize) -> Self {
        let links = match params.fabric {
            FabricSpec::SharedMedium => Links::Shared(Facility::new("lan")),
            FabricSpec::Switched {
                bisection_bits_per_sec,
            } => Links::Switched {
                tx: (0..nodes).map(|_| Facility::new("tx")).collect(),
                rx: (0..nodes).map(|_| Facility::new("rx")).collect(),
                bisection: bisection_bits_per_sec.map(|_| Facility::new("bisection")),
                wait: Histogram::exponential(1_000, 21),
            },
        };
        Network {
            links,
            params,
            data_bytes: 0,
            control_bytes: 0,
            data_messages: 0,
            control_messages: 0,
            drop: None,
        }
    }

    /// Installs the message-drop model: every transmission is lost with
    /// probability `p` and retried after `retransmit`. The model draws from
    /// its own seeded stream so the workload's dice are untouched.
    pub fn set_drop_model(&mut self, p: f64, retransmit: SimDuration, seed: u64) {
        assert!((0.0..1.0).contains(&p), "drop probability in [0, 1)");
        self.drop = (p > 0.0).then(|| DropModel {
            rng: SimRng::seed_from_u64(seed),
            probability: p,
            retransmit,
            dropped: 0,
        });
    }

    /// Messages dropped (and retransmitted) by the loss model so far.
    pub fn dropped_messages(&self) -> u64 {
        self.drop.as_ref().map_or(0, |d| d.dropped)
    }

    /// Transmits `bytes` from node `from` to node `to` starting no earlier
    /// than `now`; returns the delivery instant at the receiver.
    ///
    /// On the shared medium the endpoints are irrelevant — every message
    /// serializes through the one facility. On the switched fabric the
    /// message is store-and-forwarded: TX link, optional bisection, RX link.
    /// With the drop model installed a lost transmission still occupies the
    /// sending facility (the bits were sent), then retries after the
    /// back-off; the loop terminates with probability 1 and every retry is
    /// byte-accounted. On the switched fabric the loss is detected at the
    /// sender (the switch never saw a valid frame), so a dropped message
    /// occupies only the TX link.
    pub fn send(
        &mut self,
        now: SimTime,
        bytes: u64,
        kind: TrafficKind,
        from: NodeId,
        to: NodeId,
    ) -> SimTime {
        let transfer = self.params.transfer_time(bytes);
        let latency = self.params.per_message_latency;
        let mut start = now;
        match &mut self.links {
            Links::Shared(medium) => loop {
                match kind {
                    TrafficKind::Data => {
                        self.data_bytes += bytes;
                        self.data_messages += 1;
                    }
                    TrafficKind::Control => {
                        self.control_bytes += bytes;
                        self.control_messages += 1;
                    }
                }
                let done = medium.reserve(start, transfer);
                let lost = self
                    .drop
                    .as_mut()
                    .is_some_and(|m| m.rng.uniform01() < m.probability);
                if !lost {
                    return done + latency;
                }
                let m = self.drop.as_mut().expect("lost implies model");
                m.dropped += 1;
                start = done + m.retransmit;
            },
            Links::Switched {
                tx,
                rx,
                bisection,
                wait,
            } => loop {
                match kind {
                    TrafficKind::Data => {
                        self.data_bytes += bytes;
                        self.data_messages += 1;
                    }
                    TrafficKind::Control => {
                        self.control_bytes += bytes;
                        self.control_messages += 1;
                    }
                }
                let (tx_done, tx_wait) = tx[from.index()].reserve_split(start, transfer);
                let lost = self
                    .drop
                    .as_mut()
                    .is_some_and(|m| m.rng.uniform01() < m.probability);
                if !lost {
                    // Store-and-forward through the switch. Self-sends
                    // traverse the core too (switch loopback) — one rule
                    // for every message keeps the model simple.
                    let mut at = tx_done;
                    if let Some(core) = bisection {
                        let core_bps = match self.params.fabric {
                            FabricSpec::Switched {
                                bisection_bits_per_sec: Some(bps),
                            } => bps,
                            _ => unreachable!("bisection facility implies capacity"),
                        };
                        let core_time =
                            SimDuration::from_nanos(bytes.saturating_mul(8_000_000_000) / core_bps);
                        at = core.reserve(at, core_time);
                    }
                    let (rx_done, rx_wait) = rx[to.index()].reserve_split(at, transfer);
                    wait.record((tx_wait + rx_wait).as_nanos());
                    return rx_done + latency;
                }
                let m = self.drop.as_mut().expect("lost implies model");
                m.dropped += 1;
                start = tx_done + m.retransmit;
            },
        }
    }

    /// Sends a small request/forward message (data plane).
    pub fn send_request(&mut self, now: SimTime, from: NodeId, to: NodeId) -> SimTime {
        self.send(now, self.params.request_bytes, TrafficKind::Data, from, to)
    }

    /// Ships one page (data plane).
    pub fn send_page(&mut self, now: SimTime, from: NodeId, to: NodeId) -> SimTime {
        self.send(
            now,
            PAGE_BYTES + self.params.page_header_bytes,
            TrafficKind::Data,
            from,
            to,
        )
    }

    /// True when the switched fabric is active (per-link statistics exist).
    pub fn is_switched(&self) -> bool {
        matches!(self.links, Links::Switched { .. })
    }

    /// Total data-plane bytes.
    pub fn data_bytes(&self) -> u64 {
        self.data_bytes
    }

    /// Total control-plane bytes.
    pub fn control_bytes(&self) -> u64 {
        self.control_bytes
    }

    /// Message counters `(data, control)`.
    pub fn message_counts(&self) -> (u64, u64) {
        (self.data_messages, self.control_messages)
    }

    /// Fraction of total traffic that is control traffic (§7.5 metric).
    pub fn control_fraction(&self) -> f64 {
        let total = self.data_bytes + self.control_bytes;
        if total == 0 {
            0.0
        } else {
            self.control_bytes as f64 / total as f64
        }
    }

    /// Network utilization over `[0, now]`: the medium's busy fraction, or —
    /// switched — the busiest individual facility (the binding constraint).
    pub fn utilization(&self, now: SimTime) -> f64 {
        match &self.links {
            Links::Shared(medium) => medium.utilization(now),
            Links::Switched {
                tx, rx, bisection, ..
            } => tx
                .iter()
                .chain(rx.iter())
                .chain(bisection.iter())
                .map(|f| f.utilization(now))
                .fold(0.0, f64::max),
        }
    }

    /// TX/RX busy fractions of `node`'s link over `[0, now]`; `None` on the
    /// shared medium (there are no per-node links).
    pub fn link_utilization(&self, node: usize, now: SimTime) -> Option<LinkUtilization> {
        match &self.links {
            Links::Shared(_) => None,
            Links::Switched { tx, rx, .. } => Some(LinkUtilization {
                tx: tx[node].utilization(now),
                rx: rx[node].utilization(now),
            }),
        }
    }

    /// Busy fraction of the switch core over `[0, now]`; `None` unless a
    /// bisection capacity was configured.
    pub fn bisection_utilization(&self, now: SimTime) -> Option<f64> {
        match &self.links {
            Links::Switched {
                bisection: Some(core),
                ..
            } => Some(core.utilization(now)),
            _ => None,
        }
    }

    /// Histogram of per-message queueing waits (nanoseconds): medium waits
    /// on the shared fabric, combined TX + RX waits on the switched fabric.
    pub fn wait_histogram(&self) -> &Histogram {
        match &self.links {
            Links::Shared(medium) => medium.wait_histogram(),
            Links::Switched { wait, .. } => wait,
        }
    }

    /// Resets byte/message counters and busy accounting (not the facility
    /// horizons).
    pub fn reset_stats(&mut self) {
        self.data_bytes = 0;
        self.control_bytes = 0;
        self.data_messages = 0;
        self.control_messages = 0;
        match &mut self.links {
            Links::Shared(medium) => medium.reset_stats(),
            Links::Switched {
                tx,
                rx,
                bisection,
                wait,
            } => {
                for f in tx
                    .iter_mut()
                    .chain(rx.iter_mut())
                    .chain(bisection.iter_mut())
                {
                    f.reset_stats();
                }
                *wait = Histogram::exponential(1_000, 21);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared() -> Network {
        Network::new(NetParams::default(), 3)
    }

    fn switched(nodes: usize, bisection: Option<u64>) -> Network {
        let params = NetParams {
            fabric: FabricSpec::Switched {
                bisection_bits_per_sec: bisection,
            },
            ..NetParams::default()
        };
        Network::new(params, nodes)
    }

    #[test]
    fn page_transfer_time_and_accounting() {
        let mut n = shared();
        let t0 = SimTime::ZERO;
        let arrive = n.send_page(t0, NodeId(0), NodeId(1));
        // (4096+128)·8 bits / 100 Mbit/s = 337.92 µs + 50 µs latency.
        assert!((arrive.as_millis_f64() - 0.38792).abs() < 1e-6);
        assert_eq!(n.data_bytes(), 4224);
        assert_eq!(n.control_bytes(), 0);
    }

    #[test]
    fn shared_medium_serializes() {
        let mut n = shared();
        let a = n.send_page(SimTime::ZERO, NodeId(0), NodeId(1));
        let b = n.send_page(SimTime::ZERO, NodeId(2), NodeId(1));
        assert!(b > a);
    }

    #[test]
    fn switched_fabric_runs_disjoint_pairs_in_parallel() {
        let mut n = switched(4, None);
        let a = n.send_page(SimTime::ZERO, NodeId(0), NodeId(1));
        let b = n.send_page(SimTime::ZERO, NodeId(2), NodeId(3));
        // Disjoint endpoint pairs never contend: identical delivery times.
        assert_eq!(a, b);
        // Store-and-forward: TX serialization then RX serialization.
        // 2 · 337.92 µs + 50 µs latency.
        assert!((a.as_millis_f64() - 0.72584).abs() < 1e-6);
    }

    #[test]
    fn switched_fabric_serializes_on_shared_endpoints() {
        let mut n = switched(4, None);
        let a = n.send_page(SimTime::ZERO, NodeId(0), NodeId(1));
        let b = n.send_page(SimTime::ZERO, NodeId(0), NodeId(2));
        assert!(b > a, "same TX link must serialize");
        let mut m = switched(4, None);
        let c = m.send_page(SimTime::ZERO, NodeId(1), NodeId(3));
        let d = m.send_page(SimTime::ZERO, NodeId(2), NodeId(3));
        assert!(d > c, "same RX link must serialize");
    }

    #[test]
    fn bisection_capacity_is_a_shared_bottleneck() {
        // A switch core at the link rate: two disjoint pairs now contend.
        let mut n = switched(4, Some(100_000_000));
        let a = n.send_page(SimTime::ZERO, NodeId(0), NodeId(1));
        let b = n.send_page(SimTime::ZERO, NodeId(2), NodeId(3));
        assert!(b > a, "core at link rate serializes disjoint pairs");
        assert!(n.bisection_utilization(b).expect("core configured") > 0.0);
    }

    #[test]
    fn per_link_utilization_is_attributed_to_the_endpoints() {
        let mut n = switched(3, None);
        let done = n.send_page(SimTime::ZERO, NodeId(0), NodeId(1));
        let u0 = n.link_utilization(0, done).expect("switched");
        let u1 = n.link_utilization(1, done).expect("switched");
        let u2 = n.link_utilization(2, done).expect("switched");
        assert!(
            u0.tx > 0.0 && u0.rx == 0.0,
            "sender busy on TX only: {u0:?}"
        );
        assert!(
            u1.rx > 0.0 && u1.tx == 0.0,
            "receiver busy on RX only: {u1:?}"
        );
        assert_eq!((u2.tx, u2.rx), (0.0, 0.0), "bystander idle");
        assert_eq!(shared().link_utilization(0, done), None);
        assert!(!shared().is_switched());
        assert!(n.is_switched());
    }

    #[test]
    fn control_fraction() {
        let mut n = shared();
        n.send(SimTime::ZERO, 900, TrafficKind::Data, NodeId(0), NodeId(1));
        n.send(
            SimTime::ZERO,
            100,
            TrafficKind::Control,
            NodeId(1),
            NodeId(0),
        );
        assert!((n.control_fraction() - 0.1).abs() < 1e-12);
        assert_eq!(n.message_counts(), (1, 1));
    }

    #[test]
    fn drop_model_adds_latency_and_counts_losses() {
        let mut lossy = shared();
        lossy.set_drop_model(0.5, SimDuration::from_millis(1), 7);
        let mut clean = shared();
        let mut t_lossy = SimTime::ZERO;
        let mut t_clean = SimTime::ZERO;
        for _ in 0..64 {
            t_lossy = lossy.send(t_lossy, 1024, TrafficKind::Data, NodeId(0), NodeId(1));
            t_clean = clean.send(t_clean, 1024, TrafficKind::Data, NodeId(0), NodeId(1));
        }
        assert!(lossy.dropped_messages() > 0, "p=0.5 over 64 sends");
        assert!(t_lossy > t_clean, "losses must cost time");
        // Retransmitted bytes are accounted.
        assert_eq!(
            lossy.data_bytes(),
            (64 + lossy.dropped_messages()) * 1024,
            "every retry re-sends its bytes"
        );
    }

    #[test]
    fn switched_drop_model_occupies_only_the_tx_link() {
        let mut lossy = switched(2, None);
        lossy.set_drop_model(0.5, SimDuration::from_millis(1), 7);
        let mut clean = switched(2, None);
        let mut t_lossy = SimTime::ZERO;
        let mut t_clean = SimTime::ZERO;
        for _ in 0..64 {
            t_lossy = lossy.send(t_lossy, 1024, TrafficKind::Data, NodeId(0), NodeId(1));
            t_clean = clean.send(t_clean, 1024, TrafficKind::Data, NodeId(0), NodeId(1));
        }
        let dropped = lossy.dropped_messages();
        assert!(dropped > 0, "p=0.5 over 64 sends");
        assert!(t_lossy > t_clean, "losses must cost time");
        assert_eq!(lossy.data_bytes(), (64 + dropped) * 1024);
        // Lost frames never reached the switch: the RX link carried exactly
        // the 64 delivered messages.
        let u = lossy.link_utilization(1, t_lossy).expect("switched");
        let c = clean.link_utilization(1, t_clean).expect("switched");
        assert!(u.rx < c.rx + 1e-12, "RX busy time is delivery-only");
    }

    #[test]
    fn drop_model_is_deterministic_per_seed() {
        let run = |seed| {
            let mut n = shared();
            n.set_drop_model(0.3, SimDuration::from_micros(500), seed);
            let mut t = SimTime::ZERO;
            for _ in 0..32 {
                t = n.send(t, 256, TrafficKind::Control, NodeId(0), NodeId(1));
            }
            (t, n.dropped_messages())
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1).1, run(2).1, "different seed, different losses");
    }
}
