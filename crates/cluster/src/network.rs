//! The shared 100 Mbit/s LAN.
//!
//! One FCFS facility models the shared medium; every message (page ship,
//! request, control) occupies it for its serialization time and is delivered
//! a fixed latency after transmission ends. Byte counters split **data**
//! traffic (page shipping and requests of the access protocol) from
//! **control** traffic (agents, coordinators, heat dissemination), which is
//! exactly the split the §7.5 overhead experiment reports.

use dmm_sim::{Facility, SimDuration, SimRng, SimTime};

use crate::params::{NetParams, PAGE_BYTES};

/// Traffic class for accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficKind {
    /// Access-protocol traffic: requests, forwards, page transfers.
    Data,
    /// Goal-management traffic: agent reports, new allocations, heat
    /// dissemination.
    Control,
}

/// Seeded per-message loss model (fault injection): each transmission is
/// dropped with a fixed probability and retransmitted after a back-off, so
/// losses surface as extra latency and extra medium occupancy — never as a
/// hung protocol step.
#[derive(Debug, Clone)]
struct DropModel {
    rng: SimRng,
    probability: f64,
    retransmit: SimDuration,
    dropped: u64,
}

/// The shared network medium.
#[derive(Debug, Clone)]
pub struct Network {
    medium: Facility,
    params: NetParams,
    data_bytes: u64,
    control_bytes: u64,
    data_messages: u64,
    control_messages: u64,
    drop: Option<DropModel>,
}

impl Network {
    /// Idle network.
    pub fn new(params: NetParams) -> Self {
        Network {
            medium: Facility::new("lan"),
            params,
            data_bytes: 0,
            control_bytes: 0,
            data_messages: 0,
            control_messages: 0,
            drop: None,
        }
    }

    /// Installs the message-drop model: every transmission is lost with
    /// probability `p` and retried after `retransmit`. The model draws from
    /// its own seeded stream so the workload's dice are untouched.
    pub fn set_drop_model(&mut self, p: f64, retransmit: SimDuration, seed: u64) {
        assert!((0.0..1.0).contains(&p), "drop probability in [0, 1)");
        self.drop = (p > 0.0).then(|| DropModel {
            rng: SimRng::seed_from_u64(seed),
            probability: p,
            retransmit,
            dropped: 0,
        });
    }

    /// Messages dropped (and retransmitted) by the loss model so far.
    pub fn dropped_messages(&self) -> u64 {
        self.drop.as_ref().map_or(0, |d| d.dropped)
    }

    /// Transmits `bytes` starting no earlier than `now`; returns the
    /// delivery instant at the receiver. With the drop model installed a
    /// lost transmission still occupies the medium (the bits were sent),
    /// then retries after the back-off; the loop terminates with
    /// probability 1 and every retry is byte-accounted.
    pub fn send(&mut self, now: SimTime, bytes: u64, kind: TrafficKind) -> SimTime {
        let mut start = now;
        loop {
            match kind {
                TrafficKind::Data => {
                    self.data_bytes += bytes;
                    self.data_messages += 1;
                }
                TrafficKind::Control => {
                    self.control_bytes += bytes;
                    self.control_messages += 1;
                }
            }
            let done = self.medium.reserve(start, self.params.transfer_time(bytes));
            let lost = self
                .drop
                .as_mut()
                .is_some_and(|m| m.rng.uniform01() < m.probability);
            if !lost {
                return done + self.params.per_message_latency;
            }
            let m = self.drop.as_mut().expect("lost implies model");
            m.dropped += 1;
            start = done + m.retransmit;
        }
    }

    /// Sends a small request/forward message (data plane).
    pub fn send_request(&mut self, now: SimTime) -> SimTime {
        self.send(now, self.params.request_bytes, TrafficKind::Data)
    }

    /// Ships one page (data plane).
    pub fn send_page(&mut self, now: SimTime) -> SimTime {
        self.send(
            now,
            PAGE_BYTES + self.params.page_header_bytes,
            TrafficKind::Data,
        )
    }

    /// Total data-plane bytes.
    pub fn data_bytes(&self) -> u64 {
        self.data_bytes
    }

    /// Total control-plane bytes.
    pub fn control_bytes(&self) -> u64 {
        self.control_bytes
    }

    /// Message counters `(data, control)`.
    pub fn message_counts(&self) -> (u64, u64) {
        (self.data_messages, self.control_messages)
    }

    /// Fraction of total traffic that is control traffic (§7.5 metric).
    pub fn control_fraction(&self) -> f64 {
        let total = self.data_bytes + self.control_bytes;
        if total == 0 {
            0.0
        } else {
            self.control_bytes as f64 / total as f64
        }
    }

    /// Medium utilization over `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.medium.utilization(now)
    }

    /// Histogram of per-message medium queueing waits (nanoseconds).
    pub fn wait_histogram(&self) -> &dmm_obs::Histogram {
        self.medium.wait_histogram()
    }

    /// Resets byte/message counters (not the medium horizon).
    pub fn reset_stats(&mut self) {
        self.data_bytes = 0;
        self.control_bytes = 0;
        self.data_messages = 0;
        self.control_messages = 0;
        self.medium.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_transfer_time_and_accounting() {
        let mut n = Network::new(NetParams::default());
        let t0 = SimTime::ZERO;
        let arrive = n.send_page(t0);
        // (4096+128)·8 bits / 100 Mbit/s = 337.92 µs + 50 µs latency.
        assert!((arrive.as_millis_f64() - 0.38792).abs() < 1e-6);
        assert_eq!(n.data_bytes(), 4224);
        assert_eq!(n.control_bytes(), 0);
    }

    #[test]
    fn shared_medium_serializes() {
        let mut n = Network::new(NetParams::default());
        let a = n.send_page(SimTime::ZERO);
        let b = n.send_page(SimTime::ZERO);
        assert!(b > a);
    }

    #[test]
    fn control_fraction() {
        let mut n = Network::new(NetParams::default());
        n.send(SimTime::ZERO, 900, TrafficKind::Data);
        n.send(SimTime::ZERO, 100, TrafficKind::Control);
        assert!((n.control_fraction() - 0.1).abs() < 1e-12);
        assert_eq!(n.message_counts(), (1, 1));
    }

    #[test]
    fn drop_model_adds_latency_and_counts_losses() {
        let mut lossy = Network::new(NetParams::default());
        lossy.set_drop_model(0.5, SimDuration::from_millis(1), 7);
        let mut clean = Network::new(NetParams::default());
        let mut t_lossy = SimTime::ZERO;
        let mut t_clean = SimTime::ZERO;
        for _ in 0..64 {
            t_lossy = lossy.send(t_lossy, 1024, TrafficKind::Data);
            t_clean = clean.send(t_clean, 1024, TrafficKind::Data);
        }
        assert!(lossy.dropped_messages() > 0, "p=0.5 over 64 sends");
        assert!(t_lossy > t_clean, "losses must cost time");
        // Retransmitted bytes are accounted.
        assert_eq!(
            lossy.data_bytes(),
            (64 + lossy.dropped_messages()) * 1024,
            "every retry re-sends its bytes"
        );
    }

    #[test]
    fn drop_model_is_deterministic_per_seed() {
        let run = |seed| {
            let mut n = Network::new(NetParams::default());
            n.set_drop_model(0.3, SimDuration::from_micros(500), seed);
            let mut t = SimTime::ZERO;
            for _ in 0..32 {
                t = n.send(t, 256, TrafficKind::Control);
            }
            (t, n.dropped_messages())
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1).1, run(2).1, "different seed, different losses");
    }
}
