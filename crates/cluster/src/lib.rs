//! # dmm-cluster — the simulated network of workstations
//!
//! A faithful discrete-event model of the ICDE'99 evaluation platform
//! (paper §7.1): `N` nodes with 100 MIPS CPUs and local SCSI disks, joined by
//! a 100 Mbit/s LAN, each reserving a buffer area managed by the partitioned
//! buffer manager of `dmm-buffer`. Every data page has a *home* node holding
//! its disk-resident copy; reads are executed by **data shipping** — the page
//! is copied to the requesting node (§3).
//!
//! The access path for a page `p` requested at node `i` (all stages queue
//! FCFS at their facility, so contention emerges naturally):
//!
//! 1. **local lookup** (CPU): hit in any local pool → done (§6 may migrate
//!    the page from the no-goal pool into the requesting class's pool);
//! 2. **remote cache**: the request travels to `p`'s home, which serves the
//!    page itself, forwards to a caching node, or
//! 3. **disk**: reads `p` from its home disk; the page is then shipped back
//!    and installed per the §6 rules.
//!
//! The cluster also implements the cost-based replacement support of §6:
//! per-level access-cost estimation from observed, tagged response times
//! ([`costs`]), last-copy tracking and global heat in the directory
//! ([`directory`]), and benefit pricing ([`benefit`]). Control-plane traffic
//! (agents/coordinators, heat dissemination) is charged to the same network
//! so the §7.5 overhead experiment is meaningful.
//!
//! Fault injection ([`fault`]) layers a deterministic failure model on top:
//! scheduled node crashes/restarts, probabilistic LAN message loss, and
//! disk-stall windows, with graceful degradation (error paths, not hangs)
//! throughout the access protocol.

pub mod benefit;
pub mod costs;
pub mod directory;
pub mod disk;
pub mod drive;
pub mod fault;
pub mod homes;
pub mod ids;
pub mod network;
pub mod op;
pub mod params;
pub mod plane;
pub mod ring;
pub mod tier;

#[allow(deprecated)]
pub use costs::CostLevel;
pub use costs::{AccessCosts, CostSlot};
pub use directory::Directory;
pub use disk::Disk;
pub use dmm_obs::{SpanMode, Stage, StageNanos, STAGES};
pub use drive::{drive_to_quiescence, drive_to_quiescence_windowed};
pub use fault::{DiskStall, FaultKind, FaultPlan, ScheduledFault};
pub use homes::{Homes, HotRingSpec, PlacementError, PlacementSpec};
pub use ids::{NodeId, OpId};
pub use network::{LinkUtilization, Network};
pub use op::{OpCompletion, Operation};
pub use params::{
    ClusterParams, CpuParams, DiskParams, FabricSpec, NetParams, RepricingMode, PAGE_BYTES,
};
pub use plane::{ClusterEvent, DataPlane, FaultStats, HomeLoad, RepriceStats, StepOutput};
pub use ring::{HashRing, MAX_RING_REPLICAS};
pub use tier::{TierId, TierLadder, TierSpec, MAX_TIERS};
