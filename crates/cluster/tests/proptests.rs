//! Randomized-input tests: the data plane keeps its directory/buffer
//! invariants and always terminates every operation, under random workloads,
//! allocations and cluster shapes. Cases are generated from seeded
//! [`SimRng`] streams for reproducibility.

use dmm_buffer::{ClassId, PageId, PolicySpec};
use dmm_cluster::{ClusterParams, DataPlane, NodeId, OpCompletion, OpId, Operation};
use dmm_sim::{SimRng, SimTime};

/// Drives all pending events to quiescence, returning completions (the
/// shared engine-backed loop; panics on event storms).
fn drive(
    plane: &mut DataPlane,
    start: Option<(SimTime, dmm_cluster::ClusterEvent)>,
) -> Vec<OpCompletion> {
    dmm_cluster::drive_to_quiescence(plane, start)
}

#[derive(Debug, Clone)]
enum Step {
    Op {
        class: u16,
        node: u16,
        pages: Vec<u32>,
    },
    Alloc {
        class: u16,
        node: u16,
        pages: usize,
    },
}

fn random_step(rng: &mut SimRng, db: u32) -> Step {
    if rng.index(2) == 0 {
        let class = rng.index(3) as u16;
        let node = rng.index(3) as u16;
        let npages = 1 + rng.index(4);
        let mut pages: Vec<u32> = (0..npages).map(|_| rng.index(db as usize) as u32).collect();
        pages.dedup();
        Step::Op { class, node, pages }
    } else {
        Step::Alloc {
            class: 1 + rng.index(2) as u16,
            node: rng.index(3) as u16,
            pages: rng.index(40),
        }
    }
}

fn params(policy: PolicySpec) -> ClusterParams {
    ClusterParams {
        buffer_pages_per_node: 32,
        db_pages: 64,
        goal_classes: 2,
        policy,
        ..ClusterParams::default()
    }
}

#[test]
fn random_sequences_hold_invariants() {
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(seed);
        let policy = match rng.index(3) {
            0 => PolicySpec::Lru,
            1 => PolicySpec::CostBased,
            _ => PolicySpec::LruK(2),
        };
        let nsteps = 1 + rng.index(59);
        let steps: Vec<Step> = (0..nsteps).map(|_| random_step(&mut rng, 64)).collect();
        let mut plane = DataPlane::new(params(policy));
        let mut issued = 0u64;
        let mut completed = 0u64;
        for (i, step) in steps.iter().enumerate() {
            let t = SimTime::from_nanos((i as u64 + 1) * 50_000_000);
            match step {
                Step::Op { class, node, pages } => {
                    issued += 1;
                    let op = Operation {
                        id: OpId(issued),
                        class: ClassId(*class),
                        origin: NodeId(*node),
                        pages: pages.iter().map(|&p| PageId(p)).collect(),
                        arrival: t,
                    };
                    let out = plane.start_operation(op, t);
                    let done = drive(&mut plane, out.schedule);
                    completed += done.len() as u64;
                    for c in &done {
                        assert!(c.finished >= c.arrival, "seed {seed}");
                        assert!(
                            c.response_ms() < 10_000.0,
                            "runaway response time (seed {seed})"
                        );
                    }
                }
                Step::Alloc { class, node, pages } => {
                    let granted = plane.apply_allocation(NodeId(*node), ClassId(*class), *pages, t);
                    assert!(granted <= 32, "seed {seed}");
                }
            }
            plane.check_invariants();
        }
        assert_eq!(issued, completed, "every operation completes (seed {seed})");
        assert_eq!(plane.inflight_ops(), 0, "seed {seed}");
    }
}

#[test]
fn repeated_access_eventually_hits() {
    let mut rng = SimRng::seed_from_u64(4242);
    for case in 0..32u64 {
        let page = rng.index(64) as u32;
        let class = rng.index(3) as u16;
        let node = rng.index(3) as u16;
        let mut plane = DataPlane::new(params(PolicySpec::Lru));
        let mut t = SimTime::ZERO;
        let mut last_rt = f64::INFINITY;
        for i in 0..3 {
            let op = Operation {
                id: OpId(i + 1),
                class: ClassId(class),
                origin: NodeId(node),
                pages: vec![PageId(page)],
                arrival: t,
            };
            let out = plane.start_operation(op, t);
            let done = drive(&mut plane, out.schedule);
            last_rt = done[0].response_ms();
            t = done[0].finished + dmm_sim::SimDuration::from_millis(1);
        }
        // Third access must be a sub-millisecond local hit.
        assert!(
            last_rt < 1.0,
            "expected warm hit, got {last_rt} ms (case {case})"
        );
    }
}
