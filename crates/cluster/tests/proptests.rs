//! Property tests: the data plane keeps its directory/buffer invariants and
//! always terminates every operation, under random workloads, allocations
//! and cluster shapes.

use dmm_buffer::{ClassId, PageId, PolicySpec};
use dmm_cluster::{ClusterParams, DataPlane, NodeId, OpCompletion, OpId, Operation};
use dmm_sim::SimTime;
use proptest::prelude::*;

/// Drives all pending events to quiescence, returning completions.
fn drive(plane: &mut DataPlane, start: Vec<(SimTime, dmm_cluster::ClusterEvent)>) -> Vec<OpCompletion> {
    let mut queue: std::collections::BinaryHeap<
        std::cmp::Reverse<(SimTime, u64, dmm_cluster::ClusterEvent)>,
    > = Default::default();
    let mut seq = 0u64;
    for (t, e) in start {
        queue.push(std::cmp::Reverse((t, seq, e)));
        seq += 1;
    }
    let mut done = Vec::new();
    let mut guard = 0u32;
    while let Some(std::cmp::Reverse((t, _, e))) = queue.pop() {
        guard += 1;
        assert!(guard < 200_000, "event storm: protocol does not terminate");
        let out = plane.handle(t, e);
        for (nt, ne) in out.schedule {
            assert!(nt >= t, "time went backwards");
            queue.push(std::cmp::Reverse((nt, seq, ne)));
            seq += 1;
        }
        if let Some(c) = out.completed {
            done.push(c);
        }
    }
    done
}

#[derive(Debug, Clone)]
enum Step {
    Op { class: u16, node: u16, pages: Vec<u32> },
    Alloc { class: u16, node: u16, pages: usize },
}

fn step_strategy(db: u32) -> impl Strategy<Value = Step> {
    prop_oneof![
        (
            0u16..3,
            0u16..3,
            proptest::collection::vec(0..db, 1..5)
        )
            .prop_map(|(class, node, mut pages)| {
                pages.dedup();
                Step::Op { class, node, pages }
            }),
        (1u16..3, 0u16..3, 0usize..40).prop_map(|(class, node, pages)| Step::Alloc {
            class,
            node,
            pages
        }),
    ]
}

fn params(policy: PolicySpec) -> ClusterParams {
    ClusterParams {
        buffer_pages_per_node: 32,
        db_pages: 64,
        goal_classes: 2,
        policy,
        ..ClusterParams::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_sequences_hold_invariants(
        steps in proptest::collection::vec(step_strategy(64), 1..60),
        policy_sel in 0u8..3,
    ) {
        let policy = match policy_sel {
            0 => PolicySpec::Lru,
            1 => PolicySpec::CostBased,
            _ => PolicySpec::LruK(2),
        };
        let mut plane = DataPlane::new(params(policy));
        let mut issued = 0u64;
        let mut completed = 0u64;
        for (i, step) in steps.iter().enumerate() {
            let t = SimTime::from_nanos((i as u64 + 1) * 50_000_000);
            match step {
                Step::Op { class, node, pages } => {
                    issued += 1;
                    let op = Operation {
                        id: OpId(issued),
                        class: ClassId(*class),
                        origin: NodeId(*node),
                        pages: pages.iter().map(|&p| PageId(p)).collect(),
                        arrival: t,
                    };
                    let out = plane.start_operation(op, t);
                    let done = drive(&mut plane, out.schedule);
                    completed += done.len() as u64;
                    for c in &done {
                        prop_assert!(c.finished >= c.arrival);
                        prop_assert!(c.response_ms() < 10_000.0, "runaway response time");
                    }
                }
                Step::Alloc { class, node, pages } => {
                    let granted =
                        plane.apply_allocation(NodeId(*node), ClassId(*class), *pages, t);
                    prop_assert!(granted <= 32);
                }
            }
            plane.check_invariants();
        }
        prop_assert_eq!(issued, completed, "every operation completes");
        prop_assert_eq!(plane.inflight_ops(), 0);
    }

    #[test]
    fn repeated_access_eventually_hits(page in 0u32..64, class in 0u16..3, node in 0u16..3) {
        let mut plane = DataPlane::new(params(PolicySpec::Lru));
        let mut t = SimTime::ZERO;
        let mut last_rt = f64::INFINITY;
        for i in 0..3 {
            let op = Operation {
                id: OpId(i + 1),
                class: ClassId(class),
                origin: NodeId(node),
                pages: vec![PageId(page)],
                arrival: t,
            };
            let out = plane.start_operation(op, t);
            let done = drive(&mut plane, out.schedule);
            last_rt = done[0].response_ms();
            t = done[0].finished + dmm_sim::SimDuration::from_millis(1);
        }
        // Third access must be a sub-millisecond local hit.
        prop_assert!(last_rt < 1.0, "expected warm hit, got {last_rt} ms");
    }
}
