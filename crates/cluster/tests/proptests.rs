//! Randomized-input tests: the data plane keeps its directory/buffer
//! invariants and always terminates every operation, under random workloads,
//! allocations and cluster shapes. Cases are generated from seeded
//! [`SimRng`] streams for reproducibility.

use dmm_buffer::{ClassId, PageId, PolicySpec};
use dmm_cluster::{
    ClusterParams, DataPlane, HashRing, NodeId, OpCompletion, OpId, Operation, MAX_RING_REPLICAS,
};
use dmm_sim::{SimRng, SimTime};

/// Drives all pending events to quiescence, returning completions (the
/// shared engine-backed loop; panics on event storms).
fn drive(
    plane: &mut DataPlane,
    start: Option<(SimTime, dmm_cluster::ClusterEvent)>,
) -> Vec<OpCompletion> {
    dmm_cluster::drive_to_quiescence(plane, start)
}

#[derive(Debug, Clone)]
enum Step {
    Op {
        class: u16,
        node: u16,
        pages: Vec<u32>,
    },
    Alloc {
        class: u16,
        node: u16,
        pages: usize,
    },
}

fn random_step(rng: &mut SimRng, db: u32) -> Step {
    if rng.index(2) == 0 {
        let class = rng.index(3) as u16;
        let node = rng.index(3) as u16;
        let npages = 1 + rng.index(4);
        let mut pages: Vec<u32> = (0..npages).map(|_| rng.index(db as usize) as u32).collect();
        pages.dedup();
        Step::Op { class, node, pages }
    } else {
        Step::Alloc {
            class: 1 + rng.index(2) as u16,
            node: rng.index(3) as u16,
            pages: rng.index(40),
        }
    }
}

fn params(policy: PolicySpec) -> ClusterParams {
    ClusterParams {
        buffer_pages_per_node: 32,
        db_pages: 64,
        goal_classes: 2,
        policy,
        ..ClusterParams::default()
    }
}

#[test]
fn random_sequences_hold_invariants() {
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(seed);
        let policy = match rng.index(3) {
            0 => PolicySpec::Lru,
            1 => PolicySpec::CostBased,
            _ => PolicySpec::LruK(2),
        };
        let nsteps = 1 + rng.index(59);
        let steps: Vec<Step> = (0..nsteps).map(|_| random_step(&mut rng, 64)).collect();
        let mut plane = DataPlane::new(params(policy));
        let mut issued = 0u64;
        let mut completed = 0u64;
        for (i, step) in steps.iter().enumerate() {
            let t = SimTime::from_nanos((i as u64 + 1) * 50_000_000);
            match step {
                Step::Op { class, node, pages } => {
                    issued += 1;
                    let op = Operation {
                        id: OpId(issued),
                        class: ClassId(*class),
                        origin: NodeId(*node),
                        pages: pages.iter().map(|&p| PageId(p)).collect(),
                        arrival: t,
                    };
                    let out = plane.start_operation(op, t);
                    let done = drive(&mut plane, out.schedule);
                    completed += done.len() as u64;
                    for c in &done {
                        assert!(c.finished >= c.arrival, "seed {seed}");
                        assert!(
                            c.response_ms() < 10_000.0,
                            "runaway response time (seed {seed})"
                        );
                    }
                }
                Step::Alloc { class, node, pages } => {
                    let granted = plane.apply_allocation(NodeId(*node), ClassId(*class), *pages, t);
                    assert!(granted <= 32, "seed {seed}");
                }
            }
            plane.check_invariants();
        }
        assert_eq!(issued, completed, "every operation completes (seed {seed})");
        assert_eq!(plane.inflight_ops(), 0, "seed {seed}");
    }
}

#[test]
fn ring_balances_keys_across_nodes() {
    // Consistent hashing with V virtual nodes balances key ownership to
    // within ~1/sqrt(V): with V = 128 the max/mean key share over 16 nodes
    // stays comfortably under 1.5 for every sampled ring seed.
    let mut rng = SimRng::seed_from_u64(0xB17A);
    for _case in 0..16 {
        let seed = rng.next_u64();
        let ring = HashRing::new(16, 128, seed);
        let mut owned = [0u64; 16];
        for key in 0..20_000u64 {
            owned[ring.primary(key).index()] += 1;
        }
        let max = *owned.iter().max().expect("non-empty") as f64;
        let mean = owned.iter().sum::<u64>() as f64 / owned.len() as f64;
        assert!(
            max / mean <= 1.5,
            "ring imbalance {:.3} (seed {seed:#x})",
            max / mean
        );
        assert!(
            owned.iter().all(|&n| n > 0),
            "starved node (seed {seed:#x})"
        );
    }
}

#[test]
fn ring_reassigns_minimally_on_join_and_leave() {
    // The consistent-hashing contract: when a node joins, the only keys
    // that move are the ones the new node takes over; when it leaves, only
    // its own keys move. Every other key keeps its home.
    let mut rng = SimRng::seed_from_u64(0x1015);
    for _case in 0..16 {
        let seed = rng.next_u64();
        let all: Vec<u16> = (0..12).collect();
        let without_last: Vec<u16> = (0..11).collect();
        let small = HashRing::from_nodes(&without_last, 64, seed);
        let big = HashRing::from_nodes(&all, 64, seed);
        let mut moved = 0u64;
        for key in 0..10_000u64 {
            let before = small.primary(key);
            let after = big.primary(key);
            if before != after {
                // A join only pulls keys onto the new node.
                assert_eq!(after, NodeId(11), "key {key} moved between old nodes");
                moved += 1;
            }
            // Leave (big -> small) is the same comparison read backwards:
            // keys not on the departed node must not move.
            if after != NodeId(11) {
                assert_eq!(before, after, "key {key} moved on leave");
            }
        }
        // The new node takes roughly its fair share (1/12), not nothing
        // and not everything.
        assert!(
            (300..2_000).contains(&moved),
            "join moved {moved} of 10000 keys (seed {seed:#x})"
        );
    }
}

#[test]
fn ring_replica_sets_are_distinct_and_start_at_the_primary() {
    let mut rng = SimRng::seed_from_u64(0xF00D);
    for _case in 0..8 {
        let seed = rng.next_u64();
        let nodes = 2 + rng.index(15);
        let ring = HashRing::new(nodes, 32, seed);
        for key in 0..2_000u64 {
            for r in 1..=MAX_RING_REPLICAS {
                let mut buf = [0u16; MAX_RING_REPLICAS];
                let found = ring.replicas(key, r, &mut buf);
                assert_eq!(found, r.min(nodes), "key {key} r {r}");
                assert_eq!(buf[0], ring.primary(key).index() as u16, "key {key}");
                let mut set: Vec<u16> = buf[..found].to_vec();
                set.sort_unstable();
                set.dedup();
                assert_eq!(set.len(), found, "duplicate replica (key {key}, r {r})");
            }
        }
    }
}

#[test]
fn repeated_access_eventually_hits() {
    let mut rng = SimRng::seed_from_u64(4242);
    for case in 0..32u64 {
        let page = rng.index(64) as u32;
        let class = rng.index(3) as u16;
        let node = rng.index(3) as u16;
        let mut plane = DataPlane::new(params(PolicySpec::Lru));
        let mut t = SimTime::ZERO;
        let mut last_rt = f64::INFINITY;
        for i in 0..3 {
            let op = Operation {
                id: OpId(i + 1),
                class: ClassId(class),
                origin: NodeId(node),
                pages: vec![PageId(page)],
                arrival: t,
            };
            let out = plane.start_operation(op, t);
            let done = drive(&mut plane, out.schedule);
            last_rt = done[0].response_ms();
            t = done[0].finished + dmm_sim::SimDuration::from_millis(1);
        }
        // Third access must be a sub-millisecond local hit.
        assert!(
            last_rt < 1.0,
            "expected warm hit, got {last_rt} ms (case {case})"
        );
    }
}
