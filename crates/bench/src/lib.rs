//! Shared helpers for the experiment harnesses (one binary per paper table
//! or figure) and the microbenchmarks.

use std::fmt::Write as _;
use std::ops::ControlFlow;

pub mod cli;
pub mod micro;
pub mod pool;

pub use cli::BenchArgs;

use dmm::buffer::ClassId;
use dmm::core::{calibrate_goal_range, ControllerKind, Simulation, SystemConfig};
use dmm::sim::stats::Welford;
use dmm::workload::GoalRange;

/// Renders an aligned text table: `header` then one row per entry.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |out: &mut String, cells: &[String]| {
        for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{cell:>w$}", w = w);
        }
        out.push('\n');
    };
    fmt_row(
        &mut out,
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        fmt_row(&mut out, row);
    }
    out
}

/// Result of one convergence-speed measurement (a Table 2 cell).
#[derive(Debug, Clone, Copy)]
pub struct ConvergenceResult {
    /// Mean iterations of the feedback loop to re-satisfy a changed goal.
    pub mean_iterations: f64,
    /// 99 % CI half-width.
    pub ci99_half_width: f64,
    /// Episodes measured.
    pub episodes: u64,
    /// The calibrated goal range used.
    pub goal_range: GoalRange,
}

/// Runs the §7.1 convergence protocol for the base two-class workload at
/// skew `theta`: calibrate `[goal_min, goal_max]`, enable the goal schedule,
/// and accumulate episodes across `seeds` until the 99 % CI half-width drops
/// below 1 iteration (or the interval budget is exhausted).
///
/// Replication is deterministic in the result regardless of `threads`: each
/// seed's simulation is independent, per-seed statistics are folded in
/// **seed order** by [`pool::replicate_in_order`], and the fold cuts at the
/// first seed whose merge meets the accuracy target — so 1 worker and N
/// workers produce bit-identical [`ConvergenceResult`]s (idle workers steal
/// the next seed immediately instead of waiting on a batch barrier, and any
/// speculative surplus past the cut is discarded identically).
pub fn convergence_speed(
    theta: f64,
    seeds: &[u64],
    max_intervals_per_seed: u32,
    controller: ControllerKind,
    threads: usize,
) -> ConvergenceResult {
    assert!(!seeds.is_empty(), "need at least one seed");
    let class = ClassId(1);
    let base = SystemConfig::builder()
        .seed(seeds[0])
        .theta(theta)
        .goal_ms(15.0)
        .build()
        .expect("valid base config");
    let goal_range = calibrate_goal_range(&base, class, 6, 6);

    let run_seed = |seed: u64| -> dmm::core::ConvergenceStats {
        let cfg = SystemConfig::builder()
            .seed(seed)
            .theta(theta)
            .goal_ms(goal_range.max_ms)
            .goal_range(goal_range)
            .controller(controller)
            .build()
            .expect("valid replication config");
        let mut sim = Simulation::new(cfg);
        sim.run_intervals(max_intervals_per_seed);
        sim.convergence(class).clone()
    };

    // Welford merging is order-sensitive in floating point: the pool folds
    // in seed order and cuts at the accuracy target, independent of worker
    // count and OS scheduling.
    let mut merged = dmm::core::ConvergenceStats::new();
    pool::replicate_in_order(
        seeds,
        threads,
        |&seed| run_seed(seed),
        |_, r| {
            merged.merge(&r);
            if merged.episodes() >= 20 && merged.ci99().is_tighter_than(1.0) {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        },
    );
    ConvergenceResult {
        mean_iterations: merged.mean_iterations(),
        ci99_half_width: merged.ci99().half_width,
        episodes: merged.episodes(),
        goal_range,
    }
}

/// Summary statistics of a completed steady-state run (for the ablations).
#[derive(Debug, Clone, Copy)]
pub struct SteadyState {
    /// Mean goal-class response time over the measured tail (ms).
    pub class_rt_ms: f64,
    /// Mean no-goal response time over the measured tail (ms).
    pub nogoal_rt_ms: f64,
    /// Fraction of post-warm-up checks that satisfied the goal.
    pub satisfied_fraction: f64,
    /// Mean dedicated memory for the class (MB).
    pub dedicated_mb: f64,
}

/// Runs `intervals` and summarizes the post-warm-up behaviour of `class`.
pub fn steady_state(sim: &mut Simulation, class: ClassId, intervals: u32) -> SteadyState {
    let warmup = sim.intervals();
    sim.run_intervals(intervals);
    let records: Vec<_> = sim
        .records(class)
        .iter()
        .filter(|r| r.interval >= warmup)
        .copied()
        .collect();
    let mut rt = Welford::new();
    let mut nogoal = Welford::new();
    let mut dedicated = Welford::new();
    let mut satisfied = 0u64;
    let mut checked = 0u64;
    for r in &records {
        if let Some(v) = r.observed_ms {
            rt.push(v);
        }
        nogoal.push(r.nogoal_ms);
        dedicated.push(r.dedicated_bytes as f64 / (1024.0 * 1024.0));
        if let Some(s) = r.satisfied {
            checked += 1;
            if s {
                satisfied += 1;
            }
        }
    }
    SteadyState {
        class_rt_ms: rt.mean(),
        nogoal_rt_ms: nogoal.mean(),
        satisfied_fraction: if checked == 0 {
            0.0
        } else {
            satisfied as f64 / checked as f64
        },
        dedicated_mb: dedicated.mean(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["theta", "iters"],
            &[
                vec!["0".into(), "1.84".into()],
                vec!["0.25".into(), "2.41".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("theta"));
        assert!(lines[3].contains("2.41"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn table_rejects_ragged_rows() {
        render_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }
}
