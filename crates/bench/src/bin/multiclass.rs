//! **§7.4** — multiple goal classes.
//!
//! `disjoint` mode: two goal classes with disjoint page sets and twice the
//! per-node memory. The paper observed the same convergence speed as the
//! single-class Table 2 ("the amount of memory dedicated to one class does
//! not influence the performance of the other").
//!
//! `sharing` mode: sweep the fraction of pages class k2 shares with the
//! tighter class k1. "Raising the percentage of sharing we have observed
//! that the size of the dedicated buffers of the class k2 decreases
//! gradually … Further increases in the sharing leads to a complete removal
//! of the dedicated buffers of class k2 and eventually — even without any
//! dedicated buffers — class k2 exceeds its goal solely by accessing pages
//! from the buffers of class k1" (the §3 Example 2 effect).

use dmm::buffer::ClassId;
use dmm::core::{Simulation, SystemConfig};
use dmm::workload::WorkloadSpec;
use dmm_bench::render_table;

fn config(sharing: f64, seed: u64) -> SystemConfig {
    // §7.4: "twice the amount of cache buffer memory at each node"; a larger
    // database keeps the cache under pressure (three class thirds).
    let mut cfg = SystemConfig::builder()
        .seed(seed)
        .goal_ms(8.0)
        .buffer_pages_per_node(1024)
        .db_pages(3600)
        .build()
        .expect("valid multiclass config");
    cfg.workload = WorkloadSpec::two_goal_classes(
        cfg.cluster.nodes,
        cfg.cluster.db_pages,
        0.0,
        0.005,
        6.0,  // k1: tight goal
        12.0, // k2: looser goal
        sharing,
    );
    cfg
}

fn sharing_sweep() {
    println!("§7.4 — sharing sweep (k1 goal 6 ms, k2 goal 12 ms)\n");
    let mut rows = Vec::new();
    for &sharing in &[0.0, 0.25, 0.5, 0.75, 1.0] {
        let mut cfg = config(sharing, 97);
        // Pools must be allowed to vanish for the Example-2 effect.
        cfg.release_floor_mb = 0.0;
        let mut sim = Simulation::new(cfg);
        sim.run_intervals(140);
        let tail = 40usize;
        let k1_mb = mean_dedicated(&sim, ClassId(1), tail);
        let k2_mb = mean_dedicated(&sim, ClassId(2), tail);
        let k2_rt = sim.mean_observed_ms(ClassId(2), tail).unwrap_or(f64::NAN);
        rows.push(vec![
            format!("{sharing:.2}"),
            format!("{k1_mb:.2}"),
            format!("{k2_mb:.2}"),
            format!("{k2_rt:.2}"),
        ]);
        eprintln!("sharing {sharing}: done");
    }
    println!(
        "{}",
        render_table(
            &[
                "sharing",
                "k1 dedicated (MB)",
                "k2 dedicated (MB)",
                "k2 observed (ms)"
            ],
            &rows
        )
    );
    println!("paper: k2's dedicated buffers shrink gradually to 0 as sharing rises;");
    println!("       k2 then exceeds its goal through k1's buffers alone.");
}

fn disjoint() {
    println!("§7.4 — two disjoint goal classes (2x memory): convergence speed\n");
    use dmm::core::calibrate_goal_range;
    let base = config(0.0, 11);
    let mut rows = Vec::new();
    for class in [ClassId(1), ClassId(2)] {
        let range = calibrate_goal_range(&base, class, 6, 6);
        let mut episodes = dmm::core::ConvergenceStats::new();
        for seed in 1..=6u64 {
            let mut cfg = config(0.0, 5000 + seed);
            cfg.goal_range = Some(range);
            let mut sim = Simulation::new(cfg);
            sim.run_intervals(300);
            episodes.merge(sim.convergence(class));
            if episodes.episodes() >= 20 && episodes.ci99().is_tighter_than(1.0) {
                break;
            }
        }
        rows.push(vec![
            format!("k{}", class.0),
            format!("{:.2}", episodes.mean_iterations()),
            format!("±{:.2}", episodes.ci99().half_width),
            episodes.episodes().to_string(),
            format!("[{:.1}, {:.1}]", range.min_ms, range.max_ms),
        ]);
        eprintln!("class {class}: done");
    }
    println!(
        "{}",
        render_table(
            &[
                "class",
                "iterations",
                "99% CI",
                "episodes",
                "goal range (ms)"
            ],
            &rows
        )
    );
    println!("paper: with disjoint page sets the convergence speed matches Table 2.");
}

fn mean_dedicated(sim: &Simulation, class: ClassId, tail: usize) -> f64 {
    let records = sim.records(class);
    let t = &records[records.len().saturating_sub(tail)..];
    t.iter().map(|r| r.dedicated_bytes as f64).sum::<f64>() / t.len() as f64 / (1024.0 * 1024.0)
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "sharing".into());
    match mode.as_str() {
        "disjoint" => disjoint(),
        "sharing" => sharing_sweep(),
        other => {
            eprintln!("unknown mode {other}; use `disjoint` or `sharing`");
            std::process::exit(2);
        }
    }
}
