//! **§7.5** — overhead of the goal-management method.
//!
//! "Because of the length of the observation interval and their small size,
//! messages used by our method only make up a fraction of the total
//! network-traffic (less than 0.1 %, in our experiments)." We run the base
//! experiment with the goal schedule active (worst case: the coordinator
//! keeps reallocating) and report the control-plane share of network bytes,
//! message counts, and the dissemination traffic of the caching substrate
//! for context.

use dmm::buffer::ClassId;
use dmm::core::{calibrate_goal_range, Simulation, SystemConfig};
use dmm::obs::{Json, JsonLinesSink};

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let class = ClassId(1);
    let base = SystemConfig::builder()
        .seed(13)
        .goal_ms(15.0)
        .build()
        .expect("valid base config");
    let range = calibrate_goal_range(&base, class, 6, 6);
    let cfg = SystemConfig::builder()
        .seed(13)
        .goal_ms(range.max_ms)
        .goal_range(range)
        .build()
        .expect("valid overhead config");
    let mut sim = Simulation::new(cfg);
    if json {
        let sink =
            JsonLinesSink::create("results/overhead.jsonl").expect("create results/overhead.jsonl");
        sim.set_trace_sink(Box::new(sink));
    }
    sim.run_intervals(120);

    let net = sim.plane().network();
    if json {
        let (data_msgs, control_msgs) = net.message_counts();
        let summary = Json::obj()
            .field("bench", "overhead")
            .field("intervals", sim.intervals() as u64)
            .field("goal_changes", sim.convergence(class).episodes())
            .field("data_bytes", net.data_bytes())
            .field("data_messages", data_msgs)
            .field("control_bytes", net.control_bytes())
            .field("control_messages", control_msgs)
            .field("control_fraction", net.control_fraction())
            .field("net_utilization", net.utilization(sim.now()));
        std::fs::write("results/overhead_summary.json", summary.to_string())
            .expect("write results/overhead_summary.json");
        std::fs::write(
            "results/overhead_metrics.json",
            sim.metrics_snapshot().to_json().to_string(),
        )
        .expect("write results/overhead_metrics.json");
        eprintln!("trace: results/overhead.jsonl, summary: results/overhead_summary.json");
    }
    let (data_msgs, control_msgs) = net.message_counts();
    let secs = sim.now().as_millis_f64() / 1000.0;
    println!(
        "§7.5 — overhead after {:.0} s simulated ({} intervals)\n",
        secs,
        sim.intervals()
    );
    println!(
        "goal changes handled:        {}",
        sim.convergence(class).episodes()
    );
    println!(
        "data-plane bytes:            {:>12} ({} messages)",
        net.data_bytes(),
        data_msgs
    );
    println!(
        "goal-management bytes:       {:>12} ({} messages)",
        net.control_bytes(),
        control_msgs
    );
    println!(
        "control fraction:            {:>12.4} %",
        100.0 * net.control_fraction()
    );
    println!(
        "heat publishes (substrate):  {:>12}",
        sim.plane().directory().publish_events()
    );
    println!(
        "network utilization:         {:>12.2} %",
        100.0 * net.utilization(sim.now())
    );
    println!();
    if net.control_fraction() < 0.001 {
        println!("PASS: control traffic below the paper's 0.1 % bound.");
    } else {
        println!("NOTE: control traffic above the paper's 0.1 % bound.");
    }
}
