//! **§7.5** — overhead of the goal-management method.
//!
//! "Because of the length of the observation interval and their small size,
//! messages used by our method only make up a fraction of the total
//! network-traffic (less than 0.1 %, in our experiments)." We run the base
//! experiment with the goal schedule active (worst case: the coordinator
//! keeps reallocating) and report the control-plane share of network bytes,
//! message counts, and the dissemination traffic of the caching substrate
//! for context.
//!
//! The second half measures the *observability* overhead of operation-level
//! span tracing on the same configuration — spans off, histogram
//! aggregation only, and deterministic 1-in-{1,16,256} sampling with the
//! records serialized to a discarding writer — and writes the interleaved
//! min-of-N wall-clocks to `BENCH_obs.json` at the workspace root. The off
//! mode is the baseline the "≈zero cost when disabled" claim is judged
//! against. A final comparison times the bounded [`StreamSink`] a live
//! `dmm-trace watch --follow` consumes against the JSONL sink on the same
//! worst-case span flood and asserts the streaming path stays within a 5 %
//! budget. `--quick` shrinks the runs for CI smoke use.

use std::time::Instant;

use dmm::buffer::ClassId;
use dmm::core::{calibrate_goal_range, Simulation, SystemConfig};
use dmm::obs::{Json, JsonLinesSink, SpanMode, StreamSink};

/// Span-tracing modes measured, worst first in the emission sense: every
/// operation sampled, then thinner samples, then aggregation only, then off.
const SPAN_MODES: [(&str, SpanMode); 5] = [
    ("off", SpanMode::Off),
    ("histograms", SpanMode::Histograms),
    ("sampled_256", SpanMode::Sampled { every: 256 }),
    ("sampled_16", SpanMode::Sampled { every: 16 }),
    ("sampled_1", SpanMode::Sampled { every: 1 }),
];

struct SpanRun {
    label: &'static str,
    secs: f64,
}

/// Interleaved min-of-N wall-clock per span mode (A/B/C… per rep, so a host
/// load spike hits every mode alike). Sampled modes serialize their span
/// records through a `JsonLinesSink` into `io::sink()`: the full format+emit
/// cost without disk noise.
fn span_overhead(cfg: &SystemConfig, intervals: u32, reps: u32) -> Vec<SpanRun> {
    let timed = |mode: SpanMode| -> f64 {
        let mut cfg = cfg.clone();
        cfg.cluster.spans = mode;
        let mut sim = Simulation::new(cfg);
        if mode.sample_every().is_some() {
            sim.set_trace_sink(Box::new(JsonLinesSink::new(Box::new(std::io::sink()))));
        }
        let start = Instant::now();
        sim.run_intervals(intervals);
        start.elapsed().as_secs_f64()
    };
    let mut best = vec![f64::INFINITY; SPAN_MODES.len()];
    for _ in 0..reps {
        for (i, (_, mode)) in SPAN_MODES.iter().enumerate() {
            best[i] = best[i].min(timed(*mode));
        }
    }
    SPAN_MODES
        .iter()
        .zip(best)
        .map(|((label, _), secs)| SpanRun { label, secs })
        .collect()
}

/// The streaming-sink ring capacity used for the sink comparison: ample
/// headroom for one interval's worth of records between consumer polls, so
/// a healthy run delivers everything (0 drops).
const STREAM_CAPACITY: usize = 1 << 16;

struct SinkRun {
    label: &'static str,
    secs: f64,
    dropped: u64,
}

/// Interleaved min-of-N wall-clock of the full emission path (spans at
/// 1-in-1, the worst case) through each sink: `JsonLinesSink` recording to
/// an actual file — what a tracing run really pays — vs the bounded
/// [`StreamSink`] ring with a consumer draining it once per interval, the
/// cadence a live `dmm-trace watch --follow` poll loop settles into. The
/// streaming sink must stay within a few percent of JSONL — it shares the
/// serialize cost and trades the buffered write for a lock + ring push.
fn sink_overhead(cfg: &SystemConfig, intervals: u32, reps: u32) -> Vec<SinkRun> {
    let jsonl_path =
        std::env::temp_dir().join(format!("dmm_overhead_sink_{}.jsonl", std::process::id()));
    let timed = |which: usize| -> (f64, u64) {
        let mut cfg = cfg.clone();
        cfg.cluster.spans = SpanMode::Sampled { every: 1 };
        let mut sim = Simulation::new(cfg);
        let stream = StreamSink::bounded(STREAM_CAPACITY);
        match which {
            0 => {
                let sink = JsonLinesSink::create(&jsonl_path).expect("create sink bench trace");
                sim.set_trace_sink(Box::new(sink));
            }
            _ => sim.set_trace_sink(Box::new(stream.handle())),
        }
        let start = Instant::now();
        for _ in 0..intervals {
            sim.run_intervals(1);
            if which == 1 {
                // The consumer side of the live pipeline: drain and discard,
                // inside the timed region so its cost is charged to the
                // streaming mode.
                drop(stream.drain());
            }
        }
        (start.elapsed().as_secs_f64(), stream.dropped_records())
    };
    let labels = ["jsonl", "stream"];
    let mut best = [f64::INFINITY; 2];
    let mut dropped = [0u64; 2];
    for _ in 0..reps {
        for i in 0..2 {
            let (secs, drops) = timed(i);
            best[i] = best[i].min(secs);
            dropped[i] = drops;
        }
    }
    let _ = std::fs::remove_file(&jsonl_path);
    labels
        .iter()
        .zip(best)
        .zip(dropped)
        .map(|((label, secs), dropped)| SinkRun {
            label,
            secs,
            dropped,
        })
        .collect()
}

fn main() {
    let args = dmm_bench::BenchArgs::parse();
    let (json, quick) = (args.json, args.quick);
    let class = ClassId(1);
    let base = SystemConfig::builder()
        .seed(13)
        .goal_ms(15.0)
        .build()
        .expect("valid base config");
    let range = calibrate_goal_range(&base, class, 6, 6);
    let cfg = SystemConfig::builder()
        .seed(13)
        .goal_ms(range.max_ms)
        .goal_range(range)
        .build()
        .expect("valid overhead config");
    let intervals = if quick { 24 } else { 120 };
    let mut sim = Simulation::new(cfg.clone());
    if json {
        let sink =
            JsonLinesSink::create("results/overhead.jsonl").expect("create results/overhead.jsonl");
        sim.set_trace_sink(Box::new(sink));
    }
    sim.run_intervals(intervals);

    let net = sim.plane().network();
    if json {
        let (data_msgs, control_msgs) = net.message_counts();
        let summary = Json::obj()
            .field("bench", "overhead")
            .field("intervals", sim.intervals() as u64)
            .field("goal_changes", sim.convergence(class).episodes())
            .field("data_bytes", net.data_bytes())
            .field("data_messages", data_msgs)
            .field("control_bytes", net.control_bytes())
            .field("control_messages", control_msgs)
            .field("control_fraction", net.control_fraction())
            .field("net_utilization", net.utilization(sim.now()));
        std::fs::write("results/overhead_summary.json", summary.to_string())
            .expect("write results/overhead_summary.json");
        std::fs::write(
            "results/overhead_metrics.json",
            sim.metrics_snapshot().to_json().to_string(),
        )
        .expect("write results/overhead_metrics.json");
        eprintln!("trace: results/overhead.jsonl, summary: results/overhead_summary.json");
    }
    let (data_msgs, control_msgs) = net.message_counts();
    let secs = sim.now().as_millis_f64() / 1000.0;
    println!(
        "§7.5 — overhead after {:.0} s simulated ({} intervals)\n",
        secs,
        sim.intervals()
    );
    println!(
        "goal changes handled:        {}",
        sim.convergence(class).episodes()
    );
    println!(
        "data-plane bytes:            {:>12} ({} messages)",
        net.data_bytes(),
        data_msgs
    );
    println!(
        "goal-management bytes:       {:>12} ({} messages)",
        net.control_bytes(),
        control_msgs
    );
    println!(
        "control fraction:            {:>12.4} %",
        100.0 * net.control_fraction()
    );
    println!(
        "heat publishes (substrate):  {:>12}",
        sim.plane().directory().publish_events()
    );
    println!(
        "network utilization:         {:>12.2} %",
        100.0 * net.utilization(sim.now())
    );
    println!();
    if net.control_fraction() < 0.001 {
        println!("PASS: control traffic below the paper's 0.1 % bound.");
    } else {
        println!("NOTE: control traffic above the paper's 0.1 % bound.");
    }

    println!("\n== span-tracing overhead (same config, wall-clock) ==");
    let reps = if quick { 2 } else { 5 };
    let runs = span_overhead(&cfg, intervals, reps);
    let off_secs = runs
        .iter()
        .find(|r| r.label == "off")
        .expect("off mode measured")
        .secs;
    for run in &runs {
        let pct = 100.0 * (run.secs - off_secs) / off_secs;
        println!(
            "{:<12} {:.3} s  ({:+.2} % vs off)",
            run.label, run.secs, pct
        );
    }
    println!("\n== streaming-sink overhead vs JSONL (spans sampled_1) ==");
    let sinks = sink_overhead(&cfg, intervals, reps);
    let jsonl_secs = sinks
        .iter()
        .find(|r| r.label == "jsonl")
        .expect("jsonl sink measured")
        .secs;
    for run in &sinks {
        let pct = 100.0 * (run.secs - jsonl_secs) / jsonl_secs;
        println!(
            "{:<12} {:.3} s  ({:+.2} % vs jsonl, {} records dropped)",
            run.label, run.secs, pct, run.dropped
        );
    }
    let stream_pct = sinks
        .iter()
        .find(|r| r.label == "stream")
        .map(|r| 100.0 * (r.secs - jsonl_secs) / jsonl_secs)
        .expect("stream sink measured");
    assert!(
        stream_pct <= 5.0,
        "streaming sink overhead {stream_pct:.2} % exceeds the 5 % budget vs JSONL"
    );
    println!("PASS: streaming sink within the 5 % budget vs JSONL.");

    let doc = Json::obj()
        .field("bench", "obs")
        .field("quick", quick)
        .field("intervals", intervals as u64)
        .field("reps", reps as u64)
        .field(
            "span_modes",
            Json::Arr(
                runs.iter()
                    .map(|r| {
                        Json::obj()
                            .field("mode", r.label)
                            .field("secs", r.secs)
                            .field("overhead_pct", 100.0 * (r.secs - off_secs) / off_secs)
                    })
                    .collect(),
            ),
        )
        .field(
            "sink_modes",
            Json::Arr(
                sinks
                    .iter()
                    .map(|r| {
                        Json::obj()
                            .field("mode", r.label)
                            .field("secs", r.secs)
                            .field("overhead_pct", 100.0 * (r.secs - jsonl_secs) / jsonl_secs)
                            .field("dropped_records", r.dropped)
                    })
                    .collect(),
            ),
        );
    dmm_bench::cli::write_bench_doc("BENCH_obs.json", &doc);
}
