//! **§7.5** — overhead of the goal-management method.
//!
//! "Because of the length of the observation interval and their small size,
//! messages used by our method only make up a fraction of the total
//! network-traffic (less than 0.1 %, in our experiments)." We run the base
//! experiment with the goal schedule active (worst case: the coordinator
//! keeps reallocating) and report the control-plane share of network bytes,
//! message counts, and the dissemination traffic of the caching substrate
//! for context.
//!
//! The second half measures the *observability* overhead of operation-level
//! span tracing on the same configuration — spans off, histogram
//! aggregation only, and deterministic 1-in-{1,16,256} sampling with the
//! records serialized to a discarding writer — and writes the interleaved
//! min-of-N wall-clocks to `BENCH_obs.json` at the workspace root. The off
//! mode is the baseline the "≈zero cost when disabled" claim is judged
//! against. `--quick` shrinks the runs for CI smoke use.

use std::time::Instant;

use dmm::buffer::ClassId;
use dmm::core::{calibrate_goal_range, Simulation, SystemConfig};
use dmm::obs::{Json, JsonLinesSink, SpanMode};

/// Span-tracing modes measured, worst first in the emission sense: every
/// operation sampled, then thinner samples, then aggregation only, then off.
const SPAN_MODES: [(&str, SpanMode); 5] = [
    ("off", SpanMode::Off),
    ("histograms", SpanMode::Histograms),
    ("sampled_256", SpanMode::Sampled { every: 256 }),
    ("sampled_16", SpanMode::Sampled { every: 16 }),
    ("sampled_1", SpanMode::Sampled { every: 1 }),
];

struct SpanRun {
    label: &'static str,
    secs: f64,
}

/// Interleaved min-of-N wall-clock per span mode (A/B/C… per rep, so a host
/// load spike hits every mode alike). Sampled modes serialize their span
/// records through a `JsonLinesSink` into `io::sink()`: the full format+emit
/// cost without disk noise.
fn span_overhead(cfg: &SystemConfig, intervals: u32, reps: u32) -> Vec<SpanRun> {
    let timed = |mode: SpanMode| -> f64 {
        let mut cfg = cfg.clone();
        cfg.cluster.spans = mode;
        let mut sim = Simulation::new(cfg);
        if mode.sample_every().is_some() {
            sim.set_trace_sink(Box::new(JsonLinesSink::new(Box::new(std::io::sink()))));
        }
        let start = Instant::now();
        sim.run_intervals(intervals);
        start.elapsed().as_secs_f64()
    };
    let mut best = vec![f64::INFINITY; SPAN_MODES.len()];
    for _ in 0..reps {
        for (i, (_, mode)) in SPAN_MODES.iter().enumerate() {
            best[i] = best[i].min(timed(*mode));
        }
    }
    SPAN_MODES
        .iter()
        .zip(best)
        .map(|((label, _), secs)| SpanRun { label, secs })
        .collect()
}

fn main() {
    let args = dmm_bench::BenchArgs::parse();
    let (json, quick) = (args.json, args.quick);
    let class = ClassId(1);
    let base = SystemConfig::builder()
        .seed(13)
        .goal_ms(15.0)
        .build()
        .expect("valid base config");
    let range = calibrate_goal_range(&base, class, 6, 6);
    let cfg = SystemConfig::builder()
        .seed(13)
        .goal_ms(range.max_ms)
        .goal_range(range)
        .build()
        .expect("valid overhead config");
    let intervals = if quick { 24 } else { 120 };
    let mut sim = Simulation::new(cfg.clone());
    if json {
        let sink =
            JsonLinesSink::create("results/overhead.jsonl").expect("create results/overhead.jsonl");
        sim.set_trace_sink(Box::new(sink));
    }
    sim.run_intervals(intervals);

    let net = sim.plane().network();
    if json {
        let (data_msgs, control_msgs) = net.message_counts();
        let summary = Json::obj()
            .field("bench", "overhead")
            .field("intervals", sim.intervals() as u64)
            .field("goal_changes", sim.convergence(class).episodes())
            .field("data_bytes", net.data_bytes())
            .field("data_messages", data_msgs)
            .field("control_bytes", net.control_bytes())
            .field("control_messages", control_msgs)
            .field("control_fraction", net.control_fraction())
            .field("net_utilization", net.utilization(sim.now()));
        std::fs::write("results/overhead_summary.json", summary.to_string())
            .expect("write results/overhead_summary.json");
        std::fs::write(
            "results/overhead_metrics.json",
            sim.metrics_snapshot().to_json().to_string(),
        )
        .expect("write results/overhead_metrics.json");
        eprintln!("trace: results/overhead.jsonl, summary: results/overhead_summary.json");
    }
    let (data_msgs, control_msgs) = net.message_counts();
    let secs = sim.now().as_millis_f64() / 1000.0;
    println!(
        "§7.5 — overhead after {:.0} s simulated ({} intervals)\n",
        secs,
        sim.intervals()
    );
    println!(
        "goal changes handled:        {}",
        sim.convergence(class).episodes()
    );
    println!(
        "data-plane bytes:            {:>12} ({} messages)",
        net.data_bytes(),
        data_msgs
    );
    println!(
        "goal-management bytes:       {:>12} ({} messages)",
        net.control_bytes(),
        control_msgs
    );
    println!(
        "control fraction:            {:>12.4} %",
        100.0 * net.control_fraction()
    );
    println!(
        "heat publishes (substrate):  {:>12}",
        sim.plane().directory().publish_events()
    );
    println!(
        "network utilization:         {:>12.2} %",
        100.0 * net.utilization(sim.now())
    );
    println!();
    if net.control_fraction() < 0.001 {
        println!("PASS: control traffic below the paper's 0.1 % bound.");
    } else {
        println!("NOTE: control traffic above the paper's 0.1 % bound.");
    }

    println!("\n== span-tracing overhead (same config, wall-clock) ==");
    let reps = if quick { 2 } else { 5 };
    let runs = span_overhead(&cfg, intervals, reps);
    let off_secs = runs
        .iter()
        .find(|r| r.label == "off")
        .expect("off mode measured")
        .secs;
    for run in &runs {
        let pct = 100.0 * (run.secs - off_secs) / off_secs;
        println!(
            "{:<12} {:.3} s  ({:+.2} % vs off)",
            run.label, run.secs, pct
        );
    }
    let doc = Json::obj()
        .field("bench", "obs")
        .field("quick", quick)
        .field("intervals", intervals as u64)
        .field("reps", reps as u64)
        .field(
            "span_modes",
            Json::Arr(
                runs.iter()
                    .map(|r| {
                        Json::obj()
                            .field("mode", r.label)
                            .field("secs", r.secs)
                            .field("overhead_pct", 100.0 * (r.secs - off_secs) / off_secs)
                    })
                    .collect(),
            ),
        );
    dmm_bench::cli::write_bench_doc("BENCH_obs.json", &doc);
}
