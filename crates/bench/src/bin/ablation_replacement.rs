//! **Ablation A** — the §6 cost-based replacement vs. classical local
//! policies, under the same goal controller and workload.
//!
//! Reproduction target (the \[27, 26\] result the paper builds on): the
//! cost-based policy converts disk reads into remote-memory hits by keeping
//! globally hot last copies cached, cutting both classes' response times at
//! identical memory.

use dmm::buffer::{ClassId, PolicySpec};
use dmm::cluster::NodeId;
use dmm::core::{Simulation, SystemConfig};
use dmm_bench::{render_table, steady_state};

fn main() {
    let goal_ms = 8.0;
    let policies: [(&str, PolicySpec); 4] = [
        ("cost-based (§6)", PolicySpec::CostBased),
        ("LRU", PolicySpec::Lru),
        ("LRU-2", PolicySpec::LruK(2)),
        ("CLOCK", PolicySpec::Clock),
    ];

    println!("Ablation A — replacement policies (goal {goal_ms} ms, theta 0.6)\n");
    let mut rows = Vec::new();
    for (label, policy) in policies {
        let mut cfg = SystemConfig::builder()
            .seed(17)
            .theta(0.6)
            .goal_ms(goal_ms)
            .build()
            .expect("valid ablation config");
        cfg.cluster.policy = policy;
        let mut sim = Simulation::new(cfg);
        sim.run_intervals(10);
        let before_reads: u64 = disks(&sim);
        let s = steady_state(&mut sim, ClassId(1), 40);
        let reads = disks(&sim) - before_reads;
        let remote = sim
            .plane()
            .costs()
            .observations(sim.plane().costs().remote_hit_slot());
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", s.class_rt_ms),
            format!("{:.2}", s.nogoal_rt_ms),
            reads.to_string(),
            remote.to_string(),
            format!("{:.2}", s.dedicated_mb),
        ]);
        eprintln!("{label}: done");
    }
    println!(
        "{}",
        render_table(
            &[
                "policy",
                "goal RT (ms)",
                "no-goal RT (ms)",
                "disk reads",
                "remote hits",
                "dedicated (MB)"
            ],
            &rows
        )
    );
}

fn disks(sim: &Simulation) -> u64 {
    (0..sim.plane().num_nodes())
        .map(|n| sim.plane().disk_reads(NodeId(n as u16)))
        .sum()
}
