//! Scale-out benchmark: hotness-aware consistent-hash placement and the
//! conservative-window parallel event executor, from the paper's N = 3 up
//! to N = 64 nodes.
//!
//! Four layers of evidence, written to `BENCH_scale.json` at the workspace
//! root:
//!
//! 1. **Balance**: at N = 16 under a hard Zipf skew (θ = 1.2), the static
//!    hash placement concentrates home reads on whichever nodes the hot
//!    pages land on, while the hot ring replicates hot pages across several
//!    homes — the max/mean per-node home-read ratio is the figure of merit.
//! 2. **Executor**: ops/s of the data plane driven to quiescence over a
//!    dense 16-node cross-node workload, sequential versus the
//!    conservative-window executor at 1/2/4 workers, with the completion
//!    log cross-checked identical in every mode. Window runs are bounded
//!    by the global directory lookup between accesses, so intra-window
//!    parallelism is real but modest — the honest number, not a hero one.
//! 3. **Replication**: end-to-end wall-clock of a batch of independent
//!    N = 16 experiments (different seeds) replicated on 1 versus 4 pool
//!    workers with a deterministic fold — where the wall-clock of a
//!    scale-out *study* actually goes.
//! 4. **Sweep**: event throughput and goal-convergence intervals for
//!    N ∈ {4, 8, 16, 32, 64}, sequential vs windowed execution, plus a
//!    dedicated long N = 64 convergence run (the hyperplane controller
//!    needs ~N+1 probe intervals before its first optimization).
//!
//! `--quick` shrinks node counts, intervals and replication width for CI
//! smoke use; the acceptance numbers quoted in the README come from the
//! full run.

use std::ops::ControlFlow;
use std::time::Instant;

use dmm::buffer::{ClassId, PageId};
use dmm::cluster::{
    drive_to_quiescence, drive_to_quiescence_windowed, ClusterParams, DataPlane, FabricSpec,
    HotRingSpec, NodeId, OpId, Operation, PlacementSpec,
};
use dmm::core::{
    calibrate_goal_range, upsample_planes, ProbeSpec, SatisfactionMode, Simulation, SystemConfig,
};
use dmm::obs::Json;
use dmm::prelude::ExecMode;
use dmm::sim::SimTime;
use dmm_bench::pool::replicate_in_order;

/// One scale-out experiment configuration: N nodes, database and load
/// scaled with N so per-node pressure stays comparable across the sweep.
/// The §7.1 shared medium (100 Mbit/s) and a switched-era fabric. The
/// sweep runs on the paper's fabric to *show* the shared-medium wall (net
/// utilization grows linearly with N while the medium's capacity does
/// not); the N = 64 convergence run needs the faster fabric, because at
/// that scale the 1999 medium is past saturation and no memory controller
/// can meet a response-time goal on an unstable queue.
const PAPER_FABRIC: u64 = 100_000_000;
const GBIT_FABRIC: u64 = 1_000_000_000;

fn scale_config(
    nodes: usize,
    theta: f64,
    placement: PlacementSpec,
    exec: ExecMode,
    net_bits_per_sec: u64,
    seed: u64,
) -> SystemConfig {
    SystemConfig::builder()
        .seed(seed)
        .theta(theta)
        .goal_ms(10.0)
        .nodes(nodes)
        .db_pages((100 * nodes) as u32)
        .buffer_pages_per_node(64)
        .goal_rate_per_ms(0.004)
        .net_bits_per_sec(net_bits_per_sec)
        .warmup_intervals(2)
        .satisfaction(SatisfactionMode::UpperBound)
        .placement(placement)
        .execution(exec)
        .build()
        .expect("valid scale config")
}

/// The scale configuration on a chosen network fabric and probe plan —
/// identical per-node load, so fabric and probe rows compare directly
/// against the sweep's shared-medium rows.
fn fabric_config(
    nodes: usize,
    fabric: FabricSpec,
    probe: ProbeSpec,
    exec: ExecMode,
    net_bits_per_sec: u64,
    seed: u64,
) -> SystemConfig {
    SystemConfig::builder()
        .seed(seed)
        .theta(0.8)
        .goal_ms(10.0)
        .nodes(nodes)
        .db_pages((100 * nodes) as u32)
        .buffer_pages_per_node(64)
        .goal_rate_per_ms(0.004)
        .net_bits_per_sec(net_bits_per_sec)
        .warmup_intervals(2)
        .satisfaction(SatisfactionMode::UpperBound)
        .placement(PlacementSpec::HotRing(HotRingSpec::default()))
        .fabric(fabric)
        .probe(probe)
        .execution(exec)
        .build()
        .expect("valid fabric config")
}

/// First measured interval from which the goal stays satisfied to the end
/// of the run (the paper's "converged after" reading), if it does.
fn converged_at(sim: &Simulation) -> Option<u32> {
    let records = sim.records(ClassId(1));
    let mut first = None;
    for r in records {
        match r.satisfied {
            Some(true) => first = first.or(Some(r.interval)),
            _ => first = None,
        }
    }
    first
}

/// Fraction of the last `n` check phases that judged the goal satisfied.
fn satisfied_tail(sim: &Simulation, n: usize) -> f64 {
    let records = sim.records(ClassId(1));
    let tail = &records[records.len().saturating_sub(n)..];
    if tail.is_empty() {
        return 0.0;
    }
    tail.iter().filter(|r| r.satisfied == Some(true)).count() as f64 / tail.len() as f64
}

/// Host parallelism actually available to the pool workers. Wall-clock
/// speedup claims are only meaningful (and only asserted) when the host
/// has enough cores to run the workers concurrently.
fn cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Max/mean per-node home reads: 1.0 is a perfectly balanced home load.
fn imbalance(reads: &[u64]) -> f64 {
    let total: u64 = reads.iter().sum();
    if reads.is_empty() || total == 0 {
        return 1.0;
    }
    let mean = total as f64 / reads.len() as f64;
    *reads.iter().max().expect("non-empty") as f64 / mean
}

/// Balance experiment: N = 16 under hard skew, static hash vs hot ring.
fn balance(quick: bool) -> Json {
    println!("== balance: static hash vs hot ring (N = 16, zipf θ = 1.2) ==");
    let intervals = if quick { 6 } else { 12 };
    let run = |placement: PlacementSpec| {
        let cfg = scale_config(16, 1.2, placement, ExecMode::Sequential, PAPER_FABRIC, 21);
        let mut sim = Simulation::new(cfg);
        sim.run_intervals(intervals);
        let load = sim.plane().home_load();
        (imbalance(&load.home_reads), load)
    };
    let (static_ratio, static_load) = run(PlacementSpec::Hash);
    let (ring_ratio, ring_load) = run(PlacementSpec::HotRing(HotRingSpec::default()));
    println!(
        "static hash: home-read imbalance {static_ratio:.2}  (reads {:?})",
        static_load.home_reads
    );
    println!(
        "hot ring:    home-read imbalance {ring_ratio:.2}  (reads {:?})",
        ring_load.home_reads
    );
    assert!(
        ring_ratio < static_ratio,
        "hot ring must beat static placement under skew \
         ({ring_ratio:.2} vs {static_ratio:.2})"
    );
    Json::obj()
        .field("theta", 1.2)
        .field("nodes", 16u64)
        .field("intervals", intervals as u64)
        .field("static_hash_imbalance", static_ratio)
        .field("hot_ring_imbalance", ring_ratio)
        .field(
            "static_hash_reads",
            Json::from(static_load.home_reads.as_slice()),
        )
        .field(
            "hot_ring_reads",
            Json::from(ring_load.home_reads.as_slice()),
        )
}

/// A dense cross-node workload: every node issues `ops_per_node` one-page
/// operations on remote-homed pages, arrivals packed tightly so many
/// operations are in flight at once and parallel-safe events pile up
/// inside each conservative window.
fn dense_ops(nodes: u16, ops_per_node: u64, db_pages: u32) -> Vec<Operation> {
    let mut ops = Vec::new();
    let mut id = 0u64;
    for i in 0..ops_per_node {
        for origin in 0..nodes {
            id += 1;
            let page = (origin as u32 + 1 + i as u32 * nodes as u32) % db_pages;
            let at = SimTime::from_nanos(i * 9_000 + origin as u64 * 17);
            ops.push(Operation {
                id: OpId(id),
                class: ClassId(0),
                origin: NodeId(origin),
                pages: vec![PageId(page)],
                arrival: at,
            });
        }
    }
    ops
}

/// Executor throughput: the same dense plane-level workload driven
/// sequentially and through the windowed executor at 1/2/4 workers.
fn executor(quick: bool) -> Json {
    println!("\n== executor: windowed data plane vs sequential (N = 16) ==");
    let ops_per_node = if quick { 400 } else { 2_000 };
    let params = ClusterParams {
        nodes: 16,
        db_pages: 1_600,
        buffer_pages_per_node: 64,
        placement: PlacementSpec::HotRing(HotRingSpec::default()),
        ..ClusterParams::default()
    };
    let ops = dense_ops(16, ops_per_node, params.db_pages);
    let timed = |workers: Option<usize>| -> (f64, Vec<(u64, u64)>) {
        let mut plane = DataPlane::new(params.clone());
        let mut start = Vec::new();
        for op in &ops {
            let at = op.arrival;
            let out = plane.start_operation(op.clone(), at);
            start.extend(out.schedule);
        }
        let begin = Instant::now();
        let done = match workers {
            None => drive_to_quiescence(&mut plane, start),
            Some(w) => drive_to_quiescence_windowed(&mut plane, start, w),
        };
        let secs = begin.elapsed().as_secs_f64();
        (
            secs,
            done.iter()
                .map(|c| (c.id.0, c.finished.as_nanos()))
                .collect(),
        )
    };
    let (seq_secs, seq_log) = timed(None);
    let total_ops = seq_log.len() as f64;
    println!(
        "sequential: {:.3} s  ({:.0} ops/s)",
        seq_secs,
        total_ops / seq_secs
    );
    let mut rows = Vec::new();
    rows.push(
        Json::obj()
            .field("mode", "sequential")
            .field("secs", seq_secs)
            .field("ops_per_sec", total_ops / seq_secs),
    );
    for workers in [1usize, 2, 4] {
        let (secs, log) = timed(Some(workers));
        assert_eq!(log, seq_log, "windowed({workers}) diverged from sequential");
        println!(
            "windowed/{workers}: {:.3} s  ({:.0} ops/s, {:+.1} % vs sequential)",
            secs,
            total_ops / secs,
            100.0 * (seq_secs - secs) / seq_secs
        );
        rows.push(
            Json::obj()
                .field("mode", format!("windowed/{workers}"))
                .field("secs", secs)
                .field("ops_per_sec", total_ops / secs),
        );
    }
    // Lookahead: the windowed engine can extend a run past the 30 µs
    // conservative window using follow-up delays the data plane already
    // knows at schedule time (CPU service, page installs). Same events,
    // same trace bytes — fewer, fatter parallel runs.
    println!("-- lookahead: windowed end-to-end runs, 30 µs window vs schedule-time lookahead --");
    let sim_intervals = if quick { 6 } else { 16 };
    let sim_run = |lookahead: bool| {
        let cfg = SystemConfig::builder()
            .seed(42)
            .theta(0.8)
            .goal_ms(10.0)
            .nodes(16)
            .db_pages(1_600)
            .buffer_pages_per_node(64)
            .goal_rate_per_ms(0.004)
            .net_bits_per_sec(PAPER_FABRIC)
            .warmup_intervals(2)
            .satisfaction(SatisfactionMode::UpperBound)
            .placement(PlacementSpec::HotRing(HotRingSpec::default()))
            .execution(ExecMode::Windowed { workers: 4 })
            .window_lookahead(lookahead)
            .build()
            .expect("valid lookahead config");
        let mut sim = Simulation::new(cfg);
        let begin = Instant::now();
        sim.run_intervals(sim_intervals);
        let secs = begin.elapsed().as_secs_f64();
        let events = sim
            .metrics_snapshot()
            .get_counter("sim.events")
            .unwrap_or(0);
        (secs, events, sim.plane().completions(), sim.window_stats())
    };
    let (base_secs, base_events, base_done, base_win) = sim_run(false);
    let (look_secs, look_events, look_done, look_win) = sim_run(true);
    assert_eq!(
        (base_events, base_done),
        (look_events, look_done),
        "lookahead simulated a different system"
    );
    assert_eq!(
        base_win.run_events, look_win.run_events,
        "lookahead must not change which events run in parallel windows"
    );
    assert!(
        look_win.runs < base_win.runs,
        "lookahead must merge windows into fewer runs ({} vs {})",
        look_win.runs,
        base_win.runs
    );
    let batch = |w: dmm::sim::WindowStats| w.run_events as f64 / w.runs as f64;
    println!(
        "30 µs window: {base_secs:.2} s  ({:.0} ev/s, {} runs, mean batch {:.1})",
        base_events as f64 / base_secs,
        base_win.runs,
        batch(base_win)
    );
    println!(
        "lookahead:    {look_secs:.2} s  ({:.0} ev/s, {} runs, mean batch {:.1}, {:+.1} % vs window)",
        look_events as f64 / look_secs,
        look_win.runs,
        batch(look_win),
        100.0 * (base_secs - look_secs) / base_secs
    );
    if !quick && cores() >= 4 {
        assert!(
            look_secs < base_secs,
            "lookahead must improve end-to-end wall-clock \
             ({look_secs:.2} s vs {base_secs:.2} s)"
        );
    }
    Json::obj()
        .field("ops", total_ops)
        .field("runs", Json::Arr(rows))
        .field(
            "lookahead",
            Json::obj()
                .field("intervals", sim_intervals as u64)
                .field("window_secs", base_secs)
                .field("window_runs", base_win.runs)
                .field("lookahead_secs", look_secs)
                .field("lookahead_runs", look_win.runs)
                .field("run_events", base_win.run_events)
                .field(
                    "run_reduction",
                    1.0 - look_win.runs as f64 / base_win.runs as f64,
                ),
        )
}

/// Replication speedup: a batch of independent N = 16 experiments on 1 vs
/// 4 pool workers, deterministic fold cross-checked bit-identical.
fn replication(quick: bool) -> Json {
    println!("\n== replication: N = 16 experiment batch on 1 vs 4 workers ==");
    let (n_seeds, intervals) = if quick { (4u64, 6u32) } else { (8, 16) };
    let seeds: Vec<u64> = (0..n_seeds).map(|s| 7_000 + s).collect();
    let job = |seed: &u64| -> (u64, u64) {
        let cfg = scale_config(
            16,
            0.8,
            PlacementSpec::HotRing(HotRingSpec::default()),
            ExecMode::Sequential,
            PAPER_FABRIC,
            *seed,
        );
        let mut sim = Simulation::new(cfg);
        sim.run_intervals(intervals);
        (
            sim.plane().completions(),
            sim.plane().network().data_bytes(),
        )
    };
    let timed = |threads: usize| -> (f64, Vec<(u64, u64)>) {
        let mut folded = Vec::new();
        let begin = Instant::now();
        replicate_in_order(&seeds, threads, job, |_, r| {
            folded.push(r);
            ControlFlow::Continue(())
        });
        (begin.elapsed().as_secs_f64(), folded)
    };
    let (one_secs, one) = timed(1);
    let (four_secs, four) = timed(4);
    assert_eq!(one, four, "replication fold must be thread-count invariant");
    let speedup = one_secs / four_secs;
    println!(
        "{} seeds × {} intervals: 1 worker {:.2} s, 4 workers {:.2} s, speedup {:.2}x",
        seeds.len(),
        intervals,
        one_secs,
        four_secs,
        speedup
    );
    if !quick && cores() >= 4 {
        assert!(
            speedup >= 3.0,
            "expected ≥3x end-to-end speedup with 4 workers, got {speedup:.2}x"
        );
    } else if cores() < 4 {
        println!(
            "(host has {} core(s): speedup is informational only)",
            cores()
        );
    }
    Json::obj()
        .field("seeds", seeds.len() as u64)
        .field("intervals", intervals as u64)
        .field("one_worker_secs", one_secs)
        .field("four_worker_secs", four_secs)
        .field("speedup", speedup)
}

/// Node-count sweep: event throughput and goal convergence per N, the
/// windowed backend cross-checked against sequential at every scale.
fn sweep(quick: bool) -> Json {
    println!("\n== sweep: N ∈ {{4..64}} sequential vs windowed ==");
    let node_counts: &[usize] = if quick {
        &[4, 8, 16]
    } else {
        &[4, 8, 16, 32, 64]
    };
    let intervals = if quick { 8 } else { 24 };
    let mut rows = Vec::new();
    for &n in node_counts {
        let timed = |exec: ExecMode| -> (f64, u64, u64, Option<u32>, f64, f64, f64) {
            let cfg = scale_config(
                n,
                0.8,
                PlacementSpec::HotRing(HotRingSpec::default()),
                exec,
                PAPER_FABRIC,
                42,
            );
            let mut sim = Simulation::new(cfg);
            let begin = Instant::now();
            sim.run_intervals(intervals);
            let secs = begin.elapsed().as_secs_f64();
            let events = sim
                .metrics_snapshot()
                .get_counter("sim.events")
                .unwrap_or(0);
            let now = sim.now();
            (
                secs,
                events,
                sim.plane().completions(),
                converged_at(&sim),
                satisfied_tail(&sim, 6),
                sim.plane().network().utilization(now),
                sim.plane().max_disk_utilization(now),
            )
        };
        let (seq_secs, seq_events, seq_done, conv, tail, net_util, disk_util) =
            timed(ExecMode::Sequential);
        let (win_secs, win_events, win_done, win_conv, _, _, _) =
            timed(ExecMode::Windowed { workers: 4 });
        assert_eq!(
            (seq_events, seq_done, conv),
            (win_events, win_done, win_conv),
            "windowed backend simulated a different system at N = {n}"
        );
        println!(
            "N = {n:>2}: {seq_events:>8} events  sequential {:>7.0} ev/s  windowed/4 {:>7.0} ev/s  \
             net {:.0} %  disk {:.0} %  converged at {:?}  tail satisfied {:.0} %",
            seq_events as f64 / seq_secs,
            win_events as f64 / win_secs,
            net_util * 100.0,
            disk_util * 100.0,
            conv,
            tail * 100.0
        );
        rows.push(
            Json::obj()
                .field("nodes", n as u64)
                .field("intervals", intervals as u64)
                .field("events", seq_events)
                .field("sequential_secs", seq_secs)
                .field("windowed4_secs", win_secs)
                .field("sequential_events_per_sec", seq_events as f64 / seq_secs)
                .field("windowed4_events_per_sec", win_events as f64 / win_secs)
                .field("converged_at", Json::from(conv.map(|c| c as u64)))
                .field("satisfied_tail", tail)
                .field("net_utilization", net_util)
                .field("max_disk_utilization", disk_util),
        );
    }
    Json::Arr(rows)
}

/// Fabric experiment: N = 64 on the paper's 100 Mbit/s line rate, shared
/// medium versus switched per-node links, identical per-node load. The
/// shared medium carries all N nodes' traffic on one facility and is past
/// saturation at this scale; the switch gives every node a full-duplex
/// line of the *same* rate, so the per-link budget stays flat as N grows.
fn fabric(quick: bool) -> Json {
    println!("\n== fabric: shared medium vs switched links (N = 64, 100 Mbit line rate) ==");
    let intervals = if quick { 6 } else { 24 };
    let nodes = 64usize;
    let run = |spec: FabricSpec| {
        let cfg = fabric_config(
            nodes,
            spec,
            ProbeSpec::Sequential,
            ExecMode::Windowed { workers: 4 },
            PAPER_FABRIC,
            42,
        );
        let mut sim = Simulation::new(cfg);
        let begin = Instant::now();
        sim.run_intervals(intervals);
        (sim, begin.elapsed().as_secs_f64())
    };
    let (shared, shared_secs) = run(FabricSpec::SharedMedium);
    let now = shared.now();
    let shared_util = shared.plane().network().utilization(now);
    let shared_done = shared.plane().completions();
    println!(
        "shared medium: net {:>5.1} % busy  {shared_done:>6} ops completed  ({shared_secs:.1} s)",
        shared_util * 100.0
    );
    let (switched, switched_secs) = run(FabricSpec::Switched {
        bisection_bits_per_sec: None,
    });
    let now = switched.now();
    let net = switched.plane().network();
    let (mut tx, mut rx) = (Vec::new(), Vec::new());
    for node in 0..nodes {
        let link = net.link_utilization(node, now).expect("switched fabric");
        tx.push(link.tx);
        rx.push(link.rx);
    }
    let max_link = tx.iter().chain(&rx).fold(0.0f64, |m, &u| m.max(u));
    let switched_done = switched.plane().completions();
    println!(
        "switched:      hottest link {:>5.1} % busy  {switched_done:>6} ops completed  ({switched_secs:.1} s)",
        max_link * 100.0
    );
    // The wall and the fix, in one pair of numbers: the medium saturates
    // while no single switched link comes close, and the extra capacity is
    // real work — the switched run completes at least as many operations.
    // (The quick run is too short for the cumulative busy fraction to
    // reach the saturated steady state, so the 90 % bar is full-run only.)
    if quick {
        assert!(
            shared_util > 4.0 * max_link,
            "the shared medium must dominate every switched link \
             ({shared_util:.2} vs {max_link:.2})"
        );
    } else {
        assert!(
            shared_util >= 0.9,
            "the shared medium must be saturated at N = 64 ({shared_util:.2})"
        );
    }
    assert!(
        max_link < 0.9,
        "per-link utilization must stay under 90 % on the switch ({max_link:.2})"
    );
    assert!(
        switched_done >= shared_done,
        "the switched fabric must complete at least the shared medium's \
         operations ({switched_done} vs {shared_done})"
    );
    Json::obj()
        .field("nodes", nodes as u64)
        .field("intervals", intervals as u64)
        .field("line_bits_per_sec", PAPER_FABRIC)
        .field("shared_utilization", shared_util)
        .field("shared_completions", shared_done)
        .field("switched_max_link_utilization", max_link)
        .field("switched_completions", switched_done)
        .field("tx_utilization", Json::from(tx.as_slice()))
        .field("rx_utilization", Json::from(rx.as_slice()))
}

/// Probe experiment: how fast the hyperplane controller reaches a
/// full-rank response-time fit at N = 64. The baseline walks one
/// single-node probe per interval (~N + 1 intervals before the first
/// optimization); the batched plan perturbs Hadamard-orthogonal groups so
/// no probe is ever redundant, and the warm start skips the ramp entirely
/// by stretching a converged N = 8 fit across the 64-node topology.
fn probe(quick: bool) -> Json {
    println!("\n== probe: batched Hadamard plan + cross-scale warm start (N = 64, switched) ==");
    let switched = FabricSpec::Switched {
        bisection_bits_per_sec: None,
    };
    // Donor: a small-N run to a settled fit, cheap at any scale.
    let donor_nodes = 8usize;
    let donor_intervals = if quick { 40 } else { 60 };
    let donor_cfg = fabric_config(
        donor_nodes,
        switched,
        ProbeSpec::Sequential,
        ExecMode::Windowed { workers: 4 },
        PAPER_FABRIC,
        42,
    );
    let mut donor = Simulation::new(donor_cfg);
    donor.run_intervals(donor_intervals);
    let small_fit = donor
        .fitted_planes(ClassId(1))
        .expect("donor run must reach a full-rank fit");
    println!(
        "donor: N = {donor_nodes}, {donor_intervals} intervals, converged at {:?}",
        converged_at(&donor)
    );
    // Target: N = 64 with a calibrated midpoint goal (reachable by
    // construction, but only through controller action).
    let nodes = 64usize;
    let target = |probe: ProbeSpec, intervals: u32, warm: Option<&dmm::core::Planes>| {
        let mut cfg = fabric_config(
            nodes,
            switched,
            probe,
            ExecMode::Windowed { workers: 4 },
            PAPER_FABRIC,
            42,
        );
        let range = calibrate_goal_range(&cfg, ClassId(1), 4, 4);
        let goal = (range.min_ms + range.max_ms) / 2.0;
        cfg.workload.classes[1].goal_ms = Some(goal);
        let mut sim = Simulation::new(cfg);
        if let Some(planes) = warm {
            sim.warm_start_class(ClassId(1), planes)
                .expect("class 1 carries a goal");
        }
        let begin = Instant::now();
        sim.run_intervals(intervals);
        let secs = begin.elapsed().as_secs_f64();
        (converged_at(&sim), satisfied_tail(&sim, 8), goal, secs)
    };
    let stretched = upsample_planes(&small_fit, nodes);
    let warm_intervals = if quick { 24 } else { 96 };
    let (warm_conv, warm_tail, goal, warm_secs) = target(
        ProbeSpec::Batched { batch: 8 },
        warm_intervals,
        Some(&stretched),
    );
    println!(
        "warm start + batch 8: converged at {warm_conv:?} of {warm_intervals} intervals, \
         tail satisfied {:.0} %, goal {goal:.2} ms  ({warm_secs:.1} s)",
        warm_tail * 100.0
    );
    // The CI smoke gate: the warm-started N = 64 switched row converges
    // even in the shrunken run.
    let warm_conv = warm_conv.expect("warm-started N = 64 run must converge within the horizon");
    let mut doc = Json::obj()
        .field("nodes", nodes as u64)
        .field("donor_nodes", donor_nodes as u64)
        .field("goal_ms", goal)
        .field("warm_intervals", warm_intervals as u64)
        .field("warm_converged_at", warm_conv as u64)
        .field("warm_satisfied_tail", warm_tail);
    if quick {
        println!("(quick: sequential-probe baseline skipped)");
        return doc;
    }
    // Full mode: the PR 7 protocol — cold start, one probe per interval.
    let base_intervals = 256u32;
    let (base_conv, base_tail, _, base_secs) = target(ProbeSpec::Sequential, base_intervals, None);
    println!(
        "cold sequential:      converged at {base_conv:?} of {base_intervals} intervals, \
         tail satisfied {:.0} %  ({base_secs:.1} s)",
        base_tail * 100.0
    );
    // Treat a never-converged baseline as converging at the horizon.
    let base_conv = base_conv.unwrap_or(base_intervals);
    assert!(
        base_conv >= 2 * warm_conv,
        "warm start must cut N = 64 convergence at least in half \
         ({base_conv} vs {warm_conv} intervals)"
    );
    doc = doc
        .field("baseline_intervals", base_intervals as u64)
        .field("baseline_converged_at", base_conv as u64)
        .field("baseline_satisfied_tail", base_tail)
        .field(
            "convergence_speedup",
            f64::from(base_conv) / f64::from(warm_conv),
        );
    doc
}

/// Long N = 64 convergence run on the gigabit fabric: the hyperplane
/// controller probes ~N+1 intervals before its first optimization, so the
/// goal-convergence story at this scale needs a longer horizon than the
/// sweep grants — and a network that is not already past saturation. The
/// goal follows the paper's §7.3 protocol: calibrate the feasible band
/// (settled response at 2/3 vs 1/3 of memory dedicated) and target its
/// midpoint — reachable by construction, but only through controller
/// action.
fn n64_convergence(quick: bool) -> Json {
    println!("\n== N = 64 goal convergence (1 Gbit fabric) ==");
    // ~3 intervals per independent probe point (probe + settling shadow)
    // × 65 points for a rank-65 fit, plus the optimize/settle episodes
    // after the first full-rank fit.
    let intervals = if quick { 12 } else { 256 };
    let mut cfg = scale_config(
        64,
        0.8,
        PlacementSpec::HotRing(HotRingSpec::default()),
        ExecMode::Windowed { workers: 4 },
        GBIT_FABRIC,
        42,
    );
    let range = calibrate_goal_range(&cfg, ClassId(1), 4, 4);
    let goal = (range.min_ms + range.max_ms) / 2.0;
    println!(
        "calibrated band [{:.2}, {:.2}] ms, goal = midpoint {goal:.2} ms",
        range.min_ms, range.max_ms
    );
    cfg.workload.classes[1].goal_ms = Some(goal);
    let mut sim = Simulation::new(cfg);
    let begin = Instant::now();
    sim.run_intervals(intervals);
    let secs = begin.elapsed().as_secs_f64();
    for r in sim.records(ClassId(1)) {
        if r.interval % 32 == 0 || r.interval + 1 == intervals {
            println!(
                "  interval {:>3}: observed {:>8.2?} ms  satisfied {:?}  dedicated {} MB",
                r.interval,
                r.observed_ms,
                r.satisfied,
                r.dedicated_bytes / (1024 * 1024)
            );
        }
    }
    let conv = converged_at(&sim);
    let tail = satisfied_tail(&sim, 8);
    let observed = sim.mean_observed_ms(ClassId(1), 8);
    let now = sim.now();
    println!(
        "{intervals} intervals in {secs:.1} s: converged at {conv:?}, \
         tail satisfied {:.0} %, settled {:?} ms vs goal {goal} ms \
         (net {:.0} %, busiest disk {:.0} %)",
        tail * 100.0,
        observed,
        sim.plane().network().utilization(now) * 100.0,
        sim.plane().max_disk_utilization(now) * 100.0
    );
    if !quick {
        assert!(
            tail >= 0.5,
            "goal class must settle into satisfaction at N = 64 (tail {tail:.2})"
        );
    }
    Json::obj()
        .field("nodes", 64u64)
        .field("intervals", intervals as u64)
        .field("secs", secs)
        .field("converged_at", Json::from(conv.map(|c| c as u64)))
        .field("satisfied_tail", tail)
        .field("settled_ms", Json::from(observed))
        .field("goal_ms", goal)
}

fn main() {
    let args = dmm_bench::BenchArgs::parse();
    let quick = args.quick;
    let only = args.only.clone();
    let wants = |name: &str| args.wants(name);

    let balance = wants("balance").then(|| balance(quick));
    let executor = wants("executor").then(|| executor(quick));
    let replication = wants("replication").then(|| replication(quick));
    let sweep = wants("sweep").then(|| sweep(quick));
    let fabric = wants("fabric").then(|| fabric(quick));
    let probe = wants("probe").then(|| probe(quick));
    let n64 = wants("n64").then(|| n64_convergence(quick));
    if !only.is_empty() {
        // Partial runs are for iterating on one section; don't clobber the
        // full BENCH_scale.json with a document full of holes.
        println!("\n(--only run: BENCH_scale.json not written)");
        return;
    }
    let (balance, executor, replication, sweep, fabric, probe, n64) = (
        balance.expect("ran"),
        executor.expect("ran"),
        replication.expect("ran"),
        sweep.expect("ran"),
        fabric.expect("ran"),
        probe.expect("ran"),
        n64.expect("ran"),
    );

    let doc = Json::obj()
        .field("bench", "scale")
        .field("quick", quick)
        .field("host_cores", cores() as u64)
        .field("balance", balance)
        .field("executor", executor)
        .field("replication", replication)
        .field("sweep", sweep)
        .field("fabric", fabric)
        .field("probe", probe)
        .field("n64", n64);
    dmm_bench::cli::write_bench_doc("BENCH_scale.json", &doc);
}
