//! Developer harness: dump the per-interval control trace for one run.
//! Usage: `debug_trace [theta] [seed] [intervals]`

use dmm::buffer::ClassId;
use dmm::core::{calibrate_goal_range, Simulation, SystemConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let theta: f64 = args.get(1).map_or(0.0, |s| s.parse().expect("theta"));
    let seed: u64 = args.get(2).map_or(1001, |s| s.parse().expect("seed"));
    let intervals: u32 = args.get(3).map_or(80, |s| s.parse().expect("intervals"));

    let class = ClassId(1);
    let base = SystemConfig::builder()
        .seed(seed)
        .theta(theta)
        .goal_ms(15.0)
        .build()
        .expect("valid base config");
    let range = calibrate_goal_range(&base, class, 6, 6);
    eprintln!("goal range [{:.2}, {:.2}]", range.min_ms, range.max_ms);

    let cfg = SystemConfig::builder()
        .seed(seed)
        .theta(theta)
        .goal_ms(range.max_ms)
        .goal_range(range)
        .build()
        .expect("valid trace config");
    let mut sim = Simulation::new(cfg);

    println!("int  observed  goal   nogoal  dedMB  sat");
    for _ in 0..intervals {
        sim.run_intervals(1);
        let r = *sim.records(class).last().expect("record");
        println!(
            "{:>3}  {:>8}  {:>5.2}  {:>6.2}  {:>5.2}  {}",
            r.interval,
            r.observed_ms.map_or("-".into(), |v| format!("{v:.2}")),
            r.goal_ms,
            r.nogoal_ms,
            r.dedicated_bytes as f64 / (1024.0 * 1024.0),
            r.satisfied.map_or("-", |s| if s { "y" } else { "N" }),
        );
    }
    let c = sim.convergence(class);
    eprintln!(
        "episodes {}  mean {:.2}  ci {:.2}",
        c.episodes(),
        c.mean_iterations(),
        c.ci99().half_width
    );
}
