//! Developer harness: dump the per-interval control trace for one run.
//! Usage: `debug_trace [theta] [seed] [intervals] [--jsonl PATH] [--spans N]`
//!
//! `--jsonl PATH` additionally streams the full structured trace (interval,
//! optimize, grant, span, … records) to PATH; `--spans N` enables
//! operation-level span tracing with deterministic 1-in-N sampling — the
//! pair CI uses to produce inputs for the `dmm-trace` smoke run.

use dmm::buffer::ClassId;
use dmm::core::{calibrate_goal_range, Simulation, SystemConfig};
use dmm::obs::{JsonLinesSink, SpanMode};

fn main() {
    let mut positional: Vec<String> = Vec::new();
    let mut jsonl: Option<String> = None;
    let mut spans: Option<u32> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jsonl" => jsonl = Some(args.next().expect("--jsonl needs a path")),
            "--spans" => {
                spans = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--spans needs a sampling divisor"),
                )
            }
            _ => positional.push(arg),
        }
    }
    let theta: f64 = positional
        .first()
        .map_or(0.0, |s| s.parse().expect("theta"));
    let seed: u64 = positional.get(1).map_or(1001, |s| s.parse().expect("seed"));
    let intervals: u32 = positional
        .get(2)
        .map_or(80, |s| s.parse().expect("intervals"));

    let class = ClassId(1);
    let base = SystemConfig::builder()
        .seed(seed)
        .theta(theta)
        .goal_ms(15.0)
        .build()
        .expect("valid base config");
    let range = calibrate_goal_range(&base, class, 6, 6);
    eprintln!("goal range [{:.2}, {:.2}]", range.min_ms, range.max_ms);

    let mut builder = SystemConfig::builder()
        .seed(seed)
        .theta(theta)
        .goal_ms(range.max_ms)
        .goal_range(range);
    if let Some(every) = spans {
        builder = builder.spans(SpanMode::Sampled { every });
    }
    let cfg = builder.build().expect("valid trace config");
    let mut sim = Simulation::new(cfg);
    if let Some(path) = &jsonl {
        let sink = JsonLinesSink::create(path).expect("create --jsonl file");
        sim.set_trace_sink(Box::new(sink));
    }

    println!("int  observed  goal   nogoal  dedMB  sat");
    for _ in 0..intervals {
        sim.run_intervals(1);
        let r = *sim.records(class).last().expect("record");
        println!(
            "{:>3}  {:>8}  {:>5.2}  {:>6.2}  {:>5.2}  {}",
            r.interval,
            r.observed_ms.map_or("-".into(), |v| format!("{v:.2}")),
            r.goal_ms,
            r.nogoal_ms,
            r.dedicated_bytes as f64 / (1024.0 * 1024.0),
            r.satisfied.map_or("-", |s| if s { "y" } else { "N" }),
        );
    }
    let c = sim.convergence(class);
    eprintln!(
        "episodes {}  mean {:.2}  ci {:.2}",
        c.episodes(),
        c.mean_iterations(),
        c.ci99().half_width
    );
    if let Some(path) = &jsonl {
        eprintln!("trace: {path}");
    }
}
