//! Scheduler benchmark: the hierarchical timing wheel versus the binary-heap
//! reference backend.
//!
//! Two layers of evidence, written to `BENCH_scheduler.json` at the
//! workspace root:
//!
//! 1. **Micro**: steady-state push/pop throughput under the classic *hold*
//!    model — the queue is prefilled to a fixed depth (1 k / 64 k / 1 M
//!    pending events) and every delivered event schedules exactly one
//!    follow-up with a mixed-magnitude delay, so each measured iteration is
//!    one pop plus one push at constant depth. The heap pays O(log n)
//!    comparator walks per operation; the wheel pays O(1) near-future
//!    bitmask scans, so the gap widens with depth.
//! 2. **End-to-end**: wall-clock of the fig2_base experiment, the
//!    crash/restart degradation run, and the event-dense 16×-pool
//!    configuration from the hot-path work, each under both backends with
//!    the reps interleaved (A/B/A/B) and the minimum kept per backend. The
//!    run also cross-checks that both backends deliver the same number of
//!    events and accesses — the wall-clock comparison is only meaningful
//!    because the simulations are identical.
//!
//! `--quick` shrinks the end-to-end runs for CI smoke use; the acceptance
//! numbers quoted in the README come from the full run.

use std::time::Instant;

use dmm::buffer::ClassId;
use dmm::cluster::{FaultPlan, NodeId};
use dmm::core::{calibrate_goal_range, Simulation, SystemConfig};
use dmm::obs::Json;
use dmm::sim::{
    Engine, Handler, SchedStats, Scheduler, SchedulerBackend, SimDuration, SimParams, SimRng,
    SimTime,
};
use dmm_bench::micro::{bench_micro, MicroResult};

/// The hold-model workload: every delivered event schedules one follow-up,
/// keeping the pending depth constant. Delays mix magnitudes the way the
/// cluster protocol does — mostly near-future (network/CPU steps), a tail
/// of far-future ones (interval timers, retries).
struct Hold {
    rng: SimRng,
}

impl Handler<u64> for Hold {
    fn handle(&mut self, _now: SimTime, event: u64, sched: &mut Scheduler<u64>) {
        let ns = if self.rng.index(10) == 0 {
            1 + self.rng.next_u64() % (1 << 27) // ~134 ms outliers
        } else {
            1 + self.rng.next_u64() % 100_000 // ≤100 µs protocol steps
        };
        sched.after(SimDuration::from_nanos(ns), event + 1);
    }
}

fn hold_bench(backend: SchedulerBackend, pending: usize) -> (MicroResult, SchedStats) {
    let mut eng = Engine::with_params(SimParams {
        scheduler: backend,
        ..SimParams::default()
    });
    let mut rng = SimRng::seed_from_u64(0xD15C_0000 + pending as u64);
    for i in 0..pending {
        let t = rng.next_u64() % 1_000_000_000;
        eng.scheduler().at(SimTime::from_nanos(t), i as u64);
    }
    let mut hold = Hold {
        rng: SimRng::seed_from_u64(77),
    };
    // Warm up past the prefill transient so the measured region is pure
    // steady-state hold.
    eng.run_events(pending as u64, &mut hold);
    let name = format!("hold/{backend:?}/{pending}");
    let result = bench_micro(&name, || {
        eng.run_events(1, &mut hold);
    });
    assert_eq!(eng.scheduler().pending(), pending, "hold model must hold");
    (result, eng.sched_stats())
}

struct E2eRun {
    name: &'static str,
    intervals: u32,
    reps: u32,
    wheel_secs: f64,
    heap_secs: f64,
    events: u64,
    wheel_stats: SchedStats,
}

impl E2eRun {
    fn improvement_pct(&self) -> f64 {
        100.0 * (self.heap_secs - self.wheel_secs) / self.heap_secs
    }

    fn to_json(&self) -> Json {
        Json::obj()
            .field("config", self.name)
            .field("intervals", self.intervals as u64)
            .field("reps", self.reps as u64)
            .field("wheel_secs", self.wheel_secs)
            .field("heap_secs", self.heap_secs)
            .field("improvement_pct", self.improvement_pct())
            .field("events", self.events)
            .field("peak_pending", self.wheel_stats.peak_pending)
            .field("cascaded", self.wheel_stats.cascaded)
    }
}

/// Runs `cfg` per backend per rep, interleaved (A/B/A/B so host noise hits
/// both alike), keeping the best wall-clock per backend, and cross-checks
/// that both backends simulate the identical system.
fn e2e(name: &'static str, cfg: &SystemConfig, intervals: u32, reps: u32) -> E2eRun {
    let timed = |backend: SchedulerBackend| -> (f64, u64, u64, SchedStats) {
        let mut cfg = cfg.clone();
        cfg.sim.scheduler = backend;
        let mut sim = Simulation::new(cfg);
        let start = Instant::now();
        sim.run_intervals(intervals);
        let snap = sim.metrics_snapshot();
        (
            start.elapsed().as_secs_f64(),
            snap.get_counter("sim.events").unwrap_or(0),
            snap.get_counter("cluster.accesses").unwrap_or(0),
            sim.sched_stats(),
        )
    };
    let mut wheel_secs = f64::INFINITY;
    let mut heap_secs = f64::INFINITY;
    let mut wheel_out = (0u64, 0u64);
    let mut heap_out = (0u64, 0u64);
    let mut wheel_stats = SchedStats::default();
    for _ in 0..reps {
        let (secs, events, accesses, stats) = timed(SchedulerBackend::Wheel);
        wheel_secs = wheel_secs.min(secs);
        wheel_out = (events, accesses);
        wheel_stats = stats;
        let (secs, events, accesses, _) = timed(SchedulerBackend::Heap);
        heap_secs = heap_secs.min(secs);
        heap_out = (events, accesses);
    }
    assert_eq!(wheel_out, heap_out, "backends simulated different systems");
    let run = E2eRun {
        name,
        intervals,
        reps,
        wheel_secs,
        heap_secs,
        events: wheel_out.0,
        wheel_stats,
    };
    println!(
        "{:<12} wheel {:.3} s  heap {:.3} s  improvement {:+.1} %  \
         ({} events, peak pending {}, cascaded {})",
        run.name,
        run.wheel_secs,
        run.heap_secs,
        run.improvement_pct(),
        run.events,
        run.wheel_stats.peak_pending,
        run.wheel_stats.cascaded,
    );
    run
}

fn main() {
    let quick = dmm_bench::BenchArgs::parse().quick;
    let class = ClassId(1);

    println!("== micro: hold-model push/pop throughput ==");
    let depths: &[usize] = if quick {
        &[1_000, 64_000]
    } else {
        &[1_000, 64_000, 1_000_000]
    };
    let mut micro = Vec::new();
    for &pending in depths {
        let (heap, _) = hold_bench(SchedulerBackend::Heap, pending);
        let (wheel, stats) = hold_bench(SchedulerBackend::Wheel, pending);
        let speedup = heap.ns_per_iter / wheel.ns_per_iter;
        println!(
            "pending {:>9}: wheel {:8.1} ns/op  heap {:8.1} ns/op  speedup {:.2}x  \
             (cascaded {})",
            pending, wheel.ns_per_iter, heap.ns_per_iter, speedup, stats.cascaded,
        );
        micro.push(
            Json::obj()
                .field("pending", pending as u64)
                .field("wheel_ns_per_op", wheel.ns_per_iter)
                .field("heap_ns_per_op", heap.ns_per_iter)
                .field("speedup", speedup),
        );
    }

    println!("\n== end-to-end: wheel vs heap backend ==");
    let (intervals, reps) = if quick { (24, 2) } else { (84, 7) };

    // Figure 2 base experiment (goal schedule active).
    let base = SystemConfig::builder()
        .seed(42)
        .goal_ms(15.0)
        .build()
        .expect("valid base config");
    let range = calibrate_goal_range(&base, class, 6, 6);
    let fig2 = SystemConfig::builder()
        .seed(42)
        .goal_ms(range.max_ms * 0.8)
        .goal_range(range)
        .build()
        .expect("valid fig2 config");
    let fig2_run = e2e("fig2_base", &fig2, intervals, reps);

    // Crash/restart degradation run: the fault machinery (retransmits,
    // failover re-announces) adds scheduler churn. Fault times scale with
    // the run so the crash fires in --quick mode too.
    let plan = FaultPlan::new(42)
        .crash_ms(NodeId(2), (intervals as u64 / 3 * 5_000) + 2_500)
        .restart_ms(NodeId(2), (2 * intervals as u64 / 3 * 5_000) + 2_500);
    let degraded = SystemConfig::builder()
        .seed(42)
        .goal_ms(range.max_ms * 0.8)
        .goal_range(range)
        .fault_plan(plan)
        .build()
        .expect("valid degradation config");
    let degradation_run = e2e("degradation", &degraded, intervals, reps);

    // The event-dense 16×-pool configuration from the hot-path work: more
    // pages in flight per interval, deeper pending queues.
    let large = SystemConfig::builder()
        .seed(42)
        .goal_ms(15.0)
        .db_pages(24_000)
        .buffer_pages_per_node(8192)
        .goal_range(dmm::workload::GoalRange::new(5.0, 30.0))
        .build()
        .expect("valid large-pool config");
    let large_run = e2e("large_pool", &large, intervals, reps);

    let doc = Json::obj()
        .field("bench", "scheduler")
        .field("quick", quick)
        .field("micro", Json::Arr(micro))
        .field(
            "e2e",
            Json::Arr(vec![
                fig2_run.to_json(),
                degradation_run.to_json(),
                large_run.to_json(),
            ]),
        );
    dmm_bench::cli::write_bench_doc("BENCH_scheduler.json", &doc);
}
