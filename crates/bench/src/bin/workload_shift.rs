//! **Dynamic workload** (paper §1/§7.2: the method "copes with evolving
//! workload characteristics"; the base-experiment claims held "including
//! experiments with … dynamically changing workloads"): the no-goal class's
//! arrival rate jumps 30 % mid-run. The goal class's hit-rate economics change
//! (more competition in the shared pools, more disk contention), so the
//! coordinator must re-converge onto the same goal with a new partitioning.

use dmm::buffer::{ClassId, NO_GOAL};
use dmm::core::{Simulation, SystemConfig};
use dmm::obs::JsonLinesSink;
use dmm::sim::SimTime;
use dmm::workload::RateShift;

fn main() {
    let json = dmm_bench::BenchArgs::parse().json;
    let goal_ms = 9.0;
    let mut cfg = SystemConfig::builder()
        .seed(19)
        .goal_ms(goal_ms)
        .build()
        .expect("valid shift config");
    // At t = 300 s (interval 60) the background load triples.
    let nodes = cfg.cluster.nodes;
    cfg.workload.classes[NO_GOAL.index()].rate_shifts = vec![RateShift {
        at: SimTime::from_nanos(300 * 1_000_000_000),
        arrival_per_ms: vec![0.018 * 1.3; nodes],
    }];
    let mut sim = Simulation::new(cfg);
    if json {
        let sink = JsonLinesSink::create("results/workload_shift.jsonl")
            .expect("create results/workload_shift.jsonl");
        sim.set_trace_sink(Box::new(sink));
    }

    println!("goal {goal_ms} ms; no-goal arrival rate x1.3 at interval 60\n");
    println!("interval  observed_ms  dedicated_MB  satisfied");
    for _ in 0..170 {
        sim.run_intervals(1);
        let r = *sim.records(ClassId(1)).last().expect("record");
        if r.interval.is_multiple_of(4) || (55..75).contains(&r.interval) {
            println!(
                "{:>8}  {:>11}  {:>12.2}  {:>9}",
                r.interval,
                r.observed_ms
                    .map_or_else(|| "-".into(), |v| format!("{v:.2}")),
                r.dedicated_bytes as f64 / (1024.0 * 1024.0),
                r.satisfied.map_or("-", |s| if s { "yes" } else { "NO" }),
            );
        }
    }
    let before: Vec<_> = sim
        .records(ClassId(1))
        .iter()
        .filter(|r| (40..60).contains(&r.interval))
        .collect();
    let after: Vec<_> = sim
        .records(ClassId(1))
        .iter()
        .filter(|r| r.interval >= 120)
        .collect();
    let ded = |rs: &[&dmm::core::IntervalRecord]| {
        rs.iter().map(|r| r.dedicated_bytes as f64).sum::<f64>()
            / rs.len() as f64
            / (1024.0 * 1024.0)
    };
    let sat = |rs: &[&dmm::core::IntervalRecord]| {
        100.0 * rs.iter().filter(|r| r.satisfied == Some(true)).count() as f64 / rs.len() as f64
    };
    println!(
        "\nbefore shift: {:.2} MB dedicated, {:.0}% satisfied;  after re-convergence: {:.2} MB, {:.0}% satisfied",
        ded(&before), sat(&before), ded(&after), sat(&after)
    );
    if json {
        std::fs::write(
            "results/workload_shift_metrics.json",
            sim.metrics_snapshot().to_json().to_string(),
        )
        .expect("write results/workload_shift_metrics.json");
        eprintln!("trace: results/workload_shift.jsonl");
    }
}
