//! **Ablation B** — the paper's controller vs. the §2 related work, under
//! identical workloads: fragment fencing \[5\] (RT linear in buffer size),
//! class fencing \[6\] (RT linear in miss rate), a static 1/3 split, and no
//! partitioning at all.
//!
//! Reproduction target (motivating the paper): the goal-oriented methods
//! satisfy the goal where static/no partitioning miss it, and the paper's
//! N-dimensional LP spends the no-goal class's response time more carefully
//! than the equal-split fencing baselines.

use dmm::buffer::ClassId;
use dmm::core::{ControllerKind, Objective, Simulation, SystemConfig};
use dmm_bench::{render_table, steady_state};

fn scenario(cfg: &mut SystemConfig, skewed_nodes: bool) {
    if skewed_nodes {
        // Operations of the goal class arrive mostly at node 0: the value of
        // a dedicated frame now differs per node, which is exactly what the
        // paper's N-dimensional LP models and the equal-split fencing
        // baselines cannot (§2: "designed for a single server").
        cfg.workload.classes[1].arrival_per_ms = vec![0.012, 0.005, 0.001];
    }
}

fn run_table(goal_ms: f64, skewed_nodes: bool) {
    let controllers: [(&str, ControllerKind); 5] = [
        (
            "hyperplane+LP (paper)",
            ControllerKind::Hyperplane {
                objective: Objective::MinNoGoalRt,
            },
        ),
        ("fragment fencing", ControllerKind::FragmentFencing),
        ("class fencing", ControllerKind::ClassFencing),
        (
            "static 1/3",
            ControllerKind::Static {
                fraction: 1.0 / 3.0,
            },
        ),
        ("no partitioning", ControllerKind::None),
    ];

    let title = if skewed_nodes {
        "skewed per-node arrivals [0.012, 0.005, 0.001]"
    } else {
        "uniform per-node arrivals"
    };
    println!("Ablation B — controllers, {title} (goal {goal_ms} ms, theta 0)\n");
    let mut rows = Vec::new();
    for (label, controller) in controllers {
        let mut cfg = SystemConfig::builder()
            .seed(31)
            .goal_ms(goal_ms)
            .controller(controller)
            .build()
            .expect("valid ablation config");
        scenario(&mut cfg, skewed_nodes);
        let mut sim = Simulation::new(cfg);
        sim.run_intervals(10); // settle
        let s = steady_state(&mut sim, ClassId(1), 50);
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", s.class_rt_ms),
            format!("{:.0}", 100.0 * s.satisfied_fraction),
            format!("{:.2}", s.nogoal_rt_ms),
            format!("{:.2}", s.dedicated_mb),
        ]);
        eprintln!("{label}: done");
    }
    println!(
        "{}",
        render_table(
            &[
                "controller",
                "goal RT (ms)",
                "satisfied %",
                "no-goal RT (ms)",
                "dedicated (MB)"
            ],
            &rows
        )
    );
    println!();
}

fn main() {
    let goal_ms = 8.0;
    run_table(goal_ms, false);
    run_table(goal_ms, true);
    println!("the goal is a target: 'satisfied' means within the adaptive tolerance band.");
}
