//! **Tail experiment** — the SLO-vs-batch flagship scenario.
//!
//! One latency-critical class carries a *p95* response-time goal (the
//! production-SLO reading of the paper's goals: a tail target, not a mean)
//! while the no-goal batch class grinds through bulk work on the same
//! buffers. The controller must dedicate enough memory to pin the SLO
//! class's p95 at the goal — and no more, because every dedicated frame
//! slows the batch class down. The experiment scores both sides:
//!
//! * **tail compliance** — the settled per-interval p95 of the SLO class
//!   must sit within the controller's tolerance of the goal;
//! * **batch makespan** — the simulated time the batch class needs to
//!   complete a fixed budget of operations must stay within 15 % of the
//!   uncontrolled baseline (the identical workload and seed run with
//!   `ControllerKind::None`, i.e. no memory dedicated to the SLO class).
//!
//! `--quick` shrinks the run for CI smoke use. The summary is written to
//! `BENCH_tail.json` at the workspace root.

use dmm::cluster::SpanMode;
use dmm::core::calibrate_goal_range;
use dmm::obs::Json;
use dmm::prelude::*;

const Q: f64 = 0.95;

/// Runs `total` intervals, recording the batch class's cumulative
/// completion count at every interval boundary.
fn run(cfg: SystemConfig, total: u32) -> (Simulation, Vec<u64>) {
    let mut sim = Simulation::new(cfg);
    let mut batch_cum = Vec::with_capacity(total as usize);
    for _ in 0..total {
        sim.run_intervals(1);
        batch_cum.push(sim.class_completions(ClassId(0)));
    }
    (sim, batch_cum)
}

/// First interval count at which the cumulative completions reach `target`.
fn makespan_intervals(cum: &[u64], target: u64) -> Option<u32> {
    cum.iter().position(|&c| c >= target).map(|i| i as u32 + 1)
}

fn main() {
    let args = dmm_bench::BenchArgs::parse();
    let quick = args.quick;
    let class = ClassId(1);
    let seed = args.seed_or(42);
    let (settle, measure, total) = if quick { (3, 3, 24) } else { (6, 6, 60) };

    // Calibrate the reachable p95 band (the §7.3 protocol applied to the
    // goal quantile) and set the goal in the middle: tight enough that the
    // controller must dedicate memory, loose enough that the batch class
    // keeps a workable share.
    let base = SystemConfig::builder()
        .seed(seed)
        .goal_ms(15.0)
        .goal_quantile(Q)
        .build()
        .expect("valid base config");
    let range = calibrate_goal_range(&base, class, settle, measure);
    let goal_ms = 0.5 * (range.min_ms + range.max_ms);

    // SLA reading: the p95 goal is an upper bound. The controller still
    // releases memory on clear over-achievement (that is what protects the
    // batch class), but running faster than the goal is compliant.
    let flagship_cfg = SystemConfig::builder()
        .seed(seed)
        .goal_ms(goal_ms)
        .goal_quantile(Q)
        .satisfaction(SatisfactionMode::UpperBound)
        .spans(SpanMode::Histograms)
        .build()
        .expect("valid flagship config");
    let mut baseline_cfg = flagship_cfg.clone();
    baseline_cfg.controller = ControllerKind::None;

    let (sim, flag_cum) = run(flagship_cfg, total);
    let (_, base_cum) = run(baseline_cfg, total);

    // Batch budget: 90 % of what the uncontrolled baseline completed, so
    // both runs cross it comfortably before the horizon.
    let batch_target = base_cum.last().copied().unwrap_or(0) * 9 / 10;
    let base_makespan = makespan_intervals(&base_cum, batch_target);
    let flag_makespan = makespan_intervals(&flag_cum, batch_target);

    let records = sim.records(class);
    let measured: Vec<_> = records
        .iter()
        .filter(|r| r.observed_p_ms.is_some())
        .collect();
    let satisfied = measured
        .iter()
        .filter(|r| r.satisfied == Some(true))
        .count();
    // The score statistic: the settled p95, averaged over the final
    // `measure` intervals (same window calibration used).
    let settled_p95 = sim
        .mean_observed_quantile_ms(class, measure as usize)
        .expect("SLO class produced completions");

    let snap = sim.metrics_snapshot();
    let tolerance_ms = snap
        .get_gauge("core.class1.tolerance_ms")
        .expect("goal class tolerance gauge");
    let last_p95_gauge = snap.get_gauge("core.class1.p95_ms");
    // Whole-run achieved p95 from the data plane's end-to-end histograms
    // (every completion since warm-up, not just the final intervals).
    let overall_p95_ms = snap
        .get_histogram("span.class1.response_time_ns")
        .and_then(|h| h.quantile(Q))
        .map(|ns| ns as f64 / 1e6);

    println!(
        "tail — p95 goal {goal_ms:.2} ms (calibrated band [{:.2}, {:.2}] ms), seed {seed}",
        range.min_ms, range.max_ms
    );
    println!("interval  mean_ms  p95_ms  dedicated_MB  satisfied");
    for r in records {
        let fmt_opt = |v: Option<f64>| v.map_or_else(|| "-".into(), |x| format!("{x:.2}"));
        println!(
            "{:>8}  {:>7}  {:>6}  {:>12.2}  {:>9}",
            r.interval,
            fmt_opt(r.observed_ms),
            fmt_opt(r.observed_p_ms),
            r.dedicated_bytes as f64 / (1024.0 * 1024.0),
            r.satisfied.map_or("-", |s| if s { "yes" } else { "NO" }),
        );
    }
    println!(
        "\nsettled p95 (last {measure} intervals): {settled_p95:.2} ms vs goal {goal_ms:.2} ms (tolerance {tolerance_ms:.2} ms)"
    );
    if let Some(p) = overall_p95_ms {
        println!("whole-run achieved p95 (data plane): {p:.2} ms");
    }
    println!("satisfied intervals: {satisfied}/{}", measured.len());
    let fmt = |v: Option<u32>| v.map_or_else(|| "never".into(), |n| format!("{n} intervals"));
    println!(
        "batch makespan to {batch_target} ops: flagship {}, uncontrolled baseline {}",
        fmt(flag_makespan),
        fmt(base_makespan)
    );

    let makespan_ratio = match (flag_makespan, base_makespan) {
        (Some(f), Some(b)) => Some(f as f64 / b as f64),
        _ => None,
    };
    if let Some(r) = makespan_ratio {
        println!("makespan ratio (flagship / baseline): {r:.3}");
    }

    let doc = Json::obj()
        .field("bench", "tail")
        .field("quick", quick)
        .field("seed", seed)
        .field("goal_metric", "p95")
        .field("q", Q)
        .field("goal_ms", goal_ms)
        .field("calibrated_min_ms", range.min_ms)
        .field("calibrated_max_ms", range.max_ms)
        .field("intervals", total as u64)
        .field("settled_p95_ms", settled_p95)
        .field("last_p95_ms", last_p95_gauge)
        .field("overall_p95_ms", overall_p95_ms)
        .field("tolerance_ms", tolerance_ms)
        .field("satisfied_intervals", satisfied as u64)
        .field("measured_intervals", measured.len() as u64)
        .field("batch_target_ops", batch_target)
        .field("flagship_makespan_intervals", flag_makespan.map(u64::from))
        .field("baseline_makespan_intervals", base_makespan.map(u64::from))
        .field("makespan_ratio", makespan_ratio)
        .field("goal_episodes", sim.convergence(class).episodes());
    dmm_bench::cli::write_bench_doc("BENCH_tail.json", &doc);

    // Tail compliance (SLA reading): the settled p95 must not exceed the
    // goal by more than the controller's (quantile-widened) tolerance.
    assert!(
        settled_p95 <= goal_ms + tolerance_ms,
        "settled p95 {settled_p95:.2} ms violates goal {goal_ms:.2} + {tolerance_ms:.2} ms"
    );
    // Batch impact: meeting the SLO may cost the batch class memory, but
    // its makespan must stay within 15 % of the uncontrolled baseline.
    let ratio = makespan_ratio.expect("both runs reach the batch budget");
    assert!(
        ratio <= 1.15,
        "batch makespan ratio {ratio:.3} exceeds the 1.15 budget"
    );
}
