//! **Degradation experiment** — graceful degradation under node failure.
//!
//! The paper's method is a feedback loop; a node crash is the harshest
//! workload shift it can face: a third of the cluster memory vanishes, the
//! directory drops every copy the dead node held (last copies must be
//! re-read from disk), and the LP must re-partition over the survivors. We
//! run the fig2 base experiment with a deterministic fault plan — node 2
//! crashes mid-run and rejoins cold later — and measure how many
//! observation intervals the controller needs to re-satisfy the goal after
//! each topology change, plus the degradation counters (last-copy losses,
//! mirror reads, aborted operations).
//!
//! `--quick` shrinks the run for CI smoke use. The summary is written to
//! `BENCH_degradation.json` at the workspace root.

use dmm::core::calibrate_goal_range;
use dmm::obs::Json;
use dmm::prelude::*;

/// Intervals from `after` (exclusive) until the goal is satisfied for
/// `streak` consecutive checks; `None` if it never re-converges.
fn intervals_to_reconverge(
    records: &[dmm::core::IntervalRecord],
    after: u32,
    streak: usize,
) -> Option<u32> {
    let mut run = 0usize;
    for r in records.iter().filter(|r| r.interval > after) {
        if r.satisfied == Some(true) {
            run += 1;
            if run >= streak {
                return Some(r.interval - after);
            }
        } else {
            run = 0;
        }
    }
    None
}

fn main() {
    let args = dmm_bench::BenchArgs::parse();
    let quick = args.quick;
    let class = ClassId(1);
    let seed = args.seed_or(42);

    let base = SystemConfig::builder()
        .seed(seed)
        .goal_ms(15.0)
        .build()
        .expect("valid base config");
    let (settle, measure) = if quick { (3, 3) } else { (6, 6) };
    let range = calibrate_goal_range(&base, class, settle, measure);
    let goal_ms = range.max_ms * 0.8;

    // Crash and restart land mid-interval (x.5 intervals) so fault events
    // never tie with interval boundaries in the event queue.
    let (crash_iv, restart_iv, total) = if quick { (18, 36, 48) } else { (30, 60, 84) };
    let interval_ms = 5_000u64;
    let plan = FaultPlan::new(seed)
        .crash_ms(NodeId(2), crash_iv as u64 * interval_ms + interval_ms / 2)
        .restart_ms(NodeId(2), restart_iv as u64 * interval_ms + interval_ms / 2);

    let cfg = SystemConfig::builder()
        .seed(seed)
        .goal_ms(goal_ms)
        .fault_plan(plan)
        .build()
        .expect("valid degradation config");
    let mut sim = Simulation::new(cfg);
    sim.run_intervals(total);

    let records = sim.records(class);
    // First satisfied interval after the fault. The crash halves the memory
    // pool so the class converges from above; after the restart the class
    // overshoots (extra memory) and the controller releases frames, so a
    // single in-band interval is the honest convergence marker.
    let streak = 1;
    let crash_reconv = intervals_to_reconverge(records, crash_iv, streak);
    let restart_reconv = intervals_to_reconverge(records, restart_iv, streak);

    let snap = sim.metrics_snapshot();
    let counter = |k: &str| snap.get_counter(k).unwrap_or(0);
    let stats = sim.plane().fault_stats();

    println!(
        "degradation — goal {goal_ms:.2} ms, crash @ interval {crash_iv}, restart @ {restart_iv}"
    );
    println!("interval  observed_ms  dedicated_MB  satisfied  live");
    for r in records {
        let live = if (crash_iv..restart_iv).contains(&r.interval) {
            2
        } else {
            3
        };
        let marker = if r.interval == crash_iv {
            "  <- crash"
        } else if r.interval == restart_iv {
            "  <- restart"
        } else {
            ""
        };
        println!(
            "{:>8}  {:>11}  {:>12.2}  {:>9}  {:>4}{}",
            r.interval,
            r.observed_ms
                .map_or_else(|| "-".into(), |v| format!("{v:.2}")),
            r.dedicated_bytes as f64 / (1024.0 * 1024.0),
            r.satisfied.map_or("-", |s| if s { "yes" } else { "NO" }),
            live,
            marker,
        );
    }
    let fmt = |v: Option<u32>| v.map_or_else(|| "never".into(), |n| format!("{n} intervals"));
    println!("\nre-converged after crash:   {}", fmt(crash_reconv));
    println!("re-converged after restart: {}", fmt(restart_reconv));
    println!(
        "last-copy losses: {}, mirror reads: {}, ops aborted: {}",
        stats.last_copy_losses, stats.mirror_reads, stats.ops_aborted
    );

    let doc = Json::obj()
        .field("bench", "degradation")
        .field("quick", quick)
        .field("seed", seed)
        .field("goal_ms", goal_ms)
        .field("crash_interval", crash_iv as u64)
        .field("restart_interval", restart_iv as u64)
        .field("intervals", total as u64)
        .field("crash_reconverge_intervals", crash_reconv.map(|v| v as u64))
        .field(
            "restart_reconverge_intervals",
            restart_reconv.map(|v| v as u64),
        )
        .field("crashes", counter("cluster.fault.crashes"))
        .field("restarts", counter("cluster.fault.restarts"))
        .field(
            "last_copy_losses",
            counter("cluster.fault.last_copy_losses"),
        )
        .field("ops_aborted", counter("cluster.fault.ops_aborted"))
        .field("mirror_reads", counter("cluster.fault.mirror_reads"))
        .field("goal_episodes", sim.convergence(class).episodes());
    dmm_bench::cli::write_bench_doc("BENCH_degradation.json", &doc);

    assert_eq!(counter("cluster.fault.crashes"), 1);
    assert_eq!(counter("cluster.fault.restarts"), 1);
    assert!(
        crash_reconv.is_some(),
        "the controller must re-converge on the surviving nodes"
    );
}
