//! **§8 extension** — alternative LP objectives. The paper's future work:
//! "some applications insist on more stringent conditions … a new objective
//! function, like e.g. minimizing the variation, will be needed." We compare
//! the paper's objective (minimize the predicted no-goal response time)
//! against minimizing total dedicated memory and balancing the per-node
//! allocations.

use dmm::buffer::ClassId;
use dmm::cluster::NodeId;
use dmm::core::{ControllerKind, Objective, Simulation, SystemConfig};
use dmm_bench::{render_table, steady_state};

fn main() {
    let goal_ms = 8.0;
    let objectives: [(&str, Objective); 3] = [
        ("min no-goal RT (paper)", Objective::MinNoGoalRt),
        ("min total dedicated", Objective::MinTotalDedicated),
        ("balance nodes", Objective::BalanceNodes),
    ];

    println!("§8 extension — LP objectives (goal {goal_ms} ms, theta 0)\n");
    let mut rows = Vec::new();
    for (label, objective) in objectives {
        let cfg = SystemConfig::builder()
            .seed(23)
            .goal_ms(goal_ms)
            .controller(ControllerKind::Hyperplane { objective })
            .build()
            .expect("valid objective config");
        let mut sim = Simulation::new(cfg);
        sim.run_intervals(10);
        let s = steady_state(&mut sim, ClassId(1), 40);
        // Per-node spread of the final allocation.
        let per_node: Vec<f64> = (0..sim.plane().num_nodes())
            .map(|n| sim.plane().dedicated_pages(NodeId(n as u16), ClassId(1)) as f64 / 256.0)
            .collect();
        let spread = per_node.iter().cloned().fold(f64::MIN, f64::max)
            - per_node.iter().cloned().fold(f64::MAX, f64::min);
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", s.class_rt_ms),
            format!("{:.0}", 100.0 * s.satisfied_fraction),
            format!("{:.2}", s.nogoal_rt_ms),
            format!("{:.2}", s.dedicated_mb),
            format!("{spread:.2}"),
        ]);
        eprintln!("{label}: done");
    }
    println!(
        "{}",
        render_table(
            &[
                "objective",
                "goal RT (ms)",
                "satisfied %",
                "no-goal RT (ms)",
                "dedicated (MB)",
                "node spread (MB)"
            ],
            &rows
        )
    );
}
