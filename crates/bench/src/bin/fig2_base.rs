//! **Figure 2** (paper §7.2, the base experiment): the time series of
//! observed response time, response time goal, and system-wide dedicated
//! memory over ~80 observation intervals, with the goal re-randomized after
//! four satisfied intervals.
//!
//! Reproduction targets: the observed response time is "closely related to
//! the size of the dedicated buffer", the partitioning "satisfies the
//! response time goal after only a short number of observation intervals",
//! and rapid goal changes cause the mild oscillation the paper discusses
//! (the tolerance cannot calibrate between changes).
//!
//! Pass `--csv` to emit machine-readable output, or `--json` to stream the
//! full structured trace (one record per observation interval, one per
//! optimize phase, plus grants and goal changes) to
//! `results/fig2_base.jsonl` and a closing metrics snapshot to
//! `results/fig2_base_metrics.json`.

use dmm::buffer::ClassId;
use dmm::core::{calibrate_goal_range, Simulation, SystemConfig};
use dmm::obs::JsonLinesSink;

fn main() {
    let args = dmm_bench::BenchArgs::parse();
    let (csv, json) = (args.csv, args.json);
    let class = ClassId(1);
    let theta = 0.0;
    let seed = args.seed_or(42);

    let base = SystemConfig::builder()
        .seed(seed)
        .theta(theta)
        .goal_ms(15.0)
        .build()
        .expect("valid base config");
    let range = calibrate_goal_range(&base, class, 6, 6);

    let cfg = SystemConfig::builder()
        .seed(seed)
        .theta(theta)
        .goal_ms(range.max_ms * 0.8)
        .goal_range(range)
        .build()
        .expect("valid fig2 config");
    let mut sim = Simulation::new(cfg);
    if json {
        let sink = JsonLinesSink::create("results/fig2_base.jsonl")
            .expect("create results/fig2_base.jsonl");
        sim.set_trace_sink(Box::new(sink));
    }
    sim.run_intervals(84);
    if json {
        std::fs::write(
            "results/fig2_base_metrics.json",
            sim.metrics_snapshot().to_json().to_string(),
        )
        .expect("write results/fig2_base_metrics.json");
        eprintln!("trace: results/fig2_base.jsonl, metrics: results/fig2_base_metrics.json");
    }

    if csv {
        println!("interval,observed_ms,goal_ms,dedicated_bytes,satisfied");
        for r in sim.records(class) {
            println!(
                "{},{},{},{},{}",
                r.interval,
                r.observed_ms.map_or(f64::NAN, |v| v),
                r.goal_ms,
                r.dedicated_bytes,
                r.satisfied.map_or(-1, i32::from),
            );
        }
        return;
    }

    println!("Figure 2 — base experiment (3 nodes, 2 MB each, theta = {theta})");
    println!(
        "goal range (calibrated): [{:.2}, {:.2}] ms\n",
        range.min_ms, range.max_ms
    );
    println!("interval  observed_ms  goal_ms  dedicated_MB  satisfied");
    for r in sim.records(class) {
        let bar_len = (r.dedicated_bytes as f64 / (6.0 * 1024.0 * 1024.0) * 24.0) as usize;
        println!(
            "{:>8}  {:>11}  {:>7.2}  {:>12.2}  {:>9}  |{}",
            r.interval,
            r.observed_ms
                .map_or_else(|| "-".into(), |v| format!("{v:.2}")),
            r.goal_ms,
            r.dedicated_bytes as f64 / (1024.0 * 1024.0),
            r.satisfied.map_or("-", |s| if s { "yes" } else { "NO" }),
            "#".repeat(bar_len),
        );
    }

    let c = sim.convergence(class);
    let sat: usize = sim
        .records(class)
        .iter()
        .filter(|r| r.satisfied == Some(true))
        .count();
    println!(
        "\ngoal changes survived: {}, mean iterations to re-converge: {:.2}, satisfied intervals: {}/{}",
        c.episodes(),
        c.mean_iterations(),
        sat,
        sim.records(class).len()
    );
}
