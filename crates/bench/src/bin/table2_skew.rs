//! **Table 2** (paper §7.3): convergence speed of the feedback loop under
//! varying access skew θ.
//!
//! Protocol (§7.1/§7.3): goals are drawn from the calibrated
//! `[goal_min, goal_max]` (response times at 2/3 resp. 1/3 of the aggregate
//! cache dedicated); after four consecutive satisfied intervals the goal is
//! re-randomized; we report the mean number of feedback-loop iterations to
//! re-satisfy the goal, replicated until the 99 % CI half-width is below one
//! iteration.
//!
//! Paper's row (SUN/ICDE'99): θ 0 → 1.84, 0.25 → 2.41, 0.5 → 3.55,
//! 0.75 → 3.88, 1.0 → 3.95. The reproduction target is the monotone
//! increase with θ and the "< 4 iterations even at θ=1" headline.

use dmm::core::ControllerKind;
use dmm::obs::Json;
use dmm_bench::{convergence_speed, render_table};

fn main() {
    let json = dmm_bench::BenchArgs::parse().json;
    let thetas = [0.0, 0.25, 0.5, 0.75, 1.0];
    let seeds: Vec<u64> = (1..=8).map(|s| 1000 + s).collect();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(seeds.len());
    let mut rows = Vec::new();
    let mut json_lines = String::new();
    for &theta in &thetas {
        let r = convergence_speed(theta, &seeds, 400, ControllerKind::default(), threads);
        if json {
            let line = Json::obj()
                .field("bench", "table2_skew")
                .field("theta", theta)
                .field("mean_iterations", r.mean_iterations)
                .field("ci99_half_width", r.ci99_half_width)
                .field("episodes", r.episodes)
                .field("goal_min_ms", r.goal_range.min_ms)
                .field("goal_max_ms", r.goal_range.max_ms);
            json_lines.push_str(&line.to_string());
            json_lines.push('\n');
        }
        rows.push(vec![
            format!("{theta:.2}"),
            format!("{:.2}", r.mean_iterations),
            format!("±{:.2}", r.ci99_half_width),
            r.episodes.to_string(),
            format!("[{:.1}, {:.1}]", r.goal_range.min_ms, r.goal_range.max_ms),
        ]);
        eprintln!("theta {theta}: done ({} episodes)", r.episodes);
    }
    println!("Table 2 — convergence speed under varying skew");
    println!(
        "{}",
        render_table(
            &[
                "theta",
                "iterations",
                "99% CI",
                "episodes",
                "goal range (ms)"
            ],
            &rows
        )
    );
    println!("paper:  0 → 1.84, 0.25 → 2.41, 0.5 → 3.55, 0.75 → 3.88, 1.0 → 3.95");
    if json {
        let path = dmm_bench::cli::results_path("table2_skew.jsonl");
        std::fs::write(&path, json_lines).expect("write results/table2_skew.jsonl");
        eprintln!("rows: {}", path.display());
    }
}
