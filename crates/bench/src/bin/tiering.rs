//! **Tiering experiment** — hotness-based tier placement vs static splits.
//!
//! With an extended storage ladder (a fast DRAM tier over a slower,
//! bandwidth-capped second memory tier, e.g. CXL-attached), the question is
//! how pages should be placed across the two local rungs. Two policies:
//!
//! * `static`: every page is pinned to a tier by a hash of its id — the
//!   fraction of pages landing in DRAM matches the DRAM share of the
//!   capacity, but hot and cold pages are treated alike;
//! * `hotness`: new pages enter the fastest tier with room, a hit in a slow
//!   tier promotes the page upward, and overflow demotes the coldest page
//!   down the ladder — so the hot set of a skewed (Zipf) workload
//!   concentrates in DRAM.
//!
//! Both run the same Zipf workload on the paper's 3-node cluster at **equal
//! total local capacity** — only the DRAM/second-tier split and the
//! placement policy vary. The experiment sweeps DRAM shares ¼, ½ and ¾ and
//! asserts that the best hotness run beats the best static split on mean
//! goal-class response time. Results land in `BENCH_tiering.json` at the
//! workspace root; `--quick` shrinks the run for CI smoke use.

use dmm::core::ControllerKind;
use dmm::obs::Json;
use dmm::prelude::*;
use dmm_bench::render_table;

/// Total local frames per node, split between DRAM and the second tier.
const TOTAL_FRAMES: usize = 96;

/// One policy × split run: mean goal-class response time over the
/// measured tail plus the closing tier occupancy.
struct Run {
    policy: &'static str,
    dram_frames: usize,
    slow_frames: usize,
    mean_rt_ms: f64,
    occupancy: Vec<(String, u64, u64)>,
}

fn run_split(policy: TierPolicy, dram_frames: usize, quick: bool, seed: u64) -> Run {
    let slow_frames = TOTAL_FRAMES - dram_frames;
    let cfg = SystemConfig::builder()
        .seed(seed)
        .theta(0.8)
        .goal_ms(15.0)
        .db_pages(800)
        .buffer_pages_per_node(dram_frames)
        .controller(ControllerKind::None)
        .tiers(vec![
            TierSpec::new("dram", 0.03),
            TierSpec::new("cxl", 0.25)
                .frames(slow_frames)
                .bandwidth(2_000_000_000),
            TierSpec::new("remote", 0.5),
            TierSpec::new("disk", 12.6),
        ])
        .tier_policy(policy)
        .build()
        .expect("valid tiering config");
    assert_eq!(cfg.cluster.local_frames_per_node(), TOTAL_FRAMES);
    let mut sim = Simulation::new(cfg);
    let (warmup, measure) = if quick { (4, 8) } else { (8, 24) };
    sim.run_intervals(warmup + measure);
    let mean_rt_ms = sim
        .mean_observed_ms(ClassId(1), measure as usize)
        .expect("measured intervals");
    sim.plane().check_invariants();
    Run {
        policy: match policy {
            TierPolicy::Hotness => "hotness",
            TierPolicy::StaticHash => "static",
        },
        dram_frames,
        slow_frames,
        mean_rt_ms,
        occupancy: sim.plane().tier_occupancy(),
    }
}

fn main() {
    let args = dmm_bench::BenchArgs::parse();
    let quick = args.quick;
    let seed = args.seed_or(42);
    let splits = [TOTAL_FRAMES / 4, TOTAL_FRAMES / 2, 3 * TOTAL_FRAMES / 4];

    println!(
        "Tiering — hotness vs static placement (dram + cxl, {TOTAL_FRAMES} frames/node, theta 0.8)\n"
    );
    let mut runs = Vec::new();
    for policy in [TierPolicy::StaticHash, TierPolicy::Hotness] {
        for dram in splits {
            let run = run_split(policy, dram, quick, seed);
            eprintln!(
                "{} dram={} done ({:.2} ms)",
                run.policy, run.dram_frames, run.mean_rt_ms
            );
            runs.push(run);
        }
    }

    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.policy.to_string(),
                r.dram_frames.to_string(),
                r.slow_frames.to_string(),
                format!("{:.2}", r.mean_rt_ms),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["policy", "dram", "cxl", "goal RT (ms)"], &rows)
    );

    let best = |name: &str| -> f64 {
        runs.iter()
            .filter(|r| r.policy == name)
            .map(|r| r.mean_rt_ms)
            .fold(f64::INFINITY, f64::min)
    };
    let (best_static, best_hotness) = (best("static"), best("hotness"));
    println!(
        "\nbest static {best_static:.2} ms, best hotness {best_hotness:.2} ms \
         ({:+.1} % vs static)",
        100.0 * (best_hotness - best_static) / best_static
    );

    let doc = Json::obj()
        .field("bench", "tiering")
        .field("quick", quick)
        .field("seed", seed)
        .field("total_frames_per_node", TOTAL_FRAMES as u64)
        .field(
            "runs",
            Json::Arr(
                runs.iter()
                    .map(|r| {
                        let mut occ = Json::obj();
                        for (name, resident, frames) in &r.occupancy {
                            occ = occ.field(
                                name,
                                Json::obj()
                                    .field("resident", *resident)
                                    .field("frames", *frames),
                            );
                        }
                        Json::obj()
                            .field("policy", r.policy)
                            .field("dram_frames", r.dram_frames as u64)
                            .field("cxl_frames", r.slow_frames as u64)
                            .field("mean_rt_ms", r.mean_rt_ms)
                            .field("tier_occupancy", occ)
                    })
                    .collect(),
            ),
        )
        .field("best_static_ms", best_static)
        .field("best_hotness_ms", best_hotness);
    dmm_bench::cli::write_bench_doc("BENCH_tiering.json", &doc);

    // The headline: at equal total capacity, concentrating the Zipf hot set
    // in DRAM must beat the best hash-pinned split.
    assert!(
        best_hotness <= best_static,
        "hotness placement ({best_hotness:.3} ms) must beat the best static \
         split ({best_static:.3} ms) at equal capacity"
    );
}
