//! **Table 1** (paper §5): CPU execution time of the coordinator's three
//! numeric tasks as the number of nodes grows — linear-independence
//! maintenance (incremental Gauss), hyperplane approximation (N+1 point
//! solve), and the LP optimization (simplex).
//!
//! The paper measured milliseconds on a SUN Sparc 4; 2026 hardware is about
//! three orders of magnitude faster, so we report microseconds. The
//! reproduction target is the *shape*: every task grows with N, the
//! approximation dominates at large N, and the simplex stays roughly linear
//! ("has been proven to be linear in the number of variables and constraints
//! in the mean").

use std::time::Instant;

use dmm::core::{
    fit_planes, solve_partitioning, MeasurePoint, MeasureStore, Objective, PartitionProblem,
};
use dmm::linalg::IndependenceTracker;
use dmm::sim::{SimRng, SimTime};
use dmm_bench::render_table;

fn synthetic_points(n: usize, rng: &mut SimRng) -> Vec<MeasurePoint> {
    // n+1 points: a base plus one perturbed coordinate each, with a linear
    // response surface plus noise — the shape the coordinator actually sees.
    let mut pts = Vec::with_capacity(n + 1);
    let base: Vec<f64> = (0..n).map(|_| rng.uniform(0.2, 0.8)).collect();
    let w: Vec<f64> = (0..n).map(|_| -rng.uniform(1.0, 5.0)).collect();
    let rt = |x: &[f64], rng: &mut SimRng| {
        20.0 + x.iter().zip(&w).map(|(a, b)| a * b).sum::<f64>() + rng.uniform(-0.2, 0.2)
    };
    let y = rt(&base, rng);
    pts.push(MeasurePoint {
        alloc_mb: base.clone(),
        rt_class_ms: y,
        rt_nogoal_ms: 30.0 - y,
        at: SimTime::ZERO,
    });
    for i in 0..n {
        let mut x = base.clone();
        x[i] += 1.0;
        let y = rt(&x, rng);
        pts.push(MeasurePoint {
            alloc_mb: x,
            rt_class_ms: y,
            rt_nogoal_ms: 30.0 - y,
            at: SimTime::ZERO,
        });
    }
    pts
}

/// Times `f` over enough repetitions for a stable mean; returns µs per call.
fn time_us<F: FnMut()>(mut f: F) -> f64 {
    // Warm up, then measure.
    for _ in 0..3 {
        f();
    }
    let reps = 200;
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / reps as f64
}

fn main() {
    let mut rows = Vec::new();
    for &n in &[5usize, 10, 20, 30, 40, 50] {
        let mut rng = SimRng::seed_from_u64(n as u64);
        let pts = synthetic_points(n, &mut rng);

        // (1) Linear-independence maintenance: test one new difference
        // vector against a full echelon basis (the paper's incremental
        // Gauss step, O(N²)).
        let diffs: Vec<Vec<f64>> = pts[1..]
            .iter()
            .map(|p| {
                p.alloc_mb
                    .iter()
                    .zip(&pts[0].alloc_mb)
                    .map(|(a, b)| a - b)
                    .collect()
            })
            .collect();
        let mut full = IndependenceTracker::new(n, 1e-9);
        for d in &diffs[..n - 1] {
            assert!(full.try_insert(d));
        }
        let probe = &diffs[n - 1];
        let t_indep = time_us(|| {
            std::hint::black_box(full.is_independent(std::hint::black_box(probe)));
        });

        // Also: maintaining the recency-ordered store (our implementation's
        // full reselection path) — reported for transparency.
        let mut store = MeasureStore::new(n);
        for p in &pts {
            store.record(p.alloc_mb.clone(), p.rt_class_ms, p.rt_nogoal_ms, p.at);
        }
        let extra = synthetic_points(n, &mut rng);
        let mut cursor = 0;
        let t_store = time_us(|| {
            let p = &extra[cursor % extra.len()];
            cursor += 1;
            store.record(p.alloc_mb.clone(), p.rt_class_ms, p.rt_nogoal_ms, p.at);
        });

        // (2) Hyperplane approximation: the (N+1)×(N+1) solve.
        let refs: Vec<&MeasurePoint> = pts.iter().collect();
        let t_fit = time_us(|| {
            std::hint::black_box(fit_planes(std::hint::black_box(&refs)).expect("fits"));
        });

        // (3) Optimization: the §4 LP at N variables.
        let planes = fit_planes(&refs).expect("fits");
        let avail = vec![2.0; n];
        let current = vec![0.5; n];
        // The paper's plain §4 LP (no stickiness extension).
        let t_lp = time_us(|| {
            let problem = PartitionProblem {
                planes: &planes,
                goal_ms: 10.0,
                avail_mb: &avail,
                current_mb: &current,
                reallocation_penalty: 0.0,
                objective: Objective::MinNoGoalRt,
            };
            std::hint::black_box(
                solve_partitioning(std::hint::black_box(&problem)).expect("solves"),
            );
        });
        // Our production variant with the reallocation-stickiness rows.
        let t_lp_sticky = time_us(|| {
            let problem = PartitionProblem {
                planes: &planes,
                goal_ms: 10.0,
                avail_mb: &avail,
                current_mb: &current,
                reallocation_penalty: 0.02,
                objective: Objective::MinNoGoalRt,
            };
            std::hint::black_box(
                solve_partitioning(std::hint::black_box(&problem)).expect("solves"),
            );
        });

        rows.push(vec![
            n.to_string(),
            format!("{t_indep:.1}"),
            format!("{t_store:.1}"),
            format!("{t_fit:.1}"),
            format!("{t_lp:.1}"),
            format!("{t_lp_sticky:.1}"),
            format!("{:.1}", t_indep + t_fit + t_lp),
        ]);
        eprintln!("N = {n}: done");
    }
    println!("Table 1 — coordinator CPU time per task (microseconds, this machine)");
    println!(
        "{}",
        render_table(
            &[
                "nodes",
                "lin.indep (µs)",
                "store upkeep (µs)",
                "approximation (µs)",
                "optimization (µs)",
                "opt+stickiness (µs)",
                "overall (µs)"
            ],
            &rows
        )
    );
    println!("paper (ms, SUN Sparc 4):");
    println!("  nodes         5     10     20     30     40     50");
    println!("  lin.indep   0.1    0.2    0.7    2.4    2.8    4.2");
    println!("  approx     0.24    0.6    2.7    5.5   11.1   14.8");
    println!("  optimize    0.9    1.6    2.3    2.7    3.3    5.4");
    println!("  overall    1.24    2.4    5.7   10.6   17.2   24.4");
}
