//! Hot-path benchmark: eager per-interval repricing sweeps versus lazy
//! epoch-based benefit maintenance.
//!
//! Two layers of evidence, written to `BENCH_hotpath.json` at the workspace
//! root:
//!
//! 1. **Micro**: the per-operation costs behind the two maintenance schemes
//!    on a 4 096-page cost-based pool — a heap re-key (the unit of repricing
//!    work), the O(1) stale mark and stale-min probe that replace it on the
//!    lazy access path, and one full eager sweep versus one lazy
//!    order-preserving decay (the two per-interval maintenance passes).
//! 2. **End-to-end**: wall-clock of the fig2_base and §7.5 overhead
//!    experiments in both repricing modes, plus a large-pool configuration
//!    (16× the paper's buffer, same arrival rate) where the eager sweep's
//!    O(total pages) per-interval cost dominates the run. The `RepriceStats`
//!    counters show *why* lazy wins there: it recomputes a small fraction of
//!    the benefits the eager sweep visits. At the paper's own scale the
//!    sweep is only a few percent of the wall-clock, so the two modes tie —
//!    the honest result, also recorded.
//!
//! `--quick` shrinks the end-to-end runs for CI smoke use; the acceptance
//! numbers quoted in the README come from the full run.

use std::time::Instant;

use dmm::buffer::{ClassId, CostBasedPolicy, PageId, Policy};
use dmm::cluster::{RepriceStats, RepricingMode};
use dmm::core::{calibrate_goal_range, Simulation, SystemConfig};
use dmm::obs::Json;
use dmm::sim::SimTime;
use dmm_bench::micro::{bench_micro, MicroResult};

const POOL_PAGES: usize = 4096;

fn priced_policy(epoch: u64) -> CostBasedPolicy {
    let mut p = CostBasedPolicy::new();
    for i in 0..POOL_PAGES {
        let page = PageId(i as u32);
        p.on_insert(page, SimTime::ZERO);
        // A spread of benefits so heap re-keys do real sifting.
        p.set_benefit(page, ((i * 2654435761) % 1000) as f64 + 0.5, epoch);
    }
    p
}

fn micro_benches() -> Vec<MicroResult> {
    let mut results = Vec::new();

    // The unit of repricing work: one benefit update = one heap re-key.
    let mut p = priced_policy(0);
    let mut i = 0u64;
    results.push(bench_micro("policy/set_benefit (heap re-key)", || {
        i = (i * 6364136223846793005).wrapping_add(1442695040888963407);
        let page = PageId((i % POOL_PAGES as u64) as u32);
        p.set_benefit(page, (i % 1000) as f64 + 0.25, 0);
    }));

    // What the lazy access path does instead: an O(1) stale mark.
    let mut p = priced_policy(0);
    let mut i = 0u64;
    results.push(bench_micro("policy/invalidate (lazy stale mark)", || {
        i += 1;
        p.invalidate(PageId((i % POOL_PAGES as u64) as u32));
    }));

    // The lazy victim probe on a fresh heap (the common case: no retry).
    let p = priced_policy(7);
    results.push(bench_micro(
        "policy/min_with_freshness (victim probe)",
        || {
            std::hint::black_box(p.min_with_freshness(7));
        },
    ));

    // Per-interval maintenance, eager: re-key every page of the pool.
    let mut p = priced_policy(0);
    let mut round = 0u64;
    results.push(bench_micro("interval/eager sweep (4096 re-keys)", || {
        round += 1;
        for i in 0..POOL_PAGES {
            let page = PageId(i as u32);
            p.set_benefit(page, ((i as u64 * 31 + round) % 1000) as f64 + 0.5, round);
        }
    }));

    // Per-interval maintenance, lazy: the order-preserving decay — O(1),
    // it only moves the policy's implicit scale factor.
    let mut p = priced_policy(0);
    results.push(bench_micro("interval/lazy decay (scale_benefits)", || {
        p.scale_benefits(0.999);
    }));

    results
}

struct E2eRun {
    name: &'static str,
    intervals: u32,
    reps: u32,
    eager_secs: f64,
    lazy_secs: f64,
    eager_stats: RepriceStats,
    lazy_stats: RepriceStats,
}

impl E2eRun {
    fn improvement_pct(&self) -> f64 {
        100.0 * (self.eager_secs - self.lazy_secs) / self.eager_secs
    }

    fn to_json(&self) -> Json {
        let stats = |s: &RepriceStats| {
            Json::obj()
                .field("recomputes", s.recomputes)
                .field("lazy_recomputes", s.lazy_recomputes)
                .field("heap_retries", s.heap_retries)
                .field("stale_marks", s.stale_marks)
                .field("heat_cache_hits", s.heat_cache_hits)
                .field("heat_cache_misses", s.heat_cache_misses)
                .field("sweeps", s.sweeps)
                .field("sweep_pages", s.sweep_pages)
        };
        Json::obj()
            .field("config", self.name)
            .field("intervals", self.intervals as u64)
            .field("reps", self.reps as u64)
            .field("eager_secs", self.eager_secs)
            .field("lazy_secs", self.lazy_secs)
            .field("improvement_pct", self.improvement_pct())
            .field("eager", stats(&self.eager_stats))
            .field("lazy", stats(&self.lazy_stats))
    }
}

/// Runs `cfg` per mode per rep with the modes interleaved (A/B/A/B, so a
/// load spike on the host hits both modes alike), keeping the best
/// wall-clock per mode (standard minimum-of-N to suppress scheduling noise)
/// and the counter stats of one run (they are deterministic per mode, so
/// any rep will do).
fn e2e(name: &'static str, cfg: &SystemConfig, intervals: u32, reps: u32) -> E2eRun {
    let timed = |mode: RepricingMode| -> (f64, RepriceStats) {
        let mut cfg = cfg.clone();
        cfg.cluster.repricing = mode;
        let mut sim = Simulation::new(cfg);
        let start = Instant::now();
        sim.run_intervals(intervals);
        (start.elapsed().as_secs_f64(), *sim.plane().reprice_stats())
    };
    let mut eager_secs = f64::INFINITY;
    let mut lazy_secs = f64::INFINITY;
    let mut eager_stats = RepriceStats::default();
    let mut lazy_stats = RepriceStats::default();
    for _ in 0..reps {
        let (secs, stats) = timed(RepricingMode::Eager);
        eager_secs = eager_secs.min(secs);
        eager_stats = stats;
        let (secs, stats) = timed(RepricingMode::Lazy);
        lazy_secs = lazy_secs.min(secs);
        lazy_stats = stats;
    }
    let run = E2eRun {
        name,
        intervals,
        reps,
        eager_secs,
        lazy_secs,
        eager_stats,
        lazy_stats,
    };
    println!(
        "{:<10} eager {:.3} s  lazy {:.3} s  improvement {:+.1} %  \
         (recomputes {} -> {}, sweep pages {} -> retries {})",
        run.name,
        run.eager_secs,
        run.lazy_secs,
        run.improvement_pct(),
        run.eager_stats.recomputes,
        run.lazy_stats.recomputes,
        run.eager_stats.sweep_pages,
        run.lazy_stats.heap_retries,
    );
    run
}

fn main() {
    let quick = dmm_bench::BenchArgs::parse().quick;
    let class = ClassId(1);

    println!("== micro: cost-based policy operations ({POOL_PAGES}-page pool) ==");
    let micro = micro_benches();

    println!("\n== end-to-end: eager vs lazy repricing ==");
    let (intervals, reps) = if quick { (24, 2) } else { (84, 7) };

    // Figure 2 base experiment (goal schedule active).
    let base = SystemConfig::builder()
        .seed(42)
        .goal_ms(15.0)
        .build()
        .expect("valid base config");
    let range = calibrate_goal_range(&base, class, 6, 6);
    let fig2 = SystemConfig::builder()
        .seed(42)
        .goal_ms(range.max_ms * 0.8)
        .goal_range(range)
        .build()
        .expect("valid fig2 config");
    let fig2_run = e2e("fig2_base", &fig2, intervals, reps);

    // §7.5 overhead experiment (different seed, goal pinned at range max).
    let base = SystemConfig::builder()
        .seed(13)
        .goal_ms(15.0)
        .build()
        .expect("valid base config");
    let range = calibrate_goal_range(&base, class, 6, 6);
    let overhead = SystemConfig::builder()
        .seed(13)
        .goal_ms(range.max_ms)
        .goal_range(range)
        .build()
        .expect("valid overhead config");
    let overhead_intervals = if quick { 24 } else { 120 };
    let overhead_run = e2e("overhead", &overhead, overhead_intervals, reps);

    // Large-pool configuration: 16× the paper's buffer per node against a
    // 16× database at the same arrival rate. Pools are large relative to
    // the eviction traffic, so the eager sweep's O(total pages) interval
    // cost dominates the run — the regime the lazy scheme is built for.
    let large = SystemConfig::builder()
        .seed(42)
        .goal_ms(15.0)
        .db_pages(24_000)
        .buffer_pages_per_node(8192)
        .goal_range(dmm::workload::GoalRange::new(5.0, 30.0))
        .build()
        .expect("valid large-pool config");
    let large_run = e2e("large_pool", &large, intervals, reps);

    let doc = Json::obj()
        .field("bench", "hotpath")
        .field("quick", quick)
        .field("pool_pages", POOL_PAGES as u64)
        .field(
            "micro",
            Json::Arr(
                micro
                    .iter()
                    .map(|r| {
                        Json::obj()
                            .field("name", r.name.as_str())
                            .field("ns_per_iter", r.ns_per_iter)
                    })
                    .collect(),
            ),
        )
        .field(
            "e2e",
            Json::Arr(vec![
                fig2_run.to_json(),
                overhead_run.to_json(),
                large_run.to_json(),
            ]),
        );
    dmm_bench::cli::write_bench_doc("BENCH_hotpath.json", &doc);

    for run in [&fig2_run, &overhead_run, &large_run] {
        assert_eq!(run.lazy_stats.sweeps, 0, "lazy must never sweep");
    }
}
