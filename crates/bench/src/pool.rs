//! A persistent work-stealing replication pool for embarrassingly parallel
//! benchmark jobs whose *fold* must stay deterministic.
//!
//! The previous harness ran replication in batches of `threads` scoped
//! threads with a join barrier after every batch: the whole batch waited on
//! its slowest seed before the next batch could start, wasting
//! `(threads − 1) · (max − mean)` of wall-clock per batch. Here workers pull
//! the next job index from a shared atomic counter the moment they go idle
//! (work stealing from a single global queue), stream `(index, result)`
//! pairs back over a channel, and the caller folds results in **strict
//! submission order** — so the folded outcome, including any early cut, is
//! bit-identical no matter how many workers ran or how the OS scheduled
//! them. Workers merely speculate ahead; results past the cut are discarded
//! identically in every configuration.

use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;

/// Runs `run` over every job on `threads` workers, folding results in
/// submission order. `fold` receives `(index, result)` strictly by
/// ascending index and may return [`ControlFlow::Break`] to cut the
/// replication early (workers stop claiming new jobs; in-flight speculative
/// results are discarded).
///
/// Determinism contract: for a fixed `jobs` and a pure `run`, the sequence
/// of `fold` calls — and therefore anything accumulated inside the fold,
/// floating-point order included — is identical for every `threads ≥ 1`.
///
/// `threads == 1` runs everything inline on the caller's thread with no
/// pool, no channel, and no speculation; this is also the reference
/// behaviour the threaded path must reproduce.
pub fn replicate_in_order<J, T>(
    jobs: &[J],
    threads: usize,
    run: impl Fn(&J) -> T + Sync,
    mut fold: impl FnMut(usize, T) -> ControlFlow<()>,
) where
    J: Sync,
    T: Send,
{
    assert!(threads >= 1, "need at least one replication worker");
    if threads == 1 || jobs.len() <= 1 {
        for (idx, job) in jobs.iter().enumerate() {
            if fold(idx, run(job)).is_break() {
                return;
            }
        }
        return;
    }

    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<(usize, T)>();

    std::thread::scope(|scope| {
        for _ in 0..threads.min(jobs.len()) {
            let tx = tx.clone();
            let (next, stop, run) = (&next, &stop, &run);
            scope.spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(idx) else { break };
                    // A send only fails when the folder dropped the
                    // receiver after cutting; the surplus result is
                    // discarded either way.
                    if tx.send((idx, run(job))).is_err() {
                        break;
                    }
                }
            });
        }
        // The workers hold their own clones.
        drop(tx);

        // Fold strictly by index: buffer results that arrive out of order
        // until their predecessors have been folded.
        let mut pending: Vec<Option<T>> = Vec::new();
        let mut next_fold = 0usize;
        'folding: while next_fold < jobs.len() {
            let Ok((idx, result)) = rx.recv() else {
                // All workers exited (only possible after `stop`, a cut,
                // or job exhaustion — every pre-cut result was received).
                break;
            };
            if idx >= pending.len() {
                pending.resize_with(idx + 1, || None);
            }
            pending[idx] = Some(result);
            while next_fold < pending.len() {
                let Some(result) = pending[next_fold].take() else {
                    break;
                };
                next_fold += 1;
                if fold(next_fold - 1, result).is_break() {
                    stop.store(true, Ordering::Release);
                    break 'folding;
                }
            }
        }
        // Unblock workers parked in `send` and let the scope join them;
        // their remaining speculative results are dropped.
        drop(rx);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fold_all(jobs: &[u64], threads: usize) -> Vec<(usize, u64)> {
        let mut seen = Vec::new();
        replicate_in_order(
            jobs,
            threads,
            |&j| {
                // Uneven, order-scrambling work so fast jobs finish first.
                std::thread::sleep(std::time::Duration::from_micros(j % 7 * 200));
                j * 10
            },
            |idx, r| {
                seen.push((idx, r));
                ControlFlow::Continue(())
            },
        );
        seen
    }

    #[test]
    fn folds_in_submission_order_regardless_of_threads() {
        let jobs: Vec<u64> = (0..20).rev().collect();
        let reference = fold_all(&jobs, 1);
        assert_eq!(reference.len(), 20);
        for threads in [2, 4, 8] {
            assert_eq!(fold_all(&jobs, threads), reference, "threads={threads}");
        }
    }

    #[test]
    fn early_cut_is_thread_count_invariant() {
        let jobs: Vec<u64> = (1..=30).collect();
        let cut_sum = |threads: usize| {
            let mut sum = 0u64;
            replicate_in_order(
                &jobs,
                threads,
                |&j| {
                    std::thread::sleep(std::time::Duration::from_micros(j % 5 * 150));
                    j
                },
                |_, r| {
                    sum += r;
                    if sum >= 40 {
                        ControlFlow::Break(())
                    } else {
                        ControlFlow::Continue(())
                    }
                },
            );
            sum
        };
        let reference = cut_sum(1);
        assert_eq!(reference, 45, "1+2+...+9 crosses 40 at index 8");
        for threads in [2, 4, 8] {
            assert_eq!(cut_sum(threads), reference, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_job_lists() {
        let mut calls = 0;
        replicate_in_order(
            &[],
            4,
            |_: &u64| 0u64,
            |_, _| {
                calls += 1;
                ControlFlow::Continue(())
            },
        );
        assert_eq!(calls, 0);
        replicate_in_order(
            &[5u64],
            4,
            |&j| j,
            |idx, r| {
                calls += 1;
                assert_eq!((idx, r), (0, 5));
                ControlFlow::Continue(())
            },
        );
        assert_eq!(calls, 1);
    }

    #[test]
    #[should_panic(expected = "at least one replication worker")]
    fn zero_threads_panics() {
        replicate_in_order(&[1u64], 0, |&j| j, |_, _| ControlFlow::Continue(()));
    }
}
