//! Shared command-line conventions of the experiment harnesses.
//!
//! Every `dmm-bench` binary understands the same small flag set, parsed
//! here once instead of ad hoc per binary:
//!
//! * `--quick` — shrink the experiment for CI smoke runs (fewer intervals,
//!   fewer replications); the binary decides what "quick" means.
//! * `--json` — additionally write machine-readable results (JSON lines to
//!   `results/`, or the binary's `BENCH_*.json` evidence document).
//! * `--csv` — additionally print a CSV block for plotting.
//! * `--only <section>` — run only the named section(s); repeatable.
//! * `--seed <u64>` — override the binary's default base seed.
//!
//! Evidence documents land at the **workspace root** (`BENCH_*.json`) and
//! data files under `results/`, via [`bench_doc_path`] / [`results_path`]:
//! `cargo run`/`cargo bench` may execute with the package directory as cwd,
//! so both anchor at the workspace root through the manifest dir.

use std::path::{Path, PathBuf};

/// The flags shared by every experiment harness binary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BenchArgs {
    /// Shrink the run for CI smoke tests (`--quick`).
    pub quick: bool,
    /// Also write machine-readable results (`--json`).
    pub json: bool,
    /// Also print a CSV block (`--csv`).
    pub csv: bool,
    /// Sections to run; empty means all (`--only a --only b`).
    pub only: Vec<String>,
    /// Base-seed override (`--seed 7`).
    pub seed: Option<u64>,
}

impl BenchArgs {
    /// Parses the process arguments. Unknown flags are ignored so binaries
    /// can keep bespoke extras (e.g. `debug_trace`'s `--jsonl`).
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (tests, embedding).
    pub fn parse_from<I>(args: I) -> Self
    where
        I: IntoIterator<Item = String>,
    {
        let mut out = Self::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => out.quick = true,
                "--json" => out.json = true,
                "--csv" => out.csv = true,
                "--only" => {
                    out.only
                        .push(args.next().expect("--only needs a section name"));
                }
                "--seed" => {
                    out.seed = Some(
                        args.next()
                            .and_then(|v| v.parse().ok())
                            .expect("--seed needs an unsigned integer"),
                    );
                }
                _ => {}
            }
        }
        out
    }

    /// Whether `section` should run under the `--only` selection (every
    /// section runs when no `--only` was given).
    pub fn wants(&self, section: &str) -> bool {
        self.only.is_empty() || self.only.iter().any(|s| s == section)
    }

    /// The base seed: the `--seed` override or the binary's default.
    pub fn seed_or(&self, default: u64) -> u64 {
        self.seed.unwrap_or(default)
    }
}

/// Workspace-root path of an evidence document (`BENCH_*.json`).
pub fn bench_doc_path(file: &str) -> PathBuf {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")).join(file)
}

/// Workspace-root `results/<file>` path, creating `results/` on demand.
pub fn results_path(file: &str) -> PathBuf {
    let path = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
        .join("results")
        .join(file);
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    path
}

/// Writes an evidence document (one JSON object + trailing newline) to the
/// workspace root and reports where.
pub fn write_bench_doc(file: &str, doc: &dmm::obs::Json) {
    let path = bench_doc_path(file);
    std::fs::write(&path, doc.to_string() + "\n").unwrap_or_else(|e| panic!("write {file}: {e}"));
    println!("\nwrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_the_shared_flag_set() {
        let args = BenchArgs::parse_from(strings(&[
            "--quick", "--json", "--only", "micro", "--only", "e2e", "--seed", "7",
        ]));
        assert!(args.quick && args.json && !args.csv);
        assert_eq!(args.only, ["micro", "e2e"]);
        assert_eq!(args.seed_or(42), 7);
        assert!(args.wants("micro") && args.wants("e2e") && !args.wants("other"));
    }

    #[test]
    fn defaults_run_everything() {
        let args = BenchArgs::parse_from(strings(&["--unknown-flag"]));
        assert_eq!(args, BenchArgs::default());
        assert!(args.wants("anything"));
        assert_eq!(args.seed_or(42), 42);
    }

    #[test]
    fn evidence_paths_anchor_at_the_workspace_root() {
        assert!(bench_doc_path("BENCH_x.json").ends_with("BENCH_x.json"));
        assert!(results_path("x.jsonl").ends_with("results/x.jsonl"));
    }
}
