//! A minimal microbenchmark harness (no external deps): warm up, grow the
//! batch size until a sample takes long enough to time reliably, then
//! report the best-of-N nanoseconds per iteration.
//!
//! Used by the `harness = false` benches under `benches/`; run them with
//! `cargo bench -p dmm-bench`.

use std::time::Instant;

/// Result of one microbenchmark: best observed per-iteration time.
#[derive(Debug, Clone)]
pub struct MicroResult {
    pub name: String,
    pub ns_per_iter: f64,
    pub iters_per_sample: u64,
    pub samples: usize,
}

impl MicroResult {
    pub fn json_line(&self) -> String {
        use dmm::obs::Json;
        let mut out = String::new();
        Json::obj()
            .field("bench", self.name.as_str())
            .field("ns_per_iter", self.ns_per_iter)
            .field("iters_per_sample", self.iters_per_sample)
            .field("samples", self.samples as u64)
            .write(&mut out);
        out
    }
}

/// Times `f`, auto-calibrating the batch size so each sample runs for at
/// least ~5 ms, and reports the fastest of `samples` batches (the standard
/// way to suppress scheduling noise without statistics machinery).
pub fn bench_micro<F: FnMut()>(name: &str, mut f: F) -> MicroResult {
    // Warm-up: also provides a first duration estimate for calibration.
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed.as_millis() >= 5 || iters >= 1 << 30 {
            break;
        }
        // Grow geometrically toward the 5 ms floor.
        iters = (iters * 4).max(4);
    }
    let samples = 7usize;
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let ns = start.elapsed().as_nanos() as f64 / iters as f64;
        if ns < best {
            best = ns;
        }
    }
    let r = MicroResult {
        name: name.to_string(),
        ns_per_iter: best,
        iters_per_sample: iters,
        samples,
    };
    println!("{:<40} {:>12.1} ns/iter", r.name, r.ns_per_iter);
    r
}

/// Writes one JSON line per result into the workspace-root `results/<file>`
/// when `--json` was passed on the command line (cargo forwards args after
/// `--`; see [`crate::cli`] for the shared flag set).
pub fn maybe_write_json(results: &[MicroResult], file: &str) {
    if !crate::cli::BenchArgs::parse().json {
        return;
    }
    let path = crate::cli::results_path(file);
    let body: String = results.iter().map(|r| r.json_line() + "\n").collect();
    std::fs::write(&path, body).expect("write bench json");
    eprintln!("wrote {}", path.display());
}
