//! Criterion version of **Table 1**: the coordinator's three numeric tasks
//! (linear-independence maintenance, hyperplane approximation, LP
//! optimization) at N ∈ {5, 10, 20, 30, 40, 50} nodes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dmm::core::{
    fit_planes, solve_partitioning, MeasurePoint, Objective, PartitionProblem,
};
use dmm::linalg::IndependenceTracker;
use dmm::sim::{SimRng, SimTime};

fn synthetic_points(n: usize, rng: &mut SimRng) -> Vec<MeasurePoint> {
    let base: Vec<f64> = (0..n).map(|_| rng.uniform(0.2, 0.8)).collect();
    let w: Vec<f64> = (0..n).map(|_| -rng.uniform(1.0, 5.0)).collect();
    let rt = |x: &[f64], rng: &mut SimRng| {
        20.0 + x.iter().zip(&w).map(|(a, b)| a * b).sum::<f64>() + rng.uniform(-0.2, 0.2)
    };
    let mut pts = Vec::with_capacity(n + 1);
    let y = rt(&base, rng);
    pts.push(MeasurePoint {
        alloc_mb: base.clone(),
        rt_class_ms: y,
        rt_nogoal_ms: 30.0 - y,
        at: SimTime::ZERO,
    });
    for i in 0..n {
        let mut x = base.clone();
        x[i] += 1.0;
        let y = rt(&x, rng);
        pts.push(MeasurePoint {
            alloc_mb: x,
            rt_class_ms: y,
            rt_nogoal_ms: 30.0 - y,
            at: SimTime::ZERO,
        });
    }
    pts
}

fn bench_coordinator_tasks(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    for &n in &[5usize, 10, 20, 30, 40, 50] {
        let mut rng = SimRng::seed_from_u64(n as u64);
        let pts = synthetic_points(n, &mut rng);
        let diffs: Vec<Vec<f64>> = pts[1..]
            .iter()
            .map(|p| {
                p.alloc_mb
                    .iter()
                    .zip(&pts[0].alloc_mb)
                    .map(|(a, b)| a - b)
                    .collect()
            })
            .collect();
        let mut tracker = IndependenceTracker::new(n, 1e-9);
        for d in &diffs[..n - 1] {
            assert!(tracker.try_insert(d));
        }
        let probe = diffs[n - 1].clone();
        group.bench_with_input(BenchmarkId::new("lin_independence", n), &n, |b, _| {
            b.iter(|| tracker.is_independent(black_box(&probe)))
        });

        let refs: Vec<&MeasurePoint> = pts.iter().collect();
        group.bench_with_input(BenchmarkId::new("approximation", n), &n, |b, _| {
            b.iter(|| fit_planes(black_box(&refs)).expect("fits"))
        });

        let planes = fit_planes(&refs).expect("fits");
        let avail = vec![2.0; n];
        let current = vec![0.5; n];
        group.bench_with_input(BenchmarkId::new("optimization", n), &n, |b, _| {
            b.iter(|| {
                let problem = PartitionProblem {
                    planes: &planes,
                    goal_ms: 10.0,
                    avail_mb: &avail,
                    current_mb: &current,
                    reallocation_penalty: 0.02,
                    objective: Objective::MinNoGoalRt,
                };
                solve_partitioning(black_box(&problem)).expect("solves")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_coordinator_tasks);
criterion_main!(benches);
