//! Microbenchmark version of **Table 1**: the coordinator's three numeric
//! tasks (linear-independence maintenance, hyperplane approximation, LP
//! optimization) at N ∈ {5, 10, 20, 30, 40, 50} nodes. Pass `--json` to
//! also write `results/table1_micro.jsonl`.

use std::hint::black_box;

use dmm::core::{fit_planes, solve_partitioning, MeasurePoint, Objective, PartitionProblem};
use dmm::linalg::IndependenceTracker;
use dmm::sim::{SimRng, SimTime};
use dmm_bench::micro::{bench_micro, maybe_write_json};

fn synthetic_points(n: usize, rng: &mut SimRng) -> Vec<MeasurePoint> {
    let base: Vec<f64> = (0..n).map(|_| rng.uniform(0.2, 0.8)).collect();
    let w: Vec<f64> = (0..n).map(|_| -rng.uniform(1.0, 5.0)).collect();
    let rt = |x: &[f64], rng: &mut SimRng| {
        20.0 + x.iter().zip(&w).map(|(a, b)| a * b).sum::<f64>() + rng.uniform(-0.2, 0.2)
    };
    let mut pts = Vec::with_capacity(n + 1);
    let y = rt(&base, rng);
    pts.push(MeasurePoint {
        alloc_mb: base.clone(),
        rt_class_ms: y,
        rt_nogoal_ms: 30.0 - y,
        at: SimTime::ZERO,
    });
    for i in 0..n {
        let mut x = base.clone();
        x[i] += 1.0;
        let y = rt(&x, rng);
        pts.push(MeasurePoint {
            alloc_mb: x,
            rt_class_ms: y,
            rt_nogoal_ms: 30.0 - y,
            at: SimTime::ZERO,
        });
    }
    pts
}

fn main() {
    let mut results = Vec::new();
    for &n in &[5usize, 10, 20, 30, 40, 50] {
        let mut rng = SimRng::seed_from_u64(n as u64);
        let pts = synthetic_points(n, &mut rng);
        let diffs: Vec<Vec<f64>> = pts[1..]
            .iter()
            .map(|p| {
                p.alloc_mb
                    .iter()
                    .zip(&pts[0].alloc_mb)
                    .map(|(a, b)| a - b)
                    .collect()
            })
            .collect();
        let mut tracker = IndependenceTracker::new(n, 1e-9);
        for d in &diffs[..n - 1] {
            assert!(tracker.try_insert(d));
        }
        let probe = diffs[n - 1].clone();
        results.push(bench_micro(&format!("table1/lin_independence/{n}"), || {
            black_box(tracker.is_independent(black_box(&probe)));
        }));

        let refs: Vec<&MeasurePoint> = pts.iter().collect();
        results.push(bench_micro(&format!("table1/approximation/{n}"), || {
            black_box(fit_planes(black_box(&refs)).expect("fits"));
        }));

        let planes = fit_planes(&refs).expect("fits");
        let avail = vec![2.0; n];
        let current = vec![0.5; n];
        results.push(bench_micro(&format!("table1/optimization/{n}"), || {
            let problem = PartitionProblem {
                planes: &planes,
                goal_ms: 10.0,
                avail_mb: &avail,
                current_mb: &current,
                reallocation_penalty: 0.02,
                objective: Objective::MinNoGoalRt,
            };
            black_box(solve_partitioning(black_box(&problem)).expect("solves"));
        }));
    }
    maybe_write_json(&results, "table1_micro.jsonl");
}
