//! Microbenchmarks of the hot substrate paths: buffer pool operations,
//! Zipf sampling, the simplex solver, and one full simulated observation
//! interval of the base experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dmm::buffer::{PageId, PolicySpec, Pool};
use dmm::core::{Simulation, SystemConfig};
use dmm::lp::{Problem, Relation};
use dmm::sim::dist::Zipf;
use dmm::sim::{SimRng, SimTime};

fn bench_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffer");
    for (name, spec) in [
        ("lru", PolicySpec::Lru),
        ("lru2", PolicySpec::LruK(2)),
        ("cost", PolicySpec::CostBased),
    ] {
        group.bench_function(format!("pool_access_{name}"), |b| {
            let mut pool = Pool::new(512, spec);
            let zipf = Zipf::new(2000, 0.8);
            let mut rng = SimRng::seed_from_u64(1);
            let mut t = 0u64;
            b.iter(|| {
                t += 1;
                let page = PageId(zipf.sample(&mut rng) as u32);
                let now = SimTime::from_nanos(t);
                if pool.contains(page) {
                    pool.on_hit(page, now);
                } else {
                    pool.on_miss();
                    pool.insert(page, now);
                }
            })
        });
    }
    group.finish();
}

fn bench_zipf(c: &mut Criterion) {
    let zipf = Zipf::new(2000, 1.0);
    let mut rng = SimRng::seed_from_u64(2);
    c.bench_function("zipf_sample_2000", |b| b.iter(|| zipf.sample(&mut rng)));
}

fn bench_simplex(c: &mut Criterion) {
    c.bench_function("simplex_10x10", |b| {
        b.iter(|| {
            let mut p = Problem::minimize(10);
            for j in 0..10 {
                p.set_objective(j, ((j * 7 % 5) as f64) - 2.0);
                p.set_bounds(j, 0.0, 4.0);
            }
            for i in 0..10 {
                let terms: Vec<(usize, f64)> =
                    (0..10).map(|j| (j, ((i + j) % 3) as f64 + 0.5)).collect();
                p.constraint(&terms, Relation::Le, 20.0);
            }
            black_box(p.solve().expect("feasible"))
        })
    });
}

fn bench_interval(c: &mut Criterion) {
    c.bench_function("simulate_one_interval", |b| {
        let mut sim = Simulation::new(SystemConfig::base(3, 0.5, 10.0));
        sim.run_intervals(5); // warm
        b.iter(|| sim.run_intervals(1))
    });
}

criterion_group!(benches, bench_pool, bench_zipf, bench_simplex, bench_interval);
criterion_main!(benches);
