//! Microbenchmarks of the hot substrate paths: buffer pool operations,
//! Zipf sampling, the simplex solver, and one full simulated observation
//! interval of the base experiment. Pass `--json` to also write
//! `results/substrates.jsonl`.

use std::hint::black_box;

use dmm::buffer::{PageId, PolicySpec, Pool};
use dmm::core::{Simulation, SystemConfig};
use dmm::lp::{Problem, Relation};
use dmm::sim::dist::Zipf;
use dmm::sim::{SimRng, SimTime};
use dmm_bench::micro::{bench_micro, maybe_write_json};

fn main() {
    let mut results = Vec::new();

    for (name, spec) in [
        ("lru", PolicySpec::Lru),
        ("lru2", PolicySpec::LruK(2)),
        ("cost", PolicySpec::CostBased),
    ] {
        let mut pool = Pool::new(512, spec);
        let zipf = Zipf::new(2000, 0.8);
        let mut rng = SimRng::seed_from_u64(1);
        let mut t = 0u64;
        results.push(bench_micro(&format!("buffer/pool_access_{name}"), || {
            t += 1;
            let page = PageId(zipf.sample(&mut rng) as u32);
            let now = SimTime::from_nanos(t);
            if pool.contains(page) {
                pool.on_hit(page, now);
            } else {
                pool.on_miss();
                pool.insert(page, now);
            }
        }));
    }

    {
        let zipf = Zipf::new(2000, 1.0);
        let mut rng = SimRng::seed_from_u64(2);
        results.push(bench_micro("zipf_sample_2000", || {
            black_box(zipf.sample(&mut rng));
        }));
    }

    results.push(bench_micro("simplex_10x10", || {
        let mut p = Problem::minimize(10);
        for j in 0..10 {
            p.set_objective(j, ((j * 7 % 5) as f64) - 2.0);
            p.set_bounds(j, 0.0, 4.0);
        }
        for i in 0..10 {
            let terms: Vec<(usize, f64)> =
                (0..10).map(|j| (j, ((i + j) % 3) as f64 + 0.5)).collect();
            p.constraint(&terms, Relation::Le, 20.0);
        }
        black_box(p.solve().expect("feasible"));
    }));

    {
        let cfg = SystemConfig::builder()
            .seed(3)
            .theta(0.5)
            .goal_ms(10.0)
            .build()
            .expect("valid bench config");
        let mut sim = Simulation::new(cfg);
        sim.run_intervals(5); // warm
        results.push(bench_micro("simulate_one_interval", || {
            sim.run_intervals(1);
        }));
    }

    maybe_write_json(&results, "substrates.jsonl");
}
