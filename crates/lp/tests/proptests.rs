//! Randomized-input tests: the simplex optimum matches brute-force vertex
//! enumeration on random, fully box-bounded 2-variable programs, and basic
//! feasibility/optimality invariants hold in higher dimensions. Cases are
//! generated from seeded [`SimRng`] streams for reproducibility.

use dmm_lp::{LpError, Problem, Relation};
use dmm_sim::SimRng;

#[derive(Debug, Clone)]
struct RandomLp {
    obj: Vec<f64>,
    // Each constraint: (coeffs, rhs) meaning Σ aᵢxᵢ ≤ rhs.
    cons: Vec<(Vec<f64>, f64)>,
    hi: Vec<f64>,
}

fn random_lp(rng: &mut SimRng, nvars: usize, max_cons: usize) -> RandomLp {
    let obj = (0..nvars).map(|_| rng.uniform(-3.0, 3.0)).collect();
    let ncons = rng.index(max_cons + 1);
    let cons = (0..ncons)
        .map(|_| {
            (
                (0..nvars).map(|_| rng.uniform(-2.0, 2.0)).collect(),
                rng.uniform(0.5, 6.0),
            )
        })
        .collect();
    let hi = (0..nvars).map(|_| rng.uniform(0.5, 5.0)).collect();
    RandomLp { obj, cons, hi }
}

fn build(lp: &RandomLp) -> Problem {
    let n = lp.obj.len();
    let mut p = Problem::minimize(n);
    for (j, (&c, &h)) in lp.obj.iter().zip(&lp.hi).enumerate() {
        p.set_objective(j, c);
        p.set_bounds(j, 0.0, h);
    }
    for (coeffs, rhs) in &lp.cons {
        let terms: Vec<(usize, f64)> = coeffs.iter().cloned().enumerate().collect();
        p.constraint(&terms, Relation::Le, *rhs);
    }
    p
}

/// All candidate vertices of a 2D box + halfplane system: intersections of
/// every pair of boundary lines, filtered for feasibility.
fn enumerate_vertices_2d(lp: &RandomLp) -> Vec<[f64; 2]> {
    // Boundary lines as a·x = b.
    let mut lines: Vec<([f64; 2], f64)> = vec![
        ([1.0, 0.0], 0.0),
        ([0.0, 1.0], 0.0),
        ([1.0, 0.0], lp.hi[0]),
        ([0.0, 1.0], lp.hi[1]),
    ];
    for (c, b) in &lp.cons {
        lines.push(([c[0], c[1]], *b));
    }
    let feasible = |x: [f64; 2]| -> bool {
        let eps = 1e-7;
        if x[0] < -eps || x[1] < -eps || x[0] > lp.hi[0] + eps || x[1] > lp.hi[1] + eps {
            return false;
        }
        lp.cons
            .iter()
            .all(|(c, b)| c[0] * x[0] + c[1] * x[1] <= b + eps)
    };
    let mut verts = Vec::new();
    for i in 0..lines.len() {
        for j in i + 1..lines.len() {
            let ([a1, b1], c1) = lines[i];
            let ([a2, b2], c2) = lines[j];
            let det = a1 * b2 - a2 * b1;
            if det.abs() < 1e-9 {
                continue;
            }
            let x = (c1 * b2 - c2 * b1) / det;
            let y = (a1 * c2 - a2 * c1) / det;
            if feasible([x, y]) {
                verts.push([x, y]);
            }
        }
    }
    verts
}

#[test]
fn simplex_matches_vertex_enumeration_2d() {
    for seed in 0..256u64 {
        let mut rng = SimRng::seed_from_u64(seed);
        let lp = random_lp(&mut rng, 2, 4);
        let p = build(&lp);
        let verts = enumerate_vertices_2d(&lp);
        // Origin is always a candidate if feasible (box has lo = 0).
        let sol = p.solve();
        if verts.is_empty() {
            assert_eq!(sol, Err(LpError::Infeasible), "seed {seed}");
        } else {
            let best = verts
                .iter()
                .map(|v| lp.obj[0] * v[0] + lp.obj[1] * v[1])
                .fold(f64::INFINITY, f64::min);
            let sol = sol.expect("feasible: a vertex exists");
            assert!(
                (sol.objective - best).abs() < 1e-6,
                "simplex {} vs enumeration {} (seed {seed})",
                sol.objective,
                best
            );
        }
    }
}

#[test]
fn solution_is_feasible_4d() {
    for seed in 0..128u64 {
        let mut rng = SimRng::seed_from_u64(1000 + seed);
        let lp = random_lp(&mut rng, 4, 5);
        let p = build(&lp);
        if let Ok(sol) = p.solve() {
            let eps = 1e-6;
            for (j, x) in sol.x.iter().enumerate() {
                assert!(*x >= -eps && *x <= lp.hi[j] + eps, "seed {seed}");
            }
            for (c, b) in &lp.cons {
                let lhs: f64 = c.iter().zip(&sol.x).map(|(a, x)| a * x).sum();
                assert!(
                    lhs <= b + eps,
                    "constraint violated: {lhs} > {b} (seed {seed})"
                );
            }
            // Objective value consistent with x.
            let obj: f64 = lp.obj.iter().zip(&sol.x).map(|(c, x)| c * x).sum();
            assert!((obj - sol.objective).abs() < 1e-6, "seed {seed}");
        }
    }
}

#[test]
fn optimum_not_above_any_probe_point() {
    for seed in 0..128u64 {
        let mut rng = SimRng::seed_from_u64(2000 + seed);
        let lp = random_lp(&mut rng, 3, 3);
        let probe: Vec<f64> = (0..3).map(|_| rng.uniform01()).collect();
        // Scale the probe into the box; if it is feasible, the reported
        // optimum must be at least as good.
        let p = build(&lp);
        if let Ok(sol) = p.solve() {
            let x: Vec<f64> = probe.iter().zip(&lp.hi).map(|(u, h)| u * h).collect();
            let feasible = lp
                .cons
                .iter()
                .all(|(c, b)| c.iter().zip(&x).map(|(a, xi)| a * xi).sum::<f64>() <= *b + 1e-9);
            if feasible {
                let val: f64 = lp.obj.iter().zip(&x).map(|(c, xi)| c * xi).sum();
                assert!(
                    sol.objective <= val + 1e-6,
                    "optimum {} beaten by probe {} (seed {seed})",
                    sol.objective,
                    val
                );
            }
        }
    }
}

#[test]
fn equality_constraint_is_satisfied() {
    for seed in 0..128u64 {
        let mut rng = SimRng::seed_from_u64(3000 + seed);
        let coeffs: Vec<f64> = (0..3).map(|_| rng.uniform(0.2, 2.0)).collect();
        let frac = rng.uniform(0.1, 0.9);
        // Σ aᵢxᵢ = rhs with rhs chosen inside the attainable range must be
        // met exactly by the solution.
        let hi = 4.0;
        let max_lhs: f64 = coeffs.iter().sum::<f64>() * hi;
        let rhs = frac * max_lhs;
        let mut p = Problem::minimize(3);
        for j in 0..3 {
            p.set_objective(j, 1.0);
            p.set_bounds(j, 0.0, hi);
        }
        let terms: Vec<(usize, f64)> = coeffs.iter().cloned().enumerate().collect();
        p.constraint(&terms, Relation::Eq, rhs);
        let sol = p.solve().expect("rhs within range");
        let lhs: f64 = coeffs.iter().zip(&sol.x).map(|(a, x)| a * x).sum();
        assert!((lhs - rhs).abs() < 1e-6, "seed {seed}");
    }
}
