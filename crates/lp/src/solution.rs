//! Solver results and errors.

/// An optimal solution.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Optimal variable values, in problem order.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub objective: f64,
}

/// Why the solver could not return an optimum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpError {
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded below over the feasible region.
    Unbounded,
    /// The iteration limit was exceeded (should not occur with Bland's rule;
    /// kept as a defensive backstop).
    IterationLimit,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "objective is unbounded"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}
