//! # dmm-lp — two-phase primal simplex
//!
//! The ICDE'99 coordinator computes each new buffer partitioning by solving a
//! small linear program (paper §4):
//!
//! ```text
//! minimize    Σᵢ ā₀ᵢ · LMᵢ + c̄₀                 (predicted no-goal RT)
//! subject to  Σᵢ āₖᵢ · LMᵢ + c̄ₖ = RTᵏ_goal      (goal class hits its goal)
//!             0 ≤ LMᵢ ≤ SIZEᵢ − Σ_{l≠k} LM_{l,i}  (per-node capacity)
//! ```
//!
//! The paper links against `lp-solve` \[3\]; this crate is a from-scratch dense
//! implementation of the same algorithm family: a two-phase primal simplex
//! with Dantzig pricing and a Bland's-rule fallback for anti-cycling.
//! Problem sizes here are tiny (≤ 50 variables, ≤ 100 rows), so a dense
//! tableau is the right tool.
//!
//! ```
//! use dmm_lp::{Problem, Relation};
//!
//! // minimize  -x - 2y   s.t.  x + y ≤ 4,  x ≤ 3,  y ≤ 2,  x,y ≥ 0
//! let mut p = Problem::minimize(2);
//! p.set_objective(0, -1.0);
//! p.set_objective(1, -2.0);
//! p.constraint(&[(0, 1.0), (1, 1.0)], Relation::Le, 4.0);
//! p.set_upper_bound(0, 3.0);
//! p.set_upper_bound(1, 2.0);
//! let sol = p.solve().unwrap();
//! assert!((sol.objective - (-6.0)).abs() < 1e-9); // x=2, y=2
//! ```

pub mod problem;
pub mod simplex;
pub mod solution;

pub use problem::{Problem, Relation};
pub use solution::{LpError, Solution};
