//! Dense two-phase primal simplex over the standard-form tableau.

use crate::problem::{Problem, Relation};
use crate::solution::{LpError, Solution};

/// Pivot tolerance: entries smaller than this are treated as zero.
const TOL: f64 = 1e-9;
/// Iterations after which pricing switches from Dantzig to Bland's rule.
const BLAND_AFTER: usize = 2_000;
/// Hard iteration backstop per phase.
const MAX_ITERS: usize = 50_000;

/// The problem rewritten as `A·y = b, y ≥ 0, b ≥ 0` with slack and artificial
/// columns appended.
pub(crate) struct StandardForm {
    /// Tableau coefficients, `m × ncols`.
    a: Vec<Vec<f64>>,
    /// Right-hand sides, all non-negative.
    b: Vec<f64>,
    /// Basic column per row.
    basis: Vec<usize>,
    /// Phase-2 costs per column (artificials 0).
    cost: Vec<f64>,
    /// Constant added to the reported objective (from lower-bound shifts).
    cost_const: f64,
    /// Columns `>= artificial_start` are artificial.
    artificial_start: usize,
    /// Number of structural (shifted original) variables.
    n_struct: usize,
    /// Lower bounds of the original variables (for un-shifting).
    lower: Vec<f64>,
}

impl StandardForm {
    /// Converts a [`Problem`] into standard form.
    pub(crate) fn build(p: &Problem) -> StandardForm {
        let n = p.num_vars();
        let lower = p.lower_bounds().to_vec();
        let upper = p.upper_bounds();

        // Row set: user constraints plus one row per finite upper bound
        // (y_j ≤ hi_j − lo_j after the shift x = lo + y).
        struct RawRow {
            coeffs: Vec<f64>,
            rel: Relation,
            rhs: f64,
        }
        let mut raw: Vec<RawRow> = Vec::with_capacity(p.rows().len() + n);
        for row in p.rows() {
            let shift: f64 = row.coeffs.iter().zip(&lower).map(|(a, l)| a * l).sum();
            raw.push(RawRow {
                coeffs: row.coeffs.clone(),
                rel: row.rel,
                rhs: row.rhs - shift,
            });
        }
        for j in 0..n {
            if upper[j].is_finite() {
                let mut coeffs = vec![0.0; n];
                coeffs[j] = 1.0;
                raw.push(RawRow {
                    coeffs,
                    rel: Relation::Le,
                    rhs: upper[j] - lower[j],
                });
            }
        }

        // Normalize rhs ≥ 0 by negating rows.
        for row in &mut raw {
            if row.rhs < 0.0 {
                for c in &mut row.coeffs {
                    *c = -*c;
                }
                row.rhs = -row.rhs;
                row.rel = match row.rel {
                    Relation::Le => Relation::Ge,
                    Relation::Eq => Relation::Eq,
                    Relation::Ge => Relation::Le,
                };
            }
        }

        let m = raw.len();
        // Column layout: [structural | slack/surplus | artificial].
        let n_slack = raw
            .iter()
            .filter(|r| matches!(r.rel, Relation::Le | Relation::Ge))
            .count();
        let n_art = raw
            .iter()
            .filter(|r| matches!(r.rel, Relation::Eq | Relation::Ge))
            .count();
        let slack_start = n;
        let artificial_start = n + n_slack;
        let ncols = n + n_slack + n_art;

        let mut a = vec![vec![0.0; ncols]; m];
        let mut b = vec![0.0; m];
        let mut basis = vec![usize::MAX; m];
        let mut next_slack = slack_start;
        let mut next_art = artificial_start;

        for (i, row) in raw.iter().enumerate() {
            a[i][..n].copy_from_slice(&row.coeffs);
            b[i] = row.rhs;
            match row.rel {
                Relation::Le => {
                    a[i][next_slack] = 1.0;
                    basis[i] = next_slack;
                    next_slack += 1;
                }
                Relation::Ge => {
                    a[i][next_slack] = -1.0;
                    next_slack += 1;
                    a[i][next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                }
                Relation::Eq => {
                    a[i][next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                }
            }
        }

        let mut cost = vec![0.0; ncols];
        cost[..n].copy_from_slice(p.objective_coeffs());
        let cost_const: f64 = p
            .objective_coeffs()
            .iter()
            .zip(&lower)
            .map(|(c, l)| c * l)
            .sum();

        StandardForm {
            a,
            b,
            basis,
            cost,
            cost_const,
            artificial_start,
            n_struct: n,
            lower,
        }
    }

    /// Runs both phases and extracts the solution.
    pub(crate) fn solve(mut self) -> Result<Solution, LpError> {
        // Phase 1: minimize the sum of artificials.
        if self.artificial_start < self.ncols() {
            let ncols = self.ncols();
            let mut c1 = vec![0.0; ncols];
            for c in &mut c1[self.artificial_start..] {
                *c = 1.0;
            }
            self.optimize(&c1, usize::MAX)?;
            let infeas: f64 = self.objective_value(&c1);
            let scale = self.b.iter().fold(1.0f64, |s, v| s.max(v.abs()));
            if infeas > 1e-7 * scale {
                return Err(LpError::Infeasible);
            }
            self.evict_artificials();
        }

        // Phase 2: original costs; artificial columns may not re-enter.
        let cost = self.cost.clone();
        let banned_from = self.artificial_start;
        self.optimize(&cost, banned_from)?;

        let mut x = vec![0.0; self.n_struct];
        for (i, &col) in self.basis.iter().enumerate() {
            if col < self.n_struct {
                x[col] = self.b[i];
            }
        }
        for (xj, lo) in x.iter_mut().zip(&self.lower) {
            *xj += lo;
        }
        let objective = self.objective_value(&cost) + self.cost_const;
        Ok(Solution { x, objective })
    }

    fn ncols(&self) -> usize {
        self.cost.len()
    }

    fn objective_value(&self, cost: &[f64]) -> f64 {
        self.basis
            .iter()
            .zip(&self.b)
            .map(|(&col, &bi)| cost[col] * bi)
            .sum()
    }

    /// Primal simplex iterations on the current tableau with the given cost
    /// vector. Columns `>= banned_from` may not enter the basis.
    fn optimize(&mut self, cost: &[f64], banned_from: usize) -> Result<(), LpError> {
        let m = self.a.len();
        let ncols = self.ncols();
        let mut basic = vec![false; ncols];
        for &col in &self.basis {
            basic[col] = true;
        }

        for iter in 0..MAX_ITERS {
            // Reduced costs r_j = c_j − c_B · A_j.
            let use_bland = iter >= BLAND_AFTER;
            let mut entering: Option<(usize, f64)> = None;
            for j in 0..ncols.min(banned_from) {
                if basic[j] {
                    continue;
                }
                let mut rj = cost[j];
                for i in 0..m {
                    let aij = self.a[i][j];
                    if aij != 0.0 {
                        rj -= cost[self.basis[i]] * aij;
                    }
                }
                if rj < -TOL {
                    if use_bland {
                        entering = Some((j, rj));
                        break; // Bland: first (smallest-index) improving column
                    }
                    match entering {
                        Some((_, best)) if rj >= best => {}
                        _ => entering = Some((j, rj)),
                    }
                }
            }
            let Some((e, _)) = entering else {
                return Ok(()); // optimal
            };

            // Ratio test.
            let mut leave: Option<(usize, f64)> = None;
            for i in 0..m {
                let aie = self.a[i][e];
                if aie > TOL {
                    let ratio = self.b[i] / aie;
                    let better = match leave {
                        None => true,
                        Some((li, lr)) => {
                            ratio < lr - TOL || (ratio < lr + TOL && self.basis[i] < self.basis[li])
                        }
                    };
                    if better {
                        leave = Some((i, ratio));
                    }
                }
            }
            let Some((r, _)) = leave else {
                return Err(LpError::Unbounded);
            };

            basic[self.basis[r]] = false;
            basic[e] = true;
            self.pivot(r, e);
        }
        Err(LpError::IterationLimit)
    }

    /// Gauss-Jordan pivot on `(row, col)`.
    fn pivot(&mut self, row: usize, col: usize) {
        let m = self.a.len();
        let ncols = self.ncols();
        let pivot = self.a[row][col];
        debug_assert!(pivot.abs() > TOL);
        for v in &mut self.a[row] {
            *v /= pivot;
        }
        self.b[row] /= pivot;
        self.a[row][col] = 1.0; // exact

        for i in 0..m {
            if i == row {
                continue;
            }
            let factor = self.a[i][col];
            if factor == 0.0 {
                continue;
            }
            for j in 0..ncols {
                let v = self.a[row][j];
                if v != 0.0 {
                    self.a[i][j] -= factor * v;
                }
            }
            self.a[i][col] = 0.0; // exact
            let delta = factor * self.b[row];
            self.b[i] -= delta;
            // Cancellation error is proportional to the operand magnitudes;
            // clamp tiny negatives so the tableau stays primal feasible.
            let noise = 1e-9 * (1.0 + delta.abs() + self.b[i].abs());
            if self.b[i] < 0.0 && self.b[i] > -noise {
                self.b[i] = 0.0;
            }
        }
        self.basis[row] = col;
    }

    /// After phase 1, pivots basic artificials (at value 0) out of the basis
    /// or drops their (redundant) rows.
    fn evict_artificials(&mut self) {
        let mut i = 0;
        while i < self.a.len() {
            if self.basis[i] < self.artificial_start {
                i += 1;
                continue;
            }
            // Any non-artificial column with a usable pivot in this row?
            let pivot_col = (0..self.artificial_start)
                .find(|&j| self.a[i][j].abs() > TOL && !self.basis.contains(&j));
            match pivot_col {
                Some(j) => {
                    self.pivot(i, j);
                    i += 1;
                }
                None => {
                    // Redundant row: remove it.
                    self.a.swap_remove(i);
                    self.b.swap_remove(i);
                    self.basis.swap_remove(i);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Problem, Relation};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} vs {b}");
    }

    #[test]
    fn textbook_maximization_as_min() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18  → (2, 6), obj 36.
        let mut p = Problem::minimize(2);
        p.set_objective(0, -3.0);
        p.set_objective(1, -5.0);
        p.constraint(&[(0, 1.0)], Relation::Le, 4.0);
        p.constraint(&[(1, 2.0)], Relation::Le, 12.0);
        p.constraint(&[(0, 3.0), (1, 2.0)], Relation::Le, 18.0);
        let sol = p.solve().expect("feasible");
        assert_close(sol.objective, -36.0);
        assert_close(sol.x[0], 2.0);
        assert_close(sol.x[1], 6.0);
    }

    #[test]
    fn equality_constraint() {
        // min x + y s.t. x + 2y = 4, x,y ≥ 0 → y = 2, x = 0, obj 2.
        let mut p = Problem::minimize(2);
        p.set_objective(0, 1.0);
        p.set_objective(1, 1.0);
        p.constraint(&[(0, 1.0), (1, 2.0)], Relation::Eq, 4.0);
        let sol = p.solve().expect("feasible");
        assert_close(sol.objective, 2.0);
        assert_close(sol.x[1], 2.0);
    }

    #[test]
    fn ge_constraints_need_phase1() {
        // min 2x + 3y s.t. x + y ≥ 10, x ≥ 2 → x = 10? No: cheapest per unit
        // is x (cost 2), so x = 10, y = 0, obj 20.
        let mut p = Problem::minimize(2);
        p.set_objective(0, 2.0);
        p.set_objective(1, 3.0);
        p.constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 10.0);
        p.constraint(&[(0, 1.0)], Relation::Ge, 2.0);
        let sol = p.solve().expect("feasible");
        assert_close(sol.objective, 20.0);
        assert_close(sol.x[0], 10.0);
    }

    #[test]
    fn detects_infeasible() {
        let mut p = Problem::minimize(1);
        p.constraint(&[(0, 1.0)], Relation::Ge, 5.0);
        p.constraint(&[(0, 1.0)], Relation::Le, 3.0);
        assert_eq!(p.solve(), Err(LpError::Infeasible));
    }

    #[test]
    fn detects_unbounded() {
        let mut p = Problem::minimize(1);
        p.set_objective(0, -1.0); // minimize -x, x unbounded above
        assert_eq!(p.solve(), Err(LpError::Unbounded));
    }

    #[test]
    fn respects_bounds_and_shifts() {
        // min x s.t. x ∈ [3, 7] → 3.
        let mut p = Problem::minimize(1);
        p.set_objective(0, 1.0);
        p.set_bounds(0, 3.0, 7.0);
        let sol = p.solve().expect("feasible");
        assert_close(sol.objective, 3.0);
        assert_close(sol.x[0], 3.0);

        // max x under the same bounds → 7.
        let mut p = Problem::minimize(1);
        p.set_objective(0, -1.0);
        p.set_bounds(0, 3.0, 7.0);
        let sol = p.solve().expect("feasible");
        assert_close(sol.x[0], 7.0);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // min x + y s.t. −x − y ≤ −4  (i.e. x + y ≥ 4) → obj 4.
        let mut p = Problem::minimize(2);
        p.set_objective(0, 1.0);
        p.set_objective(1, 1.0);
        p.constraint(&[(0, -1.0), (1, -1.0)], Relation::Le, -4.0);
        let sol = p.solve().expect("feasible");
        assert_close(sol.objective, 4.0);
    }

    #[test]
    fn redundant_equalities_do_not_break_phase1() {
        // x + y = 2 stated twice; min x → x = 0, y = 2.
        let mut p = Problem::minimize(2);
        p.set_objective(0, 1.0);
        p.constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 2.0);
        p.constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 2.0);
        let sol = p.solve().expect("feasible despite redundancy");
        assert_close(sol.x[0], 0.0);
        assert_close(sol.x[1], 2.0);
    }

    #[test]
    fn degenerate_vertex_terminates() {
        // Classic degeneracy: multiple constraints meet at the optimum.
        let mut p = Problem::minimize(2);
        p.set_objective(0, -1.0);
        p.set_objective(1, -1.0);
        p.constraint(&[(0, 1.0)], Relation::Le, 1.0);
        p.constraint(&[(1, 1.0)], Relation::Le, 1.0);
        p.constraint(&[(0, 1.0), (1, 1.0)], Relation::Le, 2.0);
        p.constraint(&[(0, 1.0), (1, -1.0)], Relation::Le, 0.0);
        let sol = p.solve().expect("feasible");
        assert_close(sol.objective, -2.0);
    }

    #[test]
    fn paper_shaped_lp() {
        // 3-node instance of the §4 LP: minimize no-goal RT gradient subject
        // to the goal plane equality and per-node capacities.
        // Plane: RT_k = 8 − 1.0e-6·x₀ − 0.5e-6·x₁ − 0.25e-6·x₂ (ms, bytes).
        // Goal 5 ms ⇒ Σ aᵢxᵢ = goal − c = −3.
        // No-goal gradient (positive): (2e-6, 1e-6, 3e-6).
        let cap = 2.0 * 1024.0 * 1024.0;
        let a_k = [-1.0e-6, -0.5e-6, -0.25e-6];
        let a_0 = [2.0e-6, 1.0e-6, 3.0e-6];
        let mut p = Problem::minimize(3);
        for (j, &c) in a_0.iter().enumerate() {
            p.set_objective(j, c);
            p.set_bounds(j, 0.0, cap);
        }
        p.constraint(
            &[(0, a_k[0]), (1, a_k[1]), (2, a_k[2])],
            Relation::Eq,
            5.0 - 8.0,
        );
        let sol = p.solve().expect("feasible");
        // Check the equality holds.
        let lhs: f64 = sol.x.iter().zip(&a_k).map(|(x, a)| x * a).sum();
        assert_close(lhs, -3.0);
        // Node 0 gives the most RT reduction per byte at the least no-goal
        // damage ratio; the optimum puts everything it can there.
        assert!(sol.x[0] > sol.x[2]);
        for x in &sol.x {
            assert!(*x >= -1e-9 && *x <= cap + 1e-9);
        }
    }
}
