//! Linear-program builder.

use crate::simplex::StandardForm;
use crate::solution::{LpError, Solution};

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ = b`
    Eq,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
}

#[derive(Debug, Clone)]
pub(crate) struct Row {
    pub coeffs: Vec<f64>, // dense over all variables
    pub rel: Relation,
    pub rhs: f64,
}

/// A minimization problem over non-negative, optionally box-bounded
/// variables. Lower bounds default to 0 and must be finite; upper bounds
/// default to +∞.
#[derive(Debug, Clone)]
pub struct Problem {
    n: usize,
    objective: Vec<f64>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    rows: Vec<Row>,
}

impl Problem {
    /// Creates a minimization problem with `n` variables, zero objective,
    /// bounds `[0, +∞)`.
    pub fn minimize(n: usize) -> Self {
        Problem {
            n,
            objective: vec![0.0; n],
            lower: vec![0.0; n],
            upper: vec![f64::INFINITY; n],
            rows: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Sets the objective coefficient of variable `j`.
    pub fn set_objective(&mut self, j: usize, c: f64) {
        assert!(j < self.n, "variable index out of range");
        assert!(c.is_finite());
        self.objective[j] = c;
    }

    /// Sets both bounds of variable `j`. `lo` must be finite, `lo ≤ hi`.
    pub fn set_bounds(&mut self, j: usize, lo: f64, hi: f64) {
        assert!(j < self.n, "variable index out of range");
        assert!(lo.is_finite(), "lower bound must be finite");
        assert!(hi >= lo, "upper bound below lower bound");
        self.lower[j] = lo;
        self.upper[j] = hi;
    }

    /// Sets only the upper bound of variable `j`.
    pub fn set_upper_bound(&mut self, j: usize, hi: f64) {
        let lo = self.lower[j];
        self.set_bounds(j, lo, hi);
    }

    /// Adds the constraint `Σ terms rel rhs`. Terms may repeat a variable
    /// (coefficients accumulate).
    pub fn constraint(&mut self, terms: &[(usize, f64)], rel: Relation, rhs: f64) {
        assert!(rhs.is_finite());
        let mut coeffs = vec![0.0; self.n];
        for &(j, a) in terms {
            assert!(j < self.n, "variable index out of range");
            assert!(a.is_finite());
            coeffs[j] += a;
        }
        self.rows.push(Row { coeffs, rel, rhs });
    }

    /// Solves the problem. Returns the optimal solution, or an error if the
    /// feasible region is empty or the objective is unbounded below.
    pub fn solve(&self) -> Result<Solution, LpError> {
        // Quick bound sanity (empty box ⇒ infeasible before simplex).
        for j in 0..self.n {
            if self.lower[j] > self.upper[j] {
                return Err(LpError::Infeasible);
            }
        }
        if self.n == 0 {
            // Feasible iff every constraint holds with all-zero terms.
            for row in &self.rows {
                let ok = match row.rel {
                    Relation::Le => 0.0 <= row.rhs + 1e-9,
                    Relation::Eq => row.rhs.abs() <= 1e-9,
                    Relation::Ge => 0.0 >= row.rhs - 1e-9,
                };
                if !ok {
                    return Err(LpError::Infeasible);
                }
            }
            return Ok(Solution {
                x: vec![],
                objective: 0.0,
            });
        }
        let sf = StandardForm::build(self);
        sf.solve()
    }

    pub(crate) fn objective_coeffs(&self) -> &[f64] {
        &self.objective
    }
    pub(crate) fn lower_bounds(&self) -> &[f64] {
        &self.lower
    }
    pub(crate) fn upper_bounds(&self) -> &[f64] {
        &self.upper
    }
    pub(crate) fn rows(&self) -> &[Row] {
        &self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_duplicate_terms() {
        let mut p = Problem::minimize(2);
        p.constraint(&[(0, 1.0), (0, 2.0), (1, 1.0)], Relation::Le, 6.0);
        assert_eq!(p.rows()[0].coeffs, vec![3.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_index() {
        let mut p = Problem::minimize(1);
        p.set_objective(1, 1.0);
    }

    #[test]
    fn zero_variable_problem() {
        let p = Problem::minimize(0);
        let sol = p.solve().expect("trivially feasible");
        assert_eq!(sol.objective, 0.0);

        let mut p = Problem::minimize(0);
        p.constraint(&[], Relation::Ge, 1.0);
        assert_eq!(p.solve(), Err(LpError::Infeasible));
    }

    #[test]
    fn empty_box_is_infeasible() {
        let mut p = Problem::minimize(1);
        p.set_bounds(0, 2.0, 3.0);
        // Shrink via a second call to an empty interval is rejected by the
        // assert, so emulate contradictory constraints instead.
        p.constraint(&[(0, 1.0)], Relation::Le, 1.0);
        assert_eq!(p.solve(), Err(LpError::Infeasible));
    }
}
