//! Property tests: heap ordering, pool capacity invariants, LRU stack
//! property, and partitioned-buffer consistency under random operation
//! sequences.

use dmm_buffer::{
    ClassId, IndexedMinHeap, LocalAccess, PageId, PartitionedBuffer, Policy, PolicySpec, Pool,
    NO_GOAL,
};
use dmm_sim::SimTime;
use proptest::prelude::*;

fn t(ns: u64) -> SimTime {
    SimTime::from_nanos(ns)
}

proptest! {
    #[test]
    fn heap_pops_sorted(ops in proptest::collection::vec((0u32..50, 0.0..100.0f64), 1..200)) {
        let mut h: IndexedMinHeap<PageId, f64> = IndexedMinHeap::new();
        for (id, p) in ops {
            h.upsert(PageId(id), p);
        }
        let mut prev = f64::NEG_INFINITY;
        while let Some((_, p)) = h.pop_min() {
            prop_assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn heap_tracks_membership(ops in proptest::collection::vec((0u32..20, 0u8..3), 1..300)) {
        use std::collections::HashMap;
        let mut h: IndexedMinHeap<PageId, u64> = IndexedMinHeap::new();
        let mut model: HashMap<u32, u64> = HashMap::new();
        let mut stamp = 0u64;
        for (id, op) in ops {
            stamp += 1;
            match op {
                0 => { h.upsert(PageId(id), stamp); model.insert(id, stamp); }
                1 => { h.remove(&PageId(id)); model.remove(&id); }
                _ => {
                    prop_assert_eq!(h.contains(&PageId(id)), model.contains_key(&id));
                    prop_assert_eq!(h.priority(&PageId(id)), model.get(&id).copied());
                }
            }
            prop_assert_eq!(h.len(), model.len());
        }
    }

    #[test]
    fn pool_never_exceeds_capacity(cap in 1usize..16,
                                   accesses in proptest::collection::vec(0u32..40, 1..300)) {
        let mut pool = Pool::new(cap, PolicySpec::Lru);
        for (i, page) in accesses.iter().enumerate() {
            let page = PageId(*page);
            if pool.contains(page) {
                pool.on_hit(page, t(i as u64));
            } else {
                pool.on_miss();
                pool.insert(page, t(i as u64));
            }
            prop_assert!(pool.len() <= cap);
        }
        let s = pool.stats();
        prop_assert_eq!(s.hits + s.misses, accesses.len() as u64);
    }

    /// LRU inclusion (stack) property: on the same trace, a larger LRU cache
    /// always holds a superset of a smaller one — the monotonicity the
    /// paper's §3 assumption rests on.
    #[test]
    fn lru_stack_property(accesses in proptest::collection::vec(0u32..30, 1..300),
                          small in 1usize..8, extra in 1usize..8) {
        let large = small + extra;
        let mut a = Pool::new(small, PolicySpec::Lru);
        let mut b = Pool::new(large, PolicySpec::Lru);
        for (i, page) in accesses.iter().enumerate() {
            let page = PageId(*page);
            for pool in [&mut a, &mut b] {
                if pool.contains(page) {
                    pool.on_hit(page, t(i as u64));
                } else {
                    pool.on_miss();
                    pool.insert(page, t(i as u64));
                }
            }
        }
        for page in a.pages() {
            prop_assert!(b.contains(page), "stack property violated for {page}");
        }
        prop_assert!(b.stats().hits >= a.stats().hits);
    }

    /// LRU-K with k = 1 must agree with plain LRU victim-for-victim.
    #[test]
    fn lru_k1_equals_lru(accesses in proptest::collection::vec(0u32..20, 1..200)) {
        use dmm_buffer::{LruKPolicy, LruPolicy};
        let mut lru = LruPolicy::new();
        let mut lru1 = LruKPolicy::new(1);
        let mut present = std::collections::HashSet::new();
        for (i, page) in accesses.iter().enumerate() {
            let page = PageId(*page);
            let now = t(i as u64);
            if present.insert(page) {
                lru.on_insert(page, now);
                lru1.on_insert(page, now);
            } else {
                lru.on_access(page, now);
                lru1.on_access(page, now);
            }
            prop_assert_eq!(lru.victim(), lru1.victim());
        }
    }

    /// Random partitioned-buffer workload: invariants hold after every step.
    #[test]
    fn partition_invariants(
        total in 4usize..24,
        steps in proptest::collection::vec((0u16..3, 0u32..40, 0usize..24), 1..150),
    ) {
        let mut b = PartitionedBuffer::new(total, 2, PolicySpec::Lru);
        for (i, (sel, page, size)) in steps.iter().enumerate() {
            let now = t(i as u64);
            match sel {
                0 => {
                    // Resize a random class.
                    let class = ClassId(1 + (page % 2) as u16);
                    let (granted, _) = b.set_dedicated(class, *size);
                    prop_assert!(granted <= total);
                }
                1 => {
                    let class = ClassId((page % 3) as u16);
                    let page = PageId(*page);
                    match b.access(class, page, now) {
                        LocalAccess::Miss => { b.install(class, page, now); }
                        LocalAccess::Hit { .. } | LocalAccess::MovedToDedicated { .. } => {}
                    }
                }
                _ => { b.drop_page(PageId(*page)); }
            }
            b.check_invariants();
            prop_assert!(b.total_resident() <= total);
        }
    }

    /// After installing, a page is resident exactly once and a re-access is
    /// a hit.
    #[test]
    fn install_then_hit(total in 2usize..16, page in 0u32..100, class in 0u16..3) {
        let mut b = PartitionedBuffer::new(total, 2, PolicySpec::Lru);
        let class = ClassId(class);
        prop_assert_eq!(b.access(class, PageId(page), t(0)), LocalAccess::Miss);
        b.install(class, PageId(page), t(1));
        match b.access(class, PageId(page), t(2)) {
            LocalAccess::Hit { .. } => {}
            other => prop_assert!(false, "expected hit, got {:?}", other),
        }
    }
}

/// Deterministic regression: migrating pages between pools preserves global
/// residency uniqueness even under pool churn.
#[test]
fn migration_churn() {
    let mut b = PartitionedBuffer::new(6, 2, PolicySpec::Lru);
    for i in 0..6u32 {
        b.access(NO_GOAL, PageId(i), t(i as u64));
        b.install(NO_GOAL, PageId(i), t(i as u64));
    }
    b.set_dedicated(ClassId(1), 2);
    // Touch three no-goal pages as class 1: each migrates; third displaces
    // the first.
    for (j, i) in [0u32, 1, 2].iter().enumerate() {
        if b.resident(PageId(*i)) {
            b.access(ClassId(1), PageId(*i), t(100 + j as u64));
        }
        b.check_invariants();
    }
    assert!(b.total_resident() <= 6);
}

/// Belady's anomaly — the paper's §3 cites [2] as the counterexample to the
/// "more buffer, more hits" assumption: under FIFO, the classic reference
/// string suffers MORE faults with 4 frames than with 3. LRU, being a stack
/// policy, cannot show this (see `lru_stack_property`).
#[test]
fn fifo_exhibits_beladys_anomaly() {
    let reference: [u32; 12] = [1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5];
    let faults = |frames: usize| -> u64 {
        let mut pool = Pool::new(frames, PolicySpec::Fifo);
        for (i, &p) in reference.iter().enumerate() {
            let page = PageId(p);
            if pool.contains(page) {
                pool.on_hit(page, t(i as u64));
            } else {
                pool.on_miss();
                pool.insert(page, t(i as u64));
            }
        }
        pool.stats().misses
    };
    let three = faults(3);
    let four = faults(4);
    assert_eq!(three, 9);
    assert_eq!(four, 10, "more frames, more faults: the FIFO anomaly");
    assert!(four > three);
}
