//! Randomized-input tests: heap ordering, pool capacity invariants, LRU
//! stack property, and partitioned-buffer consistency under random
//! operation sequences. Cases are generated from seeded [`SimRng`] streams
//! for reproducibility.

use dmm_buffer::{
    ClassId, IndexedMinHeap, LocalAccess, PageId, PartitionedBuffer, Policy, PolicySpec, Pool,
    NO_GOAL,
};
use dmm_sim::{SimRng, SimTime};

fn t(ns: u64) -> SimTime {
    SimTime::from_nanos(ns)
}

#[test]
fn heap_pops_sorted() {
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut h: IndexedMinHeap<PageId, f64> = IndexedMinHeap::new();
        let n = 1 + rng.index(199);
        for _ in 0..n {
            h.upsert(PageId(rng.index(50) as u32), rng.uniform(0.0, 100.0));
        }
        let mut prev = f64::NEG_INFINITY;
        while let Some((_, p)) = h.pop_min() {
            assert!(p >= prev, "seed {seed}");
            prev = p;
        }
    }
}

#[test]
fn heap_tracks_membership() {
    use std::collections::HashMap;
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(100 + seed);
        let mut h: IndexedMinHeap<PageId, u64> = IndexedMinHeap::new();
        let mut model: HashMap<u32, u64> = HashMap::new();
        let mut stamp = 0u64;
        let n = 1 + rng.index(299);
        for _ in 0..n {
            stamp += 1;
            let id = rng.index(20) as u32;
            match rng.index(3) {
                0 => {
                    h.upsert(PageId(id), stamp);
                    model.insert(id, stamp);
                }
                1 => {
                    h.remove(&PageId(id));
                    model.remove(&id);
                }
                _ => {
                    assert_eq!(h.contains(&PageId(id)), model.contains_key(&id));
                    assert_eq!(h.priority(&PageId(id)), model.get(&id).copied());
                }
            }
            assert_eq!(h.len(), model.len(), "seed {seed}");
        }
    }
}

#[test]
fn pool_never_exceeds_capacity() {
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(200 + seed);
        let cap = 1 + rng.index(15);
        let n = 1 + rng.index(299);
        let mut pool = Pool::new(cap, PolicySpec::Lru);
        for i in 0..n {
            let page = PageId(rng.index(40) as u32);
            if pool.contains(page) {
                pool.on_hit(page, t(i as u64));
            } else {
                pool.on_miss();
                pool.insert(page, t(i as u64));
            }
            assert!(pool.len() <= cap, "seed {seed}");
        }
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, n as u64);
    }
}

/// LRU inclusion (stack) property: on the same trace, a larger LRU cache
/// always holds a superset of a smaller one — the monotonicity the paper's
/// §3 assumption rests on.
#[test]
fn lru_stack_property() {
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(300 + seed);
        let small = 1 + rng.index(7);
        let large = small + 1 + rng.index(7);
        let n = 1 + rng.index(299);
        let mut a = Pool::new(small, PolicySpec::Lru);
        let mut b = Pool::new(large, PolicySpec::Lru);
        for i in 0..n {
            let page = PageId(rng.index(30) as u32);
            for pool in [&mut a, &mut b] {
                if pool.contains(page) {
                    pool.on_hit(page, t(i as u64));
                } else {
                    pool.on_miss();
                    pool.insert(page, t(i as u64));
                }
            }
        }
        for page in a.pages() {
            assert!(
                b.contains(page),
                "stack property violated for {page} (seed {seed})"
            );
        }
        assert!(b.stats().hits >= a.stats().hits);
    }
}

/// LRU-K with k = 1 must agree with plain LRU victim-for-victim.
#[test]
fn lru_k1_equals_lru() {
    use dmm_buffer::{LruKPolicy, LruPolicy};
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(400 + seed);
        let n = 1 + rng.index(199);
        let mut lru = LruPolicy::new();
        let mut lru1 = LruKPolicy::new(1);
        let mut present = std::collections::HashSet::new();
        for i in 0..n {
            let page = PageId(rng.index(20) as u32);
            let now = t(i as u64);
            if present.insert(page) {
                lru.on_insert(page, now);
                lru1.on_insert(page, now);
            } else {
                lru.on_access(page, now);
                lru1.on_access(page, now);
            }
            assert_eq!(lru.victim(), lru1.victim(), "seed {seed}");
        }
    }
}

/// Random partitioned-buffer workload: invariants hold after every step.
#[test]
fn partition_invariants() {
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(500 + seed);
        let total = 4 + rng.index(20);
        let steps = 1 + rng.index(149);
        let mut b = PartitionedBuffer::new(total, 2, PolicySpec::Lru);
        for i in 0..steps {
            let now = t(i as u64);
            let page = rng.index(40) as u32;
            match rng.index(3) {
                0 => {
                    // Resize a random class.
                    let class = ClassId(1 + (page % 2) as u16);
                    let size = rng.index(24);
                    let (granted, _) = b.set_dedicated(class, size);
                    assert!(granted <= total, "seed {seed}");
                }
                1 => {
                    let class = ClassId((page % 3) as u16);
                    let page = PageId(page);
                    match b.access(class, page, now) {
                        LocalAccess::Miss => {
                            b.install(class, page, now);
                        }
                        LocalAccess::Hit { .. } | LocalAccess::MovedToDedicated { .. } => {}
                    }
                }
                _ => {
                    b.drop_page(PageId(page));
                }
            }
            b.check_invariants();
            assert!(b.total_resident() <= total, "seed {seed}");
        }
    }
}

/// After installing, a page is resident exactly once and a re-access is a
/// hit.
#[test]
fn install_then_hit() {
    for seed in 0..32u64 {
        let mut rng = SimRng::seed_from_u64(600 + seed);
        let total = 2 + rng.index(14);
        let page = rng.index(100) as u32;
        let class = ClassId(rng.index(3) as u16);
        let mut b = PartitionedBuffer::new(total, 2, PolicySpec::Lru);
        assert_eq!(b.access(class, PageId(page), t(0)), LocalAccess::Miss);
        b.install(class, PageId(page), t(1));
        match b.access(class, PageId(page), t(2)) {
            LocalAccess::Hit { .. } => {}
            other => panic!("expected hit, got {other:?} (seed {seed})"),
        }
    }
}

/// Deterministic regression: migrating pages between pools preserves global
/// residency uniqueness even under pool churn.
#[test]
fn migration_churn() {
    let mut b = PartitionedBuffer::new(6, 2, PolicySpec::Lru);
    for i in 0..6u32 {
        b.access(NO_GOAL, PageId(i), t(i as u64));
        b.install(NO_GOAL, PageId(i), t(i as u64));
    }
    b.set_dedicated(ClassId(1), 2);
    // Touch three no-goal pages as class 1: each migrates; third displaces
    // the first.
    for (j, i) in [0u32, 1, 2].iter().enumerate() {
        if b.resident(PageId(*i)) {
            b.access(ClassId(1), PageId(*i), t(100 + j as u64));
        }
        b.check_invariants();
    }
    assert!(b.total_resident() <= 6);
}

/// Belady's anomaly — the paper's §3 cites [2] as the counterexample to the
/// "more buffer, more hits" assumption: under FIFO, the classic reference
/// string suffers MORE faults with 4 frames than with 3. LRU, being a stack
/// policy, cannot show this (see `lru_stack_property`).
#[test]
fn fifo_exhibits_beladys_anomaly() {
    let reference: [u32; 12] = [1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5];
    let faults = |frames: usize| -> u64 {
        let mut pool = Pool::new(frames, PolicySpec::Fifo);
        for (i, &p) in reference.iter().enumerate() {
            let page = PageId(p);
            if pool.contains(page) {
                pool.on_hit(page, t(i as u64));
            } else {
                pool.on_miss();
                pool.insert(page, t(i as u64));
            }
        }
        pool.stats().misses
    };
    let three = faults(3);
    let four = faults(4);
    assert_eq!(three, 9);
    assert_eq!(four, 10, "more frames, more faults: the FIFO anomaly");
    assert!(four > three);
}
