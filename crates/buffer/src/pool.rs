//! A fixed-capacity page pool driving one replacement policy.

use dmm_sim::SimTime;

use crate::page::{IdHashSet, PageId};
use crate::policy::{Policy, PolicyKind, PolicySpec};

/// Hit/miss accounting per pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Accesses satisfied by this pool.
    pub hits: u64,
    /// Accesses this pool was responsible for but could not satisfy.
    pub misses: u64,
    /// Pages inserted.
    pub insertions: u64,
    /// Pages evicted by capacity pressure or shrinking.
    pub evictions: u64,
    /// Capacity changes applied to the pool.
    pub resizes: u64,
}

impl PoolStats {
    /// Hit rate over recorded accesses (0 if none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Merges another pool's counters into this one.
    pub fn merge(&mut self, other: &PoolStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
        self.resizes += other.resizes;
    }
}

/// A bounded set of resident pages with a replacement policy.
#[derive(Debug, Clone)]
pub struct Pool {
    capacity: usize,
    resident: IdHashSet<PageId>,
    policy: PolicyKind,
    spec: PolicySpec,
    stats: PoolStats,
}

impl Pool {
    /// Creates an empty pool with room for `capacity` pages.
    pub fn new(capacity: usize, spec: PolicySpec) -> Self {
        Pool {
            capacity,
            resident: IdHashSet::default(),
            policy: spec.build(),
            spec,
            stats: PoolStats::default(),
        }
    }

    /// Capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resident page count.
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// True if no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }

    /// The policy specification this pool was built with.
    pub fn spec(&self) -> PolicySpec {
        self.spec
    }

    /// True if `page` is resident.
    pub fn contains(&self, page: PageId) -> bool {
        self.resident.contains(&page)
    }

    /// Iterates over resident pages (unspecified order).
    pub fn pages(&self) -> impl Iterator<Item = PageId> + '_ {
        self.resident.iter().copied()
    }

    /// Accounting snapshot.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Resets accounting (e.g. at the end of simulation warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = PoolStats::default();
    }

    /// Records a hit on a resident page. Panics if the page is absent.
    pub fn on_hit(&mut self, page: PageId, now: SimTime) {
        assert!(self.resident.contains(&page), "hit on non-resident page");
        self.policy.on_access(page, now);
        self.stats.hits += 1;
    }

    /// Records a miss charged to this pool (the page will typically be
    /// inserted once fetched).
    pub fn on_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// Inserts a page, evicting as needed to respect capacity. Returns the
    /// evicted pages. Panics if the pool has zero capacity or the page is
    /// already resident.
    pub fn insert(&mut self, page: PageId, now: SimTime) -> Vec<PageId> {
        assert!(self.capacity > 0, "insert into zero-capacity pool");
        assert!(!self.resident.contains(&page), "page already resident");
        let mut evicted = Vec::new();
        while self.resident.len() >= self.capacity {
            let victim = self.policy.victim().expect("non-empty pool has victim");
            self.evict(victim);
            evicted.push(victim);
        }
        self.resident.insert(page);
        self.policy.on_insert(page, now);
        self.stats.insertions += 1;
        evicted
    }

    /// Removes a page without counting it as a capacity eviction (e.g. the
    /// page migrates from the no-goal pool into a dedicated pool, §6).
    /// Returns true if the page was resident.
    pub fn remove(&mut self, page: PageId) -> bool {
        if self.resident.remove(&page) {
            self.policy.on_remove(page);
            true
        } else {
            false
        }
    }

    /// Shrinks or grows capacity; shrinking evicts overflowing pages, which
    /// are returned.
    pub fn set_capacity(&mut self, capacity: usize) -> Vec<PageId> {
        if capacity != self.capacity {
            self.stats.resizes += 1;
        }
        self.capacity = capacity;
        let mut evicted = Vec::new();
        while self.resident.len() > self.capacity {
            let victim = self.policy.victim().expect("non-empty pool has victim");
            self.evict(victim);
            evicted.push(victim);
        }
        evicted
    }

    /// Immutable access to the policy (victim freshness peeks).
    pub fn policy(&self) -> &PolicyKind {
        &self.policy
    }

    /// Mutable access to the policy, for cost-based benefit updates.
    pub fn policy_mut(&mut self) -> &mut PolicyKind {
        &mut self.policy
    }

    fn evict(&mut self, victim: PageId) {
        let was_there = self.resident.remove(&victim);
        debug_assert!(was_there, "victim not resident");
        self.policy.on_remove(victim);
        self.stats.evictions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn insert_until_eviction() {
        let mut pool = Pool::new(2, PolicySpec::Lru);
        assert!(pool.insert(PageId(1), t(0)).is_empty());
        assert!(pool.insert(PageId(2), t(1)).is_empty());
        let evicted = pool.insert(PageId(3), t(2));
        assert_eq!(evicted, vec![PageId(1)]);
        assert_eq!(pool.len(), 2);
        assert!(pool.contains(PageId(2)));
        assert!(pool.contains(PageId(3)));
        assert_eq!(pool.stats().evictions, 1);
    }

    #[test]
    fn hits_update_recency() {
        let mut pool = Pool::new(2, PolicySpec::Lru);
        pool.insert(PageId(1), t(0));
        pool.insert(PageId(2), t(1));
        pool.on_hit(PageId(1), t(2));
        let evicted = pool.insert(PageId(3), t(3));
        assert_eq!(evicted, vec![PageId(2)]);
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn shrink_evicts_and_grow_keeps() {
        let mut pool = Pool::new(4, PolicySpec::Lru);
        for i in 0..4u32 {
            pool.insert(PageId(i), t(i as u64));
        }
        let evicted = pool.set_capacity(2);
        assert_eq!(evicted, vec![PageId(0), PageId(1)]);
        assert_eq!(pool.len(), 2);
        assert!(pool.set_capacity(10).is_empty());
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn remove_is_not_an_eviction() {
        let mut pool = Pool::new(2, PolicySpec::Lru);
        pool.insert(PageId(1), t(0));
        assert!(pool.remove(PageId(1)));
        assert!(!pool.remove(PageId(1)));
        assert_eq!(pool.stats().evictions, 0);
    }

    #[test]
    fn hit_rate_accounting() {
        let mut pool = Pool::new(2, PolicySpec::Lru);
        pool.insert(PageId(1), t(0));
        pool.on_hit(PageId(1), t(1));
        pool.on_miss();
        assert!((pool.stats().hit_rate() - 0.5).abs() < 1e-12);
        pool.reset_stats();
        assert_eq!(pool.stats(), PoolStats::default());
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_insert_panics() {
        let mut pool = Pool::new(0, PolicySpec::Lru);
        pool.insert(PageId(1), t(0));
    }

    #[test]
    fn capacity_one_churns() {
        let mut pool = Pool::new(1, PolicySpec::Fifo);
        assert!(pool.insert(PageId(1), t(0)).is_empty());
        assert_eq!(pool.insert(PageId(2), t(1)), vec![PageId(1)]);
        assert_eq!(pool.insert(PageId(3), t(2)), vec![PageId(2)]);
    }
}
