//! # dmm-buffer — buffer pools, replacement policies, heat tracking
//!
//! The per-node storage substrate of the ICDE'99 reproduction:
//!
//! * [`page`] — page and class identifiers (class 0 is the paper's No-Goal
//!   class) and a pass-through hasher for integer keys.
//! * [`indexed_heap`] — an updatable binary min-heap, the workhorse behind
//!   every priority-ordered policy (the paper's §6 replacement keeps pages
//!   "sorted by their benefit" in a priority queue).
//! * [`policy`] — the replacement-policy trait plus LRU, FIFO, CLOCK,
//!   LRU-K (\[21\]) and the externally-priced cost-based policy of
//!   Sinnwell & Weikum used in §6.
//! * [`pool`] — a fixed-capacity page pool driving one policy, with hit/miss
//!   accounting and shrink/grow support.
//! * [`heat`] — LRU-K-style heat (access-frequency) estimation, kept per
//!   page and per class, created and deleted on demand (§6).
//! * [`partition`] — the per-node partitioned buffer: one dedicated pool per
//!   goal class plus the no-goal pool that owns all undedicated frames,
//!   with the paper's resize and residency rules.
//! * [`tiered`] — the multi-tier local memory stack: one partitioned buffer
//!   per memory tier, with demotion instead of eviction and hotness-based
//!   promotion (or a static hash split baseline).

pub mod heat;
pub mod indexed_heap;
pub mod page;
pub mod partition;
pub mod policy;
pub mod pool;
pub mod tiered;

pub use heat::{HeatEstimator, PageHeat};
pub use indexed_heap::IndexedMinHeap;
pub use page::{ClassId, IdHashMap, IdHashSet, PageId, NO_GOAL};
pub use partition::{InstallOutcome, LocalAccess, PartitionedBuffer};
pub use policy::{
    ClockPolicy, CostBasedPolicy, FifoPolicy, LruKPolicy, LruPolicy, Policy, PolicyKind, PolicySpec,
};
pub use pool::{Pool, PoolStats};
pub use tiered::{TierPolicy, TieredAccess, TieredBuffer, TieredInstall};
