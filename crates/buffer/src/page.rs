//! Page and class identifiers.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Identifies one database page (4 KB in the paper's setup).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u32);

impl PageId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifies a workload class. Class 0 is the No-Goal class; classes
/// `1..=K` are the Goal classes (paper §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub u16);

/// The paper's special No-Goal class (all operations without a response
/// time goal).
pub const NO_GOAL: ClassId = ClassId(0);

impl ClassId {
    /// True for the No-Goal class.
    pub fn is_no_goal(self) -> bool {
        self == NO_GOAL
    }

    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Stable metric-key segment for this class: `"nogoal"` for the
    /// No-Goal class, `"class{k}"` otherwise. Shared by every subsystem
    /// that emits per-class metric keys (`buffer.*`, `span.*`) so the key
    /// scheme cannot drift between them.
    pub fn metric_label(self) -> String {
        if self.is_no_goal() {
            "nogoal".to_string()
        } else {
            format!("class{}", self.0)
        }
    }
}

impl std::fmt::Display for ClassId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_no_goal() {
            write!(f, "no-goal")
        } else {
            write!(f, "class{}", self.0)
        }
    }
}

/// Keys that are small dense integers, usable as direct indices into a
/// vector-backed table. Page ids are allocated contiguously from zero, so
/// hot-path structures (the indexed heap's position map, the cost-based
/// policy's epoch stamps) can use a plain `Vec` lookup instead of a hash
/// probe.
pub trait DenseId: Copy {
    /// The dense index of this id.
    fn dense_index(self) -> usize;
}

impl DenseId for PageId {
    fn dense_index(self) -> usize {
        self.index()
    }
}

/// Pass-through hasher for already-uniform integer keys (page/class ids).
/// The default SipHash is overkill for these hot lookups; this follows the
/// standard "integer-key map" optimization without external crates.
#[derive(Default)]
pub struct IdHasher(u64);

impl Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        // Only used via write_u32/write_u64 below in practice; fold bytes
        // defensively for completeness.
        for &b in bytes {
            self.0 = self.0.rotate_left(8) ^ b as u64;
        }
    }
    fn write_u32(&mut self, v: u32) {
        // Fibonacci multiplicative spread keeps dense ids well distributed
        // across HashMap buckets.
        self.0 = (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
    fn write_u16(&mut self, v: u16) {
        self.write_u32(v as u32);
    }
}

/// `HashMap` with the pass-through hasher.
pub type IdHashMap<K, V> = HashMap<K, V, BuildHasherDefault<IdHasher>>;
/// `HashSet` with the pass-through hasher.
pub type IdHashSet<K> = HashSet<K, BuildHasherDefault<IdHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_map_roundtrip() {
        let mut m: IdHashMap<PageId, u32> = IdHashMap::default();
        for i in 0..1000u32 {
            m.insert(PageId(i), i * 2);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&PageId(i)), Some(&(i * 2)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn class_display_and_predicates() {
        assert!(NO_GOAL.is_no_goal());
        assert!(!ClassId(3).is_no_goal());
        assert_eq!(NO_GOAL.to_string(), "no-goal");
        assert_eq!(ClassId(2).to_string(), "class2");
        assert_eq!(PageId(7).to_string(), "p7");
    }
}
