//! An updatable binary min-heap.
//!
//! Paper §6: "every buffer manager uses a priority queue to keep the pages
//! sorted by their benefit and in the case of a buffer replacement action,
//! the page with the locally lowest benefit is replaced." Benefits change on
//! every access and on every heat-dissemination message, so the queue must
//! support `decrease/increase-key` and arbitrary removal — hence an *indexed*
//! heap with a position map rather than `std::collections::BinaryHeap`.

use crate::page::DenseId;

/// Heap-slot sentinel for "item not present".
const ABSENT: u32 = u32::MAX;

/// Min-heap over `(priority, item)` with O(log n) insert/remove/update and
/// O(1) membership and peek. Priorities must not be NaN.
///
/// The position map is a dense vector indexed by [`DenseId::dense_index`]
/// rather than a hash map: every sift level swaps two entries and must
/// update both their positions, so re-keying one page in a pool of n pages
/// costs up to 2·log₂ n position writes — on the repricing hot path those
/// writes are the bulk of the work, and an array store beats even a cheap
/// hash probe several-fold. Memory is one `u32` per page id ever seen.
#[derive(Debug, Clone)]
pub struct IndexedMinHeap<I, P> {
    /// Heap array of (priority, item).
    heap: Vec<(P, I)>,
    /// dense_index(item) → index in `heap`, `ABSENT` when not present.
    pos: Vec<u32>,
}

impl<I, P> Default for IndexedMinHeap<I, P>
where
    I: Copy + Eq + DenseId,
    P: PartialOrd + Copy,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<I, P> IndexedMinHeap<I, P>
where
    I: Copy + Eq + DenseId,
    P: PartialOrd + Copy,
{
    /// Empty heap.
    pub fn new() -> Self {
        IndexedMinHeap {
            heap: Vec::new(),
            pos: Vec::new(),
        }
    }

    fn slot(&self, item: &I) -> Option<usize> {
        match self.pos.get(item.dense_index()) {
            Some(&s) if s != ABSENT => Some(s as usize),
            _ => None,
        }
    }

    fn set_slot(&mut self, item: I, slot: u32) {
        let i = item.dense_index();
        if i >= self.pos.len() {
            self.pos.resize(i + 1, ABSENT);
        }
        self.pos[i] = slot;
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// True if `item` is present.
    pub fn contains(&self, item: &I) -> bool {
        self.slot(item).is_some()
    }

    /// Current priority of `item`.
    pub fn priority(&self, item: &I) -> Option<P> {
        self.slot(item).map(|i| self.heap[i].0)
    }

    /// Inserts a new item. Panics if already present (use [`Self::update`]).
    pub fn insert(&mut self, item: I, priority: P) {
        assert!(!self.contains(&item), "item already in heap");
        let i = self.heap.len();
        self.heap.push((priority, item));
        self.set_slot(item, i as u32);
        self.sift_up(i);
    }

    /// Changes the priority of an existing item. Panics if absent.
    pub fn update(&mut self, item: I, priority: P) {
        let i = self.slot(&item).expect("item not in heap");
        let old = self.heap[i].0;
        self.heap[i].0 = priority;
        if priority < old {
            self.sift_up(i);
        } else {
            self.sift_down(i);
        }
    }

    /// Inserts or updates.
    pub fn upsert(&mut self, item: I, priority: P) {
        if self.contains(&item) {
            self.update(item, priority);
        } else {
            self.insert(item, priority);
        }
    }

    /// The minimum-priority entry without removing it.
    pub fn peek_min(&self) -> Option<(&I, &P)> {
        self.heap.first().map(|(p, i)| (i, p))
    }

    /// Removes and returns the minimum-priority entry.
    pub fn pop_min(&mut self) -> Option<(I, P)> {
        if self.heap.is_empty() {
            return None;
        }
        Some(self.remove_at(0))
    }

    /// Removes `item` if present; returns its priority.
    pub fn remove(&mut self, item: &I) -> Option<P> {
        let i = self.slot(item)?;
        Some(self.remove_at(i).1)
    }

    /// Applies `f` to every priority in place. `f` must be strictly
    /// order-preserving (`a ≤ b ⇒ f(a) ≤ f(b)`), so the heap shape stays a
    /// valid min-heap without any sifting — O(n) with no moves. Used by the
    /// lazy cost-based policy to decay all benefits by a common factor.
    pub fn map_priorities(&mut self, f: impl Fn(P) -> P) {
        for entry in &mut self.heap {
            entry.0 = f(entry.0);
        }
        #[cfg(debug_assertions)]
        for i in 1..self.heap.len() {
            let parent = (i - 1) / 2;
            debug_assert!(
                !self.less(i, parent),
                "map_priorities callback was not order-preserving"
            );
        }
    }

    /// Drains all items (unordered).
    pub fn clear(&mut self) {
        self.heap.clear();
        // Keep the dense table allocated; just mark everything absent.
        self.pos.fill(ABSENT);
    }

    /// Iterates over all entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&I, &P)> {
        self.heap.iter().map(|(p, i)| (i, p))
    }

    fn remove_at(&mut self, i: usize) -> (I, P) {
        let last = self.heap.len() - 1;
        self.heap.swap(i, last);
        let (p, item) = self.heap.pop().expect("non-empty");
        self.set_slot(item, ABSENT);
        if i < self.heap.len() {
            self.set_slot(self.heap[i].1, i as u32);
            self.sift_down(i);
            self.sift_up(i);
        }
        (item, p)
    }

    fn less(&self, a: usize, b: usize) -> bool {
        self.heap[a]
            .0
            .partial_cmp(&self.heap[b].0)
            .expect("NaN priority")
            .is_lt()
    }

    fn swap_entries(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        // Both items are already present, so their dense slots exist: plain
        // stores, no growth check needed.
        self.pos[self.heap[a].1.dense_index()] = a as u32;
        self.pos[self.heap[b].1.dense_index()] = b as u32;
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.less(i, parent) {
                self.swap_entries(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < self.heap.len() && self.less(l, smallest) {
                smallest = l;
            }
            if r < self.heap.len() && self.less(r, smallest) {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.swap_entries(i, smallest);
            i = smallest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageId;

    #[test]
    fn pops_in_priority_order() {
        let mut h: IndexedMinHeap<PageId, f64> = IndexedMinHeap::new();
        for (i, p) in [(1u32, 3.0), (2, 1.0), (3, 2.0), (4, 0.5)] {
            h.insert(PageId(i), p);
        }
        let order: Vec<u32> = std::iter::from_fn(|| h.pop_min().map(|(i, _)| i.0)).collect();
        assert_eq!(order, vec![4, 2, 3, 1]);
    }

    #[test]
    fn update_moves_both_directions() {
        let mut h: IndexedMinHeap<PageId, f64> = IndexedMinHeap::new();
        h.insert(PageId(1), 1.0);
        h.insert(PageId(2), 2.0);
        h.insert(PageId(3), 3.0);
        h.update(PageId(3), 0.1); // decrease
        assert_eq!(h.peek_min().unwrap().0 .0, 3);
        h.update(PageId(3), 9.0); // increase
        assert_eq!(h.peek_min().unwrap().0 .0, 1);
        assert_eq!(h.priority(&PageId(3)), Some(9.0));
    }

    #[test]
    fn remove_arbitrary() {
        let mut h: IndexedMinHeap<PageId, u64> = IndexedMinHeap::new();
        for i in 0..10u32 {
            h.insert(PageId(i), (i * 7 % 10) as u64);
        }
        assert_eq!(h.remove(&PageId(5)), Some(5 * 7 % 10));
        assert_eq!(h.remove(&PageId(5)), None);
        assert_eq!(h.len(), 9);
        // Remaining pops are still sorted.
        let mut prev = 0;
        while let Some((_, p)) = h.pop_min() {
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn tuple_priorities() {
        // Used by LRU-K: (kth_time, last_time) lexicographic.
        let mut h: IndexedMinHeap<PageId, (u64, u64)> = IndexedMinHeap::new();
        h.insert(PageId(1), (0, 5));
        h.insert(PageId(2), (0, 3));
        h.insert(PageId(3), (10, 0));
        assert_eq!(h.pop_min().unwrap().0 .0, 2);
        assert_eq!(h.pop_min().unwrap().0 .0, 1);
        assert_eq!(h.pop_min().unwrap().0 .0, 3);
    }

    #[test]
    fn map_priorities_preserves_order() {
        let mut h: IndexedMinHeap<PageId, f64> = IndexedMinHeap::new();
        for (i, p) in [(1u32, 3.0), (2, 1.0), (3, f64::INFINITY), (4, 0.5)] {
            h.insert(PageId(i), p);
        }
        h.map_priorities(|p| p * 0.5);
        assert_eq!(h.priority(&PageId(1)), Some(1.5));
        assert_eq!(h.priority(&PageId(3)), Some(f64::INFINITY));
        let order: Vec<u32> = std::iter::from_fn(|| h.pop_min().map(|(i, _)| i.0)).collect();
        assert_eq!(order, vec![4, 2, 1, 3]);
    }

    #[test]
    #[should_panic(expected = "already in heap")]
    fn double_insert_panics() {
        let mut h: IndexedMinHeap<PageId, f64> = IndexedMinHeap::new();
        h.insert(PageId(1), 1.0);
        h.insert(PageId(1), 2.0);
    }
}
