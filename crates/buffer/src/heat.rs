//! Heat (access-frequency) estimation, LRU-K style.
//!
//! Paper §6: "the heat being defined as the number of accesses (locally resp.
//! globally) per time unit. In the implementation the LRU-k algorithm \[21\] is
//! used to approximate the heat." A page's heat estimate is `k` divided by
//! the span back to its k-th most recent access. Per-class heat records are
//! "dynamically created and deleted on demand": a class heat exists only
//! while some node in the system holds a dedicated buffer for that class and
//! the class has actually touched the page.

use dmm_sim::SimTime;

use crate::page::{ClassId, IdHashMap};

/// Sliding window of the last `k` access instants of one page (for one
/// class, or accumulated over all classes).
#[derive(Debug, Clone)]
pub struct HeatEstimator {
    k: usize,
    /// Newest last; at most `k` entries.
    times: Vec<SimTime>,
}

impl HeatEstimator {
    /// Estimator with window `k ≥ 1`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        HeatEstimator {
            k,
            times: Vec::with_capacity(k),
        }
    }

    /// Records one access at `now`.
    pub fn record(&mut self, now: SimTime) {
        if self.times.len() == self.k {
            self.times.remove(0); // k is tiny (2–3)
        }
        self.times.push(now);
    }

    /// Number of accesses remembered (≤ k).
    pub fn count(&self) -> usize {
        self.times.len()
    }

    /// Instant of the most recent access.
    pub fn last_access(&self) -> Option<SimTime> {
        self.times.last().copied()
    }

    /// Heat in accesses per millisecond at instant `now`:
    /// `m / (now − t_m)` over the `m ≤ k` remembered accesses. Returns 0
    /// before the first access. A page accessed only once very recently has
    /// a deliberately conservative heat (its window is measured from that
    /// single access to `now`).
    pub fn heat_per_ms(&self, now: SimTime) -> f64 {
        let Some(&oldest) = self.times.first() else {
            return 0.0;
        };
        let span_ms = now.since(oldest).as_millis_f64();
        // Guard division for a just-touched page: treat the window as at
        // least one microsecond.
        let span_ms = span_ms.max(1e-3);
        self.times.len() as f64 / span_ms
    }
}

/// Heat bookkeeping for one page on one node: the accumulated heat over all
/// accesses plus on-demand per-class heats.
#[derive(Debug, Clone)]
pub struct PageHeat {
    k: usize,
    /// Heat over every access regardless of class (§6 "accumulated heat").
    pub accumulated: HeatEstimator,
    per_class: IdHashMap<ClassId, HeatEstimator>,
}

impl PageHeat {
    /// New bookkeeping with LRU-K window `k`.
    pub fn new(k: usize) -> Self {
        PageHeat {
            k,
            accumulated: HeatEstimator::new(k),
            per_class: IdHashMap::default(),
        }
    }

    /// Records an access by `class` at `now`. `track_class` says whether a
    /// dedicated buffer for this class exists anywhere in the system — only
    /// then is the per-class record created (§6 overhead reduction).
    pub fn record(&mut self, class: ClassId, now: SimTime, track_class: bool) {
        self.accumulated.record(now);
        if track_class {
            self.per_class
                .entry(class)
                .or_insert_with(|| HeatEstimator::new(self.k))
                .record(now);
        } else if let Some(est) = self.per_class.get_mut(&class) {
            // Keep an existing record warm even if tracking toggled off
            // between accesses; deletion is explicit via `drop_class`.
            est.record(now);
        }
    }

    /// Per-class heat at `now` (0 when the class never touched the page or
    /// its record was deleted).
    pub fn class_heat_per_ms(&self, class: ClassId, now: SimTime) -> f64 {
        self.per_class
            .get(&class)
            .map_or(0.0, |e| e.heat_per_ms(now))
    }

    /// Accumulated heat at `now`.
    pub fn accumulated_heat_per_ms(&self, now: SimTime) -> f64 {
        self.accumulated.heat_per_ms(now)
    }

    /// Deletes the per-class record (invoked when the last dedicated buffer
    /// of a class disappears system-wide).
    pub fn drop_class(&mut self, class: ClassId) {
        self.per_class.remove(&class);
    }

    /// Number of per-class records currently held.
    pub fn tracked_classes(&self) -> usize {
        self.per_class.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::NO_GOAL;

    fn ms(x: u64) -> SimTime {
        SimTime::from_nanos(x * 1_000_000)
    }

    #[test]
    fn heat_reflects_access_rate() {
        let mut e = HeatEstimator::new(2);
        assert_eq!(e.heat_per_ms(ms(10)), 0.0);
        e.record(ms(0));
        e.record(ms(10));
        // 2 accesses over 10ms window (measured at t=10) → 0.2/ms.
        assert!((e.heat_per_ms(ms(10)) - 0.2).abs() < 1e-9);
        // Heat decays as time passes without accesses.
        assert!(e.heat_per_ms(ms(40)) < 0.2);
    }

    #[test]
    fn window_slides() {
        let mut e = HeatEstimator::new(2);
        e.record(ms(0));
        e.record(ms(100));
        e.record(ms(110));
        // Oldest remembered is now t=100.
        assert!((e.heat_per_ms(ms(120)) - 2.0 / 20.0).abs() < 1e-9);
        assert_eq!(e.count(), 2);
        assert_eq!(e.last_access(), Some(ms(110)));
    }

    #[test]
    fn hot_page_beats_cold_page() {
        let mut hot = HeatEstimator::new(3);
        let mut cold = HeatEstimator::new(3);
        // Hot: 6 accesses 5ms apart — its K-window slides to [15, 25].
        for i in 0..6 {
            hot.record(ms(i * 5));
        }
        // Cold: 3 accesses 50ms apart — its K-window stays [0, 100].
        for i in 0..3 {
            cold.record(ms(i * 50));
        }
        let now = ms(110);
        assert!(hot.heat_per_ms(now) > cold.heat_per_ms(now));
    }

    #[test]
    fn per_class_records_on_demand() {
        let mut h = PageHeat::new(2);
        h.record(ClassId(1), ms(0), true);
        h.record(NO_GOAL, ms(1), false); // no dedicated buffer: not tracked
        assert_eq!(h.tracked_classes(), 1);
        assert!(h.class_heat_per_ms(ClassId(1), ms(2)) > 0.0);
        assert_eq!(h.class_heat_per_ms(NO_GOAL, ms(2)), 0.0);
        // Accumulated heat counts both accesses.
        assert!(h.accumulated_heat_per_ms(ms(2)) > h.class_heat_per_ms(ClassId(1), ms(2)));
        h.drop_class(ClassId(1));
        assert_eq!(h.tracked_classes(), 0);
        assert_eq!(h.class_heat_per_ms(ClassId(1), ms(3)), 0.0);
    }

    #[test]
    fn just_touched_page_has_finite_heat() {
        let mut e = HeatEstimator::new(2);
        e.record(ms(5));
        let h = e.heat_per_ms(ms(5));
        assert!(h.is_finite() && h > 0.0);
    }
}
