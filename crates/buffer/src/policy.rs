//! Replacement policies.
//!
//! The partitioning algorithm only assumes that "increasing the size of any
//! local buffer of a class will increase the buffer hit rate" (paper §3), a
//! property of every stack policy (LRU, LRU-K, CLOCK) but famously not of
//! FIFO (Belady's anomaly \[2\]) — FIFO is provided precisely so tests can
//! exhibit that counterexample. The §6 cost-based policy orders pages by an
//! externally computed *benefit* and evicts the locally lowest-benefit page.

use dmm_sim::SimTime;

use crate::indexed_heap::IndexedMinHeap;
use crate::page::{IdHashMap, PageId};

/// Behaviour every replacement policy provides. Membership bookkeeping is
/// done by the owning [`crate::pool::Pool`]; the policy only orders pages.
pub trait Policy {
    /// A page was inserted (it was not tracked before).
    fn on_insert(&mut self, page: PageId, now: SimTime);
    /// A tracked page was accessed (hit).
    fn on_access(&mut self, page: PageId, now: SimTime);
    /// A tracked page left the pool (eviction by the pool or external drop).
    fn on_remove(&mut self, page: PageId);
    /// The page this policy would evict next, if any.
    fn victim(&mut self) -> Option<PageId>;
    /// Number of tracked pages.
    fn len(&self) -> usize;
    /// True if no pages are tracked.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Configuration for constructing fresh policy instances per pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicySpec {
    /// Least recently used.
    Lru,
    /// First in, first out.
    Fifo,
    /// Second-chance CLOCK.
    Clock,
    /// LRU-K with the given history depth `k` (the paper approximates page
    /// heat with LRU-k, \[21\]).
    LruK(usize),
    /// Cost-based benefit ordering of §6; benefits are pushed in by the
    /// cluster layer via [`CostBasedPolicy::set_benefit`].
    CostBased,
}

impl PolicySpec {
    /// Builds a fresh policy instance.
    pub fn build(self) -> PolicyKind {
        match self {
            PolicySpec::Lru => PolicyKind::Lru(LruPolicy::new()),
            PolicySpec::Fifo => PolicyKind::Fifo(FifoPolicy::new()),
            PolicySpec::Clock => PolicyKind::Clock(ClockPolicy::new()),
            PolicySpec::LruK(k) => PolicyKind::LruK(LruKPolicy::new(k)),
            PolicySpec::CostBased => PolicyKind::CostBased(CostBasedPolicy::new()),
        }
    }
}

/// Static-dispatch union of all policies (pools are homogeneous per node but
/// nodes in one simulation may mix policies).
#[derive(Debug, Clone)]
pub enum PolicyKind {
    /// See [`LruPolicy`].
    Lru(LruPolicy),
    /// See [`FifoPolicy`].
    Fifo(FifoPolicy),
    /// See [`ClockPolicy`].
    Clock(ClockPolicy),
    /// See [`LruKPolicy`].
    LruK(LruKPolicy),
    /// See [`CostBasedPolicy`].
    CostBased(CostBasedPolicy),
}

impl PolicyKind {
    /// Access the cost-based policy, if that is what this is.
    pub fn as_cost_based_mut(&mut self) -> Option<&mut CostBasedPolicy> {
        match self {
            PolicyKind::CostBased(p) => Some(p),
            _ => None,
        }
    }

    /// Immutable access to the cost-based policy, if that is what this is
    /// (freshness peeks on the victim path).
    pub fn as_cost_based(&self) -> Option<&CostBasedPolicy> {
        match self {
            PolicyKind::CostBased(p) => Some(p),
            _ => None,
        }
    }
}

macro_rules! dispatch {
    ($self:ident, $p:ident => $body:expr) => {
        match $self {
            PolicyKind::Lru($p) => $body,
            PolicyKind::Fifo($p) => $body,
            PolicyKind::Clock($p) => $body,
            PolicyKind::LruK($p) => $body,
            PolicyKind::CostBased($p) => $body,
        }
    };
}

impl Policy for PolicyKind {
    fn on_insert(&mut self, page: PageId, now: SimTime) {
        dispatch!(self, p => p.on_insert(page, now))
    }
    fn on_access(&mut self, page: PageId, now: SimTime) {
        dispatch!(self, p => p.on_access(page, now))
    }
    fn on_remove(&mut self, page: PageId) {
        dispatch!(self, p => p.on_remove(page))
    }
    fn victim(&mut self) -> Option<PageId> {
        dispatch!(self, p => p.victim())
    }
    fn len(&self) -> usize {
        dispatch!(self, p => p.len())
    }
}

// ---------------------------------------------------------------------------
// LRU
// ---------------------------------------------------------------------------

/// Least-recently-used: victim is the page with the smallest access stamp.
#[derive(Debug, Clone, Default)]
pub struct LruPolicy {
    heap: IndexedMinHeap<PageId, u64>,
    stamp: u64,
}

impl LruPolicy {
    /// Empty policy.
    pub fn new() -> Self {
        Self::default()
    }
    fn bump(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }
}

impl Policy for LruPolicy {
    fn on_insert(&mut self, page: PageId, _now: SimTime) {
        let s = self.bump();
        self.heap.insert(page, s);
    }
    fn on_access(&mut self, page: PageId, _now: SimTime) {
        let s = self.bump();
        self.heap.update(page, s);
    }
    fn on_remove(&mut self, page: PageId) {
        self.heap.remove(&page);
    }
    fn victim(&mut self) -> Option<PageId> {
        self.heap.peek_min().map(|(p, _)| *p)
    }
    fn len(&self) -> usize {
        self.heap.len()
    }
}

// ---------------------------------------------------------------------------
// FIFO
// ---------------------------------------------------------------------------

/// First-in-first-out: victim is the page inserted earliest; accesses do not
/// change the order. Exhibits Belady's anomaly, violating the paper's §3
/// monotonicity assumption — provided for tests and comparison.
#[derive(Debug, Clone, Default)]
pub struct FifoPolicy {
    heap: IndexedMinHeap<PageId, u64>,
    stamp: u64,
}

impl FifoPolicy {
    /// Empty policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for FifoPolicy {
    fn on_insert(&mut self, page: PageId, _now: SimTime) {
        self.stamp += 1;
        self.heap.insert(page, self.stamp);
    }
    fn on_access(&mut self, _page: PageId, _now: SimTime) {}
    fn on_remove(&mut self, page: PageId) {
        self.heap.remove(&page);
    }
    fn victim(&mut self) -> Option<PageId> {
        self.heap.peek_min().map(|(p, _)| *p)
    }
    fn len(&self) -> usize {
        self.heap.len()
    }
}

// ---------------------------------------------------------------------------
// CLOCK
// ---------------------------------------------------------------------------

/// Second-chance CLOCK: a circular scan clears reference bits and evicts the
/// first unreferenced page.
#[derive(Debug, Clone, Default)]
pub struct ClockPolicy {
    frames: Vec<PageId>,
    referenced: Vec<bool>,
    pos: IdHashMap<PageId, usize>,
    hand: usize,
}

impl ClockPolicy {
    /// Empty policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for ClockPolicy {
    fn on_insert(&mut self, page: PageId, _now: SimTime) {
        assert!(!self.pos.contains_key(&page));
        self.pos.insert(page, self.frames.len());
        self.frames.push(page);
        self.referenced.push(true);
    }
    fn on_access(&mut self, page: PageId, _now: SimTime) {
        let &i = self.pos.get(&page).expect("page not tracked");
        self.referenced[i] = true;
    }
    fn on_remove(&mut self, page: PageId) {
        let Some(i) = self.pos.remove(&page) else {
            return;
        };
        self.frames.swap_remove(i);
        self.referenced.swap_remove(i);
        if i < self.frames.len() {
            self.pos.insert(self.frames[i], i);
        }
        if self.hand >= self.frames.len() {
            self.hand = 0;
        }
    }
    fn victim(&mut self) -> Option<PageId> {
        if self.frames.is_empty() {
            return None;
        }
        // At most two sweeps: the first clears bits, the second must find a
        // victim.
        for _ in 0..2 * self.frames.len() {
            let i = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            if self.referenced[i] {
                self.referenced[i] = false;
            } else {
                return Some(self.frames[i]);
            }
        }
        Some(self.frames[self.hand])
    }
    fn len(&self) -> usize {
        self.frames.len()
    }
}

// ---------------------------------------------------------------------------
// LRU-K
// ---------------------------------------------------------------------------

/// LRU-K of O'Neil, O'Neil & Weikum \[21\]: victim is the page with the oldest
/// K-th most recent reference ("maximum backward K-distance"); pages with
/// fewer than K references have infinite distance and are evicted first, LRU
/// among themselves.
#[derive(Debug, Clone)]
pub struct LruKPolicy {
    k: usize,
    /// Last up-to-K access stamps per page, newest last.
    history: IdHashMap<PageId, Vec<u64>>,
    /// Priority: (kth-most-recent stamp or 0 when history < K, last stamp).
    heap: IndexedMinHeap<PageId, (u64, u64)>,
    stamp: u64,
}

impl LruKPolicy {
    /// Policy with history depth `k ≥ 1` (k = 1 degenerates to LRU).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        LruKPolicy {
            k,
            history: IdHashMap::default(),
            heap: IndexedMinHeap::new(),
            stamp: 0,
        }
    }

    fn record(&mut self, page: PageId) {
        self.stamp += 1;
        let h = self.history.entry(page).or_default();
        h.push(self.stamp);
        if h.len() > self.k {
            h.remove(0); // k is tiny (2–3); shifting is cheap
        }
        let last = *h.last().expect("just pushed");
        let kth = if h.len() == self.k { h[0] } else { 0 };
        self.heap.upsert(page, (kth, last));
    }
}

impl Policy for LruKPolicy {
    fn on_insert(&mut self, page: PageId, _now: SimTime) {
        self.record(page);
    }
    fn on_access(&mut self, page: PageId, _now: SimTime) {
        self.record(page);
    }
    fn on_remove(&mut self, page: PageId) {
        self.heap.remove(&page);
        self.history.remove(&page);
    }
    fn victim(&mut self) -> Option<PageId> {
        self.heap.peek_min().map(|(p, _)| *p)
    }
    fn len(&self) -> usize {
        self.heap.len()
    }
}

// ---------------------------------------------------------------------------
// Cost-based (benefit queue)
// ---------------------------------------------------------------------------

/// The §6 policy: pages carry an externally computed benefit (the access-cost
/// difference between keeping and dropping the local copy) and the page with
/// the lowest benefit is the victim. Newly inserted pages start at infinite
/// benefit until the cluster layer prices them, so a page is never evicted
/// in the instant between fetch and pricing.
///
/// Every benefit is stamped with the *epoch* (observation-interval sequence
/// number) it was computed at. The lazy maintenance mode of the cluster
/// layer uses the stamps for bounded lazy invalidation: instead of
/// re-pricing every page per interval, it consults
/// [`Self::min_with_freshness`] right before an eviction and recomputes only
/// stale heap minima. [`Self::invalidate`] marks a single page stale in
/// O(1), and [`Self::scale_benefits`] applies the per-epoch multiplicative
/// decay that keeps stale over-estimates from pinning cold pages in memory.
#[derive(Debug, Clone)]
pub struct CostBasedPolicy {
    heap: IndexedMinHeap<PageId, f64>,
    /// `epoch + 1` a page's benefit was computed at, indexed densely by page
    /// id; 0 (never priced, explicitly invalidated, or evicted) is stale at
    /// every epoch. A dense vector, not a hash map: the stamp is read on
    /// every lazy victim probe and written on every access-path
    /// invalidation, both too hot for hashing.
    priced_epoch: Vec<u64>,
    /// Implicit multiplier on every stored priority. [`Self::scale_benefits`]
    /// only updates this factor — O(1), not O(pool) — because a common
    /// positive multiplier never changes the heap order. New prices are
    /// divided by `scale` on the way in and priorities multiplied by it on
    /// the way out, so externally benefits behave as if each entry had been
    /// scaled in place. Renormalized physically before it underflows.
    scale: f64,
}

impl Default for CostBasedPolicy {
    fn default() -> Self {
        CostBasedPolicy {
            heap: IndexedMinHeap::new(),
            priced_epoch: Vec::new(),
            scale: 1.0,
        }
    }
}

impl CostBasedPolicy {
    /// Empty policy.
    pub fn new() -> Self {
        Self::default()
    }

    fn stamp(&self, page: PageId) -> u64 {
        self.priced_epoch.get(page.index()).copied().unwrap_or(0)
    }

    fn set_stamp(&mut self, page: PageId, stamp: u64) {
        let i = page.index();
        if i >= self.priced_epoch.len() {
            self.priced_epoch.resize(i + 1, 0);
        }
        self.priced_epoch[i] = stamp;
    }

    /// Sets the benefit of a tracked page, stamping it as priced at `epoch`.
    /// Ignored for untracked pages (the page may have been evicted between
    /// pricing and delivery).
    pub fn set_benefit(&mut self, page: PageId, benefit: f64, epoch: u64) {
        assert!(!benefit.is_nan());
        if self.heap.contains(&page) {
            self.heap.update(page, benefit / self.scale);
            self.set_stamp(page, epoch + 1);
        }
    }

    /// Current benefit of a tracked page.
    pub fn benefit(&self, page: PageId) -> Option<f64> {
        self.heap.priority(&page).map(|p| p * self.scale)
    }

    /// Marks a tracked page's benefit stale (O(1)); its next appearance as
    /// heap minimum forces a recompute. No-op for untracked pages.
    pub fn invalidate(&mut self, page: PageId) {
        self.set_stamp(page, 0);
    }

    /// True if `page`'s benefit was computed at `epoch`.
    pub fn is_fresh(&self, page: PageId, epoch: u64) -> bool {
        self.stamp(page) == epoch + 1
    }

    /// The current heap minimum together with whether its benefit is fresh
    /// *enough* at `epoch`: priced at the current or the previous epoch.
    /// The lazy victim loop calls this, re-prices the page when stale, and
    /// retries until the minimum is fresh.
    ///
    /// Accepting the previous epoch matters for cost: pages touched since
    /// pricing are explicitly [`Self::invalidate`]d (stale at any age), so a
    /// one-epoch-old stamp can only belong to an *untouched* page — whose
    /// benefit the per-epoch decay already aged — and re-pricing it would
    /// mostly reproduce the decayed estimate. Requiring exact-epoch
    /// freshness instead forces a wave of recomputes at the start of every
    /// interval for near-zero ranking change.
    pub fn min_with_freshness(&self, epoch: u64) -> Option<(PageId, bool)> {
        self.heap.peek_min().map(|(&page, _)| {
            let stamp = self.stamp(page);
            let fresh = stamp != 0 && (epoch + 1).saturating_sub(stamp) <= 1;
            (page, fresh)
        })
    }

    /// Multiplies every benefit by `factor` (0 < factor ≤ 1) without
    /// touching the epoch stamps. Scaling preserves the heap order, keeps
    /// `∞` (unpriced) entries at `∞`, and drives pages that stopped being
    /// re-priced toward the heap minimum, where the lazy victim loop gives
    /// them a fresh price before any eviction decision.
    ///
    /// O(1): only the implicit `scale` factor changes, so the lazy
    /// mode's per-interval maintenance does no per-page work at all — the
    /// full per-interval cost is the victim-loop recomputes,
    /// O(evictions · log pool). The stored priorities are renormalized
    /// physically only when the accumulated factor approaches underflow
    /// (every ~640 intervals at the default decay), which amortizes to
    /// nothing.
    pub fn scale_benefits(&mut self, factor: f64) {
        assert!(factor > 0.0 && factor <= 1.0, "decay factor {factor}");
        self.scale *= factor;
        if self.scale < 1e-120 {
            let s = self.scale;
            self.heap.map_priorities(|b| b * s);
            self.scale = 1.0;
        }
    }
}

impl Policy for CostBasedPolicy {
    fn on_insert(&mut self, page: PageId, _now: SimTime) {
        self.heap.insert(page, f64::INFINITY);
    }
    fn on_access(&mut self, _page: PageId, _now: SimTime) {
        // Benefit changes are driven by the heat bookkeeping outside.
    }
    fn on_remove(&mut self, page: PageId) {
        self.heap.remove(&page);
        self.invalidate(page);
    }
    fn victim(&mut self) -> Option<PageId> {
        self.heap.peek_min().map(|(p, _)| *p)
    }
    fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut p = LruPolicy::new();
        p.on_insert(PageId(1), t(0));
        p.on_insert(PageId(2), t(1));
        p.on_insert(PageId(3), t(2));
        p.on_access(PageId(1), t(3));
        assert_eq!(p.victim(), Some(PageId(2)));
        p.on_remove(PageId(2));
        assert_eq!(p.victim(), Some(PageId(3)));
    }

    #[test]
    fn fifo_ignores_accesses() {
        let mut p = FifoPolicy::new();
        p.on_insert(PageId(1), t(0));
        p.on_insert(PageId(2), t(1));
        p.on_access(PageId(1), t(2));
        assert_eq!(p.victim(), Some(PageId(1)));
    }

    #[test]
    fn clock_gives_second_chance() {
        let mut p = ClockPolicy::new();
        p.on_insert(PageId(1), t(0));
        p.on_insert(PageId(2), t(1));
        p.on_insert(PageId(3), t(2));
        // All referenced: first sweep clears 1,2,3 then evicts 1.
        assert_eq!(p.victim(), Some(PageId(1)));
        // Re-reference 2; next victim scan starts after 1's slot.
        p.on_access(PageId(2), t(3));
        p.on_remove(PageId(1));
        assert_eq!(p.victim(), Some(PageId(3)));
    }

    #[test]
    fn clock_remove_keeps_state_consistent() {
        let mut p = ClockPolicy::new();
        for i in 0..5u32 {
            p.on_insert(PageId(i), t(i as u64));
        }
        p.on_remove(PageId(2));
        p.on_remove(PageId(4));
        assert_eq!(p.len(), 3);
        let v = p.victim().expect("non-empty");
        assert!([0u32, 1, 3].contains(&v.0));
    }

    #[test]
    fn lru_k_prefers_pages_without_full_history() {
        let mut p = LruKPolicy::new(2);
        p.on_insert(PageId(1), t(0));
        p.on_access(PageId(1), t(1)); // 1 has full history
        p.on_insert(PageId(2), t(2)); // 2 has one access only
        assert_eq!(p.victim(), Some(PageId(2)));
        // Among <K pages, LRU applies.
        p.on_insert(PageId(3), t(3));
        assert_eq!(p.victim(), Some(PageId(2)));
    }

    #[test]
    fn lru_k_orders_by_kth_access() {
        let mut p = LruKPolicy::new(2);
        p.on_insert(PageId(1), t(0));
        p.on_access(PageId(1), t(1));
        p.on_insert(PageId(2), t(2));
        p.on_access(PageId(2), t(3));
        // kth (2nd-most-recent) stamps: page1 = stamp1, page2 = stamp3.
        assert_eq!(p.victim(), Some(PageId(1)));
        // Two more accesses to page1 push its kth stamp past page2's.
        p.on_access(PageId(1), t(4));
        p.on_access(PageId(1), t(5));
        assert_eq!(p.victim(), Some(PageId(2)));
    }

    #[test]
    fn lru_k1_behaves_like_lru() {
        let mut p = LruKPolicy::new(1);
        p.on_insert(PageId(1), t(0));
        p.on_insert(PageId(2), t(1));
        p.on_access(PageId(1), t(2));
        assert_eq!(p.victim(), Some(PageId(2)));
    }

    #[test]
    fn cost_based_orders_by_benefit() {
        let mut p = CostBasedPolicy::new();
        p.on_insert(PageId(1), t(0));
        p.on_insert(PageId(2), t(0));
        // Unpriced pages are never victims ahead of priced ones.
        p.set_benefit(PageId(1), 5.0, 0);
        assert_eq!(p.victim(), Some(PageId(1)));
        p.set_benefit(PageId(2), 1.0, 0);
        assert_eq!(p.victim(), Some(PageId(2)));
        // Pricing an evicted page is a no-op.
        p.on_remove(PageId(2));
        p.set_benefit(PageId(2), 0.0, 0);
        assert_eq!(p.victim(), Some(PageId(1)));
    }

    #[test]
    fn cost_based_tracks_freshness_per_epoch() {
        let mut p = CostBasedPolicy::new();
        p.on_insert(PageId(1), t(0));
        // Unpriced pages are stale at every epoch.
        assert_eq!(p.min_with_freshness(0), Some((PageId(1), false)));
        p.set_benefit(PageId(1), 2.0, 3);
        assert!(p.is_fresh(PageId(1), 3));
        assert!(!p.is_fresh(PageId(1), 4));
        assert_eq!(p.min_with_freshness(3), Some((PageId(1), true)));
        // O(1) invalidation forces a recompute at the next victim check.
        p.invalidate(PageId(1));
        assert_eq!(p.min_with_freshness(3), Some((PageId(1), false)));
        // Removal drops the stamp too: a re-inserted page starts stale.
        p.set_benefit(PageId(1), 2.0, 3);
        p.on_remove(PageId(1));
        p.on_insert(PageId(1), t(1));
        assert!(!p.is_fresh(PageId(1), 3));
    }

    #[test]
    fn cost_based_decay_preserves_order_and_infinities() {
        let mut p = CostBasedPolicy::new();
        p.on_insert(PageId(1), t(0));
        p.on_insert(PageId(2), t(0));
        p.on_insert(PageId(3), t(0));
        p.set_benefit(PageId(1), 8.0, 0);
        p.set_benefit(PageId(2), 2.0, 0);
        p.scale_benefits(0.5);
        assert_eq!(p.benefit(PageId(1)), Some(4.0));
        assert_eq!(p.benefit(PageId(2)), Some(1.0));
        assert_eq!(p.benefit(PageId(3)), Some(f64::INFINITY));
        assert_eq!(p.victim(), Some(PageId(2)));
        // Decay does not touch freshness stamps.
        assert!(p.is_fresh(PageId(1), 0));
    }

    #[test]
    fn policy_kind_dispatch() {
        let mut k = PolicySpec::Lru.build();
        k.on_insert(PageId(1), t(0));
        k.on_insert(PageId(2), t(1));
        assert_eq!(k.len(), 2);
        assert_eq!(k.victim(), Some(PageId(1)));
        assert!(k.as_cost_based_mut().is_none());
        assert!(k.as_cost_based().is_none());
        let mut c = PolicySpec::CostBased.build();
        c.on_insert(PageId(9), t(0));
        c.as_cost_based_mut()
            .expect("cost based")
            .set_benefit(PageId(9), 2.0, 0);
        assert!(c
            .as_cost_based()
            .expect("cost based")
            .is_fresh(PageId(9), 0));
        assert_eq!(c.victim(), Some(PageId(9)));
    }
}
