//! The per-node partitioned buffer manager.
//!
//! Each node's reserved memory is split into at most one dedicated pool per
//! goal class plus the no-goal pool, which always owns every undedicated
//! frame (paper §3, Eq. 7). A page is resident in **exactly one** local pool.
//! Access and insertion follow §6:
//!
//! * a request by class `k` that finds the page in *any* dedicated pool is a
//!   plain hit;
//! * if `k` has a dedicated pool and the page sits in the no-goal pool, the
//!   page *moves* into `k`'s pool ("acquired … from the local no-goal buffer,
//!   from which it is removed");
//! * on a local miss the fetched page is installed in `k`'s dedicated pool if
//!   one exists, else in the no-goal pool;
//! * pages evicted from any pool leave the node entirely.
//!
//! Resizing is best-effort (§5(e)): a request is granted up to the memory
//! not dedicated to other classes, and the caller learns the granted size.

use dmm_sim::SimTime;

use crate::page::{ClassId, IdHashMap, PageId, NO_GOAL};
use crate::policy::PolicySpec;
use crate::pool::{Pool, PoolStats};

/// Result of a local access attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LocalAccess {
    /// The page was found; `pool` is the pool that satisfied the hit.
    Hit {
        /// Pool that held the page.
        pool: ClassId,
    },
    /// The page was found in the no-goal pool and migrated into the
    /// requesting class's dedicated pool. Still a hit (no I/O); `evicted`
    /// pages were displaced from the dedicated pool and left the node.
    MovedToDedicated {
        /// Pages displaced by the migration.
        evicted: Vec<PageId>,
    },
    /// The page is not resident on this node.
    Miss,
}

/// Result of installing a freshly fetched page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstallOutcome {
    /// False when no frame was available (the page passed through uncached).
    pub cached: bool,
    /// Pages displaced to make room; they have left the node.
    pub evicted: Vec<PageId>,
}

/// Per-node partitioned buffer: pools indexed by class id (0 = no-goal).
#[derive(Debug, Clone)]
pub struct PartitionedBuffer {
    total_pages: usize,
    pools: Vec<Pool>,
    /// page → class of the pool currently holding it.
    owner: IdHashMap<PageId, ClassId>,
}

impl PartitionedBuffer {
    /// Creates a buffer of `total_pages` frames supporting goal classes
    /// `1..=num_goal_classes`. Initially everything belongs to the no-goal
    /// pool.
    pub fn new(total_pages: usize, num_goal_classes: usize, spec: PolicySpec) -> Self {
        assert!(total_pages > 0, "node must have at least one frame");
        let mut pools = Vec::with_capacity(num_goal_classes + 1);
        pools.push(Pool::new(total_pages, spec));
        for _ in 0..num_goal_classes {
            pools.push(Pool::new(0, spec));
        }
        PartitionedBuffer {
            total_pages,
            pools,
            owner: IdHashMap::default(),
        }
    }

    /// Total frames on this node.
    pub fn total_pages(&self) -> usize {
        self.total_pages
    }

    /// Number of goal classes supported.
    pub fn num_goal_classes(&self) -> usize {
        self.pools.len() - 1
    }

    /// Dedicated pool size of `class` in pages (0 for the no-goal class's
    /// "dedication" — ask [`Self::no_goal_capacity`] instead).
    pub fn dedicated_pages(&self, class: ClassId) -> usize {
        if class.is_no_goal() {
            0
        } else {
            self.pools[class.index()].capacity()
        }
    }

    /// Current capacity of the no-goal pool.
    pub fn no_goal_capacity(&self) -> usize {
        self.pools[0].capacity()
    }

    /// Sum of all dedicated pool capacities.
    pub fn total_dedicated_pages(&self) -> usize {
        self.pools[1..].iter().map(Pool::capacity).sum()
    }

    /// True if `class` currently has a dedicated pool on this node.
    pub fn has_dedicated(&self, class: ClassId) -> bool {
        !class.is_no_goal() && self.pools[class.index()].capacity() > 0
    }

    /// Which pool holds `page`, if any.
    pub fn lookup(&self, page: PageId) -> Option<ClassId> {
        self.owner.get(&page).copied()
    }

    /// True if the page is resident anywhere on this node.
    pub fn resident(&self, page: PageId) -> bool {
        self.owner.contains_key(&page)
    }

    /// Total resident pages across pools.
    pub fn total_resident(&self) -> usize {
        self.owner.len()
    }

    /// Pool accounting for `class`'s pool (class 0 = no-goal pool).
    pub fn pool_stats(&self, class: ClassId) -> PoolStats {
        self.pools[class.index()].stats()
    }

    /// Immutable pool access (for inspection and pricing walks).
    pub fn pool(&self, class: ClassId) -> &Pool {
        &self.pools[class.index()]
    }

    /// Mutable pool access (for cost-based benefit updates).
    pub fn pool_mut(&mut self, class: ClassId) -> &mut Pool {
        &mut self.pools[class.index()]
    }

    /// Resets all pool statistics.
    pub fn reset_stats(&mut self) {
        for p in &mut self.pools {
            p.reset_stats();
        }
    }

    /// Attempts a local access by `class` for `page` per the §6 rules.
    /// On `Miss` the miss is charged to the pool the page would live in.
    pub fn access(&mut self, class: ClassId, page: PageId, now: SimTime) -> LocalAccess {
        let target = self.target_pool(class);
        match self.lookup(page) {
            Some(holder) if holder.is_no_goal() && !target.is_no_goal() => {
                // Hit in the no-goal buffer; migrate into the dedicated pool.
                self.pools[0].on_hit(page, now);
                let removed = self.pools[0].remove(page);
                debug_assert!(removed);
                self.owner.remove(&page);
                let evicted = self.install_in(target, page, now);
                LocalAccess::MovedToDedicated { evicted }
            }
            Some(holder) => {
                self.pools[holder.index()].on_hit(page, now);
                LocalAccess::Hit { pool: holder }
            }
            None => {
                self.pools[target.index()].on_miss();
                LocalAccess::Miss
            }
        }
    }

    /// Installs a freshly fetched page for `class`; returns the install
    /// outcome. If the target pool has zero frames (every frame is dedicated
    /// elsewhere) the page is used without being cached (`cached == false`).
    /// Panics if the page is already resident.
    pub fn install(&mut self, class: ClassId, page: PageId, now: SimTime) -> InstallOutcome {
        assert!(!self.resident(page), "page already resident");
        let target = self.target_pool(class);
        if self.pools[target.index()].capacity() == 0 {
            return InstallOutcome {
                cached: false,
                evicted: Vec::new(),
            };
        }
        let evicted = self.install_in(target, page, now);
        InstallOutcome {
            cached: true,
            evicted,
        }
    }

    /// Drops `page` from whatever pool holds it. Returns true if it was
    /// resident.
    pub fn drop_page(&mut self, page: PageId) -> bool {
        match self.owner.remove(&page) {
            Some(holder) => {
                let removed = self.pools[holder.index()].remove(page);
                debug_assert!(removed);
                true
            }
            None => false,
        }
    }

    /// Best-effort resize of `class`'s dedicated pool (§5(e)): grants at most
    /// the frames not dedicated to other goal classes, reassigns the
    /// remainder to the no-goal pool, and returns `(granted, evicted)` where
    /// `evicted` pages left the node.
    pub fn set_dedicated(
        &mut self,
        class: ClassId,
        requested_pages: usize,
    ) -> (usize, Vec<PageId>) {
        assert!(
            !class.is_no_goal(),
            "cannot dedicate memory to the no-goal class"
        );
        let others: usize = self
            .pools
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(i, _)| *i != class.index())
            .map(|(_, p)| p.capacity())
            .sum();
        let granted = requested_pages.min(self.total_pages - others);
        let no_goal_cap = self.total_pages - others - granted;

        let mut evicted = Vec::new();
        // Shrinks first so frames are free before any pool grows.
        if granted < self.pools[class.index()].capacity() {
            evicted.extend(self.shrink(class.index(), granted));
        }
        if no_goal_cap < self.pools[0].capacity() {
            evicted.extend(self.shrink(0, no_goal_cap));
        }
        self.pools[class.index()].set_capacity(granted);
        self.pools[0].set_capacity(no_goal_cap);
        (granted, evicted)
    }

    fn shrink(&mut self, pool_idx: usize, cap: usize) -> Vec<PageId> {
        let evicted = self.pools[pool_idx].set_capacity(cap);
        for p in &evicted {
            self.owner.remove(p);
        }
        evicted
    }

    fn install_in(&mut self, target: ClassId, page: PageId, now: SimTime) -> Vec<PageId> {
        let evicted = self.pools[target.index()].insert(page, now);
        for p in &evicted {
            self.owner.remove(p);
        }
        self.owner.insert(page, target);
        evicted
    }

    /// The pool an access by `class` targets: the class's dedicated pool if
    /// present, else the no-goal pool.
    pub fn target_pool(&self, class: ClassId) -> ClassId {
        if self.has_dedicated(class) {
            class
        } else {
            NO_GOAL
        }
    }

    /// Debug invariant: owner map and pool contents agree, and no pool
    /// exceeds its capacity; capacities sum to the node total.
    pub fn check_invariants(&self) {
        let cap_sum: usize = self.pools.iter().map(Pool::capacity).sum();
        assert_eq!(cap_sum, self.total_pages, "capacities must sum to total");
        let mut counted = 0;
        for (i, pool) in self.pools.iter().enumerate() {
            assert!(pool.len() <= pool.capacity(), "pool over capacity");
            for page in pool.pages() {
                assert_eq!(
                    self.owner.get(&page),
                    Some(&ClassId(i as u16)),
                    "owner map out of sync"
                );
                counted += 1;
            }
        }
        assert_eq!(counted, self.owner.len(), "stray owner entries");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn buf() -> PartitionedBuffer {
        PartitionedBuffer::new(8, 2, PolicySpec::Lru)
    }

    #[test]
    fn initial_layout() {
        let b = buf();
        assert_eq!(b.no_goal_capacity(), 8);
        assert_eq!(b.dedicated_pages(ClassId(1)), 0);
        assert!(!b.has_dedicated(ClassId(1)));
        b.check_invariants();
    }

    #[test]
    fn miss_then_install_goes_to_no_goal_without_dedication() {
        let mut b = buf();
        assert_eq!(b.access(ClassId(1), PageId(5), t(0)), LocalAccess::Miss);
        let out = b.install(ClassId(1), PageId(5), t(1));
        assert!(out.cached && out.evicted.is_empty());
        assert_eq!(b.lookup(PageId(5)), Some(NO_GOAL));
        b.check_invariants();
    }

    #[test]
    fn dedicated_pool_attracts_pages() {
        let mut b = buf();
        let (granted, _) = b.set_dedicated(ClassId(1), 3);
        assert_eq!(granted, 3);
        assert_eq!(b.no_goal_capacity(), 5);
        assert_eq!(b.access(ClassId(1), PageId(5), t(0)), LocalAccess::Miss);
        b.install(ClassId(1), PageId(5), t(1));
        assert_eq!(b.lookup(PageId(5)), Some(ClassId(1)));
        b.check_invariants();
    }

    #[test]
    fn no_goal_hit_migrates_into_dedicated_pool() {
        let mut b = buf();
        // Page enters via a no-goal access.
        b.access(NO_GOAL, PageId(7), t(0));
        b.install(NO_GOAL, PageId(7), t(1));
        assert_eq!(b.lookup(PageId(7)), Some(NO_GOAL));
        // Class 1 gets a pool, then touches the page: it migrates.
        b.set_dedicated(ClassId(1), 2);
        match b.access(ClassId(1), PageId(7), t(2)) {
            LocalAccess::MovedToDedicated { evicted } => assert!(evicted.is_empty()),
            other => panic!("expected migration, got {other:?}"),
        }
        assert_eq!(b.lookup(PageId(7)), Some(ClassId(1)));
        b.check_invariants();
    }

    #[test]
    fn hit_in_foreign_dedicated_pool_stays_put() {
        let mut b = buf();
        b.set_dedicated(ClassId(1), 2);
        b.access(ClassId(1), PageId(3), t(0));
        b.install(ClassId(1), PageId(3), t(1));
        // Class 2 (no pool of its own) touches the page: plain hit, no move.
        assert_eq!(
            b.access(ClassId(2), PageId(3), t(2)),
            LocalAccess::Hit { pool: ClassId(1) }
        );
        assert_eq!(b.lookup(PageId(3)), Some(ClassId(1)));
    }

    #[test]
    fn grants_are_bounded_by_other_dedications() {
        let mut b = buf();
        let (g1, _) = b.set_dedicated(ClassId(1), 6);
        assert_eq!(g1, 6);
        let (g2, _) = b.set_dedicated(ClassId(2), 5);
        assert_eq!(g2, 2, "only 8 - 6 frames remain");
        assert_eq!(b.no_goal_capacity(), 0);
        b.check_invariants();
    }

    #[test]
    fn shrinking_no_goal_evicts_its_pages() {
        let mut b = buf();
        for i in 0..8u32 {
            b.access(NO_GOAL, PageId(i), t(i as u64));
            b.install(NO_GOAL, PageId(i), t(i as u64));
        }
        assert_eq!(b.total_resident(), 8);
        let (granted, evicted) = b.set_dedicated(ClassId(1), 3);
        assert_eq!(granted, 3);
        assert_eq!(evicted.len(), 3, "no-goal shrank 8 → 5");
        assert_eq!(b.total_resident(), 5);
        for p in &evicted {
            assert!(!b.resident(*p));
        }
        b.check_invariants();
    }

    #[test]
    fn shrinking_dedicated_returns_frames_to_no_goal() {
        let mut b = buf();
        b.set_dedicated(ClassId(1), 4);
        for i in 0..4u32 {
            b.access(ClassId(1), PageId(i), t(i as u64));
            b.install(ClassId(1), PageId(i), t(i as u64));
        }
        let (granted, evicted) = b.set_dedicated(ClassId(1), 1);
        assert_eq!(granted, 1);
        assert_eq!(evicted.len(), 3);
        assert_eq!(b.no_goal_capacity(), 7);
        b.check_invariants();
    }

    #[test]
    fn dedicated_eviction_drops_pages_from_node() {
        let mut b = buf();
        b.set_dedicated(ClassId(1), 2);
        for i in 0..3u32 {
            b.access(ClassId(1), PageId(i), t(i as u64));
            let out = b.install(ClassId(1), PageId(i), t(i as u64));
            if i == 2 {
                assert_eq!(out.evicted, vec![PageId(0)]);
            }
        }
        assert!(!b.resident(PageId(0)), "victim left the node entirely");
        b.check_invariants();
    }

    #[test]
    fn miss_charged_to_target_pool() {
        let mut b = buf();
        b.set_dedicated(ClassId(1), 2);
        b.access(ClassId(1), PageId(9), t(0));
        assert_eq!(b.pool_stats(ClassId(1)).misses, 1);
        assert_eq!(b.pool_stats(NO_GOAL).misses, 0);
        b.access(ClassId(2), PageId(9), t(1));
        assert_eq!(b.pool_stats(NO_GOAL).misses, 1);
    }

    #[test]
    fn drop_page_removes_everywhere() {
        let mut b = buf();
        b.install(NO_GOAL, PageId(1), t(0));
        assert!(b.drop_page(PageId(1)));
        assert!(!b.drop_page(PageId(1)));
        assert!(!b.resident(PageId(1)));
        b.check_invariants();
    }
}
