//! Multi-tier local memory: a stack of [`PartitionedBuffer`]s, one per
//! local memory tier, with demotion instead of eviction.
//!
//! The paper's node has a single local buffer; this module generalizes it
//! into K memory tiers (DRAM over CXL-style far memory, say), fastest
//! first. The per-tier partitioning rules (§3/§6: one dedicated pool per
//! goal class plus the no-goal pool) apply unchanged *within* each tier.
//! Across tiers:
//!
//! * under [`TierPolicy::Hotness`] a page evicted from tier `t` is
//!   **demoted**: it is re-installed in the first deeper tier with room for
//!   its pool, displacing that tier's victims downward in turn; only pages
//!   falling off the last memory tier leave the node. A hit in tier `t > 0`
//!   **promotes** the page into the fastest tier with capacity for its
//!   class, cascading demotions to make room. Fresh installs take a free
//!   frame in the fastest tier that has one, but once every tier is full
//!   they enter the deepest tier *on probation* — a page must be re-hit to
//!   climb, so one-touch miss traffic cannot churn the fast tiers.
//! * under [`TierPolicy::StaticHash`] each page is pinned to one tier by a
//!   hash of its id, weighted by the tier frame counts — the classic static
//!   split baseline. No promotion, no demotion; evictions leave the node.
//!
//! With a single memory tier both policies degenerate to exactly the
//! historical [`PartitionedBuffer`] behaviour, which is what keeps default
//! configurations byte-identical (see DESIGN.md §5i).

use dmm_sim::SimTime;

use crate::page::{ClassId, PageId};
use crate::partition::{LocalAccess, PartitionedBuffer};
use crate::policy::PolicySpec;
use crate::pool::{Pool, PoolStats};

/// Placement policy across the local memory tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TierPolicy {
    /// Hotness-based: fill free frames fastest-first, install on probation
    /// at the bottom under pressure, promote on access, demote on
    /// displacement.
    #[default]
    Hotness,
    /// Static split: pages are pinned to tiers by a hash of their id,
    /// proportionally to tier capacities.
    StaticHash,
}

/// Result of a local access against the tier stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TieredAccess {
    /// The page was found in memory tier `tier`.
    Hit {
        /// Tier the hit was served from.
        tier: usize,
        /// Pool now holding the page (after any migration/promotion).
        pool: ClassId,
        /// True when the page changed pools: a within-tier no-goal →
        /// dedicated migration, or a cross-tier promotion. The page was
        /// freshly inserted and needs repricing.
        moved: bool,
        /// Pages displaced off the node entirely.
        evicted: Vec<PageId>,
        /// Pages displaced into a deeper tier (still on the node; freshly
        /// inserted there and in need of repricing).
        demoted: Vec<PageId>,
    },
    /// The page is not resident in any memory tier of this node.
    Miss,
}

/// Result of installing a freshly fetched page into the tier stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TieredInstall {
    /// False when no frame was available (the page passed through uncached).
    pub cached: bool,
    /// Tier the page landed in (meaningful when `cached`).
    pub tier: usize,
    /// Pages displaced off the node entirely.
    pub evicted: Vec<PageId>,
    /// Pages displaced into a deeper tier.
    pub demoted: Vec<PageId>,
}

/// A node's local memory: one [`PartitionedBuffer`] per memory tier.
#[derive(Debug, Clone)]
pub struct TieredBuffer {
    tiers: Vec<PartitionedBuffer>,
    policy: TierPolicy,
    /// Cumulative pages promoted out of each tier (index = source tier).
    promotions: Vec<u64>,
    /// Cumulative pages demoted out of each tier (index = source tier).
    demotions: Vec<u64>,
}

impl TieredBuffer {
    /// Builds a tier stack with `frames[t]` frames in tier `t` (fastest
    /// first; every tier nonzero), each supporting goal classes
    /// `1..=num_goal_classes` under replacement policy `spec`.
    pub fn new(
        frames: &[usize],
        num_goal_classes: usize,
        spec: PolicySpec,
        policy: TierPolicy,
    ) -> Self {
        assert!(!frames.is_empty(), "need at least one memory tier");
        let tiers = frames
            .iter()
            .map(|&f| PartitionedBuffer::new(f, num_goal_classes, spec))
            .collect::<Vec<_>>();
        TieredBuffer {
            promotions: vec![0; tiers.len()],
            demotions: vec![0; tiers.len()],
            tiers,
            policy,
        }
    }

    /// Number of local memory tiers.
    pub fn num_tiers(&self) -> usize {
        self.tiers.len()
    }

    /// The tier placement policy.
    pub fn policy(&self) -> TierPolicy {
        self.policy
    }

    /// Total frames across all memory tiers.
    pub fn total_pages(&self) -> usize {
        self.tiers.iter().map(PartitionedBuffer::total_pages).sum()
    }

    /// Frames in tier `t`.
    pub fn tier_frames(&self, t: usize) -> usize {
        self.tiers[t].total_pages()
    }

    /// Resident pages in tier `t`.
    pub fn tier_resident(&self, t: usize) -> usize {
        self.tiers[t].total_resident()
    }

    /// Cumulative promotions out of each tier.
    pub fn promotions(&self) -> &[u64] {
        &self.promotions
    }

    /// Cumulative demotions out of each tier.
    pub fn demotions(&self) -> &[u64] {
        &self.demotions
    }

    /// Number of goal classes supported.
    pub fn num_goal_classes(&self) -> usize {
        self.tiers[0].num_goal_classes()
    }

    /// Dedicated capacity of `class`, summed over tiers.
    pub fn dedicated_pages(&self, class: ClassId) -> usize {
        self.tiers.iter().map(|b| b.dedicated_pages(class)).sum()
    }

    /// No-goal capacity, summed over tiers.
    pub fn no_goal_capacity(&self) -> usize {
        self.tiers
            .iter()
            .map(PartitionedBuffer::no_goal_capacity)
            .sum()
    }

    /// Total dedicated capacity, summed over tiers and classes.
    pub fn total_dedicated_pages(&self) -> usize {
        self.tiers
            .iter()
            .map(PartitionedBuffer::total_dedicated_pages)
            .sum()
    }

    /// True if `class` has a dedicated pool in any tier.
    pub fn has_dedicated(&self, class: ClassId) -> bool {
        self.tiers.iter().any(|b| b.has_dedicated(class))
    }

    /// Which pool holds `page`, searching all tiers.
    pub fn lookup(&self, page: PageId) -> Option<ClassId> {
        self.locate(page).map(|(_, c)| c)
    }

    /// Which `(tier, pool)` holds `page`, if any.
    pub fn locate(&self, page: PageId) -> Option<(usize, ClassId)> {
        self.tiers
            .iter()
            .enumerate()
            .find_map(|(t, b)| b.lookup(page).map(|c| (t, c)))
    }

    /// True if the page is resident in any tier.
    pub fn resident(&self, page: PageId) -> bool {
        self.locate(page).is_some()
    }

    /// Total resident pages across tiers.
    pub fn total_resident(&self) -> usize {
        self.tiers
            .iter()
            .map(PartitionedBuffer::total_resident)
            .sum()
    }

    /// Pool accounting for `class`, merged over tiers.
    pub fn pool_stats(&self, class: ClassId) -> PoolStats {
        let mut stats = PoolStats::default();
        for b in &self.tiers {
            stats.merge(&b.pool_stats(class));
        }
        stats
    }

    /// Resident pages of `class`'s pool, summed over tiers.
    pub fn pool_len(&self, class: ClassId) -> usize {
        self.tiers.iter().map(|b| b.pool(class).len()).sum()
    }

    /// Immutable access to `class`'s pool in tier `t`.
    pub fn pool_at(&self, t: usize, class: ClassId) -> &Pool {
        self.tiers[t].pool(class)
    }

    /// Mutable access to `class`'s pool in tier `t`.
    pub fn pool_mut_at(&mut self, t: usize, class: ClassId) -> &mut Pool {
        self.tiers[t].pool_mut(class)
    }

    /// The pool an access by `class` targets in tier `t`.
    pub fn target_pool_at(&self, t: usize, class: ClassId) -> ClassId {
        self.tiers[t].target_pool(class)
    }

    /// Where a fresh install for `class` would land.
    ///
    /// Under [`TierPolicy::Hotness`] the page takes a **free** frame in the
    /// fastest tier that has one; once every tier is full it enters the
    /// *deepest* tier with capacity — on probation. A cold one-touch page
    /// then displaces only the bottom rung, while pages that are re-hit
    /// earn their way upward through promotion, so miss traffic cannot
    /// churn the fast tiers. With a single memory tier both rules are tier
    /// 0, the historical behaviour.
    ///
    /// The page-independent answer is not defined under
    /// [`TierPolicy::StaticHash`] (pass the page via [`Self::install`]
    /// instead) — this then reports tier 0's target.
    pub fn install_target(&self, class: ClassId) -> Option<(usize, ClassId)> {
        match self.policy {
            TierPolicy::Hotness => {
                let free = (0..self.tiers.len()).find_map(|t| {
                    let target = self.tiers[t].target_pool(class);
                    let pool = self.tiers[t].pool(target);
                    (pool.capacity() > 0 && pool.len() < pool.capacity()).then_some((t, target))
                });
                free.or_else(|| {
                    (0..self.tiers.len()).rev().find_map(|t| {
                        let target = self.tiers[t].target_pool(class);
                        (self.tiers[t].pool(target).capacity() > 0).then_some((t, target))
                    })
                })
            }
            TierPolicy::StaticHash => {
                let target = self.tiers[0].target_pool(class);
                (self.tiers[0].pool(target).capacity() > 0).then_some((0, target))
            }
        }
    }

    /// Resets all pool statistics (promotion/demotion counters are
    /// cumulative and survive).
    pub fn reset_stats(&mut self) {
        for b in &mut self.tiers {
            b.reset_stats();
        }
    }

    /// Static pinned tier of `page`: a multiplicative hash of the page id
    /// mapped onto the tiers proportionally to their frame counts.
    pub fn static_tier(&self, page: PageId) -> usize {
        let total = self.total_pages() as u64;
        let h = (page.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16;
        let mut slot = h % total;
        for (t, b) in self.tiers.iter().enumerate() {
            let f = b.total_pages() as u64;
            if slot < f {
                return t;
            }
            slot -= f;
        }
        unreachable!("slot within total frames")
    }

    /// Attempts a local access by `class` for `page`. On a miss the miss is
    /// charged to the pool the page would be installed into.
    pub fn access(&mut self, class: ClassId, page: PageId, now: SimTime) -> TieredAccess {
        match self.locate(page) {
            None => {
                let t = match self.policy {
                    TierPolicy::Hotness => 0,
                    TierPolicy::StaticHash => self.static_tier(page),
                };
                let miss = self.tiers[t].access(class, page, now);
                debug_assert_eq!(miss, LocalAccess::Miss);
                TieredAccess::Miss
            }
            Some((t, holder)) => match self.policy {
                TierPolicy::StaticHash => self.access_within(t, class, page, now),
                TierPolicy::Hotness => {
                    // Promote into the fastest tier above `t` with room for
                    // this class; otherwise apply the within-tier rules.
                    let promo = (0..t).find(|&u| {
                        let target = self.tiers[u].target_pool(class);
                        self.tiers[u].pool(target).capacity() > 0
                    });
                    match promo {
                        None => self.access_within(t, class, page, now),
                        Some(u) => {
                            self.tiers[t].pool_mut(holder).on_hit(page, now);
                            let removed = self.tiers[t].drop_page(page);
                            debug_assert!(removed);
                            self.promotions[t] += 1;
                            let out = self.tiers[u].install(class, page, now);
                            debug_assert!(out.cached);
                            let target = self.tiers[u].target_pool(class);
                            let (evicted, demoted) = self.demote_chain(u, target, out.evicted, now);
                            TieredAccess::Hit {
                                tier: t,
                                pool: target,
                                moved: true,
                                evicted,
                                demoted,
                            }
                        }
                    }
                }
            },
        }
    }

    /// Within-tier access semantics at tier `t`, with tier-appropriate
    /// handling of any displaced pages.
    fn access_within(
        &mut self,
        t: usize,
        class: ClassId,
        page: PageId,
        now: SimTime,
    ) -> TieredAccess {
        match self.tiers[t].access(class, page, now) {
            LocalAccess::Hit { pool } => TieredAccess::Hit {
                tier: t,
                pool,
                moved: false,
                evicted: Vec::new(),
                demoted: Vec::new(),
            },
            LocalAccess::MovedToDedicated { evicted } => {
                let pool = self.tiers[t].target_pool(class);
                let (evicted, demoted) = match self.policy {
                    TierPolicy::Hotness => self.demote_chain(t, pool, evicted, now),
                    TierPolicy::StaticHash => (evicted, Vec::new()),
                };
                TieredAccess::Hit {
                    tier: t,
                    pool,
                    moved: true,
                    evicted,
                    demoted,
                }
            }
            LocalAccess::Miss => unreachable!("page was located in tier {t}"),
        }
    }

    /// Installs a freshly fetched page for `class`. Panics if already
    /// resident in any tier.
    pub fn install(&mut self, class: ClassId, page: PageId, now: SimTime) -> TieredInstall {
        assert!(!self.resident(page), "page already resident");
        let dest = match self.policy {
            TierPolicy::Hotness => self.install_target(class).map(|(t, _)| t),
            TierPolicy::StaticHash => {
                let t = self.static_tier(page);
                let target = self.tiers[t].target_pool(class);
                (self.tiers[t].pool(target).capacity() > 0).then_some(t)
            }
        };
        let Some(t) = dest else {
            return TieredInstall {
                cached: false,
                tier: 0,
                evicted: Vec::new(),
                demoted: Vec::new(),
            };
        };
        let out = self.tiers[t].install(class, page, now);
        debug_assert!(out.cached);
        let target = self.tiers[t].target_pool(class);
        let (evicted, demoted) = match self.policy {
            TierPolicy::Hotness => self.demote_chain(t, target, out.evicted, now),
            TierPolicy::StaticHash => (out.evicted, Vec::new()),
        };
        TieredInstall {
            cached: true,
            tier: t,
            evicted,
            demoted,
        }
    }

    /// Re-homes pages displaced from tier `from` (pool `pool`) into deeper
    /// tiers, cascading further displacements downward. Returns the pages
    /// that fell off the node entirely and those that were demoted in
    /// place. Terminates because every queued page sits strictly deeper
    /// than its predecessor.
    fn demote_chain(
        &mut self,
        from: usize,
        pool: ClassId,
        displaced: Vec<PageId>,
        now: SimTime,
    ) -> (Vec<PageId>, Vec<PageId>) {
        let mut evicted = Vec::new();
        let mut demoted = Vec::new();
        let mut queue: Vec<(usize, ClassId, PageId)> =
            displaced.into_iter().map(|p| (from, pool, p)).collect();
        let mut i = 0;
        while i < queue.len() {
            let (t, pc, p) = queue[i];
            i += 1;
            let dest = (t + 1..self.tiers.len()).find(|&u| {
                let target = self.tiers[u].target_pool(pc);
                self.tiers[u].pool(target).capacity() > 0
            });
            match dest {
                None => evicted.push(p),
                Some(u) => {
                    let out = self.tiers[u].install(pc, p, now);
                    debug_assert!(out.cached);
                    self.demotions[t] += 1;
                    demoted.push(p);
                    let target = self.tiers[u].target_pool(pc);
                    queue.extend(out.evicted.into_iter().map(|v| (u, target, v)));
                }
            }
        }
        (evicted, demoted)
    }

    /// Drops `page` from whatever tier holds it. Returns true if resident.
    pub fn drop_page(&mut self, page: PageId) -> bool {
        match self.locate(page) {
            Some((t, _)) => self.tiers[t].drop_page(page),
            None => false,
        }
    }

    /// Best-effort resize of `class`'s dedicated pools across the tier
    /// stack, splitting the grant fastest-first (§5(e) within each tier).
    /// Displaced pages leave the node — a resize is a partitioning
    /// decision, not an access, so it does not trigger demotions. Returns
    /// `(granted, evicted)` with `granted` summed over tiers.
    pub fn set_dedicated(
        &mut self,
        class: ClassId,
        requested_pages: usize,
    ) -> (usize, Vec<PageId>) {
        let mut remaining = requested_pages;
        let mut granted = 0;
        let mut evicted = Vec::new();
        for b in &mut self.tiers {
            let others: usize = (1..=b.num_goal_classes())
                .map(|i| ClassId(i as u16))
                .filter(|c| *c != class)
                .map(|c| b.dedicated_pages(c))
                .sum();
            let want = remaining.min(b.total_pages() - others);
            let (g, ev) = b.set_dedicated(class, want);
            debug_assert_eq!(g, want);
            granted += g;
            remaining -= g;
            evicted.extend(ev);
        }
        (granted, evicted)
    }

    /// Debug invariants: each tier's internal consistency plus cross-tier
    /// uniqueness (a page is resident in at most one tier).
    pub fn check_invariants(&self) {
        for b in &self.tiers {
            b.check_invariants();
        }
        if self.tiers.len() > 1 {
            let mut seen = crate::page::IdHashSet::<PageId>::default();
            for (t, b) in self.tiers.iter().enumerate() {
                for class_idx in 0..=b.num_goal_classes() {
                    for page in b.pool(ClassId(class_idx as u16)).pages() {
                        assert!(
                            seen.insert(page),
                            "page {page:?} resident in two tiers (≤ {t})"
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::NO_GOAL;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn stack(policy: TierPolicy) -> TieredBuffer {
        TieredBuffer::new(&[2, 3], 1, PolicySpec::Lru, policy)
    }

    #[test]
    fn single_tier_matches_partitioned_buffer() {
        let mut tb = TieredBuffer::new(&[4], 1, PolicySpec::Lru, TierPolicy::Hotness);
        assert_eq!(tb.access(NO_GOAL, PageId(1), t(0)), TieredAccess::Miss);
        let out = tb.install(NO_GOAL, PageId(1), t(1));
        assert!(out.cached && out.tier == 0 && out.demoted.is_empty());
        match tb.access(NO_GOAL, PageId(1), t(2)) {
            TieredAccess::Hit {
                tier: 0,
                pool,
                moved: false,
                ..
            } => assert_eq!(pool, NO_GOAL),
            other => panic!("expected plain hit, got {other:?}"),
        }
        tb.check_invariants();
    }

    #[test]
    fn installs_fill_free_frames_fastest_first_then_probation() {
        let mut tb = stack(TierPolicy::Hotness);
        // Free frames go fastest-first: 2 into tier 0, then 3 into tier 1.
        for i in 0..5u32 {
            tb.install(NO_GOAL, PageId(i), t(i as u64));
        }
        assert_eq!(tb.locate(PageId(1)), Some((0, NO_GOAL)));
        assert_eq!(tb.locate(PageId(2)), Some((1, NO_GOAL)));
        // Every tier full: a fresh page enters the *deepest* tier on
        // probation, displacing only the bottom rung — never tier 0.
        let out = tb.install(NO_GOAL, PageId(5), t(5));
        assert!(out.cached && out.tier == 1, "probationary install: {out:?}");
        assert_eq!(out.evicted.len(), 1, "bottom rung spills off the node");
        assert!(out.demoted.is_empty());
        assert_eq!(tb.locate(PageId(0)), Some((0, NO_GOAL)), "tier 0 untouched");
        tb.check_invariants();
    }

    #[test]
    fn displaced_pages_demote_to_next_tier() {
        let mut tb = stack(TierPolicy::Hotness);
        for i in 0..5u32 {
            tb.install(NO_GOAL, PageId(i), t(i as u64));
        }
        // Promoting page 2 out of tier 1 displaces tier 0's LRU page, which
        // demotes into tier 1 instead of leaving the node.
        match tb.access(NO_GOAL, PageId(2), t(10)) {
            TieredAccess::Hit {
                tier: 1,
                moved: true,
                evicted,
                demoted,
                ..
            } => {
                assert!(evicted.is_empty(), "nothing left the node");
                assert_eq!(demoted, vec![PageId(0)]);
            }
            other => panic!("expected promoting hit, got {other:?}"),
        }
        assert_eq!(tb.locate(PageId(2)), Some((0, NO_GOAL)));
        assert_eq!(tb.locate(PageId(0)), Some((1, NO_GOAL)), "victim demoted");
        assert_eq!(tb.demotions()[0], 1);
        assert_eq!(tb.total_resident(), 5);
        tb.check_invariants();
    }

    #[test]
    fn eviction_leaves_node_only_from_last_tier() {
        let mut tb = stack(TierPolicy::Hotness);
        for i in 0..5u32 {
            let out = tb.install(NO_GOAL, PageId(i), t(i as u64));
            assert!(out.evicted.is_empty(), "5 frames total, no overflow yet");
        }
        let out = tb.install(NO_GOAL, PageId(5), t(5));
        assert_eq!(out.evicted.len(), 1, "6th page overflows the stack");
        assert_eq!(tb.total_resident(), 5);
        tb.check_invariants();
    }

    #[test]
    fn hit_in_slow_tier_promotes() {
        let mut tb = stack(TierPolicy::Hotness);
        for i in 0..3u32 {
            tb.install(NO_GOAL, PageId(i), t(i as u64));
        }
        assert_eq!(tb.locate(PageId(2)), Some((1, NO_GOAL)));
        match tb.access(NO_GOAL, PageId(2), t(10)) {
            TieredAccess::Hit {
                tier: 1,
                moved: true,
                evicted,
                demoted,
                ..
            } => {
                assert!(evicted.is_empty());
                // Promotion displaced tier 0's LRU page downward.
                assert_eq!(demoted, vec![PageId(0)]);
            }
            other => panic!("expected promoting hit, got {other:?}"),
        }
        assert_eq!(tb.locate(PageId(2)), Some((0, NO_GOAL)));
        assert_eq!(tb.promotions()[1], 1);
        tb.check_invariants();
    }

    #[test]
    fn static_hash_pins_pages_and_never_promotes() {
        let mut tb = stack(TierPolicy::StaticHash);
        // Find a page pinned to tier 1.
        let slow = (0..100u32)
            .map(PageId)
            .find(|p| tb.static_tier(*p) == 1)
            .unwrap();
        tb.install(NO_GOAL, slow, t(0));
        assert_eq!(tb.locate(slow), Some((1, NO_GOAL)));
        match tb.access(NO_GOAL, slow, t(1)) {
            TieredAccess::Hit {
                tier: 1,
                moved: false,
                ..
            } => {}
            other => panic!("expected pinned hit, got {other:?}"),
        }
        assert_eq!(tb.locate(slow), Some((1, NO_GOAL)), "no promotion");
        assert_eq!(tb.promotions(), &[0, 0]);
        tb.check_invariants();
    }

    #[test]
    fn static_hash_spreads_proportionally() {
        let tb = TieredBuffer::new(&[100, 300], 1, PolicySpec::Lru, TierPolicy::StaticHash);
        let fast = (0..4000u32)
            .filter(|i| tb.static_tier(PageId(*i)) == 0)
            .count();
        // Expect ≈ 1000 of 4000 pages pinned to the 1/4-capacity fast tier.
        assert!((800..1200).contains(&fast), "fast-tier share {fast}/4000");
    }

    #[test]
    fn four_tier_drop_from_tier_0_lands_in_tier_1() {
        // The demotion-chain contract on a 4-memory-tier node: a page
        // dropped from tier t lands in tier t+1, rippling to the bottom.
        let mut tb = TieredBuffer::new(&[1, 1, 1, 1], 1, PolicySpec::Lru, TierPolicy::Hotness);
        for (i, page) in [10u32, 11, 12, 13].into_iter().enumerate() {
            tb.install(NO_GOAL, PageId(page), t(i as u64));
            assert_eq!(tb.locate(PageId(page)), Some((i, NO_GOAL)));
        }
        // Promoting the bottom page into tier 0 drops tier 0's page, which
        // lands in tier 1, whose page lands in tier 2, and so on down.
        match tb.access(NO_GOAL, PageId(13), t(10)) {
            TieredAccess::Hit {
                tier: 3,
                moved: true,
                evicted,
                demoted,
                ..
            } => {
                assert!(evicted.is_empty(), "every drop lands one rung down");
                assert_eq!(demoted, vec![PageId(10), PageId(11), PageId(12)]);
            }
            other => panic!("expected promoting hit, got {other:?}"),
        }
        for (i, page) in [13u32, 10, 11, 12].into_iter().enumerate() {
            assert_eq!(tb.locate(PageId(page)), Some((i, NO_GOAL)));
        }
        assert_eq!(tb.demotions(), &[1, 1, 1, 0]);
        // A probationary install displaces only the last rung off the node.
        let out = tb.install(NO_GOAL, PageId(14), t(11));
        assert_eq!(out.evicted, vec![PageId(12)], "only the last rung spills");
        assert!(out.demoted.is_empty());
        tb.check_invariants();
    }

    #[test]
    fn set_dedicated_splits_fastest_first() {
        let mut tb = stack(TierPolicy::Hotness);
        let (granted, _) = tb.set_dedicated(ClassId(1), 4);
        assert_eq!(granted, 4);
        assert_eq!(
            tb.pool_at(0, ClassId(1)).capacity(),
            2,
            "tier 0 filled first"
        );
        assert_eq!(tb.pool_at(1, ClassId(1)).capacity(), 2);
        assert_eq!(tb.dedicated_pages(ClassId(1)), 4);
        // Dedicated installs land in the fastest tier with class capacity.
        tb.install(ClassId(1), PageId(1), t(0));
        assert_eq!(tb.locate(PageId(1)), Some((0, ClassId(1))));
        tb.check_invariants();
    }

    #[test]
    fn demotion_respects_class_pools() {
        let mut tb = stack(TierPolicy::Hotness);
        // Class 1 dedicated only in tier 0 (2 frames); its overflow lands
        // in tier 1's *no-goal* pool (class 1 has no pool there).
        let (granted, _) = tb.set_dedicated(ClassId(1), 2);
        assert_eq!(granted, 2);
        for i in 0..3u32 {
            tb.install(ClassId(1), PageId(i), t(i as u64));
        }
        assert_eq!(tb.locate(PageId(2)), Some((1, NO_GOAL)));
        // Promoting page 2 back into the dedicated pool displaces the LRU
        // dedicated page, which demotes into tier 1's no-goal pool.
        match tb.access(ClassId(1), PageId(2), t(10)) {
            TieredAccess::Hit {
                tier: 1,
                pool,
                moved: true,
                demoted,
                ..
            } => {
                assert_eq!(pool, ClassId(1));
                assert_eq!(demoted, vec![PageId(0)]);
            }
            other => panic!("expected promoting hit, got {other:?}"),
        }
        assert_eq!(tb.locate(PageId(0)), Some((1, NO_GOAL)));
        assert_eq!(tb.pool_len(ClassId(1)), 2);
        tb.check_invariants();
    }
}
