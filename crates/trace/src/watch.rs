//! `dmm-trace watch`: a dependency-free terminal view of a run.
//!
//! [`WatchState`] folds the record stream into a small dashboard model —
//! per-class goal vs observed response time with tolerance bands, SLO
//! burn-rate over a sliding window, the span-stage waterfall, per-node
//! home-load and link-utilization bars, and a controller event lane — and
//! renders it as plain text. The state is a pure function of the records
//! consumed, and every number is formatted with a fixed precision, so the
//! rendering of a given trace prefix is byte-stable across runs, platforms
//! and thread counts. The live mode merely *paces* the same frames with
//! ANSI clears between them; [`snapshot`] renders N evenly spaced frames
//! to stdout for golden-testing in CI without a terminal.

use std::collections::{BTreeMap, VecDeque};

use crate::reader::{Record, Trace};
use crate::schema::SPAN_STAGE_FIELDS;

/// Sliding window, in goal-class checks, over which the SLO burn-rate is
/// computed (violated checks / measured checks).
const BURN_WINDOW: usize = 12;
/// Controller events kept in the event lane.
const EVENT_LANE: usize = 6;
/// Width of every bar and band, in characters.
const BAR_WIDTH: usize = 24;

#[derive(Debug, Clone, Default)]
struct ClassLane {
    metric: String,
    goal_ms: f64,
    observed_ms: Option<f64>,
    observed_p_ms: Option<f64>,
    tolerance_ms: f64,
    satisfied: bool,
    settling: bool,
    /// Violation flags of the last [`BURN_WINDOW`] measured (non-settling)
    /// checks, most recent last.
    window: VecDeque<bool>,
}

/// The dashboard model: fold records in with [`WatchState::observe`], read
/// a rendering out with [`WatchState::frame`].
#[derive(Debug, Default)]
pub struct WatchState {
    header: Option<String>,
    t_ms: f64,
    interval: u64,
    spans: u64,
    /// Which goal class ends a frame (the first one seen: all goal classes
    /// check at the same boundary, in class order, so the first is the
    /// lead).
    lead_class: Option<u64>,
    classes: BTreeMap<u64, ClassLane>,
    stage_ns: [f64; SPAN_STAGE_FIELDS.len()],
    home_pages: Vec<f64>,
    tx_busy: Vec<f64>,
    rx_busy: Vec<f64>,
    bisection_busy: Option<f64>,
    events: VecDeque<String>,
}

impl WatchState {
    /// An empty dashboard.
    pub fn new() -> Self {
        WatchState::default()
    }

    fn push_event(&mut self, line: String) {
        if self.events.len() == EVENT_LANE {
            self.events.pop_front();
        }
        self.events.push_back(line);
    }

    /// Folds one record into the model. Returns `true` when the record
    /// completes a frame — the lead goal class's `interval` check, the
    /// natural heartbeat of the control loop.
    pub fn observe(&mut self, r: &Record) -> bool {
        if let Some(t) = r.num("t_ms") {
            self.t_ms = t;
        }
        match r.kind.as_str() {
            "run_config" => {
                let controller = r
                    .json
                    .get("controller")
                    .and_then(|c| c.get("kind"))
                    .and_then(dmm_obs::Json::as_str)
                    .unwrap_or("?");
                self.header = Some(format!(
                    "seed {} | {} nodes | controller {}",
                    r.uint("seed").unwrap_or(0),
                    r.uint("nodes").unwrap_or(0),
                    controller,
                ));
            }
            "interval" => {
                let class = r.uint("class").unwrap_or(0);
                if self.lead_class.is_none() {
                    self.lead_class = Some(class);
                }
                self.interval = r.uint("interval").unwrap_or(self.interval);
                let lane = self.classes.entry(class).or_default();
                lane.metric = r.text("goal_metric").unwrap_or("mean").to_string();
                lane.goal_ms = r.num("goal_ms").unwrap_or(lane.goal_ms);
                lane.observed_ms = r.num("observed_ms");
                lane.observed_p_ms = r.num("observed_p_ms");
                lane.tolerance_ms = r.num("tolerance_ms").unwrap_or(lane.tolerance_ms);
                lane.satisfied = r.flag("satisfied").unwrap_or(false);
                lane.settling = r.flag("settling").unwrap_or(false);
                if !lane.settling {
                    if lane.window.len() == BURN_WINDOW {
                        lane.window.pop_front();
                    }
                    lane.window.push_back(!lane.satisfied);
                }
                return Some(class) == self.lead_class;
            }
            "span" => {
                self.spans += 1;
                if let Some(stages) = r.json.get("stages") {
                    for (i, field) in SPAN_STAGE_FIELDS.iter().enumerate() {
                        if let Some(ns) = stages.get(field).and_then(dmm_obs::Json::as_f64) {
                            self.stage_ns[i] += ns;
                        }
                    }
                }
            }
            "home_load" => {
                self.home_pages = r
                    .json
                    .get("home_pages")
                    .and_then(dmm_obs::Json::as_arr)
                    .map(|a| a.iter().filter_map(dmm_obs::Json::as_f64).collect())
                    .unwrap_or_default();
            }
            "net_load" => {
                let arr = |key: &str| -> Vec<f64> {
                    r.json
                        .get(key)
                        .and_then(dmm_obs::Json::as_arr)
                        .map(|a| a.iter().filter_map(dmm_obs::Json::as_f64).collect())
                        .unwrap_or_default()
                };
                self.tx_busy = arr("tx_busy");
                self.rx_busy = arr("rx_busy");
                self.bisection_busy = r.num("bisection_busy");
            }
            "optimize" => {
                let line = format!(
                    "i{:<3} optimize c{} {} delta {:+.1} MB",
                    r.uint("interval").unwrap_or(0),
                    r.uint("class").unwrap_or(0),
                    r.text("path").unwrap_or("?"),
                    r.num("delta_mb").unwrap_or(0.0),
                );
                self.push_event(line);
            }
            "goal_change" => {
                let line = format!(
                    "i{:<3} goal c{} {:.1} -> {:.1} ms",
                    r.uint("interval").unwrap_or(0),
                    r.uint("class").unwrap_or(0),
                    r.num("old_goal_ms").unwrap_or(0.0),
                    r.num("new_goal_ms").unwrap_or(0.0),
                );
                self.push_event(line);
            }
            "fault" => {
                let line = format!(
                    "t{:<9.1} {} node{} (live {})",
                    r.num("t_ms").unwrap_or(0.0),
                    r.text("kind").unwrap_or("?"),
                    r.uint("node").unwrap_or(0),
                    r.uint("live_nodes").unwrap_or(0),
                );
                self.push_event(line);
            }
            "failover" => {
                let line = format!(
                    "t{:<9.1} failover c{} node{} -> node{}",
                    r.num("t_ms").unwrap_or(0.0),
                    r.uint("class").unwrap_or(0),
                    r.uint("from").unwrap_or(0),
                    r.uint("to").unwrap_or(0),
                );
                self.push_event(line);
            }
            _ => {}
        }
        false
    }

    /// Renders the current model as a plain-text frame.
    pub fn frame(&self) -> String {
        let mut out = String::new();
        let header = self.header.as_deref().unwrap_or("(no run_config record)");
        out.push_str(&format!("dmm watch | {header}\n"));
        out.push_str(&format!(
            "t {:.1} ms | interval {} | spans {}\n",
            self.t_ms, self.interval, self.spans
        ));

        for (class, lane) in &self.classes {
            let obs = lane.observed_p_ms.or(lane.observed_ms);
            let obs_text = match obs {
                Some(v) => format!("{v:.2}"),
                None => "--".to_string(),
            };
            let state = if lane.settling {
                "settling"
            } else if lane.satisfied {
                "ok"
            } else {
                "VIOLATED"
            };
            let measured = lane.window.len();
            let burned = lane.window.iter().filter(|&&v| v).count();
            let burn_bar = bar(
                if measured == 0 {
                    0.0
                } else {
                    burned as f64 / measured as f64
                },
                BAR_WIDTH,
            );
            out.push_str(&format!(
                "class {class} [{}] goal {:.2} ms  obs {obs_text}  tol {:.2}  {state:<8} burn {burned:>2}/{measured:<2} [{burn_bar}]\n",
                lane.metric, lane.goal_ms, lane.tolerance_ms,
            ));
            out.push_str(&format!(
                "  band [{}]\n",
                band(lane.goal_ms, lane.tolerance_ms, obs)
            ));
        }

        let total_ns: f64 = self.stage_ns.iter().sum();
        if total_ns > 0.0 {
            out.push_str("stage waterfall (cumulative span time)\n");
            for (i, field) in SPAN_STAGE_FIELDS.iter().enumerate() {
                let share = self.stage_ns[i] / total_ns;
                if share > 0.0 {
                    let name = field.trim_end_matches("_ns");
                    out.push_str(&format!(
                        "  {name:<13} {:>5.1}% [{}]\n",
                        share * 100.0,
                        bar(share, BAR_WIDTH)
                    ));
                }
            }
        }

        if !self.home_pages.is_empty() {
            let peak = self.home_pages.iter().cloned().fold(0.0, f64::max);
            out.push_str("home pages per node\n");
            for (i, &pages) in self.home_pages.iter().enumerate() {
                let share = if peak > 0.0 { pages / peak } else { 0.0 };
                out.push_str(&format!(
                    "  node{i:<3} {pages:>8.0} [{}]\n",
                    bar(share, BAR_WIDTH)
                ));
            }
        }

        if !self.tx_busy.is_empty() {
            out.push_str("link utilization (tx/rx busy)\n");
            for i in 0..self.tx_busy.len() {
                let tx = self.tx_busy[i];
                let rx = self.rx_busy.get(i).copied().unwrap_or(0.0);
                out.push_str(&format!(
                    "  node{i:<3} tx {:>5.1}% [{}] rx {:>5.1}% [{}]\n",
                    tx * 100.0,
                    bar(tx, BAR_WIDTH / 2),
                    rx * 100.0,
                    bar(rx, BAR_WIDTH / 2)
                ));
            }
            if let Some(b) = self.bisection_busy {
                out.push_str(&format!(
                    "  core    bisection {:>5.1}% [{}]\n",
                    b * 100.0,
                    bar(b, BAR_WIDTH)
                ));
            }
        }

        if !self.events.is_empty() {
            out.push_str("controller events\n");
            for e in &self.events {
                out.push_str(&format!("  {e}\n"));
            }
        }
        out
    }
}

/// A `[####....]` bar: `fraction` of `width` filled, clamped to [0, 1].
fn bar(fraction: f64, width: usize) -> String {
    let filled = ((fraction.clamp(0.0, 1.0) * width as f64).round() as usize).min(width);
    format!("{}{}", "#".repeat(filled), ".".repeat(width - filled))
}

/// The tolerance band: goal at center (`G`), `=` across goal +- tolerance,
/// the observation marked `o` (or `X` outside the band), over a span of
/// goal +- 3 tolerances.
fn band(goal_ms: f64, tolerance_ms: f64, observed_ms: Option<f64>) -> String {
    let mut cells: Vec<char> = vec!['.'; BAR_WIDTH];
    let span = 3.0 * tolerance_ms.max(1e-9);
    let lo = goal_ms - span;
    let cell = |v: f64| -> usize {
        (((v - lo) / (2.0 * span) * (BAR_WIDTH - 1) as f64).round() as isize)
            .clamp(0, BAR_WIDTH as isize - 1) as usize
    };
    let (b0, b1) = (cell(goal_ms - tolerance_ms), cell(goal_ms + tolerance_ms));
    for c in cells.iter_mut().take(b1 + 1).skip(b0) {
        *c = '=';
    }
    cells[cell(goal_ms)] = 'G';
    if let Some(obs) = observed_ms {
        let in_band = (obs - goal_ms).abs() <= tolerance_ms;
        cells[cell(obs)] = if in_band { 'o' } else { 'X' };
    }
    cells.into_iter().collect()
}

/// Renders `frames` evenly spaced frames of a finished trace, separated by
/// `-- frame k/N --` markers: the golden-testable, terminal-free face of
/// `watch`. The last frame always reflects the full trace.
pub fn snapshot(trace: &Trace, frames: usize) -> String {
    let frames = frames.max(1);
    let mut counter = WatchState::new();
    let total = trace.records.iter().filter(|r| counter.observe(r)).count();

    let mut out = String::new();
    if total == 0 {
        out.push_str(&format!("-- frame 1/1 --\n{}", counter.frame()));
        return out;
    }
    let frames = frames.min(total);
    // Frame k renders after the ceil(k * total / frames)-th trigger, so
    // the spacing is even and the final frame sees every record.
    let mut targets: Vec<usize> = (1..=frames).map(|k| k * total / frames).collect();
    targets.dedup();

    let mut state = WatchState::new();
    let mut seen = 0usize;
    let mut emitted = 0usize;
    for r in &trace.records {
        if state.observe(r) {
            seen += 1;
            if emitted < targets.len() && seen == targets[emitted] {
                emitted += 1;
                out.push_str(&format!("-- frame {emitted}/{} --\n", targets.len()));
                out.push_str(&state.frame());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::read_str;

    const DOC: &str = "\
{\"type\":\"interval\",\"interval\":0,\"t_ms\":5000.0,\"class\":1,\"observed_ms\":null,\"goal_ms\":15.0,\"nogoal_ms\":20.0,\"tolerance_ms\":1.5,\"satisfied\":true,\"settling\":true,\"store_cleared\":false,\"phase\":\"warmup\",\"dedicated_mb\":4.0,\"level_share\":{},\"class_hit_rate\":0.5,\"nogoal_hit_rate\":0.4,\"residual_ms\":null}
{\"type\":\"span\",\"t_ms\":5100.0,\"op\":3,\"class\":1,\"origin\":0,\"response_ms\":12.5,\"stages\":{\"local_hit_ns\":1000,\"disk_service_ns\":3000}}
{\"type\":\"optimize\",\"interval\":1,\"class\":1,\"path\":\"lp\",\"points\":9,\"plane_w\":null,\"plane_c\":null,\"goal_attainable\":true,\"predicted_class_ms\":14.0,\"fit_residuals_ms\":null,\"fit_rms_ms\":null,\"fallback\":false,\"current_mb\":4.0,\"requested_mb\":6.0,\"delta_mb\":2.0}
{\"type\":\"interval\",\"interval\":1,\"t_ms\":10000.0,\"class\":1,\"observed_ms\":13.8,\"goal_ms\":15.0,\"nogoal_ms\":20.0,\"tolerance_ms\":1.5,\"satisfied\":true,\"settling\":false,\"store_cleared\":false,\"phase\":\"measuring\",\"dedicated_mb\":6.0,\"level_share\":{},\"class_hit_rate\":0.5,\"nogoal_hit_rate\":0.4,\"residual_ms\":0.2}
{\"type\":\"interval\",\"interval\":2,\"t_ms\":15000.0,\"class\":1,\"observed_ms\":18.0,\"goal_ms\":15.0,\"nogoal_ms\":20.0,\"tolerance_ms\":1.5,\"satisfied\":false,\"settling\":false,\"store_cleared\":false,\"phase\":\"measuring\",\"dedicated_mb\":6.0,\"level_share\":{},\"class_hit_rate\":0.5,\"nogoal_hit_rate\":0.4,\"residual_ms\":3.0}
";

    #[test]
    fn frames_trigger_on_the_lead_class_and_track_burn_rate() {
        let trace = read_str(DOC).expect("valid");
        let mut state = WatchState::new();
        let triggers = trace.records.iter().filter(|r| state.observe(r)).count();
        assert_eq!(triggers, 3, "one frame per lead-class interval record");
        let frame = state.frame();
        assert!(frame.contains("interval 2"), "{frame}");
        assert!(frame.contains("VIOLATED"), "{frame}");
        assert!(frame.contains("burn  1/2"), "{frame}");
        assert!(frame.contains("disk_service"), "{frame}");
        assert!(frame.contains("optimize c1 lp delta +2.0 MB"), "{frame}");
    }

    #[test]
    fn snapshot_is_deterministic_and_evenly_spaced() {
        let trace = read_str(DOC).expect("valid");
        let a = snapshot(&trace, 2);
        let b = snapshot(&trace, 2);
        assert_eq!(a, b, "pure function of the records");
        assert!(a.starts_with("-- frame 1/2 --\n"), "{a}");
        assert!(a.contains("-- frame 2/2 --\n"), "{a}");
        // The last frame reflects the full trace.
        assert!(a.contains("interval 2"), "{a}");
        // Asking for more frames than triggers just caps at the triggers.
        assert!(snapshot(&trace, 50).contains("-- frame 3/3 --"));
    }

    #[test]
    fn band_marks_goal_tolerance_and_observation() {
        let inside = band(15.0, 1.5, Some(14.8));
        assert!(inside.contains('G') && inside.contains('o'), "{inside}");
        let outside = band(15.0, 1.5, Some(19.0));
        assert!(outside.contains('X'), "{outside}");
        let missing = band(15.0, 1.5, None);
        assert!(
            !missing.contains('o') && !missing.contains('X'),
            "{missing}"
        );
    }
}
