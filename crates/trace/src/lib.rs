//! # dmm-trace — analysis, live viewing and replay of simulation traces
//!
//! The simulator emits a JSON-lines trace (one record per line, fixed field
//! order per record type — see [`schema`]). This crate reads those traces
//! back — whole, or incrementally as they grow ([`reader::FollowReader`]) —
//! and turns them into analyses:
//!
//! - [`report::waterfall`]: per-class × per-stage response-time breakdown
//!   from sampled `span` records (where does each class's time go?);
//! - [`report::convergence`]: per-class goal-attainment timeline from
//!   `interval` records (when did the controller settle, how tight?);
//! - [`report::residuals`]: controller explainability — realized
//!   prediction residuals and hyperplane fit residuals (can the fitted
//!   surface be trusted?);
//! - [`report::executor`]: scheduler/executor/sink counters from a metrics
//!   sidecar, and [`report::csv_section`]: machine-readable CSV exports;
//! - [`watch`]: a dependency-free terminal dashboard over the record
//!   stream — live, paced playback, or deterministic `--snapshot` frames;
//! - [`diff::diff`]: structural comparison of two runs, field by field
//!   (the determinism contract made checkable from the outside).
//!
//! The `dmm-trace` binary wraps these as `schema`, `report`, `diff`,
//! `watch` and `replay` subcommands. `replay` leans on `dmm-core` to
//! re-run a recorded configuration (see `dmm_core::replay`); everything
//! else is pure std + the in-house `dmm-obs` JSON. Traces of any size
//! stream line by line.

pub mod diff;
pub mod reader;
pub mod report;
pub mod schema;
pub mod watch;

pub use diff::{diff, DiffReport};
pub use reader::{read_file, read_str, FollowReader, ReadError, Record, Trace};
pub use schema::{
    expected_fields, expected_fields_ext, expected_fields_for, quantile_extension_fields,
    tier_extension_fields, validate_record, RECORD_TYPES, SPAN_STAGE_FIELDS,
};
pub use watch::{snapshot, WatchState};
