//! # dmm-trace — offline analysis of simulation traces
//!
//! The simulator emits a JSON-lines trace (one record per line, fixed field
//! order per record type — see [`schema`]). This crate reads those traces
//! back and turns them into human-readable analyses:
//!
//! - [`report::waterfall`]: per-class × per-stage response-time breakdown
//!   from sampled `span` records (where does each class's time go?);
//! - [`report::convergence`]: per-class goal-attainment timeline from
//!   `interval` records (when did the controller settle, how tight?);
//! - [`report::residuals`]: controller explainability — realized
//!   prediction residuals and hyperplane fit residuals (can the fitted
//!   surface be trusted?);
//! - [`diff::diff`]: structural comparison of two runs, field by field
//!   (the determinism contract made checkable from the outside).
//!
//! The `dmm-trace` binary wraps these as `schema`, `report` and `diff`
//! subcommands. Everything is pure std + the in-house `dmm-obs` JSON;
//! traces of any size stream line by line.

pub mod diff;
pub mod reader;
pub mod report;
pub mod schema;

pub use diff::{diff, DiffReport};
pub use reader::{read_file, read_str, ReadError, Record, Trace};
pub use schema::{
    expected_fields, expected_fields_ext, expected_fields_for, quantile_extension_fields,
    tier_extension_fields, RECORD_TYPES, SPAN_STAGE_FIELDS,
};
