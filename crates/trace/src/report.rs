//! Human-readable analyses of one trace: stage waterfalls, convergence
//! timelines, and controller residual summaries.

use std::fmt::Write as _;

use crate::reader::{Record, Trace};
use crate::schema::SPAN_STAGE_FIELDS;

/// Width of the waterfall bars, in characters.
const BAR_WIDTH: usize = 28;

/// Full report: record census, waterfall, convergence, tail compliance,
/// residuals.
pub fn report(trace: &Trace) -> String {
    let mut out = census(trace);
    out.push('\n');
    out.push_str(&waterfall(trace));
    out.push('\n');
    out.push_str(&convergence(trace));
    let tail = tail_compliance(trace);
    if !tail.is_empty() {
        out.push('\n');
        out.push_str(&tail);
    }
    let load = home_load(trace);
    if !load.is_empty() {
        out.push('\n');
        out.push_str(&load);
    }
    let net = net_load(trace);
    if !net.is_empty() {
        out.push('\n');
        out.push_str(&net);
    }
    let tiers = tier_occupancy(trace);
    if !tiers.is_empty() {
        out.push('\n');
        out.push_str(&tiers);
    }
    out.push('\n');
    out.push_str(&residuals(trace));
    out
}

/// Count of records by type.
pub fn census(trace: &Trace) -> String {
    let mut out = String::from("== records ==\n");
    let mut counts: Vec<(&str, usize)> = Vec::new();
    for r in &trace.records {
        match counts.iter_mut().find(|(k, _)| *k == r.kind) {
            Some((_, n)) => *n += 1,
            None => counts.push((&r.kind, 1)),
        }
    }
    if counts.is_empty() {
        out.push_str("  (empty trace)\n");
    }
    for (kind, n) in counts {
        let _ = writeln!(out, "  {kind:<12} {n}");
    }
    out
}

/// Per-class stage waterfall from sampled `span` records: where does each
/// class's response time go? Stages are shown in lifecycle order with their
/// share of the class's total sampled time.
pub fn waterfall(trace: &Trace) -> String {
    let mut out = String::from("== span waterfall (sampled operations) ==\n");
    // class id -> (span count, per-stage ns sums)
    let mut per_class: Vec<(u64, u64, [u64; SPAN_STAGE_FIELDS.len()])> = Vec::new();
    for span in trace.of_kind("span") {
        let Some(class) = span.uint("class") else {
            continue;
        };
        let Some(stages) = span.json.get("stages") else {
            continue;
        };
        let entry = match per_class.iter_mut().find(|(c, ..)| *c == class) {
            Some(e) => e,
            None => {
                per_class.push((class, 0, [0; SPAN_STAGE_FIELDS.len()]));
                per_class.last_mut().expect("just pushed")
            }
        };
        entry.1 += 1;
        for (i, field) in SPAN_STAGE_FIELDS.iter().enumerate() {
            entry.2[i] += stages
                .get(field)
                .and_then(dmm_obs::Json::as_u64)
                .unwrap_or(0);
        }
    }
    per_class.sort_unstable_by_key(|(c, ..)| *c);
    if per_class.is_empty() {
        out.push_str("  (no span records — run with span sampling enabled)\n");
        return out;
    }
    for (class, count, sums) in per_class {
        let total: u64 = sums.iter().sum();
        let mean_ms = total as f64 / count as f64 / 1e6;
        let _ = writeln!(
            out,
            "class {class}: {count} spans, mean sampled response {mean_ms:.3} ms"
        );
        for (i, field) in SPAN_STAGE_FIELDS.iter().enumerate() {
            let share = if total > 0 {
                sums[i] as f64 / total as f64
            } else {
                0.0
            };
            let filled = (share * BAR_WIDTH as f64).round() as usize;
            let bar: String = std::iter::repeat_n('#', filled)
                .chain(std::iter::repeat_n('.', BAR_WIDTH - filled.min(BAR_WIDTH)))
                .collect();
            let stage = field.trim_end_matches("_ns");
            let stage_ms = sums[i] as f64 / count as f64 / 1e6;
            let _ = writeln!(
                out,
                "  {stage:<13} {bar} {:>5.1}%  {stage_ms:>8.3} ms/op",
                share * 100.0
            );
        }
    }
    out
}

/// Per-class convergence timeline from `interval` records: goal attainment,
/// time-to-convergence, and the optimization paths taken.
pub fn convergence(trace: &Trace) -> String {
    let mut out = String::from("== convergence ==\n");
    let classes = trace.goal_classes();
    if classes.is_empty() {
        out.push_str("  (no interval records)\n");
        return out;
    }
    for class in classes {
        let intervals: Vec<&Record> = trace
            .of_kind("interval")
            .filter(|r| r.uint("class") == Some(class))
            .collect();
        let measuring: Vec<&Record> = intervals
            .iter()
            .copied()
            .filter(|r| r.num("observed_ms").is_some() && r.flag("settling") == Some(false))
            .collect();
        let satisfied = measuring
            .iter()
            .filter(|r| r.flag("satisfied") == Some(true))
            .count();
        // First measured interval from which satisfaction holds to the end:
        // the paper's "converged after" reading of Fig. 2.
        let converged_at = measuring
            .iter()
            .enumerate()
            .rev()
            .take_while(|(_, r)| r.flag("satisfied") == Some(true))
            .map(|(i, _)| i)
            .last()
            .filter(|_| {
                measuring
                    .last()
                    .is_some_and(|r| r.flag("satisfied") == Some(true))
            })
            .and_then(|i| measuring[i].uint("interval"));
        let mean_abs_err = {
            let errs: Vec<f64> = measuring
                .iter()
                .filter_map(|r| Some((r.num("observed_ms")? - r.num("goal_ms")?).abs()))
                .collect();
            mean(&errs)
        };
        let _ = writeln!(
            out,
            "class {class}: {} intervals ({} measured), satisfied {}/{}",
            intervals.len(),
            measuring.len(),
            satisfied,
            measuring.len()
        );
        match converged_at {
            Some(at) => {
                let _ = writeln!(out, "  converged: satisfied from interval {at} to the end");
            }
            None => out.push_str("  converged: no (last measured interval unsatisfied)\n"),
        }
        if let Some(err) = mean_abs_err {
            let _ = writeln!(out, "  mean |observed - goal| while measuring: {err:.3} ms");
        }
        let mut paths: Vec<(&str, usize)> = Vec::new();
        for opt in trace
            .of_kind("optimize")
            .filter(|r| r.uint("class") == Some(class))
        {
            let path = opt.text("path").unwrap_or("?");
            match paths.iter_mut().find(|(p, _)| *p == path) {
                Some((_, n)) => *n += 1,
                None => paths.push((path, 1)),
            }
        }
        if !paths.is_empty() {
            out.push_str("  optimizations:");
            for (path, n) in paths {
                let _ = write!(out, " {path}:{n}");
            }
            out.push('\n');
        }
        let goal_changes = trace
            .of_kind("goal_change")
            .filter(|r| r.uint("class") == Some(class))
            .count();
        if goal_changes > 0 {
            let _ = writeln!(out, "  goal changes: {goal_changes}");
        }
    }
    out
}

/// Tail compliance of quantile-goal classes: how the observed goal
/// quantile (`observed_p_ms` on `interval` records) tracked the goal.
/// Returns an empty string when no class ran with a quantile goal, so
/// mean-goal reports are unchanged.
pub fn tail_compliance(trace: &Trace) -> String {
    let mut out = String::new();
    for class in trace.goal_classes() {
        let rows: Vec<&Record> = trace
            .of_kind("interval")
            .filter(|r| r.uint("class") == Some(class))
            .filter(|r| r.text("goal_metric").is_some())
            .collect();
        if rows.is_empty() {
            continue;
        }
        if out.is_empty() {
            out.push_str("== tail compliance (quantile goals) ==\n");
        }
        let metric = rows
            .last()
            .and_then(|r| r.text("goal_metric"))
            .unwrap_or("p?");
        let measured: Vec<&Record> = rows
            .iter()
            .copied()
            .filter(|r| r.num("observed_p_ms").is_some() && r.flag("settling") == Some(false))
            .collect();
        let observed: Vec<f64> = measured
            .iter()
            .filter_map(|r| r.num("observed_p_ms"))
            .collect();
        let within_goal = measured
            .iter()
            .filter(|r| {
                matches!(
                    (r.num("observed_p_ms"), r.num("goal_ms")),
                    (Some(p), Some(g)) if p <= g
                )
            })
            .count();
        let satisfied = measured
            .iter()
            .filter(|r| r.flag("satisfied") == Some(true))
            .count();
        let _ = writeln!(
            out,
            "class {class} ({metric}): {} measured intervals, satisfied {satisfied}/{}",
            measured.len(),
            measured.len()
        );
        if let Some(m) = mean(&observed) {
            let max = observed.iter().cloned().fold(0.0, f64::max);
            let goal = measured
                .last()
                .and_then(|r| r.num("goal_ms"))
                .unwrap_or(f64::NAN);
            let _ = writeln!(
                out,
                "  {metric} observed: mean {m:.3} ms, max {max:.3} ms (goal {goal:.3} ms)"
            );
            let _ = writeln!(
                out,
                "  intervals with {metric} <= goal: {within_goal}/{} ({:.1}%)",
                measured.len(),
                100.0 * within_goal as f64 / measured.len().max(1) as f64
            );
        }
    }
    out
}

/// Per-node home-load distribution from the last `home_load` record (the
/// emitter's counters are cumulative, so the last record covers the whole
/// run): pages homed, home reads served, and remote fan-in per node, plus
/// the max/mean home-read imbalance — the placement-quality figure the
/// hot-ring scheme drives toward 1. Returns an empty string when the trace
/// carries no `home_load` records, so reports of older traces are
/// unchanged.
pub fn home_load(trace: &Trace) -> String {
    let Some(last) = trace.of_kind("home_load").last() else {
        return String::new();
    };
    let column = |key: &str| -> Vec<u64> {
        last.json
            .get(key)
            .and_then(dmm_obs::Json::as_arr)
            .map(|a| a.iter().filter_map(dmm_obs::Json::as_u64).collect())
            .unwrap_or_default()
    };
    let pages = column("home_pages");
    let reads = column("home_reads");
    let fanin = column("remote_fanin");
    let mut out = String::from("== home load (per node) ==\n");
    out.push_str("  node  home_pages  home_reads  remote_fanin\n");
    for n in 0..pages.len().max(reads.len()).max(fanin.len()) {
        let cell = |v: &[u64]| v.get(n).copied().unwrap_or(0);
        let _ = writeln!(
            out,
            "  {n:>4}  {:>10}  {:>10}  {:>12}",
            cell(&pages),
            cell(&reads),
            cell(&fanin)
        );
    }
    let total: u64 = reads.iter().sum();
    if !reads.is_empty() && total > 0 {
        let mean = total as f64 / reads.len() as f64;
        let max = reads.iter().copied().max().unwrap_or(0) as f64;
        let _ = writeln!(out, "  home-read imbalance (max/mean): {:.2}", max / mean);
    }
    out
}

/// Per-link network utilization of switched-fabric runs, from the last
/// `net_load` record (the busy fractions are cumulative, so the last record
/// covers the whole run): every node's TX and RX link utilization, the
/// hottest link, and the switch core's utilization when its bisection
/// capacity is finite. Returns an empty string when the trace carries no
/// `net_load` records (every shared-medium run), so those reports are
/// unchanged.
pub fn net_load(trace: &Trace) -> String {
    let Some(last) = trace.of_kind("net_load").last() else {
        return String::new();
    };
    let column = |key: &str| -> Vec<f64> {
        last.json
            .get(key)
            .and_then(dmm_obs::Json::as_arr)
            .map(|a| a.iter().filter_map(dmm_obs::Json::as_f64).collect())
            .unwrap_or_default()
    };
    let tx = column("tx_busy");
    let rx = column("rx_busy");
    let mut out = String::from("== network utilization (switched fabric, per link) ==\n");
    out.push_str("  node  tx_busy  rx_busy\n");
    for n in 0..tx.len().max(rx.len()) {
        let cell = |v: &[f64]| v.get(n).copied().unwrap_or(0.0);
        let _ = writeln!(
            out,
            "  {n:>4}  {:>6.1}%  {:>6.1}%",
            100.0 * cell(&tx),
            100.0 * cell(&rx)
        );
    }
    let hottest = tx.iter().chain(&rx).cloned().fold(0.0, f64::max);
    let _ = writeln!(out, "  hottest link: {:.1}% busy", 100.0 * hottest);
    if let Some(b) = last.num("bisection_busy") {
        let _ = writeln!(out, "  switch core (bisection): {:.1}% busy", 100.0 * b);
    }
    out
}

/// Memory-tier occupancy of runs with an extended storage ladder, from the
/// `tier_occupancy` extension field on `interval` records: per tier, the
/// mean and final cluster-wide residency against the configured frame
/// count. Returns an empty string when the trace carries no tier fields
/// (any default-ladder run), so those reports are unchanged.
pub fn tier_occupancy(trace: &Trace) -> String {
    // tier name -> (samples, resident sum, last resident, frames)
    let mut tiers: Vec<(String, u64, u64, u64, u64)> = Vec::new();
    for record in trace.of_kind("interval") {
        let Some(occ) = record
            .json
            .get("tier_occupancy")
            .and_then(dmm_obs::Json::as_obj)
        else {
            continue;
        };
        for (name, value) in occ {
            let resident = value.get("resident").and_then(dmm_obs::Json::as_u64);
            let frames = value.get("frames").and_then(dmm_obs::Json::as_u64);
            let (Some(resident), Some(frames)) = (resident, frames) else {
                continue;
            };
            let entry = match tiers.iter_mut().find(|(n, ..)| n == name) {
                Some(e) => e,
                None => {
                    tiers.push((name.clone(), 0, 0, 0, 0));
                    tiers.last_mut().expect("just pushed")
                }
            };
            entry.1 += 1;
            entry.2 += resident;
            entry.3 = resident;
            entry.4 = frames;
        }
    }
    if tiers.is_empty() {
        return String::new();
    }
    let mut out = String::from("== tier occupancy (extended ladder) ==\n");
    out.push_str("  tier          frames  mean_resident  last_resident    fill\n");
    for (name, samples, sum, last, frames) in tiers {
        let mean = sum as f64 / samples.max(1) as f64;
        let fill = if frames > 0 {
            100.0 * last as f64 / frames as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "  {name:<12} {frames:>7}  {mean:>13.1}  {last:>13}  {fill:>5.1}%"
        );
    }
    out
}

/// Controller explainability: realized prediction residuals (`interval`
/// records) and in-sample hyperplane fit residuals (`optimize` records).
pub fn residuals(trace: &Trace) -> String {
    let mut out = String::from("== controller residuals ==\n");
    let classes = trace.goal_classes();
    if classes.is_empty() {
        out.push_str("  (no interval records)\n");
        return out;
    }
    for class in classes {
        let realized: Vec<f64> = trace
            .of_kind("interval")
            .filter(|r| r.uint("class") == Some(class))
            .filter_map(|r| r.num("residual_ms"))
            .collect();
        let fit_rms: Vec<f64> = trace
            .of_kind("optimize")
            .filter(|r| r.uint("class") == Some(class))
            .filter_map(|r| r.num("fit_rms_ms"))
            .collect();
        let _ = writeln!(out, "class {class}:");
        if realized.is_empty() {
            out.push_str("  realized prediction residuals: none (no LP follow-up)\n");
        } else {
            let abs: Vec<f64> = realized.iter().map(|r| r.abs()).collect();
            let _ = writeln!(
                out,
                "  realized prediction residuals: n={} mean={:+.3} ms mean|.|={:.3} ms max|.|={:.3} ms",
                realized.len(),
                mean(&realized).unwrap_or(0.0),
                mean(&abs).unwrap_or(0.0),
                abs.iter().cloned().fold(0.0, f64::max)
            );
        }
        if fit_rms.is_empty() {
            out.push_str("  fit residuals: none (LP never fitted)\n");
        } else {
            let _ = writeln!(
                out,
                "  fit RMS over measure points: n={} mean={:.3} ms last={:.3} ms",
                fit_rms.len(),
                mean(&fit_rms).unwrap_or(0.0),
                fit_rms.last().copied().unwrap_or(0.0)
            );
        }
    }
    out
}

/// Executor and scheduler counters from a [`MetricsSnapshot`] (exported by
/// `Simulation::metrics_snapshot`, serialized with `MetricsSnapshot::to_json`):
/// event-wheel work (`sim.sched.*`), windowed-executor batching
/// (`sim.exec.*`), and trace-sink health (`obs.sink.*`). These counters
/// never ride in the trace itself — they vary across scheduler backends and
/// worker counts, which traces are byte-identical over — so the report
/// takes the snapshot as a sidecar (`dmm-trace report --metrics <file>`).
pub fn executor(snapshot: &dmm_obs::MetricsSnapshot) -> String {
    let mut out = String::from("== executor (metrics sidecar) ==\n");
    let mut rows: Vec<(&str, u64)> = Vec::new();
    for (name, value) in snapshot.counters() {
        if name.starts_with("sim.sched.")
            || name.starts_with("sim.exec.")
            || name.starts_with("obs.sink.")
            || name == "sim.events"
        {
            rows.push((name, *value));
        }
    }
    if rows.is_empty() {
        out.push_str("  (no scheduler/executor counters in this snapshot)\n");
        return out;
    }
    for (name, value) in &rows {
        let _ = writeln!(out, "  {name:<28} {value}");
    }
    let lookup = |key: &str| rows.iter().find(|(n, _)| *n == key).map(|(_, v)| *v);
    if let (Some(runs), Some(events)) = (lookup("sim.exec.runs"), lookup("sim.exec.run_events")) {
        if runs > 0 {
            let _ = writeln!(
                out,
                "  mean events per window run: {:.1}",
                events as f64 / runs as f64
            );
        } else {
            out.push_str("  (sequential execution: no window runs)\n");
        }
    }
    if let Some(errors) = lookup("obs.sink.errors") {
        let _ = writeln!(
            out,
            "  WARNING: trace sink reported {errors} write error(s)"
        );
    }
    if let Some(dropped) = lookup("obs.sink.dropped_records") {
        let _ = writeln!(
            out,
            "  WARNING: trace sink dropped {dropped} record(s) (ring full)"
        );
    }
    out
}

/// Escapes one CSV cell: quotes only when the value needs it.
fn csv_cell(value: &str) -> String {
    if value.contains([',', '"', '\n']) {
        format!("\"{}\"", value.replace('"', "\"\""))
    } else {
        value.to_string()
    }
}

/// Machine-readable CSV export of one report section. Supported sections:
/// `compliance` (one row per goal-class check from `interval` records) and
/// `waterfall` (one row per class and lifecycle stage from `span`
/// records). Columns are stable: scripts may index them by header name.
pub fn csv_section(trace: &Trace, section: &str) -> Result<String, String> {
    match section {
        "compliance" => Ok(csv_compliance(trace)),
        "waterfall" => Ok(csv_waterfall(trace)),
        other => Err(format!(
            "unknown CSV section {other:?} (expected `compliance` or `waterfall`)"
        )),
    }
}

fn csv_compliance(trace: &Trace) -> String {
    let mut out = String::from(
        "class,interval,t_ms,phase,observed_ms,goal_ms,tolerance_ms,satisfied,settling,residual_ms,observed_p_ms,goal_metric\n",
    );
    let opt = |v: Option<f64>| v.map(|x| x.to_string()).unwrap_or_default();
    for r in trace.of_kind("interval") {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{}",
            r.uint("class").unwrap_or(0),
            r.uint("interval").unwrap_or(0),
            opt(r.num("t_ms")),
            csv_cell(r.text("phase").unwrap_or("")),
            opt(r.num("observed_ms")),
            opt(r.num("goal_ms")),
            opt(r.num("tolerance_ms")),
            r.flag("satisfied")
                .map(|b| b.to_string())
                .unwrap_or_default(),
            r.flag("settling")
                .map(|b| b.to_string())
                .unwrap_or_default(),
            opt(r.num("residual_ms")),
            opt(r.num("observed_p_ms")),
            csv_cell(r.text("goal_metric").unwrap_or("mean")),
        );
    }
    out
}

fn csv_waterfall(trace: &Trace) -> String {
    let mut out = String::from("class,stage,spans,total_ns,share,ms_per_op\n");
    let mut per_class: Vec<(u64, u64, [u64; SPAN_STAGE_FIELDS.len()])> = Vec::new();
    for span in trace.of_kind("span") {
        let Some(class) = span.uint("class") else {
            continue;
        };
        let Some(stages) = span.json.get("stages") else {
            continue;
        };
        let entry = match per_class.iter_mut().find(|(c, ..)| *c == class) {
            Some(e) => e,
            None => {
                per_class.push((class, 0, [0; SPAN_STAGE_FIELDS.len()]));
                per_class.last_mut().expect("just pushed")
            }
        };
        entry.1 += 1;
        for (i, field) in SPAN_STAGE_FIELDS.iter().enumerate() {
            entry.2[i] += stages
                .get(field)
                .and_then(dmm_obs::Json::as_u64)
                .unwrap_or(0);
        }
    }
    per_class.sort_unstable_by_key(|(c, ..)| *c);
    for (class, count, sums) in per_class {
        let total: u64 = sums.iter().sum();
        for (i, field) in SPAN_STAGE_FIELDS.iter().enumerate() {
            let share = if total > 0 {
                sums[i] as f64 / total as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{},{},{},{},{},{}",
                class,
                field.trim_end_matches("_ns"),
                count,
                sums[i],
                share,
                sums[i] as f64 / count.max(1) as f64 / 1e6
            );
        }
    }
    out
}

fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::read_str;

    fn sample_trace() -> Trace {
        let text = "\
{\"type\":\"interval\",\"interval\":1,\"class\":1,\"observed_ms\":9.0,\"goal_ms\":8.0,\"satisfied\":false,\"settling\":false,\"phase\":\"optimized\",\"residual_ms\":null}\n\
{\"type\":\"optimize\",\"interval\":1,\"class\":1,\"path\":\"lp\",\"fit_rms_ms\":0.25}\n\
{\"type\":\"interval\",\"interval\":2,\"class\":1,\"observed_ms\":8.1,\"goal_ms\":8.0,\"satisfied\":true,\"settling\":false,\"phase\":\"satisfied\",\"residual_ms\":0.4}\n\
{\"type\":\"span\",\"t_ms\":10.0,\"op\":16,\"class\":1,\"origin\":0,\"response_ms\":2.0,\"stages\":{\"local_hit_ns\":500000,\"pool_queue_ns\":0,\"net_request_ns\":0,\"net_transfer_ns\":0,\"remote_hit_ns\":0,\"disk_queue_ns\":0,\"disk_service_ns\":1400000,\"cpu_ns\":100000}}\n";
        read_str(text).expect("valid")
    }

    #[test]
    fn waterfall_reports_stage_shares() {
        let text = waterfall(&sample_trace());
        assert!(text.contains("class 1: 1 spans"), "{text}");
        assert!(text.contains("disk_service"), "{text}");
        assert!(text.contains("70.0%"), "{text}");
    }

    #[test]
    fn convergence_and_residuals_summarize() {
        let trace = sample_trace();
        let conv = convergence(&trace);
        assert!(conv.contains("satisfied 1/2"), "{conv}");
        assert!(conv.contains("lp:1"), "{conv}");
        assert!(conv.contains("satisfied from interval 2"), "{conv}");
        let res = residuals(&trace);
        assert!(res.contains("n=1 mean=+0.400"), "{res}");
        assert!(res.contains("fit RMS"), "{res}");
        // The combined report stitches all sections.
        let all = report(&trace);
        assert!(
            all.contains("== records ==") && all.contains("span         1"),
            "{all}"
        );
        // No quantile goals in this trace: the tail section is absent.
        assert!(!all.contains("tail compliance"), "{all}");
    }

    #[test]
    fn home_load_summarizes_last_record() {
        let text = "\
{\"type\":\"home_load\",\"interval\":0,\"t_ms\":5000.0,\"home_pages\":[200,100,100],\"home_reads\":[10,10,10],\"remote_fanin\":[5,5,5]}\n\
{\"type\":\"home_load\",\"interval\":1,\"t_ms\":10000.0,\"home_pages\":[134,133,133],\"home_reads\":[60,30,30],\"remote_fanin\":[40,20,20]}\n";
        let trace = read_str(text).expect("valid");
        let load = home_load(&trace);
        // Only the last (cumulative) record is summarized.
        assert!(load.contains("134"), "{load}");
        assert!(!load.contains("200"), "{load}");
        // max/mean = 60 / 40 = 1.5.
        assert!(
            load.contains("home-read imbalance (max/mean): 1.50"),
            "{load}"
        );
        assert!(
            report(&trace).contains("== home load"),
            "{}",
            report(&trace)
        );
        // Traces without home_load records keep their old report layout.
        assert!(home_load(&sample_trace()).is_empty());
        assert!(!report(&sample_trace()).contains("home load"));
    }

    #[test]
    fn net_load_summarizes_last_record() {
        let text = "\
{\"type\":\"net_load\",\"interval\":0,\"t_ms\":5000.0,\"tx_busy\":[0.10,0.20],\"rx_busy\":[0.15,0.05],\"bisection_busy\":null}\n\
{\"type\":\"net_load\",\"interval\":1,\"t_ms\":10000.0,\"tx_busy\":[0.40,0.20],\"rx_busy\":[0.30,0.10],\"bisection_busy\":0.25}\n";
        let trace = read_str(text).expect("valid");
        let net = net_load(&trace);
        // Only the last (cumulative) record is summarized.
        assert!(net.contains("40.0%"), "{net}");
        assert!(!net.contains("15.0%"), "{net}");
        assert!(net.contains("hottest link: 40.0% busy"), "{net}");
        assert!(net.contains("switch core (bisection): 25.0% busy"), "{net}");
        assert!(report(&trace).contains("== network utilization"));
        // Shared-medium traces carry no net_load records: section absent.
        assert!(net_load(&sample_trace()).is_empty());
        assert!(!report(&sample_trace()).contains("network utilization"));
    }

    #[test]
    fn net_load_with_ideal_core_omits_the_bisection_line() {
        let text = "{\"type\":\"net_load\",\"interval\":0,\"t_ms\":5000.0,\"tx_busy\":[0.5],\"rx_busy\":[0.5],\"bisection_busy\":null}\n";
        let trace = read_str(text).expect("valid");
        let net = net_load(&trace);
        assert!(!net.contains("switch core"), "{net}");
    }

    #[test]
    fn tier_occupancy_summarizes_extended_ladders() {
        let text = "\
{\"type\":\"interval\",\"interval\":1,\"class\":1,\"observed_ms\":6.0,\"goal_ms\":8.0,\"satisfied\":true,\"settling\":false,\"tier_occupancy\":{\"dram\":{\"resident\":20,\"frames\":24},\"cxl\":{\"resident\":10,\"frames\":72}}}\n\
{\"type\":\"interval\",\"interval\":2,\"class\":1,\"observed_ms\":6.0,\"goal_ms\":8.0,\"satisfied\":true,\"settling\":false,\"tier_occupancy\":{\"dram\":{\"resident\":24,\"frames\":24},\"cxl\":{\"resident\":40,\"frames\":72}}}\n";
        let trace = read_str(text).expect("valid");
        let tiers = tier_occupancy(&trace);
        assert!(tiers.contains("dram"), "{tiers}");
        // dram: mean (20+24)/2 = 22, last 24/24 = 100%.
        assert!(tiers.contains("22.0"), "{tiers}");
        assert!(tiers.contains("100.0%"), "{tiers}");
        assert!(
            report(&trace).contains("== tier occupancy"),
            "{}",
            report(&trace)
        );
        // Default-ladder traces carry no tier fields: section absent.
        assert!(tier_occupancy(&sample_trace()).is_empty());
        assert!(!report(&sample_trace()).contains("tier occupancy"));
    }

    #[test]
    fn executor_section_summarizes_scheduler_and_sink_counters() {
        let mut snap = dmm_obs::MetricsSnapshot::new();
        snap.counter("sim.events", 1000);
        snap.counter("sim.sched.pushes", 900);
        snap.counter("sim.exec.runs", 10);
        snap.counter("sim.exec.run_events", 400);
        snap.counter("obs.sink.dropped_records", 3);
        snap.counter("net.bytes", 5_000_000); // unrelated: filtered out
        let text = executor(&snap);
        assert!(text.contains("sim.sched.pushes"), "{text}");
        assert!(text.contains("mean events per window run: 40.0"), "{text}");
        assert!(text.contains("dropped 3 record(s)"), "{text}");
        assert!(!text.contains("net.bytes"), "{text}");

        let empty = executor(&dmm_obs::MetricsSnapshot::new());
        assert!(empty.contains("no scheduler/executor counters"), "{empty}");
    }

    #[test]
    fn csv_sections_export_compliance_and_waterfall() {
        let trace = sample_trace();
        let compliance = csv_section(&trace, "compliance").expect("known section");
        let mut lines = compliance.lines();
        assert_eq!(
            lines.next().unwrap(),
            "class,interval,t_ms,phase,observed_ms,goal_ms,tolerance_ms,satisfied,settling,residual_ms,observed_p_ms,goal_metric"
        );
        assert_eq!(
            lines.next().unwrap(),
            "1,1,,optimized,9,8,,false,false,,,mean"
        );
        assert_eq!(compliance.lines().count(), 3, "{compliance}");

        let waterfall = csv_section(&trace, "waterfall").expect("known section");
        assert!(waterfall.starts_with("class,stage,spans,total_ns,share,ms_per_op\n"));
        assert!(
            waterfall.contains("1,disk_service,1,1400000,0.7,1.4"),
            "{waterfall}"
        );

        assert!(csv_section(&trace, "nonsense")
            .expect_err("unknown section")
            .contains("unknown CSV section"));
    }

    #[test]
    fn tail_compliance_summarizes_quantile_goals() {
        let text = "\
{\"type\":\"interval\",\"interval\":1,\"class\":1,\"observed_ms\":6.0,\"goal_ms\":8.0,\"satisfied\":false,\"settling\":false,\"observed_p_ms\":9.5,\"goal_metric\":\"p95\"}\n\
{\"type\":\"interval\",\"interval\":2,\"class\":1,\"observed_ms\":5.0,\"goal_ms\":8.0,\"satisfied\":true,\"settling\":false,\"observed_p_ms\":7.5,\"goal_metric\":\"p95\"}\n";
        let trace = read_str(text).expect("valid");
        let tail = tail_compliance(&trace);
        assert!(
            tail.contains("class 1 (p95): 2 measured intervals"),
            "{tail}"
        );
        assert!(tail.contains("satisfied 1/2"), "{tail}");
        assert!(tail.contains("p95 <= goal: 1/2 (50.0%)"), "{tail}");
        assert!(
            report(&trace).contains("== tail compliance"),
            "{}",
            report(&trace)
        );
    }
}
