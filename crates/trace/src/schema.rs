//! The trace schema: every record type the simulator emits, with its exact
//! ordered field list.
//!
//! The emitter (`dmm-core`) writes object fields in a fixed order and the
//! serializer preserves it, so the schema here is strong enough to pin the
//! byte layout of a trace line, not just its field *set*. The golden schema
//! test in the repository's test suite asserts that every record the
//! simulator emits matches these lists exactly — any drift between emitter
//! and analyzer fails CI rather than silently misparsing.

/// Every record type, in rough order of appearance in a typical trace.
pub const RECORD_TYPES: [&str; 10] = [
    "run_config",
    "interval",
    "home_load",
    "net_load",
    "optimize",
    "grant",
    "goal_change",
    "fault",
    "failover",
    "span",
];

/// Ordered fields of the nested `stages` object of a `span` record: one
/// `{stage}_ns` integer per lifecycle stage, in stage-index order. The
/// values partition the operation's response time exactly (integer
/// nanoseconds, no rounding).
pub const SPAN_STAGE_FIELDS: [&str; 8] = [
    "local_hit_ns",
    "pool_queue_ns",
    "net_request_ns",
    "net_transfer_ns",
    "remote_hit_ns",
    "disk_queue_ns",
    "disk_service_ns",
    "cpu_ns",
];

/// Ordered top-level fields of `kind` records, or `None` for an unknown
/// record type.
pub fn expected_fields(kind: &str) -> Option<&'static [&'static str]> {
    Some(match kind {
        // The replay closure: the first record of every trace, carrying
        // every builder parameter that shapes the byte stream (see
        // `dmm_core::replay`). Execution-substrate toggles (span mode,
        // scheduler backend, exec mode) are trace-invariant and excluded.
        "run_config" => &[
            "type",
            "seed",
            "nodes",
            "db_pages",
            "buffer_pages_per_node",
            "theta",
            "goal_ms",
            "goal_rate_per_ms",
            "goal_quantile",
            "interval_ns",
            "warmup_intervals",
            "controller",
            "goal_range",
            "satisfaction",
            "release_floor_mb",
            "repricing",
            "placement",
            "fabric",
            "net_bits_per_sec",
            "probe",
            "tiers",
            "tier_policy",
            "fault_plan",
            "replayable",
        ],
        "interval" => &[
            "type",
            "interval",
            "t_ms",
            "class",
            "observed_ms",
            "goal_ms",
            "nogoal_ms",
            "tolerance_ms",
            "satisfied",
            "settling",
            "store_cleared",
            "phase",
            "dedicated_mb",
            "level_share",
            "class_hit_rate",
            "nogoal_hit_rate",
            "residual_ms",
        ],
        "home_load" => &[
            "type",
            "interval",
            "t_ms",
            "home_pages",
            "home_reads",
            "remote_fanin",
        ],
        // Only emitted under a switched fabric: per-node TX/RX link busy
        // fractions (arrays, one entry per node) plus the switch core's,
        // `null` when the core is ideal. Shared-medium traces never carry
        // this record.
        "net_load" => &[
            "type",
            "interval",
            "t_ms",
            "tx_busy",
            "rx_busy",
            "bisection_busy",
        ],
        "optimize" => &[
            "type",
            "interval",
            "class",
            "path",
            "points",
            "plane_w",
            "plane_c",
            "goal_attainable",
            "predicted_class_ms",
            "fit_residuals_ms",
            "fit_rms_ms",
            "fallback",
            "current_mb",
            "requested_mb",
            "delta_mb",
        ],
        "grant" => &[
            "type",
            "t_ms",
            "class",
            "node",
            "requested_pages",
            "granted_pages",
            "avail_pages",
        ],
        "goal_change" => &[
            "type",
            "interval",
            "t_ms",
            "class",
            "old_goal_ms",
            "new_goal_ms",
        ],
        "fault" => &[
            "type",
            "t_ms",
            "kind",
            "node",
            "live_nodes",
            "last_copy_losses",
            "ops_aborted",
        ],
        "failover" => &["type", "t_ms", "class", "from", "to"],
        "span" => &[
            "type",
            "t_ms",
            "op",
            "class",
            "origin",
            "response_ms",
            "stages",
        ],
        _ => return None,
    })
}

/// Extra *trailing* fields appended to records concerning a quantile-goal
/// class (a class whose goal judges e.g. the p95, not the mean). Empty for
/// record types the quantile path does not extend. Mean-goal classes never
/// emit these fields, so a mean-goal trace is byte-identical to one from
/// the quantile-free emitter.
pub fn quantile_extension_fields(kind: &str) -> &'static [&'static str] {
    match kind {
        "interval" => &["observed_p_ms", "goal_metric"],
        "optimize" | "goal_change" => &["goal_metric"],
        _ => &[],
    }
}

/// Extra *trailing* fields appended to records emitted by runs with an
/// extended storage ladder (more than one local memory tier). They trail
/// even the quantile extension, so default-ladder traces — the 3-level
/// local/remote/disk configuration — stay byte-identical to the
/// single-tier emitter.
pub fn tier_extension_fields(kind: &str) -> &'static [&'static str] {
    match kind {
        "interval" => &["tier_occupancy"],
        _ => &[],
    }
}

/// Ordered top-level fields of `kind` records for a class with the given
/// goal metric: [`expected_fields`] plus, when `quantile` is set, the
/// [`quantile_extension_fields`] appended at the end.
pub fn expected_fields_for(kind: &str, quantile: bool) -> Option<Vec<&'static str>> {
    expected_fields_ext(kind, quantile, false)
}

/// Ordered top-level fields of `kind` records under both optional
/// extensions: quantile-goal fields first, then — when `tiered` is set —
/// the [`tier_extension_fields`] of an extended storage ladder.
pub fn expected_fields_ext(kind: &str, quantile: bool, tiered: bool) -> Option<Vec<&'static str>> {
    let mut fields: Vec<&'static str> = expected_fields(kind)?.to_vec();
    if quantile {
        fields.extend_from_slice(quantile_extension_fields(kind));
    }
    if tiered {
        fields.extend_from_slice(tier_extension_fields(kind));
    }
    Some(fields)
}

/// Validates a parsed record against the published schema: the type must
/// be known and the base field layout must be an exact *prefix* of the
/// record's fields (the quantile and tier extensions are purely trailing,
/// so extras after the base layout are legal).
pub fn validate_record(record: &crate::reader::Record) -> Result<(), String> {
    let base = expected_fields(&record.kind)
        .ok_or_else(|| format!("unknown record type {:?}", record.kind))?;
    let names = record.field_names();
    if names.len() < base.len() || names[..base.len()] != *base {
        return Err(format!(
            "{} record fields {names:?} do not start with the published layout {base:?}",
            record.kind
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_type_starts_with_type_and_has_unique_fields() {
        for kind in RECORD_TYPES {
            let fields = expected_fields(kind).expect("known type");
            assert_eq!(fields[0], "type", "{kind}");
            let mut seen = std::collections::HashSet::new();
            for f in fields {
                assert!(seen.insert(f), "{kind}: duplicate field {f}");
            }
        }
        assert!(expected_fields("nonsense").is_none());
    }

    #[test]
    fn span_stage_fields_are_ns_suffixed() {
        for f in SPAN_STAGE_FIELDS {
            assert!(f.ends_with("_ns"), "{f}");
        }
    }

    #[test]
    fn quantile_extensions_append_without_collisions() {
        for kind in RECORD_TYPES {
            let base = expected_fields(kind).expect("known type");
            let ext = quantile_extension_fields(kind);
            for f in ext {
                assert!(!base.contains(f), "{kind}: {f} collides with base");
            }
            let combined = expected_fields_for(kind, true).expect("known type");
            assert_eq!(&combined[..base.len()], base, "{kind}: base is a prefix");
            assert_eq!(&combined[base.len()..], ext, "{kind}: extension trails");
            assert_eq!(
                expected_fields_for(kind, false).expect("known type"),
                base.to_vec(),
                "{kind}: mean layout unchanged"
            );
        }
        assert!(expected_fields_for("nonsense", true).is_none());
    }

    #[test]
    fn tier_extensions_trail_the_quantile_extension() {
        for kind in RECORD_TYPES {
            let base = expected_fields_for(kind, true).expect("known type");
            let ext = tier_extension_fields(kind);
            for f in ext {
                assert!(!base.contains(f), "{kind}: {f} collides with base");
            }
            let combined = expected_fields_ext(kind, true, true).expect("known type");
            assert_eq!(&combined[..base.len()], base, "{kind}: base is a prefix");
            assert_eq!(&combined[base.len()..], ext, "{kind}: tier fields trail");
            assert_eq!(
                expected_fields_ext(kind, true, false).expect("known type"),
                base,
                "{kind}: untiered layout unchanged"
            );
        }
        assert_eq!(tier_extension_fields("interval"), ["tier_occupancy"]);
        assert!(tier_extension_fields("span").is_empty());
    }

    #[test]
    fn validate_record_accepts_base_and_extended_layouts() {
        let ok = crate::reader::read_str(
            "{\"type\":\"failover\",\"t_ms\":1.0,\"class\":1,\"from\":0,\"to\":2}\n",
        )
        .expect("parses");
        validate_record(&ok.records[0]).expect("base layout");

        let extended = crate::reader::read_str(
            "{\"type\":\"goal_change\",\"interval\":4,\"t_ms\":1.0,\"class\":1,\
             \"old_goal_ms\":10.0,\"new_goal_ms\":12.0,\"goal_metric\":\"p95\"}\n",
        )
        .expect("parses");
        validate_record(&extended.records[0]).expect("trailing extension");

        let unknown = crate::reader::read_str("{\"type\":\"mystery\"}\n").expect("parses");
        assert!(validate_record(&unknown.records[0])
            .expect_err("unknown type")
            .contains("unknown record type"));

        let wrong = crate::reader::read_str(
            "{\"type\":\"failover\",\"class\":1,\"t_ms\":1.0,\"from\":0,\"to\":2}\n",
        )
        .expect("parses");
        assert!(validate_record(&wrong.records[0])
            .expect_err("reordered fields")
            .contains("published layout"));
    }
}
