//! The trace schema: every record type the simulator emits, with its exact
//! ordered field list.
//!
//! The emitter (`dmm-core`) writes object fields in a fixed order and the
//! serializer preserves it, so the schema here is strong enough to pin the
//! byte layout of a trace line, not just its field *set*. The golden schema
//! test in the repository's test suite asserts that every record the
//! simulator emits matches these lists exactly — any drift between emitter
//! and analyzer fails CI rather than silently misparsing.

/// Every record type, in rough order of appearance in a typical trace.
pub const RECORD_TYPES: [&str; 7] = [
    "interval",
    "optimize",
    "grant",
    "goal_change",
    "fault",
    "failover",
    "span",
];

/// Ordered fields of the nested `stages` object of a `span` record: one
/// `{stage}_ns` integer per lifecycle stage, in stage-index order. The
/// values partition the operation's response time exactly (integer
/// nanoseconds, no rounding).
pub const SPAN_STAGE_FIELDS: [&str; 8] = [
    "local_hit_ns",
    "pool_queue_ns",
    "net_request_ns",
    "net_transfer_ns",
    "remote_hit_ns",
    "disk_queue_ns",
    "disk_service_ns",
    "cpu_ns",
];

/// Ordered top-level fields of `kind` records, or `None` for an unknown
/// record type.
pub fn expected_fields(kind: &str) -> Option<&'static [&'static str]> {
    Some(match kind {
        "interval" => &[
            "type",
            "interval",
            "t_ms",
            "class",
            "observed_ms",
            "goal_ms",
            "nogoal_ms",
            "tolerance_ms",
            "satisfied",
            "settling",
            "store_cleared",
            "phase",
            "dedicated_mb",
            "level_share",
            "class_hit_rate",
            "nogoal_hit_rate",
            "residual_ms",
        ],
        "optimize" => &[
            "type",
            "interval",
            "class",
            "path",
            "points",
            "plane_w",
            "plane_c",
            "goal_attainable",
            "predicted_class_ms",
            "fit_residuals_ms",
            "fit_rms_ms",
            "fallback",
            "current_mb",
            "requested_mb",
            "delta_mb",
        ],
        "grant" => &[
            "type",
            "t_ms",
            "class",
            "node",
            "requested_pages",
            "granted_pages",
            "avail_pages",
        ],
        "goal_change" => &[
            "type",
            "interval",
            "t_ms",
            "class",
            "old_goal_ms",
            "new_goal_ms",
        ],
        "fault" => &[
            "type",
            "t_ms",
            "kind",
            "node",
            "live_nodes",
            "last_copy_losses",
            "ops_aborted",
        ],
        "failover" => &["type", "t_ms", "class", "from", "to"],
        "span" => &[
            "type",
            "t_ms",
            "op",
            "class",
            "origin",
            "response_ms",
            "stages",
        ],
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_type_starts_with_type_and_has_unique_fields() {
        for kind in RECORD_TYPES {
            let fields = expected_fields(kind).expect("known type");
            assert_eq!(fields[0], "type", "{kind}");
            let mut seen = std::collections::HashSet::new();
            for f in fields {
                assert!(seen.insert(f), "{kind}: duplicate field {f}");
            }
        }
        assert!(expected_fields("nonsense").is_none());
    }

    #[test]
    fn span_stage_fields_are_ns_suffixed() {
        for f in SPAN_STAGE_FIELDS {
            assert!(f.ends_with("_ns"), "{f}");
        }
    }
}
