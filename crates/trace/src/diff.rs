//! Structural comparison of two traces.
//!
//! Determinism is a contract of the simulator (same seed ⇒ byte-identical
//! trace); this module makes it checkable from the outside, and — when two
//! runs legitimately differ (different seed, code change) — pinpoints
//! *where* they first diverge at field granularity instead of a bare
//! "files differ".

use std::fmt::Write as _;

use dmm_obs::Json;

use crate::reader::Trace;

/// One divergent record pair.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// 0-based record index (both traces, emission order).
    pub index: usize,
    /// Lines in trace A / trace B.
    pub lines: (usize, usize),
    /// Field-level differences, as `path: a != b` strings.
    pub details: Vec<String>,
}

/// Outcome of comparing two traces.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Records compared pairwise (the shorter trace's length).
    pub compared: usize,
    /// Records only in A / only in B (length mismatch).
    pub extra: (usize, usize),
    /// Divergent pairs, up to the caller's limit.
    pub divergences: Vec<Divergence>,
    /// Total divergent pairs found (may exceed `divergences.len()`).
    pub total_divergent: usize,
}

impl DiffReport {
    /// True when the traces are structurally identical.
    pub fn identical(&self) -> bool {
        self.total_divergent == 0 && self.extra == (0, 0)
    }

    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.identical() {
            let _ = writeln!(out, "identical: {} records, zero divergence", self.compared);
            return out;
        }
        let _ = writeln!(
            out,
            "divergent: {} of {} compared record pairs differ",
            self.total_divergent, self.compared
        );
        if self.extra != (0, 0) {
            let _ = writeln!(
                out,
                "length mismatch: +{} records only in A, +{} only in B",
                self.extra.0, self.extra.1
            );
        }
        for d in &self.divergences {
            let _ = writeln!(
                out,
                "record #{} (A line {}, B line {}):",
                d.index, d.lines.0, d.lines.1
            );
            for detail in &d.details {
                let _ = writeln!(out, "  {detail}");
            }
        }
        if self.total_divergent > self.divergences.len() {
            let _ = writeln!(
                out,
                "... and {} more divergent pairs",
                self.total_divergent - self.divergences.len()
            );
        }
        out
    }
}

/// Compares two traces record by record, reporting at most `limit`
/// divergences in detail (all are counted).
pub fn diff(a: &Trace, b: &Trace, limit: usize) -> DiffReport {
    let compared = a.records.len().min(b.records.len());
    let mut report = DiffReport {
        compared,
        extra: (a.records.len() - compared, b.records.len() - compared),
        ..DiffReport::default()
    };
    for i in 0..compared {
        let (ra, rb) = (&a.records[i], &b.records[i]);
        let mut details = Vec::new();
        value_diff("", &ra.json, &rb.json, &mut details);
        if details.is_empty() {
            continue;
        }
        report.total_divergent += 1;
        if report.divergences.len() < limit {
            report.divergences.push(Divergence {
                index: i,
                lines: (ra.line, rb.line),
                details,
            });
        }
    }
    report
}

/// Recursively records the paths at which two JSON values differ.
fn value_diff(path: &str, a: &Json, b: &Json, out: &mut Vec<String>) {
    match (a, b) {
        (Json::Obj(fa), Json::Obj(fb)) => {
            for (key, va) in fa {
                let sub = join(path, key);
                match fb.iter().find(|(k, _)| k == key) {
                    Some((_, vb)) => value_diff(&sub, va, vb, out),
                    None => out.push(format!("{sub}: missing in B")),
                }
            }
            for (key, _) in fb {
                if !fa.iter().any(|(k, _)| k == key) {
                    out.push(format!("{}: missing in A", join(path, key)));
                }
            }
        }
        (Json::Arr(va), Json::Arr(vb)) => {
            for (i, (ea, eb)) in va.iter().zip(vb).enumerate() {
                value_diff(&format!("{path}[{i}]"), ea, eb, out);
            }
            if va.len() != vb.len() {
                out.push(format!("{path}: length {} != {}", va.len(), vb.len()));
            }
        }
        _ if a == b => {}
        _ => out.push(format!("{path}: {} != {}", render(a), render(b))),
    }
}

fn join(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{path}.{key}")
    }
}

fn render(v: &Json) -> String {
    let mut s = String::new();
    v.write(&mut s);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::read_str;

    #[test]
    fn identical_traces_report_zero_divergence() {
        let text = "{\"type\":\"grant\",\"t_ms\":5.0,\"class\":1,\"node\":0,\"requested_pages\":10,\"granted_pages\":10,\"avail_pages\":512}\n";
        let a = read_str(text).expect("valid");
        let report = diff(&a, &a.clone(), 8);
        assert!(report.identical());
        assert!(report.render().contains("zero divergence"));
    }

    #[test]
    fn field_level_divergence_is_pinpointed() {
        let a = read_str("{\"type\":\"span\",\"op\":3,\"stages\":{\"cpu_ns\":100}}\n").expect("a");
        let b = read_str("{\"type\":\"span\",\"op\":3,\"stages\":{\"cpu_ns\":200}}\n").expect("b");
        let report = diff(&a, &b, 8);
        assert_eq!(report.total_divergent, 1);
        assert_eq!(
            report.divergences[0].details,
            vec!["stages.cpu_ns: 100 != 200"]
        );
        assert!(!report.identical());
    }

    #[test]
    fn length_mismatch_is_reported() {
        let a = read_str("{\"type\":\"fault\",\"t_ms\":1.0}\n{\"type\":\"fault\",\"t_ms\":2.0}\n")
            .expect("a");
        let b = read_str("{\"type\":\"fault\",\"t_ms\":1.0}\n").expect("b");
        let report = diff(&a, &b, 8);
        assert_eq!(report.extra, (1, 0));
        assert!(!report.identical());
        assert!(report.render().contains("only in A"));
    }
}
