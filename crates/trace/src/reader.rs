//! Reading a JSON-lines trace back into structured records, either whole
//! ([`read_file`]) or incrementally as it grows ([`FollowReader`]).

use std::fmt;
use std::io::Read;
use std::path::Path;

use dmm_obs::Json;

/// A parse or validation failure, with the 1-based line it occurred on
/// (line 0 = file-level failure).
#[derive(Debug)]
pub struct ReadError {
    /// 1-based line number (0 for file-level errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ReadError {}

/// One trace record: its line number, record type, and parsed JSON.
#[derive(Debug, Clone)]
pub struct Record {
    /// 1-based line in the source file.
    pub line: usize,
    /// The `type` field (`"interval"`, `"span"`, …).
    pub kind: String,
    /// The full parsed object, field order preserved.
    pub json: Json,
}

impl Record {
    /// Numeric field as `f64` (integers widen).
    pub fn num(&self, key: &str) -> Option<f64> {
        self.json.get(key).and_then(Json::as_f64)
    }

    /// Unsigned integer field.
    pub fn uint(&self, key: &str) -> Option<u64> {
        self.json.get(key).and_then(Json::as_u64)
    }

    /// String field.
    pub fn text(&self, key: &str) -> Option<&str> {
        self.json.get(key).and_then(Json::as_str)
    }

    /// Boolean field.
    pub fn flag(&self, key: &str) -> Option<bool> {
        self.json.get(key).and_then(Json::as_bool)
    }

    /// Top-level field names in serialized order.
    pub fn field_names(&self) -> Vec<&str> {
        self.json
            .as_obj()
            .map(|fields| fields.iter().map(|(k, _)| k.as_str()).collect())
            .unwrap_or_default()
    }
}

/// A fully parsed trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// All records, in emission order.
    pub records: Vec<Record>,
}

impl Trace {
    /// Records of one type, in order.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a Record> {
        self.records.iter().filter(move |r| r.kind == kind)
    }

    /// Distinct goal-class ids appearing in `interval` records, ascending.
    pub fn goal_classes(&self) -> Vec<u64> {
        let mut classes: Vec<u64> = self
            .of_kind("interval")
            .filter_map(|r| r.uint("class"))
            .collect();
        classes.sort_unstable();
        classes.dedup();
        classes
    }
}

/// Parses a whole trace from text. Blank lines are skipped; every other
/// line must be a JSON object with a string `type` field.
pub fn read_str(text: &str) -> Result<Trace, ReadError> {
    let mut records = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let json = Json::parse(line).map_err(|e| ReadError {
            line: line_no,
            message: format!("invalid JSON: {e:?}"),
        })?;
        if json.as_obj().is_none() {
            return Err(ReadError {
                line: line_no,
                message: "record is not a JSON object".to_string(),
            });
        }
        let kind = json
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| ReadError {
                line: line_no,
                message: "record has no string `type` field".to_string(),
            })?
            .to_string();
        records.push(Record {
            line: line_no,
            kind,
            json,
        });
    }
    Ok(Trace { records })
}

/// Incrementally consumes a growing JSON-lines trace: a file another
/// process is appending to, or a pipe. Each [`FollowReader::poll`] reads
/// whatever has arrived since the last call, carries any incomplete
/// trailing line until its newline shows up, and returns the newly
/// completed records — each validated against the published schema as it
/// arrives, so a drifting emitter fails at the offending line instead of
/// silently misrendering.
#[derive(Debug)]
pub struct FollowReader<R> {
    source: R,
    /// Bytes of the (possibly incomplete) tail, carried between polls.
    partial: Vec<u8>,
    /// Lines consumed so far (1-based numbering for errors).
    line: usize,
}

impl FollowReader<std::fs::File> {
    /// Follows a trace file from its beginning.
    pub fn open(path: &Path) -> Result<Self, ReadError> {
        let file = std::fs::File::open(path).map_err(|e| ReadError {
            line: 0,
            message: format!("{}: {e}", path.display()),
        })?;
        Ok(FollowReader::new(file))
    }
}

impl<R: Read> FollowReader<R> {
    /// Follows any byte source (a file handle, a pipe, a test cursor).
    pub fn new(source: R) -> Self {
        FollowReader {
            source,
            partial: Vec::new(),
            line: 0,
        }
    }

    /// Lines consumed so far.
    pub fn lines_read(&self) -> usize {
        self.line
    }

    /// Reads newly arrived data and returns the records it completed (often
    /// empty). On a plain file, returns once the current end of file is
    /// reached — the caller sleeps and polls again; a later poll sees bytes
    /// appended in between. On a pipe, blocks until data arrives or the
    /// writer closes.
    pub fn poll(&mut self) -> Result<Vec<Record>, ReadError> {
        let mut buf = [0u8; 64 * 1024];
        loop {
            match self.source.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    self.partial.extend_from_slice(&buf[..n]);
                    if self.partial.contains(&b'\n') {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    return Err(ReadError {
                        line: 0,
                        message: format!("read: {e}"),
                    })
                }
            }
        }
        let mut records = Vec::new();
        while let Some(pos) = self.partial.iter().position(|&b| b == b'\n') {
            let mut line_bytes: Vec<u8> = self.partial.drain(..=pos).collect();
            line_bytes.pop(); // the newline itself
            self.line += 1;
            let line_no = self.line;
            let text = String::from_utf8(line_bytes).map_err(|_| ReadError {
                line: line_no,
                message: "line is not valid UTF-8".to_string(),
            })?;
            if text.trim().is_empty() {
                continue;
            }
            let json = Json::parse(&text).map_err(|e| ReadError {
                line: line_no,
                message: format!("invalid JSON: {e:?}"),
            })?;
            let kind = json
                .get("type")
                .and_then(Json::as_str)
                .ok_or_else(|| ReadError {
                    line: line_no,
                    message: "record has no string `type` field".to_string(),
                })?
                .to_string();
            let record = Record {
                line: line_no,
                kind,
                json,
            };
            crate::schema::validate_record(&record).map_err(|message| ReadError {
                line: line_no,
                message,
            })?;
            records.push(record);
        }
        Ok(records)
    }
}

/// Reads and parses a trace file.
pub fn read_file(path: &Path) -> Result<Trace, ReadError> {
    let text = std::fs::read_to_string(path).map_err(|e| ReadError {
        line: 0,
        message: format!("{}: {e}", path.display()),
    })?;
    read_str(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_records_and_filters_by_kind() {
        let text = "\
{\"type\":\"interval\",\"interval\":3,\"class\":1,\"observed_ms\":7.5}\n\
\n\
{\"type\":\"span\",\"op\":16,\"class\":1}\n";
        let trace = read_str(text).expect("valid");
        assert_eq!(trace.records.len(), 2);
        assert_eq!(trace.records[0].line, 1);
        assert_eq!(trace.records[1].line, 3);
        assert_eq!(trace.of_kind("span").count(), 1);
        let iv = trace.of_kind("interval").next().expect("interval");
        assert_eq!(iv.uint("interval"), Some(3));
        assert_eq!(iv.num("observed_ms"), Some(7.5));
        assert_eq!(trace.goal_classes(), vec![1]);
    }

    #[test]
    fn follow_reader_carries_partial_lines_and_validates() {
        use std::io::Write;

        let path =
            std::env::temp_dir().join(format!("dmm_follow_test_{}.jsonl", std::process::id()));
        let mut writer = std::fs::File::create(&path).expect("create");
        let mut follow = FollowReader::open(&path).expect("open");

        // Nothing written yet: a poll at EOF returns no records.
        assert!(follow.poll().expect("empty poll").is_empty());

        // A complete line plus the head of a second one.
        write!(
            writer,
            "{{\"type\":\"failover\",\"t_ms\":1.5,\"class\":1,\"from\":0,\"to\":2}}\n{{\"type\":\"fail"
        )
        .expect("write");
        writer.flush().expect("flush");
        let records = follow.poll().expect("first poll");
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].kind, "failover");
        assert_eq!(records[0].line, 1);

        // The tail of the split line arrives later and completes it.
        writeln!(
            writer,
            "over\",\"t_ms\":2.5,\"class\":1,\"from\":2,\"to\":0}}"
        )
        .expect("write");
        writer.flush().expect("flush");
        let records = follow.poll().expect("second poll");
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].num("t_ms"), Some(2.5));
        assert_eq!(records[0].line, 2);
        assert_eq!(follow.lines_read(), 2);

        // Schema violations surface with the offending line number.
        writeln!(writer, "{{\"type\":\"mystery\"}}").expect("write");
        writer.flush().expect("flush");
        let err = follow.poll().expect_err("unknown type");
        assert_eq!(err.line, 3);
        assert!(err.message.contains("unknown record type"), "{err}");

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_malformed_lines() {
        assert_eq!(read_str("not json\n").unwrap_err().line, 1);
        assert_eq!(read_str("{\"type\":\"x\"}\n[1,2]\n").unwrap_err().line, 2);
        let no_type = read_str("{\"kind\":\"interval\"}\n").unwrap_err();
        assert!(no_type.message.contains("type"), "{no_type}");
    }
}
