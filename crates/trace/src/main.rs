//! `dmm-trace` — analyze, watch and replay simulation JSON-lines traces.
//!
//! ```text
//! dmm-trace schema
//! dmm-trace report <trace.jsonl> [--csv <section>] [--metrics <metrics.json>]
//! dmm-trace diff <a.jsonl> <b.jsonl> [--limit N] [--expect-identical]
//! dmm-trace watch <trace.jsonl> [--snapshot N | --follow | --speed X]
//! dmm-trace replay <trace.jsonl> [--limit N] [--expect-identical]
//! ```
//!
//! Exit codes: 0 success, 1 analysis failure (unreadable trace, replay
//! divergence under `--expect-identical`, …), 2 usage error.

use std::path::Path;
use std::process::ExitCode;

use dmm_trace::{diff, read_file, report, schema, watch, FollowReader, WatchState};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("schema") => {
            print!("{}", render_schema());
            ExitCode::SUCCESS
        }
        Some("report") => run_report(&args[1..]),
        Some("diff") => run_diff(&args[1..]),
        Some("watch") => run_watch(&args[1..]),
        Some("replay") => run_replay(&args[1..]),
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: dmm-trace <command>\n\
         \n\
         commands:\n\
         \x20 schema                                   print every record type and its ordered fields\n\
         \x20 report <trace.jsonl>                     waterfall + convergence + residual analysis\n\
         \x20      [--csv compliance|waterfall]        machine-readable CSV of one section instead\n\
         \x20      [--metrics <metrics.json>]          executor section from a metrics snapshot sidecar\n\
         \x20 diff <a.jsonl> <b.jsonl> [--limit N]     structural comparison of two runs\n\
         \x20      [--expect-identical]                exit non-zero on any divergence\n\
         \x20 watch <trace.jsonl> [--speed X]          terminal dashboard, paced playback (default 20x)\n\
         \x20      [--follow]                          tail a growing trace live\n\
         \x20      [--snapshot N]                      print N deterministic frames and exit (for CI)\n\
         \x20 replay <trace.jsonl> [--limit N]         rebuild the run from its run_config record,\n\
         \x20      [--expect-identical]                re-run it, and byte-compare the control records"
    );
    ExitCode::from(2)
}

fn render_schema() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for kind in schema::RECORD_TYPES {
        let fields = schema::expected_fields(kind).expect("known type");
        let _ = writeln!(out, "{kind}: {}", fields.join(", "));
        if kind == "span" {
            let _ = writeln!(out, "  stages: {}", schema::SPAN_STAGE_FIELDS.join(", "));
        }
    }
    out
}

fn run_report(args: &[String]) -> ExitCode {
    let mut path = None;
    let mut csv = None;
    let mut metrics = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--csv" => match it.next() {
                Some(section) => csv = Some(section.clone()),
                None => return usage(),
            },
            "--metrics" => match it.next() {
                Some(p) => metrics = Some(p.clone()),
                None => return usage(),
            },
            _ if arg.starts_with("--") => return usage(),
            _ if path.is_none() => path = Some(arg.clone()),
            _ => return usage(),
        }
    }
    let Some(path) = path else {
        return usage();
    };
    let trace = match read_file(Path::new(&path)) {
        Ok(trace) => trace,
        Err(e) => {
            eprintln!("dmm-trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(section) = csv {
        return match report::csv_section(&trace, &section) {
            Ok(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("dmm-trace: {e}");
                usage()
            }
        };
    }
    print!("{}", report::report(&trace));
    if let Some(metrics_path) = metrics {
        match load_metrics(Path::new(&metrics_path)) {
            Ok(snapshot) => {
                println!();
                print!("{}", report::executor(&snapshot));
            }
            Err(e) => {
                eprintln!("dmm-trace: {metrics_path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn load_metrics(path: &Path) -> Result<dmm_obs::MetricsSnapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let json = dmm_obs::Json::parse(text.trim()).map_err(|e| format!("invalid JSON: {e:?}"))?;
    dmm_obs::MetricsSnapshot::from_json(&json)
        .ok_or_else(|| "not a metrics snapshot (expected counters/gauges/histograms)".to_string())
}

fn run_diff(args: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut limit = 8usize;
    let mut expect_identical = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--expect-identical" => expect_identical = true,
            "--limit" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => limit = n,
                None => return usage(),
            },
            _ if arg.starts_with("--") => return usage(),
            _ => paths.push(arg),
        }
    }
    let [a, b] = paths.as_slice() else {
        return usage();
    };
    let (a, b) = match (read_file(Path::new(a)), read_file(Path::new(b))) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("dmm-trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = diff::diff(&a, &b, limit);
    print!("{}", report.render());
    if expect_identical && !report.identical() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn run_watch(args: &[String]) -> ExitCode {
    let mut path = None;
    let mut snapshot_frames = None;
    let mut follow = false;
    let mut speed = 20.0f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--follow" => follow = true,
            "--snapshot" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => snapshot_frames = Some(n),
                None => return usage(),
            },
            "--speed" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(x) if x > 0.0 => speed = x,
                _ => return usage(),
            },
            _ if arg.starts_with("--") => return usage(),
            _ if path.is_none() => path = Some(arg.clone()),
            _ => return usage(),
        }
    }
    let Some(path) = path else {
        return usage();
    };
    if let Some(frames) = snapshot_frames {
        return match read_file(Path::new(&path)) {
            Ok(trace) => {
                print!("{}", watch::snapshot(&trace, frames));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("dmm-trace: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if follow {
        return watch_follow(Path::new(&path));
    }
    watch_playback(Path::new(&path), speed)
}

/// Paced playback of a finished trace: frames advance at `speed` times the
/// recorded rate, each painted over the last with an ANSI clear.
fn watch_playback(path: &Path, speed: f64) -> ExitCode {
    let trace = match read_file(path) {
        Ok(trace) => trace,
        Err(e) => {
            eprintln!("dmm-trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut state = WatchState::new();
    let mut last_t_ms: Option<f64> = None;
    for record in &trace.records {
        let t_ms = record.num("t_ms");
        if state.observe(record) {
            if let (Some(prev), Some(now)) = (last_t_ms, t_ms) {
                let dt = ((now - prev) / speed).max(0.0);
                std::thread::sleep(std::time::Duration::from_secs_f64(dt / 1000.0));
            }
            last_t_ms = t_ms;
            paint(&state);
        }
    }
    // Leave the final frame on screen.
    ExitCode::SUCCESS
}

/// Live view of a growing trace: poll for new records, repaint on every
/// completed frame, sleep briefly when the file is quiescent.
fn watch_follow(path: &Path) -> ExitCode {
    let mut reader = match FollowReader::open(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dmm-trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut state = WatchState::new();
    loop {
        match reader.poll() {
            Ok(records) => {
                let mut repaint = false;
                for record in &records {
                    repaint |= state.observe(record);
                }
                if repaint {
                    paint(&state);
                }
                if records.is_empty() {
                    std::thread::sleep(std::time::Duration::from_millis(200));
                }
            }
            Err(e) => {
                eprintln!("dmm-trace: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
}

fn paint(state: &WatchState) {
    // Home the cursor and clear: repaint in place without scrollback spam.
    print!("\x1b[H\x1b[2J{}", state.frame());
    use std::io::Write as _;
    std::io::stdout().flush().ok();
}

fn run_replay(args: &[String]) -> ExitCode {
    let mut path = None;
    let mut limit = 4usize;
    let mut expect_identical = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--expect-identical" => expect_identical = true,
            "--limit" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => limit = n,
                None => return usage(),
            },
            _ if arg.starts_with("--") => return usage(),
            _ if path.is_none() => path = Some(arg.clone()),
            _ => return usage(),
        }
    }
    let Some(path) = path else {
        return usage();
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("dmm-trace: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match dmm_core::replay::verify_jsonl(&text, limit) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("dmm-trace: replay: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "replayed {} intervals: {} control records recorded, {} re-emitted, {} diverging",
        report.intervals, report.original_records, report.replayed_records, report.mismatches
    );
    if report.identical() {
        println!("replay is byte-identical to the recording");
        return ExitCode::SUCCESS;
    }
    for d in &report.divergences {
        println!("record {}:", d.index);
        println!(
            "  recorded: {}",
            d.original.as_deref().unwrap_or("(missing)")
        );
        println!(
            "  replayed: {}",
            d.replayed.as_deref().unwrap_or("(missing)")
        );
    }
    if report.mismatches > report.divergences.len() {
        println!(
            "  … and {} more (raise --limit to see them)",
            report.mismatches - report.divergences.len()
        );
    }
    if expect_identical {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
