//! `dmm-trace` — analyze simulation JSON-lines traces.
//!
//! ```text
//! dmm-trace schema
//! dmm-trace report <trace.jsonl>
//! dmm-trace diff <a.jsonl> <b.jsonl> [--limit N] [--expect-identical]
//! ```
//!
//! Exit codes: 0 success, 1 analysis failure (unreadable trace, or
//! `--expect-identical` with divergence), 2 usage error.

use std::path::Path;
use std::process::ExitCode;

use dmm_trace::{diff, read_file, report, schema};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("schema") => {
            print!("{}", render_schema());
            ExitCode::SUCCESS
        }
        Some("report") => match args.get(1) {
            Some(path) => run_report(Path::new(path)),
            None => usage(),
        },
        Some("diff") => run_diff(&args[1..]),
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: dmm-trace <command>\n\
         \n\
         commands:\n\
         \x20 schema                                   print every record type and its ordered fields\n\
         \x20 report <trace.jsonl>                     waterfall + convergence + residual analysis\n\
         \x20 diff <a.jsonl> <b.jsonl> [--limit N]     structural comparison of two runs\n\
         \x20      [--expect-identical]                exit non-zero on any divergence"
    );
    ExitCode::from(2)
}

fn render_schema() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for kind in schema::RECORD_TYPES {
        let fields = schema::expected_fields(kind).expect("known type");
        let _ = writeln!(out, "{kind}: {}", fields.join(", "));
        if kind == "span" {
            let _ = writeln!(out, "  stages: {}", schema::SPAN_STAGE_FIELDS.join(", "));
        }
    }
    out
}

fn run_report(path: &Path) -> ExitCode {
    match read_file(path) {
        Ok(trace) => {
            print!("{}", report::report(&trace));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("dmm-trace: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_diff(args: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut limit = 8usize;
    let mut expect_identical = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--expect-identical" => expect_identical = true,
            "--limit" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => limit = n,
                None => return usage(),
            },
            _ if arg.starts_with("--") => return usage(),
            _ => paths.push(arg),
        }
    }
    let [a, b] = paths.as_slice() else {
        return usage();
    };
    let (a, b) = match (read_file(Path::new(a)), read_file(Path::new(b))) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("dmm-trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = diff::diff(&a, &b, limit);
    print!("{}", report.render());
    if expect_identical && !report.identical() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
