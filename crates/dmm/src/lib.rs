//! # dmm — goal-oriented distributed memory management
//!
//! A from-scratch Rust reproduction of *Managing Distributed Memory to Meet
//! Multiclass Workload Response Time Goals* (Sinnwell & König, ICDE 1999):
//! an online feedback method that partitions the aggregate buffer memory of
//! a network of workstations into per-class dedicated pools so that
//! user-specified mean response time goals are met, built on a detailed
//! discrete-event simulation of the cluster.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`sim`] — discrete-event kernel, distributions, statistics;
//! * [`linalg`] — incremental Gauss, hyperplane fitting;
//! * [`lp`] — two-phase simplex;
//! * [`buffer`] — pools, replacement policies, heat, partitioned buffers;
//! * [`cluster`] — nodes, disks, LAN, directory, data-shipping protocol;
//! * [`obs`] — metrics registry, deterministic JSON, structured trace sinks;
//! * [`workload`] — multiclass workload generation and goal schedules;
//! * [`core`] — the paper's agents/coordinators/optimizer and the
//!   [`core::Simulation`] facade.
//!
//! ## Quickstart
//!
//! ```
//! use dmm::prelude::*;
//!
//! // The paper's base experiment: 3 nodes, one goal class, goal 15 ms.
//! let config = SystemConfig::builder()
//!     .seed(42)
//!     .goal_ms(15.0)
//!     .build()
//!     .expect("valid configuration");
//! let mut sim = Simulation::new(config);
//! sim.run_intervals(20);
//! let last = sim.records(ClassId(1)).last().expect("ran checks");
//! assert!(last.observed_ms.is_some());
//! ```

pub use dmm_buffer as buffer;
pub use dmm_cluster as cluster;
pub use dmm_core as core;
pub use dmm_linalg as linalg;
pub use dmm_lp as lp;
pub use dmm_obs as obs;
pub use dmm_sim as sim;
pub use dmm_workload as workload;

/// The types almost every embedding needs, importable in one line.
///
/// ```
/// use dmm::prelude::*;
///
/// let plan = FaultPlan::new(7).crash_ms(NodeId(1), 60_000);
/// let config = SystemConfig::builder()
///     .seed(7)
///     .goal_ms(15.0)
///     .fault_plan(plan)
///     .build()
///     .expect("valid configuration");
/// assert!(config.fault_plan.is_some());
/// ```
pub mod prelude {
    pub use dmm_buffer::{ClassId, PolicySpec, TierPolicy, NO_GOAL};
    pub use dmm_cluster::{
        CostSlot, DiskStall, FaultKind, FaultPlan, HotRingSpec, NodeId, PlacementSpec,
        RepricingMode, TierId, TierLadder, TierSpec,
    };
    pub use dmm_core::{
        ControllerKind, Error, SatisfactionMode, Simulation, SystemConfig, SystemConfigBuilder,
    };
    pub use dmm_obs::{JsonLinesSink, StreamSink, TraceSink, VecSink};
    pub use dmm_sim::{ExecMode, SchedulerBackend, SimDuration, SimTime};
    pub use dmm_workload::{GoalMetric, GoalRange};
}
