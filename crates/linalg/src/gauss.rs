//! Gaussian elimination with partial pivoting: linear solves and rank.

use crate::matrix::Matrix;

/// Errors from the direct solvers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinalgError {
    /// The coefficient matrix is (numerically) singular.
    Singular,
    /// Input dimensions are inconsistent.
    DimensionMismatch,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::DimensionMismatch => write!(f, "dimension mismatch"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Default absolute pivot tolerance. The coordinator's inputs are buffer
/// sizes in bytes (order 1e6) normalized before use, so 1e-9 comfortably
/// separates true rank deficiency from rounding noise.
pub const DEFAULT_TOL: f64 = 1e-9;

/// Solves `A·x = b` by Gaussian elimination with partial pivoting.
/// `A` must be square and `b.len() == A.rows()`.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(LinalgError::DimensionMismatch);
    }
    let mut m = a.clone();
    let mut rhs = b.to_vec();

    for col in 0..n {
        // Partial pivot: largest magnitude in this column at or below `col`.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                m[(i, col)]
                    .abs()
                    .partial_cmp(&m[(j, col)].abs())
                    .expect("no NaN")
            })
            .expect("non-empty range");
        if m[(pivot_row, col)].abs() < DEFAULT_TOL {
            return Err(LinalgError::Singular);
        }
        m.swap_rows(col, pivot_row);
        rhs.swap(col, pivot_row);

        let pivot = m[(col, col)];
        for row in col + 1..n {
            let factor = m[(row, col)] / pivot;
            if factor == 0.0 {
                continue;
            }
            m[(row, col)] = 0.0;
            for j in col + 1..n {
                let v = m[(col, j)];
                m[(row, j)] -= factor * v;
            }
            rhs[row] -= factor * rhs[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = rhs[row];
        for j in row + 1..n {
            acc -= m[(row, j)] * x[j];
        }
        x[row] = acc / m[(row, row)];
    }
    Ok(x)
}

/// Numerical rank of `A` via row echelon reduction with partial pivoting,
/// using relative tolerance `tol` against the largest row norm.
pub fn rank(a: &Matrix, tol: f64) -> usize {
    let mut m = a.clone();
    let (rows, cols) = (m.rows(), m.cols());
    let scale = (0..rows)
        .map(|i| m.row(i).iter().fold(0.0f64, |s, v| s.max(v.abs())))
        .fold(0.0f64, f64::max)
        .max(1.0);
    let thresh = tol * scale;

    let mut r = 0; // current pivot row
    for col in 0..cols {
        if r == rows {
            break;
        }
        let pivot_row = (r..rows)
            .max_by(|&i, &j| {
                m[(i, col)]
                    .abs()
                    .partial_cmp(&m[(j, col)].abs())
                    .expect("no NaN")
            })
            .expect("non-empty");
        if m[(pivot_row, col)].abs() <= thresh {
            continue;
        }
        m.swap_rows(r, pivot_row);
        let pivot = m[(r, col)];
        for row in r + 1..rows {
            let factor = m[(row, col)] / pivot;
            if factor == 0.0 {
                continue;
            }
            for j in col..cols {
                let v = m[(r, j)];
                m[(row, j)] -= factor * v;
            }
        }
        r += 1;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_well_conditioned_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let x = solve(&a, &[8.0, -11.0, -3.0]).expect("solvable");
        let expect = [2.0, 3.0, -1.0];
        for (xi, ei) in x.iter().zip(&expect) {
            assert!((xi - ei).abs() < 1e-10);
        }
    }

    #[test]
    fn detects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(solve(&a, &[1.0, 2.0]), Err(LinalgError::Singular));
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        assert_eq!(solve(&a, &[1.0]), Err(LinalgError::DimensionMismatch));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(&a, &[3.0, 4.0]).expect("solvable with pivoting");
        assert!((x[0] - 4.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rank_full_and_deficient() {
        let full = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert_eq!(rank(&full, 1e-9), 2);
        let deficient = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        assert_eq!(rank(&deficient, 1e-9), 1);
        let wide = Matrix::from_rows(&[&[1.0, 0.0, 5.0], &[0.0, 1.0, 5.0]]);
        assert_eq!(rank(&wide, 1e-9), 2);
        let zero = Matrix::zeros(3, 3);
        assert_eq!(rank(&zero, 1e-9), 0);
    }

    #[test]
    fn solution_satisfies_system() {
        // Residual check on a slightly larger system.
        let rows: Vec<Vec<f64>> = (0..6)
            .map(|i| {
                (0..6)
                    .map(|j| ((i * 7 + j * 3 + 1) % 11) as f64 + if i == j { 10.0 } else { 0.0 })
                    .collect()
            })
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = Matrix::from_rows(&refs);
        let b: Vec<f64> = (0..6).map(|i| i as f64 - 2.5).collect();
        let x = solve(&a, &b).expect("diagonally dominant");
        let ax = a.mul_vec(&x);
        for (l, r) in ax.iter().zip(&b) {
            assert!((l - r).abs() < 1e-9);
        }
    }
}
