//! Incremental Gauss elimination for linear-independence maintenance.
//!
//! Paper §5, phase (b): the coordinator keeps the `N+1` most recent measure
//! points `p₁, …, p_{N+1}` such that the difference vectors
//! `p₁−p₂, …, p₁−p_{N+1}` are linearly independent, so that the hyperplane
//! fit in phase (d) has a unique solution. Testing whether a *new* vector is
//! independent of the ones already kept "takes advantage of the only marginal
//! changes between two computations … and thereby reduces the complexity of
//! the standard Gauss algorithm to O(N²)".
//!
//! [`IndependenceTracker`] implements exactly that: it maintains the kept
//! vectors in row-echelon form (each stored row has a pivot column). Testing
//! a candidate eliminates it against the stored rows — one `O(dim)` pass per
//! stored row, so `O(dim²)` total — and either rejects it (residual below
//! tolerance ⇒ dependent) or appends the reduced row.

/// Maintains a growing set of linearly independent vectors in echelon form.
#[derive(Debug, Clone)]
pub struct IndependenceTracker {
    dim: usize,
    tol: f64,
    /// Reduced rows, each paired with its pivot column index.
    rows: Vec<(usize, Vec<f64>)>,
}

impl IndependenceTracker {
    /// Creates a tracker for vectors of length `dim` with relative pivot
    /// tolerance `tol` (e.g. `1e-9`). Vectors should be pre-scaled to
    /// comparable magnitude; the tracker normalizes each candidate by its
    /// max-norm before elimination so the tolerance is scale-free.
    pub fn new(dim: usize, tol: f64) -> Self {
        assert!(dim > 0);
        assert!(tol > 0.0);
        IndependenceTracker {
            dim,
            tol,
            rows: Vec::with_capacity(dim),
        }
    }

    /// Vector length this tracker operates on.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of independent vectors currently held.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no vectors are held.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// True once `dim` independent vectors are held (a full basis).
    pub fn is_full(&self) -> bool {
        self.rows.len() == self.dim
    }

    /// Removes all vectors.
    pub fn clear(&mut self) {
        self.rows.clear();
    }

    /// Tests whether `v` is linearly independent of the held vectors without
    /// inserting it. `O(dim²)`.
    pub fn is_independent(&self, v: &[f64]) -> bool {
        self.reduce(v).is_some()
    }

    /// Attempts to insert `v`. Returns `true` (and keeps the reduced row) if
    /// `v` is independent of the held vectors, `false` otherwise. `O(dim²)`.
    pub fn try_insert(&mut self, v: &[f64]) -> bool {
        match self.reduce(v) {
            Some((pivot, row)) => {
                self.rows.push((pivot, row));
                true
            }
            None => false,
        }
    }

    /// Eliminates `v` against the echelon rows. Returns the reduced row and
    /// its pivot column if a significant residual remains.
    fn reduce(&self, v: &[f64]) -> Option<(usize, Vec<f64>)> {
        assert_eq!(v.len(), self.dim, "vector dimension mismatch");
        let scale = v.iter().fold(0.0f64, |s, x| s.max(x.abs()));
        if scale <= 0.0 {
            return None; // zero vector is never independent
        }
        let mut w: Vec<f64> = v.iter().map(|x| x / scale).collect();
        for (pivot, row) in &self.rows {
            let factor = w[*pivot] / row[*pivot];
            if factor != 0.0 {
                for (wi, ri) in w.iter_mut().zip(row) {
                    *wi -= factor * ri;
                }
                w[*pivot] = 0.0; // exact, avoids residue from cancellation
            }
        }
        // Pivot = largest remaining entry.
        let (pivot, &maxval) = w
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.abs().partial_cmp(&b.abs()).expect("no NaN"))
            .expect("dim > 0");
        if maxval.abs() <= self.tol {
            None
        } else {
            Some((pivot, w))
        }
    }
}

/// Greedily selects, newest first, up to `want` points from `points` (ordered
/// oldest → newest) whose *differences to the newest point* are linearly
/// independent. Returns indices into `points`, newest first; the newest point
/// itself is always selected first. This is the `O(N³)` re-selection fallback
/// used when simple appends cannot maintain the invariant (e.g. after the
/// workload revisits an old partitioning).
pub fn select_independent_newest(points: &[Vec<f64>], want: usize, tol: f64) -> Vec<usize> {
    let Some((newest_idx, newest)) = points.iter().enumerate().next_back() else {
        return Vec::new();
    };
    let mut selected = vec![newest_idx];
    if want <= 1 || newest.is_empty() {
        return selected;
    }
    let mut tracker = IndependenceTracker::new(newest.len(), tol);
    for idx in (0..newest_idx).rev() {
        let diff: Vec<f64> = newest
            .iter()
            .zip(&points[idx])
            .map(|(a, b)| a - b)
            .collect();
        if tracker.try_insert(&diff) {
            selected.push(idx);
            if selected.len() == want {
                break;
            }
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_independent_rejects_dependent() {
        let mut t = IndependenceTracker::new(3, 1e-9);
        assert!(t.try_insert(&[1.0, 0.0, 0.0]));
        assert!(t.try_insert(&[1.0, 1.0, 0.0]));
        assert!(!t.try_insert(&[3.0, 2.0, 0.0])); // = 1*(1,0,0)+2*(1,1,0)
        assert!(t.try_insert(&[0.0, 0.0, 5.0]));
        assert!(t.is_full());
        // A full basis rejects everything further.
        assert!(!t.try_insert(&[1.0, 2.0, 3.0]));
    }

    #[test]
    fn rejects_zero_vector() {
        let mut t = IndependenceTracker::new(2, 1e-9);
        assert!(!t.try_insert(&[0.0, 0.0]));
        assert!(t.is_empty());
    }

    #[test]
    fn tolerance_is_scale_free() {
        // Huge magnitudes (buffer sizes in bytes) must not defeat the test.
        let mut t = IndependenceTracker::new(2, 1e-9);
        assert!(t.try_insert(&[2e6, 1e6]));
        assert!(!t.try_insert(&[4e6, 2e6]));
        assert!(t.try_insert(&[4e6, 2.1e6]));
    }

    #[test]
    fn is_independent_does_not_mutate() {
        let mut t = IndependenceTracker::new(2, 1e-9);
        t.try_insert(&[1.0, 0.0]);
        assert!(t.is_independent(&[0.0, 1.0]));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn near_dependent_vector_rejected() {
        let mut t = IndependenceTracker::new(2, 1e-6);
        assert!(t.try_insert(&[1.0, 1.0]));
        assert!(!t.try_insert(&[1.0, 1.0 + 1e-9]));
        assert!(t.try_insert(&[1.0, 1.0 + 1e-3]));
    }

    #[test]
    fn select_newest_prefers_recency() {
        // Points in R²; need 3 points (2 independent differences).
        let points = vec![
            vec![0.0, 0.0], // oldest
            vec![1.0, 0.0], // dependent with diff of the one below
            vec![2.0, 0.0], // diff (1,0) direction
            vec![3.0, 1.0], // newest
        ];
        let sel = select_independent_newest(&points, 3, 1e-9);
        // Newest first; then idx 2 (diff (1,1)), then idx 1 (diff (2,1),
        // independent of (1,1)).
        assert_eq!(sel, vec![3, 2, 1]);
    }

    #[test]
    fn select_handles_all_collinear() {
        let points = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![2.0, 2.0]];
        let sel = select_independent_newest(&points, 3, 1e-9);
        // Only one independent direction exists among the differences.
        assert_eq!(sel, vec![2, 1]);
    }

    #[test]
    fn select_empty_and_single() {
        assert!(select_independent_newest(&[], 3, 1e-9).is_empty());
        let one = vec![vec![1.0, 2.0]];
        assert_eq!(select_independent_newest(&one, 3, 1e-9), vec![0]);
    }
}
