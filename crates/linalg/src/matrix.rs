//! Row-major dense matrix.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense `rows × cols` matrix of `f64`, stored row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from row slices; all rows must have equal length.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Swaps rows `a` and `b`.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (a, b) = (a.min(b), a.max(b));
        let (lo, hi) = self.data.split_at_mut(b * self.cols);
        lo[a * self.cols..(a + 1) * self.cols].swap_with_slice(&mut hi[..self.cols]);
    }

    /// Matrix-vector product `A·x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>10.4} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn identity_mul() {
        let m = Matrix::identity(3);
        assert_eq!(m.mul_vec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn swap_rows_works() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        m.swap_rows(0, 2);
        assert_eq!(m.row(0), &[5.0, 6.0]);
        assert_eq!(m.row(2), &[1.0, 2.0]);
        m.swap_rows(1, 1);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn mul_vec_general() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.mul_vec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }
}
