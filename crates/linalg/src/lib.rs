//! # dmm-linalg — dense linear algebra for the coordinator
//!
//! The ICDE'99 coordinator needs three numerical kernels (paper §5,
//! "Computational Complexity"):
//!
//! 1. Maintaining the `N+1` most recent *linearly independent* measure
//!    points — an incremental Gauss elimination that tests a new difference
//!    vector against an echelon basis in `O(N²)` ([`IndependenceTracker`]).
//! 2. Fitting the `N`-dimensional response-time hyperplane through those
//!    points — one `(N+1)×(N+1)` linear solve ([`hyperplane::fit_exact`]) or
//!    a least-squares fit when extra points are available
//!    ([`hyperplane::fit_least_squares`]).
//! 3. General solves with partial pivoting backing both ([`gauss`]).
//!
//! Everything is dense `f64`; problem sizes are tiny (N ≤ 50 nodes), so
//! clarity and numerical robustness win over blocking or SIMD.

pub mod gauss;
pub mod hyperplane;
pub mod incremental;
pub mod matrix;

pub use gauss::{rank, solve, LinalgError};
pub use hyperplane::Hyperplane;
pub use incremental::IndependenceTracker;
pub use matrix::Matrix;
