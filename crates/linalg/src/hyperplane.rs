//! Hyperplane approximation of the response-time surface.
//!
//! Paper §4: the relation between a class's mean response time and the vector
//! of its per-node dedicated buffer sizes is a-priori unknown; the coordinator
//! approximates it with an `N`-dimensional hyperplane
//! `RT(x) = ā·x + c` (Eq. 4) fitted through previously measured points.
//!
//! [`fit_exact`] interpolates through exactly `N+1` points (the paper's
//! choice — unique because phase (b) keeps the points linearly independent);
//! [`fit_least_squares`] generalizes to any `≥ N+1` points via the normal
//! equations, which the coordinator uses opportunistically to smooth noise
//! when extra history is available.

use crate::gauss::{solve, LinalgError};
use crate::matrix::Matrix;

/// An affine function `f(x) = w·x + c` on `R^dim`.
#[derive(Debug, Clone, PartialEq)]
pub struct Hyperplane {
    /// Gradient ā (paper Eq. 4's per-node coefficients).
    pub w: Vec<f64>,
    /// Intercept c̄.
    pub c: f64,
}

impl Hyperplane {
    /// Dimension of the input space.
    pub fn dim(&self) -> usize {
        self.w.len()
    }

    /// Evaluates the plane at `x`.
    pub fn eval(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.w.len());
        self.w.iter().zip(x).map(|(a, b)| a * b).sum::<f64>() + self.c
    }
}

/// Fits the unique hyperplane through exactly `dim + 1` points
/// `(xᵢ, yᵢ)`. Fails with [`LinalgError::Singular`] when the points do not
/// span the space (their differences are linearly dependent).
pub fn fit_exact(xs: &[Vec<f64>], ys: &[f64]) -> Result<Hyperplane, LinalgError> {
    let n_points = xs.len();
    if n_points == 0 || ys.len() != n_points {
        return Err(LinalgError::DimensionMismatch);
    }
    let dim = xs[0].len();
    if n_points != dim + 1 {
        return Err(LinalgError::DimensionMismatch);
    }
    // Unknowns: w (dim entries) then c. Row i: xᵢ·w + c = yᵢ.
    let mut a = Matrix::zeros(n_points, n_points);
    for (i, x) in xs.iter().enumerate() {
        if x.len() != dim {
            return Err(LinalgError::DimensionMismatch);
        }
        for (j, &xj) in x.iter().enumerate() {
            a[(i, j)] = xj;
        }
        a[(i, dim)] = 1.0;
    }
    let sol = solve(&a, ys)?;
    Ok(Hyperplane {
        w: sol[..dim].to_vec(),
        c: sol[dim],
    })
}

/// Least-squares hyperplane through `≥ dim + 1` points via the normal
/// equations `(AᵀA)·θ = Aᵀy` with `A = [X | 1]`. Fails when the Gram matrix
/// is singular (points do not span the space).
pub fn fit_least_squares(xs: &[Vec<f64>], ys: &[f64]) -> Result<Hyperplane, LinalgError> {
    let n_points = xs.len();
    if n_points == 0 || ys.len() != n_points {
        return Err(LinalgError::DimensionMismatch);
    }
    let dim = xs[0].len();
    if n_points < dim + 1 {
        return Err(LinalgError::DimensionMismatch);
    }
    let cols = dim + 1;
    let mut gram = Matrix::zeros(cols, cols);
    let mut rhs = vec![0.0; cols];
    let mut aug = vec![0.0; cols];
    for (x, &y) in xs.iter().zip(ys) {
        if x.len() != dim {
            return Err(LinalgError::DimensionMismatch);
        }
        aug[..dim].copy_from_slice(x);
        aug[dim] = 1.0;
        for i in 0..cols {
            for j in 0..cols {
                gram[(i, j)] += aug[i] * aug[j];
            }
            rhs[i] += aug[i] * y;
        }
    }
    let sol = solve(&gram, &rhs)?;
    Ok(Hyperplane {
        w: sol[..dim].to_vec(),
        c: sol[dim],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-8, "{a} vs {b}");
    }

    #[test]
    fn exact_fit_recovers_plane() {
        // f(x) = 2x₁ − 3x₂ + 5.
        let xs = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0]];
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[0] - 3.0 * x[1] + 5.0).collect();
        let h = fit_exact(&xs, &ys).expect("independent points");
        assert_close(h.w[0], 2.0);
        assert_close(h.w[1], -3.0);
        assert_close(h.c, 5.0);
        assert_close(h.eval(&[2.0, 2.0]), 3.0);
    }

    #[test]
    fn exact_fit_fails_on_degenerate_points() {
        let xs = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![2.0, 2.0]];
        let ys = vec![0.0, 1.0, 2.0];
        assert!(fit_exact(&xs, &ys).is_err());
    }

    #[test]
    fn exact_fit_checks_cardinality() {
        let xs = vec![vec![0.0, 0.0], vec![1.0, 0.0]];
        assert_eq!(
            fit_exact(&xs, &[0.0, 1.0]),
            Err(LinalgError::DimensionMismatch)
        );
    }

    #[test]
    fn least_squares_matches_exact_on_minimal_set() {
        let xs = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0]];
        let ys: Vec<f64> = xs.iter().map(|x| -1.5 * x[0] + 0.5 * x[1] + 2.0).collect();
        let e = fit_exact(&xs, &ys).expect("fit");
        let l = fit_least_squares(&xs, &ys).expect("fit");
        for (a, b) in e.w.iter().zip(&l.w) {
            assert_close(*a, *b);
        }
        assert_close(e.c, l.c);
    }

    #[test]
    fn least_squares_averages_noise() {
        // Noisy samples of f(x) = x + 1 with symmetric noise: LS recovers f.
        let xs = vec![vec![0.0], vec![0.0], vec![2.0], vec![2.0]];
        let ys = vec![0.9, 1.1, 2.9, 3.1];
        let h = fit_least_squares(&xs, &ys).expect("fit");
        assert_close(h.w[0], 1.0);
        assert_close(h.c, 1.0);
    }

    #[test]
    fn least_squares_needs_enough_points() {
        let xs = vec![vec![1.0, 2.0]];
        assert_eq!(
            fit_least_squares(&xs, &[1.0]),
            Err(LinalgError::DimensionMismatch)
        );
    }

    #[test]
    fn response_time_shape_example() {
        // A miniature of paper Eq. 4: RT falls as local buffers grow.
        let xs = vec![
            vec![0.0, 0.0, 0.0],
            vec![1e6, 0.0, 0.0],
            vec![0.0, 1e6, 0.0],
            vec![0.0, 0.0, 1e6],
        ];
        let true_w = [-2e-6, -1e-6, -0.5e-6];
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 10.0 + x.iter().zip(&true_w).map(|(a, b)| a * b).sum::<f64>())
            .collect();
        let h = fit_exact(&xs, &ys).expect("fit");
        for (w, t) in h.w.iter().zip(&true_w) {
            assert_close(*w, *t);
        }
        assert_close(h.c, 10.0);
    }
}
