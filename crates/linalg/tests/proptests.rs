//! Property-based tests for the linear algebra kernels.

use dmm_linalg::{gauss, hyperplane, IndependenceTracker, Matrix};
use proptest::prelude::*;

/// Strategy: a well-conditioned square system built as a diagonally dominant
/// matrix, so solvability is guaranteed.
fn dominant_system(n: usize) -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    let entry = -5.0..5.0f64;
    (
        proptest::collection::vec(proptest::collection::vec(entry.clone(), n), n),
        proptest::collection::vec(-10.0..10.0f64, n),
    )
        .prop_map(move |(mut rows, b)| {
            for (i, row) in rows.iter_mut().enumerate() {
                let off: f64 = row.iter().map(|x| x.abs()).sum();
                row[i] = off + 1.0; // strict diagonal dominance
            }
            (rows, b)
        })
}

proptest! {
    #[test]
    fn solve_residual_is_small((rows, b) in dominant_system(5)) {
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = Matrix::from_rows(&refs);
        let x = gauss::solve(&a, &b).expect("diagonally dominant is nonsingular");
        let ax = a.mul_vec(&x);
        for (l, r) in ax.iter().zip(&b) {
            prop_assert!((l - r).abs() < 1e-7, "residual {l} vs {r}");
        }
    }

    #[test]
    fn rank_of_outer_product_is_one(u in proptest::collection::vec(-3.0..3.0f64, 4),
                                    v in proptest::collection::vec(-3.0..3.0f64, 4)) {
        prop_assume!(u.iter().any(|x| x.abs() > 0.1));
        prop_assume!(v.iter().any(|x| x.abs() > 0.1));
        let rows: Vec<Vec<f64>> = u.iter().map(|&ui| v.iter().map(|&vj| ui * vj).collect()).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = Matrix::from_rows(&refs);
        prop_assert_eq!(gauss::rank(&a, 1e-9), 1);
    }

    #[test]
    fn tracker_never_exceeds_dim(vs in proptest::collection::vec(
        proptest::collection::vec(-10.0..10.0f64, 3), 0..20)) {
        let mut t = IndependenceTracker::new(3, 1e-9);
        for v in &vs {
            t.try_insert(v);
            prop_assert!(t.len() <= 3);
        }
    }

    #[test]
    fn tracker_rejects_linear_combinations(
        a in proptest::collection::vec(-5.0..5.0f64, 4),
        b in proptest::collection::vec(-5.0..5.0f64, 4),
        alpha in -3.0..3.0f64,
        beta in -3.0..3.0f64,
    ) {
        let mut t = IndependenceTracker::new(4, 1e-7);
        // Only meaningful if a and b actually get inserted.
        prop_assume!(a.iter().any(|x| x.abs() > 0.5));
        let mut inserted = Vec::new();
        if t.try_insert(&a) { inserted.push(a.clone()); }
        if t.try_insert(&b) { inserted.push(b.clone()); }
        prop_assume!(inserted.len() == 2);
        let combo: Vec<f64> = a.iter().zip(&b).map(|(x, y)| alpha * x + beta * y).collect();
        prop_assert!(!t.try_insert(&combo), "accepted a linear combination");
    }

    #[test]
    fn exact_fit_interpolates(points in proptest::collection::vec(
        proptest::collection::vec(-10.0..10.0f64, 3), 4),
        w in proptest::collection::vec(-2.0..2.0f64, 3),
        c in -5.0..5.0f64)
    {
        let ys: Vec<f64> = points.iter()
            .map(|x| x.iter().zip(&w).map(|(a, b)| a * b).sum::<f64>() + c)
            .collect();
        match hyperplane::fit_exact(&points, &ys) {
            Ok(h) => {
                // Interpolation property: the plane passes through the inputs.
                for (x, &y) in points.iter().zip(&ys) {
                    prop_assert!((h.eval(x) - y).abs() < 1e-6);
                }
            }
            Err(_) => {
                // Degenerate point sets are allowed to fail; verify they are
                // indeed (near-)degenerate by checking the difference rank.
                let base = &points[3];
                let rows: Vec<Vec<f64>> = points[..3]
                    .iter()
                    .map(|p| p.iter().zip(base).map(|(a, b)| a - b).collect())
                    .collect();
                let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
                let m = Matrix::from_rows(&refs);
                prop_assert!(gauss::rank(&m, 1e-12) < 3);
            }
        }
    }

    #[test]
    fn least_squares_residual_not_worse_than_exact_subset(
        xs in proptest::collection::vec(proptest::collection::vec(-5.0..5.0f64, 2), 8),
        w in proptest::collection::vec(-2.0..2.0f64, 2),
        c in -3.0..3.0f64,
    ) {
        // Clean affine data: least squares must recover it exactly.
        let ys: Vec<f64> = xs.iter()
            .map(|x| x.iter().zip(&w).map(|(a, b)| a * b).sum::<f64>() + c)
            .collect();
        if let Ok(h) = hyperplane::fit_least_squares(&xs, &ys) {
            for (x, &y) in xs.iter().zip(&ys) {
                prop_assert!((h.eval(x) - y).abs() < 1e-5);
            }
        }
    }
}
