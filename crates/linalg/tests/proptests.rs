//! Randomized-input tests for the linear algebra kernels, driven by seeded
//! [`SimRng`] streams so every case is deterministic and reproducible.

use dmm_linalg::{gauss, hyperplane, IndependenceTracker, Matrix};
use dmm_sim::SimRng;

fn vec_in(rng: &mut SimRng, lo: f64, hi: f64, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.uniform(lo, hi)).collect()
}

/// A well-conditioned square system built as a strictly diagonally dominant
/// matrix, so solvability is guaranteed.
#[test]
fn solve_residual_is_small() {
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(seed);
        let n = 5;
        let mut rows: Vec<Vec<f64>> = (0..n).map(|_| vec_in(&mut rng, -5.0, 5.0, n)).collect();
        let b = vec_in(&mut rng, -10.0, 10.0, n);
        for (i, row) in rows.iter_mut().enumerate() {
            let off: f64 = row.iter().map(|x| x.abs()).sum();
            row[i] = off + 1.0; // strict diagonal dominance
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = Matrix::from_rows(&refs);
        let x = gauss::solve(&a, &b).expect("diagonally dominant is nonsingular");
        let ax = a.mul_vec(&x);
        for (l, r) in ax.iter().zip(&b) {
            assert!((l - r).abs() < 1e-7, "residual {l} vs {r} (seed {seed})");
        }
    }
}

#[test]
fn rank_of_outer_product_is_one() {
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(100 + seed);
        let gen_nonzero = |rng: &mut SimRng| loop {
            let v = vec_in(rng, -3.0, 3.0, 4);
            if v.iter().any(|x| x.abs() > 0.1) {
                return v;
            }
        };
        let u = gen_nonzero(&mut rng);
        let v = gen_nonzero(&mut rng);
        let rows: Vec<Vec<f64>> = u
            .iter()
            .map(|&ui| v.iter().map(|&vj| ui * vj).collect())
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = Matrix::from_rows(&refs);
        assert_eq!(gauss::rank(&a, 1e-9), 1, "seed {seed}");
    }
}

#[test]
fn tracker_never_exceeds_dim() {
    for seed in 0..32u64 {
        let mut rng = SimRng::seed_from_u64(200 + seed);
        let mut t = IndependenceTracker::new(3, 1e-9);
        let n = rng.index(20);
        for _ in 0..n {
            let v = vec_in(&mut rng, -10.0, 10.0, 3);
            t.try_insert(&v);
            assert!(t.len() <= 3, "seed {seed}");
        }
    }
}

#[test]
fn tracker_rejects_linear_combinations() {
    let mut accepted_cases = 0;
    for seed in 0..128u64 {
        let mut rng = SimRng::seed_from_u64(300 + seed);
        let a = vec_in(&mut rng, -5.0, 5.0, 4);
        let b = vec_in(&mut rng, -5.0, 5.0, 4);
        let alpha = rng.uniform(-3.0, 3.0);
        let beta = rng.uniform(-3.0, 3.0);
        if !a.iter().any(|x| x.abs() > 0.5) {
            continue;
        }
        let mut t = IndependenceTracker::new(4, 1e-7);
        // Only meaningful if a and b both actually get inserted.
        if !t.try_insert(&a) || !t.try_insert(&b) {
            continue;
        }
        accepted_cases += 1;
        let combo: Vec<f64> = a
            .iter()
            .zip(&b)
            .map(|(x, y)| alpha * x + beta * y)
            .collect();
        assert!(
            !t.try_insert(&combo),
            "accepted a linear combination (seed {seed})"
        );
    }
    assert!(accepted_cases > 50, "test exercised too few cases");
}

#[test]
fn exact_fit_interpolates() {
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(400 + seed);
        let points: Vec<Vec<f64>> = (0..4).map(|_| vec_in(&mut rng, -10.0, 10.0, 3)).collect();
        let w = vec_in(&mut rng, -2.0, 2.0, 3);
        let c = rng.uniform(-5.0, 5.0);
        let ys: Vec<f64> = points
            .iter()
            .map(|x| x.iter().zip(&w).map(|(a, b)| a * b).sum::<f64>() + c)
            .collect();
        match hyperplane::fit_exact(&points, &ys) {
            Ok(h) => {
                // Interpolation property: the plane passes through the inputs.
                for (x, &y) in points.iter().zip(&ys) {
                    assert!((h.eval(x) - y).abs() < 1e-6, "seed {seed}");
                }
            }
            Err(_) => {
                // Degenerate point sets are allowed to fail; verify they are
                // indeed (near-)degenerate by checking the difference rank.
                let base = &points[3];
                let rows: Vec<Vec<f64>> = points[..3]
                    .iter()
                    .map(|p| p.iter().zip(base).map(|(a, b)| a - b).collect())
                    .collect();
                let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
                let m = Matrix::from_rows(&refs);
                assert!(gauss::rank(&m, 1e-12) < 3, "seed {seed}");
            }
        }
    }
}

#[test]
fn least_squares_recovers_clean_affine_data() {
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(500 + seed);
        let xs: Vec<Vec<f64>> = (0..8).map(|_| vec_in(&mut rng, -5.0, 5.0, 2)).collect();
        let w = vec_in(&mut rng, -2.0, 2.0, 2);
        let c = rng.uniform(-3.0, 3.0);
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| x.iter().zip(&w).map(|(a, b)| a * b).sum::<f64>() + c)
            .collect();
        if let Ok(h) = hyperplane::fit_least_squares(&xs, &ys) {
            for (x, &y) in xs.iter().zip(&ys) {
                assert!((h.eval(x) - y).abs() < 1e-5, "seed {seed}");
            }
        }
    }
}
