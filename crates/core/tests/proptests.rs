//! Randomized-input tests for the optimization-phase building blocks: the
//! §4 LP wrapper, the measure store, and the stability guards. Cases are
//! generated from seeded [`SimRng`] streams for reproducibility.

use dmm_core::{
    fit_planes, solve_partitioning, MeasurePoint, MeasureStore, Objective, PartitionProblem, Planes,
};
use dmm_linalg::Hyperplane;
use dmm_sim::{SimRng, SimTime};

fn planes(w_k: Vec<f64>, c_k: f64, w_0: Vec<f64>, c_0: f64) -> Planes {
    Planes {
        class: Hyperplane { w: w_k, c: c_k },
        nogoal: Hyperplane { w: w_0, c: c_0 },
    }
}

fn vec_in(rng: &mut SimRng, lo: f64, hi: f64, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.uniform(lo, hi)).collect()
}

/// The partitioning solver never violates per-node bounds, and when the
/// goal is attainable the plane predicts the goal exactly at the result.
#[test]
fn partitioning_respects_bounds() {
    for seed in 0..128u64 {
        let mut rng = SimRng::seed_from_u64(seed);
        let w = vec_in(&mut rng, -8.0, -0.1, 3);
        let c = rng.uniform(10.0, 40.0);
        let w0 = vec_in(&mut rng, 0.0, 5.0, 3);
        let goal_frac = rng.uniform(0.05, 0.95);
        let avail = vec_in(&mut rng, 0.5, 3.0, 3);
        let current = vec_in(&mut rng, 0.0, 0.4, 3);
        let sticky = rng.index(2);

        let pl = planes(w.clone(), c, w0, 5.0);
        // Attainable band: RT(0) = c down to RT(avail).
        let rt_min: f64 = c + w.iter().zip(&avail).map(|(a, b)| a * b).sum::<f64>();
        let goal = rt_min + goal_frac * (c - rt_min);
        let sol = solve_partitioning(&PartitionProblem {
            planes: &pl,
            goal_ms: goal,
            avail_mb: &avail,
            current_mb: &current,
            reallocation_penalty: if sticky == 1 { 0.02 } else { 0.0 },
            objective: Objective::MinNoGoalRt,
        })
        .expect("attainable goal");
        for (x, a) in sol.alloc_mb.iter().zip(&avail) {
            assert!(
                *x >= -1e-7 && *x <= a + 1e-7,
                "bounds violated: {x} vs {a} (seed {seed})"
            );
        }
        assert!(sol.goal_attainable, "seed {seed}");
        assert!(
            (sol.predicted_class_ms - goal).abs() < 1e-5,
            "plane must predict the goal at the solution: {} vs {goal} (seed {seed})",
            sol.predicted_class_ms
        );
    }
}

/// Unattainably tight goals saturate toward max memory; unattainably loose
/// ones release toward zero (the relaxation's behaviour).
#[test]
fn relaxation_moves_toward_the_feasible_end() {
    let mut exercised = 0u32;
    for seed in 0..128u64 {
        let mut rng = SimRng::seed_from_u64(1000 + seed);
        let w = vec_in(&mut rng, -5.0, -0.5, 3);
        let c = rng.uniform(10.0, 30.0);
        let avail = vec_in(&mut rng, 0.5, 2.0, 3);
        let tight = rng.index(2) == 0;

        let pl = planes(w.clone(), c, vec![1.0, 1.0, 1.0], 5.0);
        let rt_min: f64 = c + w.iter().zip(&avail).map(|(a, b)| a * b).sum::<f64>();
        // A goal strictly below RT(full dedication) resp. above RT(zero).
        if rt_min <= 5.1 {
            continue;
        }
        exercised += 1;
        let goal = if tight { rt_min - 5.0 } else { c + 5.0 };
        let sol = solve_partitioning(&PartitionProblem {
            planes: &pl,
            goal_ms: goal,
            avail_mb: &avail,
            current_mb: &[0.2, 0.2, 0.2],
            reallocation_penalty: 0.0,
            objective: Objective::MinNoGoalRt,
        })
        .expect("relaxation always solves");
        assert!(!sol.goal_attainable, "seed {seed}");
        let total: f64 = sol.alloc_mb.iter().sum();
        let max_total: f64 = avail.iter().sum();
        if tight {
            assert!(
                (total - max_total).abs() < 1e-5,
                "tight ⇒ saturate: {total} (seed {seed})"
            );
        } else {
            assert!(total < 1e-5, "loose ⇒ release: {total} (seed {seed})");
        }
    }
    assert!(exercised > 50, "test exercised too few cases");
}

/// The measure store's selected points always have independent differences
/// (the phase-(b) invariant the fit relies on).
#[test]
fn store_selection_is_independent() {
    for seed in 0..128u64 {
        let mut rng = SimRng::seed_from_u64(2000 + seed);
        let n = 1 + rng.index(29);
        let allocs: Vec<Vec<f64>> = (0..n).map(|_| vec_in(&mut rng, 0.0, 4.0, 3)).collect();
        let mut store = MeasureStore::new(3);
        for (i, a) in allocs.iter().enumerate() {
            store.record(a.clone(), 10.0, 5.0, SimTime::from_nanos(i as u64 + 1));
        }
        let pts = store.selected_points();
        assert!(pts.len() <= 4, "seed {seed}");
        if pts.len() == 4 {
            // Exact fit must succeed on independent points.
            assert!(fit_planes(&pts).is_ok(), "seed {seed}");
        }
    }
}

/// Fitting recovers a noiseless synthetic surface from whatever points the
/// store selected.
#[test]
fn fit_recovers_surface_through_store() {
    for seed in 0..128u64 {
        let mut rng = SimRng::seed_from_u64(3000 + seed);
        let w = vec_in(&mut rng, -4.0, -0.5, 2);
        let c = rng.uniform(5.0, 25.0);
        let nprobes = 3 + rng.index(9);
        let probes: Vec<Vec<f64>> = (0..nprobes)
            .map(|_| vec_in(&mut rng, 0.0, 3.0, 2))
            .collect();

        let mut store = MeasureStore::new(2);
        for (i, x) in probes.iter().enumerate() {
            let rt = c + w[0] * x[0] + w[1] * x[1];
            store.record(x.clone(), rt, 4.0, SimTime::from_nanos(i as u64 + 1));
        }
        if store.has_full_rank() {
            let planes = fit_planes(&store.selected_points()).expect("independent");
            for (fitted, truth) in planes.class.w.iter().zip(&w) {
                assert!(
                    (fitted - truth).abs() < 1e-6,
                    "gradient recovered: {fitted} vs {truth} (seed {seed})"
                );
            }
            assert!((planes.class.c - c).abs() < 1e-6, "seed {seed}");
        }
    }
}

/// The repaired class plane never has a positive component (it would tell
/// the LP that buying memory slows the class down).
#[test]
fn class_plane_repair_kills_positive_slopes() {
    let pts = [
        MeasurePoint {
            alloc_mb: vec![0.0, 0.0],
            rt_class_ms: 10.0,
            rt_nogoal_ms: 4.0,
            at: SimTime::ZERO,
        },
        MeasurePoint {
            alloc_mb: vec![1.0, 0.0],
            rt_class_ms: 8.0,
            rt_nogoal_ms: 4.5,
            at: SimTime::ZERO,
        },
        MeasurePoint {
            alloc_mb: vec![0.0, 1.0],
            rt_class_ms: 10.7, // noise: "more memory, slower"
            rt_nogoal_ms: 4.5,
            at: SimTime::ZERO,
        },
    ];
    let refs: Vec<&MeasurePoint> = pts.iter().collect();
    let planes = fit_planes(&refs).expect("fit");
    assert!(planes.class.w.iter().all(|&w| w <= 0.0));
    // The noisy component was repaired to the scale of the good one.
    assert!((planes.class.w[1] - planes.class.w[0]).abs() < 1e-9);
}
