//! The two fencing baselines must not be behaviourally identical: fragment
//! fencing models RT(buffer) directly, class fencing goes through the miss
//! rate. On a workload where the miss-rate curve bends, their trajectories
//! diverge.

use dmm_buffer::ClassId;
use dmm_core::{ControllerKind, Simulation, SystemConfig};
use dmm_workload::WorkloadSpec;

fn run(controller: ControllerKind) -> Vec<u64> {
    let mut cfg = SystemConfig::base(31, 0.4, 7.0);
    cfg.cluster.db_pages = 600;
    cfg.cluster.buffer_pages_per_node = 128;
    cfg.workload = WorkloadSpec::base_two_class(3, 600, 0.4, 0.006, 7.0);
    cfg.controller = controller;
    cfg.warmup_intervals = 3;
    let mut sim = Simulation::new(cfg);
    sim.run_intervals(30);
    sim.records(ClassId(1))
        .iter()
        .map(|r| r.dedicated_bytes)
        .collect()
}

#[test]
fn fencing_baselines_diverge() {
    let fragment = run(ControllerKind::FragmentFencing);
    let class = run(ControllerKind::ClassFencing);
    assert_ne!(fragment, class, "the two baselines must differ somewhere");
}
