//! The two fencing baselines must not be behaviourally identical: fragment
//! fencing models RT(buffer) directly, class fencing goes through the miss
//! rate. On a workload where the miss-rate curve bends, their trajectories
//! diverge.

use dmm_buffer::ClassId;
use dmm_core::{ControllerKind, Simulation, SystemConfig};

fn run(controller: ControllerKind) -> Vec<u64> {
    let cfg = SystemConfig::builder()
        .seed(31)
        .theta(0.4)
        .goal_ms(7.0)
        .db_pages(600)
        .buffer_pages_per_node(128)
        .controller(controller)
        .warmup_intervals(3)
        .build()
        .expect("valid test config");
    let mut sim = Simulation::new(cfg);
    sim.run_intervals(30);
    sim.records(ClassId(1))
        .iter()
        .map(|r| r.dedicated_bytes)
        .collect()
}

#[test]
fn fencing_baselines_diverge() {
    let fragment = run(ControllerKind::FragmentFencing);
    let class = run(ControllerKind::ClassFencing);
    assert_ne!(fragment, class, "the two baselines must differ somewhere");
}
