//! Measure-point management (paper §5, phase (b)).
//!
//! The coordinator of class `k` stores measure points
//! `(LM_{k,1}, …, LM_{k,N}) ↦ (RT̄_k, RT̄_0)` and must keep the `N+1` most
//! recent points whose difference vectors are linearly independent so the
//! hyperplane approximation of phase (d) is unique. A new report either
//! *updates* the most recent point (same partitioning, fresher response
//! times) or *creates* a new point (the partitioning changed); insertion
//! uses the `O(N²)` incremental Gauss tracker, with a full re-selection
//! fallback when recency and independence conflict.

use dmm_linalg::incremental::select_independent_newest;
use dmm_sim::{SimDuration, SimTime};

/// One measurement: the class's granted allocation vector (MB per node) and
/// the weighted-mean response times observed under it.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasurePoint {
    /// Granted dedicated buffer per node, in MB.
    pub alloc_mb: Vec<f64>,
    /// Weighted mean response time of the goal class (ms, Eq. 4 weighting).
    pub rt_class_ms: f64,
    /// Weighted mean response time of the no-goal class (ms).
    pub rt_nogoal_ms: f64,
    /// When the measurement was recorded.
    pub at: SimTime,
}

/// Bounded history of measure points with independent-subset selection.
#[derive(Debug, Clone)]
pub struct MeasureStore {
    nodes: usize,
    /// All retained points, oldest first.
    history: Vec<MeasurePoint>,
    /// Indices into `history` of the selected independent points, newest
    /// first. Invariant: differences to the newest are linearly independent.
    selected: Vec<usize>,
    /// Relative tolerance for allocation equality and independence tests.
    tol: f64,
    /// Override of [`MeasureStore::needed`] while the cluster is degraded:
    /// with `d` nodes down, every new allocation vector carries zeros at the
    /// dead indices, so at most `(N − d) + 1` affinely independent points
    /// exist and waiting for `N + 1` would starve the fit forever.
    rank_target: Option<usize>,
    max_history: usize,
    /// Points older than this are dropped: the response-time surface drifts
    /// with the workload, and a stale direction must be re-probed rather
    /// than trusted (the paper's "dynamic" property, §1).
    max_age: SimDuration,
}

impl MeasureStore {
    /// Store for an `nodes`-node system. Retains at most `4·(N+1)` points.
    ///
    /// The staleness horizon scales with the rank target: a full-rank fit
    /// needs `N + 1` affinely independent points, and the warm-up prober
    /// accrues at most one new direction per ~3 observation intervals (the
    /// probed interval plus the settling checks an allocation change
    /// shadows). A fixed horizon therefore starves the fit forever once
    /// `N` is large enough — at 5 s intervals the old 300 s default
    /// retains ~20 probe points, while N = 64 needs 65 — so the default
    /// is `4·(N+1)` intervals' worth of seconds, floored at the original
    /// 300 s (the floor keeps every `N ≤ 14` configuration byte-identical).
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0);
        let horizon_secs = (5 * 4 * (nodes as u64 + 1)).max(300);
        MeasureStore {
            nodes,
            history: Vec::new(),
            selected: Vec::new(),
            tol: 1e-9,
            rank_target: None,
            max_history: 4 * (nodes + 1),
            max_age: SimDuration::from_secs(horizon_secs),
        }
    }

    /// Overrides the staleness horizon (default: `max(300 s, 4·(N+1)`
    /// observation intervals at the paper's 5 s) — shorten it for drifting
    /// workloads).
    pub fn set_max_age(&mut self, max_age: SimDuration) {
        self.max_age = max_age;
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// True if no points are retained.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// Number of points needed for a unique hyperplane fit: `N + 1`, or the
    /// degraded-topology override set via [`MeasureStore::set_rank_target`].
    pub fn needed(&self) -> usize {
        self.rank_target.unwrap_or(self.nodes + 1)
    }

    /// Overrides the full-rank point count while nodes are down (pass
    /// `live + 1` for `live` surviving nodes); `None` restores `N + 1`.
    /// Takes effect on the next [`MeasureStore::record`]/reselection.
    pub fn set_rank_target(&mut self, target: Option<usize>) {
        if let Some(t) = target {
            assert!((2..=self.nodes + 1).contains(&t), "rank target in [2, N+1]");
        }
        self.rank_target = target;
        self.reselect();
    }

    /// True once `N+1` independent points are available.
    pub fn has_full_rank(&self) -> bool {
        self.selected.len() >= self.needed()
    }

    /// Records a report. If `alloc_mb` equals the newest point's allocation
    /// (within tolerance) the newest point's response times are refreshed;
    /// otherwise a new point is appended and the independent subset is
    /// re-derived (incremental in the common case).
    pub fn record(&mut self, alloc_mb: Vec<f64>, rt_class_ms: f64, rt_nogoal_ms: f64, at: SimTime) {
        assert_eq!(alloc_mb.len(), self.nodes);
        assert!(rt_class_ms.is_finite() && rt_nogoal_ms.is_finite());
        if let Some(last) = self.history.last_mut() {
            if Self::same_alloc(&last.alloc_mb, &alloc_mb, self.tol) {
                // Same partitioning: blend response times for stability
                // (fresh data dominates).
                last.rt_class_ms = 0.5 * (last.rt_class_ms + rt_class_ms);
                last.rt_nogoal_ms = 0.5 * (last.rt_nogoal_ms + rt_nogoal_ms);
                last.at = at;
                return;
            }
        }
        self.history.push(MeasurePoint {
            alloc_mb,
            rt_class_ms,
            rt_nogoal_ms,
            at,
        });
        let horizon = self.max_age;
        self.history.retain(|p| at.since(p.at) <= horizon);
        if self.history.len() > self.max_history {
            let drop = self.history.len() - self.max_history;
            self.history.drain(..drop);
        }
        self.reselect();
    }

    /// The selected independent points, newest first.
    pub fn selected_points(&self) -> Vec<&MeasurePoint> {
        self.selected.iter().map(|&i| &self.history[i]).collect()
    }

    /// Points for the hyperplane fit: the independent subset (guaranteeing a
    /// unique solution) plus the most recent other points, up to `2·(N+1)`
    /// total. The extras turn the exact interpolation into a least-squares
    /// fit, averaging out per-interval measurement noise.
    pub fn fit_points(&self) -> Vec<&MeasurePoint> {
        let mut idx: Vec<usize> = self.selected.clone();
        for i in (0..self.history.len()).rev() {
            if idx.len() >= 2 * self.needed() {
                break;
            }
            if !idx.contains(&i) {
                idx.push(i);
            }
        }
        idx.iter().map(|&i| &self.history[i]).collect()
    }

    /// True if recording a point with allocation `alloc_mb` would create a
    /// *new* independent direction (used by the warm-up prober to guarantee
    /// progress, §5(b)).
    pub fn would_extend_rank(&self, alloc_mb: &[f64]) -> bool {
        if self.history.is_empty() {
            return true;
        }
        let mut allocs: Vec<Vec<f64>> = self
            .selected
            .iter()
            .rev() // oldest first
            .map(|&i| self.history[i].alloc_mb.clone())
            .collect();
        allocs.push(alloc_mb.to_vec());
        let sel = select_independent_newest(&allocs, self.needed(), self.tol);
        // The affine rank of the selected set is (count − 1); the candidate
        // extends it iff the new selection is strictly larger.
        let old_rank = self.selected.len().saturating_sub(1);
        let new_rank = sel.len().saturating_sub(1);
        new_rank > old_rank
    }

    /// Drops all points (e.g. after a drastic workload change).
    pub fn clear(&mut self) {
        self.history.clear();
        self.selected.clear();
    }

    fn reselect(&mut self) {
        let allocs: Vec<Vec<f64>> = self.history.iter().map(|p| p.alloc_mb.clone()).collect();
        self.selected = select_independent_newest(&allocs, self.needed(), self.tol);
    }

    fn same_alloc(a: &[f64], b: &[f64], tol: f64) -> bool {
        let scale = a.iter().chain(b).fold(1.0f64, |s, x| s.max(x.abs()));
        a.iter().zip(b).all(|(x, y)| (x - y).abs() <= tol * scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    #[test]
    fn same_allocation_updates_in_place() {
        let mut s = MeasureStore::new(3);
        s.record(vec![1.0, 1.0, 1.0], 10.0, 5.0, t(1));
        s.record(vec![1.0, 1.0, 1.0], 6.0, 5.0, t(2));
        assert_eq!(s.len(), 1);
        let p = s.selected_points();
        assert!((p[0].rt_class_ms - 8.0).abs() < 1e-12, "blended mean");
    }

    #[test]
    fn reaches_full_rank_with_probes() {
        let mut s = MeasureStore::new(3);
        // Probe sequence: base + unit perturbation per node.
        s.record(vec![0.5, 0.5, 0.5], 10.0, 5.0, t(1));
        assert!(!s.has_full_rank());
        s.record(vec![1.0, 0.5, 0.5], 9.0, 5.2, t(2));
        s.record(vec![0.5, 1.0, 0.5], 9.1, 5.1, t(3));
        assert!(!s.has_full_rank());
        s.record(vec![0.5, 0.5, 1.0], 9.2, 5.3, t(4));
        assert!(s.has_full_rank());
        assert_eq!(s.selected_points().len(), 4);
    }

    #[test]
    fn dependent_point_does_not_reach_rank() {
        let mut s = MeasureStore::new(2);
        s.record(vec![0.0, 0.0], 10.0, 5.0, t(1));
        s.record(vec![1.0, 1.0], 8.0, 5.5, t(2));
        s.record(vec![2.0, 2.0], 6.0, 6.0, t(3)); // collinear
        assert!(!s.has_full_rank());
        s.record(vec![2.0, 0.0], 7.0, 5.8, t(4));
        assert!(s.has_full_rank());
    }

    #[test]
    fn selection_prefers_recent_points() {
        let mut s = MeasureStore::new(2);
        s.record(vec![0.0, 0.0], 10.0, 5.0, t(1));
        s.record(vec![1.0, 0.0], 9.0, 5.0, t(2));
        s.record(vec![0.0, 1.0], 9.5, 5.0, t(3));
        s.record(vec![1.0, 1.0], 8.0, 5.0, t(4));
        assert!(s.has_full_rank());
        let pts = s.selected_points();
        // Newest point always selected first.
        assert_eq!(pts[0].alloc_mb, vec![1.0, 1.0]);
        assert_eq!(pts.len(), 3);
    }

    #[test]
    fn history_is_bounded() {
        let mut s = MeasureStore::new(2);
        for i in 0..100 {
            s.record(vec![i as f64, (i * i % 7) as f64], 5.0, 5.0, t(i));
        }
        assert!(s.len() <= 4 * 3);
        assert!(s.has_full_rank());
    }

    #[test]
    fn would_extend_rank_detects_new_directions() {
        let mut s = MeasureStore::new(2);
        assert!(s.would_extend_rank(&[0.5, 0.5]));
        s.record(vec![0.5, 0.5], 10.0, 5.0, t(1));
        assert!(s.would_extend_rank(&[1.0, 0.5]));
        s.record(vec![1.0, 0.5], 9.0, 5.0, t(2));
        // Collinear continuation adds no rank.
        assert!(!s.would_extend_rank(&[1.5, 0.5]));
        assert!(s.would_extend_rank(&[0.5, 1.0]));
    }

    #[test]
    fn clear_resets() {
        let mut s = MeasureStore::new(2);
        s.record(vec![1.0, 0.0], 9.0, 5.0, t(1));
        s.clear();
        assert!(s.is_empty());
        assert!(!s.has_full_rank());
    }
}
