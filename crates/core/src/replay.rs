//! Trace-driven replay: the `run_config` record and its inverse.
//!
//! Every sink-enabled run leads with one `run_config` record carrying the
//! *replay closure* of its configuration — the complete set of builder
//! parameters that shape the trace byte stream. Given a recorded trace,
//! [`recorded_run_from_jsonl`] reconstructs the [`SystemConfig`] (fault
//! plan included) and [`verify_jsonl`] re-runs it through the simulator,
//! checking that the re-run's control records byte-match the original.
//! A recorded incident is thereby a deterministic regression test.
//!
//! ## What the closure contains — and what it deliberately omits
//!
//! The closure covers every parameter that affects the *bytes* of the
//! control-record stream: seed, cluster shape, workload generator inputs,
//! goal metric and schedule, controller, satisfaction/repricing/placement
//! modes, fabric, probing, storage ladder, and the full fault plan (the
//! `fault` trace records alone don't carry drop probabilities or disk-stall
//! windows, so the plan rides in the closure).
//!
//! It deliberately *excludes* the execution-substrate toggles that are
//! proven trace-invariant by the determinism suite: span mode (non-span
//! records are byte-identical with sampling on or off), scheduler backend
//! (wheel and heap deliver identically), execution mode and lookahead
//! (windowed runs trace byte-identically to sequential at any worker
//! count). Including them would break the cross-substrate byte-identity
//! contract those tests pin; excluding them means a replay reproduces the
//! *system*, not the observer. Replays therefore run with spans off and
//! compare *control records* — every record type except `span`.

use dmm_cluster::{DiskStall, FabricSpec, FaultPlan, NodeId, PlacementSpec, ScheduledFault};
use dmm_cluster::{FaultKind, HotRingSpec, RepricingMode, TierSpec};
use dmm_obs::{Json, VecSink};
use dmm_sim::{SimDuration, SimTime};
use dmm_workload::{GoalMetric, GoalRange, WorkloadSpec};

use crate::baselines::ControllerKind;
use crate::coordinator::SatisfactionMode;
use crate::optimize::Objective;
use crate::probe::ProbeSpec;
use crate::system::{Simulation, SystemConfig};
use dmm_buffer::TierPolicy;

/// Builds the `run_config` record for a configuration: the first record of
/// every sink-enabled trace. Field order is part of the published schema.
pub fn run_config_record(config: &SystemConfig) -> Json {
    let cluster = &config.cluster;
    let goal = config.workload.classes.get(1);
    let theta = goal.map_or(0.0, |c| c.zipf_theta);
    let goal_ms = goal.and_then(|c| c.goal_ms);
    let goal_rate = goal.and_then(|c| c.arrival_per_ms.first().copied());
    let goal_quantile = goal.and_then(|c| match c.goal_metric {
        GoalMetric::Mean => None,
        GoalMetric::Quantile { q } => Some(q),
    });

    let controller = match config.controller {
        ControllerKind::Hyperplane { objective } => Json::obj()
            .field("kind", "hyperplane")
            .field(
                "objective",
                match objective {
                    Objective::MinNoGoalRt => "min_nogoal_rt",
                    Objective::MinTotalDedicated => "min_total_dedicated",
                    Objective::BalanceNodes => "balance_nodes",
                },
            )
            .field("fraction", Json::Null),
        ControllerKind::FragmentFencing => controller_obj("fragment_fencing", None),
        ControllerKind::ClassFencing => controller_obj("class_fencing", None),
        ControllerKind::Static { fraction } => controller_obj("static", Some(fraction)),
        ControllerKind::None => controller_obj("none", None),
    };
    let goal_range = match config.goal_range {
        Some(r) => Json::obj()
            .field("min_ms", r.min_ms)
            .field("max_ms", r.max_ms),
        None => Json::Null,
    };
    let placement = match cluster.placement {
        PlacementSpec::RoundRobin => placement_obj("round_robin", None),
        PlacementSpec::Hash => placement_obj("hash", None),
        PlacementSpec::HotRing(spec) => placement_obj("hot_ring", Some(spec)),
    };
    let fabric = match cluster.net.fabric {
        FabricSpec::SharedMedium => Json::obj()
            .field("kind", "shared_medium")
            .field("bisection_bits_per_sec", Json::Null),
        FabricSpec::Switched {
            bisection_bits_per_sec,
        } => Json::obj()
            .field("kind", "switched")
            .field("bisection_bits_per_sec", bisection_bits_per_sec),
    };
    let probe = match config.probe {
        ProbeSpec::Sequential => Json::obj()
            .field("kind", "sequential")
            .field("batch", Json::Null),
        ProbeSpec::Batched { batch } => Json::obj()
            .field("kind", "batched")
            .field("batch", batch as u64),
    };
    let tiers = Json::Arr(
        cluster
            .tiers
            .tiers()
            .iter()
            .map(|t| {
                Json::obj()
                    .field("name", t.name.as_str())
                    .field("hit_ms", t.hit_ms)
                    .field("frames", t.frames.map(|f| f as u64))
                    .field("bandwidth_bytes_per_sec", t.bandwidth_bytes_per_sec)
            })
            .collect(),
    );
    let fault_plan = match &config.fault_plan {
        None => Json::Null,
        Some(plan) => Json::obj()
            .field("seed", plan.seed)
            .field("drop_probability", plan.drop_probability)
            .field("retransmit_ns", plan.retransmit.as_nanos())
            .field(
                "events",
                Json::Arr(
                    plan.events
                        .iter()
                        .map(|e| {
                            Json::obj()
                                .field(
                                    "kind",
                                    match e.kind {
                                        FaultKind::Crash(_) => "crash",
                                        FaultKind::Restart(_) => "restart",
                                    },
                                )
                                .field("node", e.kind.node().index() as u64)
                                .field("at_ns", e.at.as_nanos())
                        })
                        .collect(),
                ),
            )
            .field(
                "stalls",
                Json::Arr(
                    plan.stalls
                        .iter()
                        .map(|s| {
                            Json::obj()
                                .field("node", s.node.index() as u64)
                                .field("from_ns", s.from.as_nanos())
                                .field("until_ns", s.until.as_nanos())
                                .field("factor", s.factor)
                        })
                        .collect(),
                ),
            ),
    };

    Json::obj()
        .field("type", "run_config")
        .field("seed", config.seed)
        .field("nodes", cluster.nodes as u64)
        .field("db_pages", cluster.db_pages as u64)
        .field(
            "buffer_pages_per_node",
            cluster.buffer_pages_per_node as u64,
        )
        .field("theta", theta)
        .field("goal_ms", goal_ms)
        .field("goal_rate_per_ms", goal_rate)
        .field("goal_quantile", goal_quantile)
        .field("interval_ns", config.interval.as_nanos())
        .field("warmup_intervals", config.warmup_intervals as u64)
        .field("controller", controller)
        .field("goal_range", goal_range)
        .field(
            "satisfaction",
            match config.satisfaction {
                SatisfactionMode::TwoSided => "two_sided",
                SatisfactionMode::UpperBound => "upper_bound",
            },
        )
        .field("release_floor_mb", config.release_floor_mb)
        .field(
            "repricing",
            match cluster.repricing {
                RepricingMode::Eager => "eager",
                RepricingMode::Lazy => "lazy",
            },
        )
        .field("placement", placement)
        .field("fabric", fabric)
        .field("net_bits_per_sec", cluster.net.bits_per_sec)
        .field("probe", probe)
        .field("tiers", tiers)
        .field(
            "tier_policy",
            match cluster.tier_policy {
                TierPolicy::Hotness => "hotness",
                TierPolicy::StaticHash => "static_hash",
            },
        )
        .field("fault_plan", fault_plan)
        .field("replayable", is_replayable(config))
}

fn controller_obj(kind: &str, fraction: Option<f64>) -> Json {
    Json::obj()
        .field("kind", kind)
        .field("objective", Json::Null)
        .field("fraction", fraction)
}

fn placement_obj(kind: &str, ring: Option<HotRingSpec>) -> Json {
    Json::obj()
        .field("kind", kind)
        .field("vnodes", ring.map(|r| r.vnodes as u64))
        .field("max_replicas", ring.map(|r| r.max_replicas as u64))
        .field("ring_seed", ring.map(|r| r.seed))
}

/// Whether the workload matches the builder's generative two-class shape —
/// the precondition for reconstructing it from the closure's scalar
/// parameters. Hand-assembled workloads (extra classes, custom per-node
/// rates, scheduled rate shifts) are recorded but flagged non-replayable.
fn is_replayable(config: &SystemConfig) -> bool {
    let classes = &config.workload.classes;
    if classes.len() != 2 {
        return false;
    }
    let goal = &classes[1];
    let (Some(goal_ms), Some(&rate)) = (goal.goal_ms, goal.arrival_per_ms.first()) else {
        return false;
    };
    let mut candidate = WorkloadSpec::base_two_class(
        config.cluster.nodes,
        config.cluster.db_pages,
        goal.zipf_theta,
        rate,
        goal_ms,
    );
    candidate.classes[1].goal_metric = goal.goal_metric;
    // ClassSpec carries vectors without PartialEq; the Debug form is a
    // complete, deterministic rendering of every field.
    format!("{:?}", candidate.classes) == format!("{:?}", classes)
}

/// Rebuilds a [`SystemConfig`] from a parsed `run_config` record.
pub fn config_from_record(record: &Json) -> Result<SystemConfig, String> {
    if record.get("type").and_then(Json::as_str) != Some("run_config") {
        return Err("not a run_config record".to_string());
    }
    if record.get("replayable").and_then(Json::as_bool) != Some(true) {
        return Err(
            "run not replayable: its workload was assembled outside the builder".to_string(),
        );
    }
    let uint = |key: &str| -> Result<u64, String> {
        record
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("run_config.{key} missing or not an unsigned integer"))
    };
    let num = |key: &str| -> Result<f64, String> {
        record
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("run_config.{key} missing or not a number"))
    };
    let text = |key: &str| -> Result<&str, String> {
        record
            .get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("run_config.{key} missing or not a string"))
    };

    let controller = {
        let c = record
            .get("controller")
            .ok_or("run_config.controller missing")?;
        let kind = c
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("run_config.controller.kind missing")?;
        match kind {
            "hyperplane" => {
                let objective = match c.get("objective").and_then(Json::as_str) {
                    Some("min_nogoal_rt") => Objective::MinNoGoalRt,
                    Some("min_total_dedicated") => Objective::MinTotalDedicated,
                    Some("balance_nodes") => Objective::BalanceNodes,
                    other => return Err(format!("unknown LP objective {other:?}")),
                };
                ControllerKind::Hyperplane { objective }
            }
            "fragment_fencing" => ControllerKind::FragmentFencing,
            "class_fencing" => ControllerKind::ClassFencing,
            "static" => ControllerKind::Static {
                fraction: c
                    .get("fraction")
                    .and_then(Json::as_f64)
                    .ok_or("static controller without a fraction")?,
            },
            "none" => ControllerKind::None,
            other => return Err(format!("unknown controller kind {other:?}")),
        }
    };
    let placement = {
        let p = record
            .get("placement")
            .ok_or("run_config.placement missing")?;
        match p.get("kind").and_then(Json::as_str) {
            Some("round_robin") => PlacementSpec::RoundRobin,
            Some("hash") => PlacementSpec::Hash,
            Some("hot_ring") => PlacementSpec::HotRing(HotRingSpec {
                vnodes: p
                    .get("vnodes")
                    .and_then(Json::as_u64)
                    .ok_or("hot_ring placement without vnodes")? as u16,
                max_replicas: p
                    .get("max_replicas")
                    .and_then(Json::as_u64)
                    .ok_or("hot_ring placement without max_replicas")?
                    as u8,
                seed: p
                    .get("ring_seed")
                    .and_then(Json::as_u64)
                    .ok_or("hot_ring placement without ring_seed")?,
            }),
            other => return Err(format!("unknown placement kind {other:?}")),
        }
    };
    let fabric = {
        let f = record.get("fabric").ok_or("run_config.fabric missing")?;
        match f.get("kind").and_then(Json::as_str) {
            Some("shared_medium") => FabricSpec::SharedMedium,
            Some("switched") => FabricSpec::Switched {
                bisection_bits_per_sec: f.get("bisection_bits_per_sec").and_then(Json::as_u64),
            },
            other => return Err(format!("unknown fabric kind {other:?}")),
        }
    };
    let probe = {
        let p = record.get("probe").ok_or("run_config.probe missing")?;
        match p.get("kind").and_then(Json::as_str) {
            Some("sequential") => ProbeSpec::Sequential,
            Some("batched") => ProbeSpec::Batched {
                batch: p
                    .get("batch")
                    .and_then(Json::as_u64)
                    .ok_or("batched probe without a batch size")? as usize,
            },
            other => return Err(format!("unknown probe kind {other:?}")),
        }
    };
    let tiers: Vec<TierSpec> = record
        .get("tiers")
        .and_then(Json::as_arr)
        .ok_or("run_config.tiers missing")?
        .iter()
        .map(|t| -> Result<TierSpec, String> {
            Ok(TierSpec {
                name: t
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("tier without a name")?
                    .to_string(),
                hit_ms: t
                    .get("hit_ms")
                    .and_then(Json::as_f64)
                    .ok_or("tier without hit_ms")?,
                frames: t.get("frames").and_then(Json::as_u64).map(|f| f as usize),
                bandwidth_bytes_per_sec: t.get("bandwidth_bytes_per_sec").and_then(Json::as_u64),
            })
        })
        .collect::<Result<_, _>>()?;
    let fault_plan = match record.get("fault_plan") {
        None | Some(Json::Null) => None,
        Some(p) => {
            let mut plan = FaultPlan::new(
                p.get("seed")
                    .and_then(Json::as_u64)
                    .ok_or("fault_plan without a seed")?,
            );
            plan.drop_probability = p
                .get("drop_probability")
                .and_then(Json::as_f64)
                .ok_or("fault_plan without drop_probability")?;
            plan.retransmit = SimDuration::from_nanos(
                p.get("retransmit_ns")
                    .and_then(Json::as_u64)
                    .ok_or("fault_plan without retransmit_ns")?,
            );
            for e in p.get("events").and_then(Json::as_arr).unwrap_or(&[]) {
                let node = NodeId(
                    e.get("node")
                        .and_then(Json::as_u64)
                        .ok_or("fault event without a node")? as u16,
                );
                let at = SimTime::ZERO
                    + SimDuration::from_nanos(
                        e.get("at_ns")
                            .and_then(Json::as_u64)
                            .ok_or("fault event without at_ns")?,
                    );
                let kind = match e.get("kind").and_then(Json::as_str) {
                    Some("crash") => FaultKind::Crash(node),
                    Some("restart") => FaultKind::Restart(node),
                    other => return Err(format!("unknown fault kind {other:?}")),
                };
                plan.events.push(ScheduledFault { at, kind });
            }
            for s in p.get("stalls").and_then(Json::as_arr).unwrap_or(&[]) {
                plan.stalls.push(DiskStall {
                    node: NodeId(
                        s.get("node")
                            .and_then(Json::as_u64)
                            .ok_or("disk stall without a node")? as u16,
                    ),
                    from: SimTime::ZERO
                        + SimDuration::from_nanos(
                            s.get("from_ns")
                                .and_then(Json::as_u64)
                                .ok_or("disk stall without from_ns")?,
                        ),
                    until: SimTime::ZERO
                        + SimDuration::from_nanos(
                            s.get("until_ns")
                                .and_then(Json::as_u64)
                                .ok_or("disk stall without until_ns")?,
                        ),
                    factor: s
                        .get("factor")
                        .and_then(Json::as_f64)
                        .ok_or("disk stall without a factor")?,
                });
            }
            Some(plan)
        }
    };

    let mut builder = SystemConfig::builder()
        .seed(uint("seed")?)
        .theta(num("theta")?)
        .goal_ms(num("goal_ms")?)
        .nodes(uint("nodes")? as usize)
        .db_pages(uint("db_pages")? as u32)
        .buffer_pages_per_node(uint("buffer_pages_per_node")? as usize)
        .goal_rate_per_ms(num("goal_rate_per_ms")?)
        .warmup_intervals(uint("warmup_intervals")? as u32)
        .controller(controller)
        .satisfaction(match text("satisfaction")? {
            "two_sided" => SatisfactionMode::TwoSided,
            "upper_bound" => SatisfactionMode::UpperBound,
            other => return Err(format!("unknown satisfaction mode {other:?}")),
        })
        .release_floor_mb(num("release_floor_mb")?)
        .repricing(match text("repricing")? {
            "eager" => RepricingMode::Eager,
            "lazy" => RepricingMode::Lazy,
            other => return Err(format!("unknown repricing mode {other:?}")),
        })
        .placement(placement)
        .fabric(fabric)
        .net_bits_per_sec(uint("net_bits_per_sec")?)
        .probe(probe)
        .tiers(tiers)
        .tier_policy(match text("tier_policy")? {
            "hotness" => TierPolicy::Hotness,
            "static_hash" => TierPolicy::StaticHash,
            other => return Err(format!("unknown tier policy {other:?}")),
        });
    if let Some(q) = record.get("goal_quantile").and_then(Json::as_f64) {
        builder = builder.goal_quantile(q);
    }
    if let Some(range) = record
        .get("goal_range")
        .filter(|r| !matches!(r, Json::Null))
    {
        builder = builder.goal_range(GoalRange::new(
            range
                .get("min_ms")
                .and_then(Json::as_f64)
                .ok_or("goal_range without min_ms")?,
            range
                .get("max_ms")
                .and_then(Json::as_f64)
                .ok_or("goal_range without max_ms")?,
        ));
    }
    if let Some(plan) = fault_plan {
        builder = builder.fault_plan(plan);
    }
    let mut config = builder.build().map_err(|e| e.to_string())?;
    // The builder's interval setter is millisecond-granular; restore the
    // recorded interval exactly.
    config.interval = SimDuration::from_nanos(uint("interval_ns")?);
    Ok(config)
}

/// A recorded run, decoded from its JSON-lines trace: the reconstructed
/// configuration, how many observation intervals it ran, and the raw
/// control-record lines (every record except `span`) for byte comparison.
#[derive(Debug)]
pub struct RecordedRun {
    /// The rebuilt configuration.
    pub config: SystemConfig,
    /// Observation intervals the recorded run completed (one `interval`
    /// record per goal-class check).
    pub intervals: u32,
    /// Raw control-record lines of the recording, in order.
    pub control_lines: Vec<String>,
}

/// Decodes a recorded trace: finds the leading `run_config` record,
/// rebuilds the configuration, counts the goal class's interval records,
/// and keeps the raw control lines.
pub fn recorded_run_from_jsonl(text: &str) -> Result<RecordedRun, String> {
    let mut config = None;
    let mut intervals = 0u32;
    let mut control_lines = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let json = Json::parse(line).map_err(|e| format!("line {}: {e:?}", idx + 1))?;
        let kind = json.get("type").and_then(Json::as_str).unwrap_or("");
        match kind {
            "span" => continue,
            "run_config" if config.is_none() => {
                config =
                    Some(config_from_record(&json).map_err(|e| format!("line {}: {e}", idx + 1))?);
            }
            "interval" if json.get("class").and_then(Json::as_u64) == Some(1) => intervals += 1,
            _ => {}
        }
        control_lines.push(line.to_string());
    }
    let config = config.ok_or(
        "trace carries no run_config record (recorded by an emitter without replay support?)",
    )?;
    if intervals == 0 {
        return Err("trace carries no interval records for the goal class".to_string());
    }
    Ok(RecordedRun {
        config,
        intervals,
        control_lines,
    })
}

/// Re-runs a recorded run and returns the re-emitted trace lines. Spans
/// stay off (the closure excludes the observer), so every emitted line is a
/// control record.
pub fn rerun_lines(run: &RecordedRun) -> Vec<String> {
    let sink = VecSink::new();
    let mut sim = Simulation::new(run.config.clone());
    sim.set_trace_sink(Box::new(sink.handle()));
    sim.run_intervals(run.intervals);
    sink.lines()
}

/// One line where recording and replay disagree.
#[derive(Debug)]
pub struct Divergence {
    /// 0-based control-record index.
    pub index: usize,
    /// The recorded line (`None`: replay emitted extra records).
    pub original: Option<String>,
    /// The replayed line (`None`: replay ended early).
    pub replayed: Option<String>,
}

/// Outcome of a replay verification.
#[derive(Debug)]
pub struct ReplayReport {
    /// Intervals replayed.
    pub intervals: u32,
    /// Control records in the recording.
    pub original_records: usize,
    /// Records the replay emitted.
    pub replayed_records: usize,
    /// Total diverging positions.
    pub mismatches: usize,
    /// The first few divergences (capped by the caller's limit).
    pub divergences: Vec<Divergence>,
}

impl ReplayReport {
    /// Whether the replay reproduced the recording byte for byte.
    pub fn identical(&self) -> bool {
        self.mismatches == 0 && self.original_records == self.replayed_records
    }
}

/// Replays a recorded trace and byte-compares the control records,
/// reporting at most `limit` divergences in detail.
pub fn verify_jsonl(text: &str, limit: usize) -> Result<ReplayReport, String> {
    let run = recorded_run_from_jsonl(text)?;
    let replayed = rerun_lines(&run);
    let original = &run.control_lines;
    let len = original.len().max(replayed.len());
    let mut mismatches = 0usize;
    let mut divergences = Vec::new();
    for i in 0..len {
        let a = original.get(i);
        let b = replayed.get(i);
        if a != b {
            mismatches += 1;
            if divergences.len() < limit {
                divergences.push(Divergence {
                    index: i,
                    original: a.cloned(),
                    replayed: b.cloned(),
                });
            }
        }
    }
    Ok(ReplayReport {
        intervals: run.intervals,
        original_records: original.len(),
        replayed_records: replayed.len(),
        mismatches,
        divergences,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmm_buffer::ClassId;

    fn traced(config: SystemConfig, intervals: u32) -> String {
        let sink = VecSink::new();
        let mut sim = Simulation::new(config);
        sim.set_trace_sink(Box::new(sink.handle()));
        sim.run_intervals(intervals);
        sink.to_jsonl()
    }

    #[test]
    fn run_config_round_trips_through_the_builder() {
        let plan = FaultPlan::new(3)
            .crash_ms(NodeId(1), 20_000)
            .restart_ms(NodeId(1), 60_000)
            .message_drop(0.01)
            .disk_stall_ms(NodeId(0), 30_000, 40_000, 2.5);
        let config = SystemConfig::builder()
            .seed(9)
            .theta(0.5)
            .goal_ms(8.0)
            .db_pages(400)
            .buffer_pages_per_node(96)
            .goal_rate_per_ms(0.008)
            .warmup_intervals(2)
            .goal_range(GoalRange::new(4.0, 40.0))
            .fault_plan(plan)
            .build()
            .expect("valid config");
        let record = run_config_record(&config);
        assert_eq!(record.get("replayable").and_then(Json::as_bool), Some(true));
        let rebuilt = config_from_record(&record).expect("round trip");
        // The rebuilt config serializes to the identical closure…
        assert_eq!(
            run_config_record(&rebuilt).to_string(),
            record.to_string(),
            "closure must be a fixed point of record→config→record"
        );
        // …and re-parses after a JSON round trip (float formatting is
        // shortest-roundtrip, so every f64 survives).
        let reparsed = Json::parse(&record.to_string()).expect("parses");
        config_from_record(&reparsed).expect("round trip through text");
    }

    #[test]
    fn replay_reproduces_a_recorded_run_byte_for_byte() {
        let config = SystemConfig::builder()
            .seed(7)
            .theta(0.5)
            .goal_ms(8.0)
            .db_pages(400)
            .buffer_pages_per_node(96)
            .goal_rate_per_ms(0.008)
            .warmup_intervals(2)
            .goal_range(GoalRange::new(4.0, 40.0))
            .build()
            .expect("valid config");
        let doc = traced(config, 8);
        let report = verify_jsonl(&doc, 4).expect("replayable");
        assert_eq!(report.intervals, 8);
        assert!(
            report.identical(),
            "replay diverged: {:?}",
            report.divergences.first()
        );
    }

    #[test]
    fn hand_assembled_workloads_are_flagged_non_replayable() {
        let mut config = SystemConfig::builder()
            .seed(7)
            .goal_ms(8.0)
            .build()
            .expect("valid config");
        config.workload.classes[1].arrival_per_ms[0] *= 2.0; // post-hoc edit
        let record = run_config_record(&config);
        assert_eq!(
            record.get("replayable").and_then(Json::as_bool),
            Some(false)
        );
        let err = config_from_record(&record).expect_err("must refuse");
        assert!(err.contains("not replayable"), "{err}");
    }

    #[test]
    fn truncated_traces_report_helpful_errors() {
        assert!(recorded_run_from_jsonl("")
            .expect_err("empty")
            .contains("no run_config"));
        let config = SystemConfig::builder()
            .seed(7)
            .goal_ms(8.0)
            .build()
            .expect("valid config");
        let only_header = run_config_record(&config).to_string();
        assert!(recorded_run_from_jsonl(&only_header)
            .expect_err("no intervals")
            .contains("no interval records"));
    }

    #[test]
    fn goal_quantile_survives_the_closure() {
        let config = SystemConfig::builder()
            .seed(7)
            .goal_ms(15.0)
            .goal_quantile(0.95)
            .build()
            .expect("valid config");
        let record = run_config_record(&config);
        assert_eq!(
            record.get("goal_quantile").and_then(Json::as_f64),
            Some(0.95)
        );
        let rebuilt = config_from_record(&record).expect("round trip");
        assert!(rebuilt.workload.classes[1].goal_metric.is_quantile());
        let _ = ClassId(1);
    }
}
