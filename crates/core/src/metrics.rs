//! Measurement protocol of §7: convergence counting and interval recording.
//!
//! "We count the number of intervals in which the system reaches a state
//! satisfying the response time goal … we are interested in the speed of
//! convergence, i.e. the number of iterations of the feedback controlled
//! loop necessary to find such a partitioning." We count the *optimization
//! rounds* the loop needed: one for the check that finds the goal satisfied
//! plus one per corrective recomputation before it (checks that merely let a
//! just-changed partitioning settle do not recompute anything and are not
//! iterations "necessary to find" the partitioning). Replications continue
//! "to obtain an accuracy of less than 1 iteration … with a statistical
//! confidence of 99 percent".

use dmm_sim::stats::{ConfidenceInterval, Welford, Z_99};

/// Per-class convergence accounting across goal changes.
#[derive(Debug, Clone, Default)]
pub struct ConvergenceStats {
    iterations: Welford,
    pending: Option<u32>,
}

impl ConvergenceStats {
    /// Fresh accounting.
    pub fn new() -> Self {
        Self::default()
    }

    /// A new goal came into force; start counting iterations.
    pub fn on_goal_change(&mut self) {
        self.pending = Some(0);
    }

    /// One check phase ran with the given outcome; `acted` says whether it
    /// recomputed the partitioning (phase (d) ran).
    pub fn on_check(&mut self, satisfied: bool, acted: bool) {
        if let Some(n) = &mut self.pending {
            if acted {
                *n += 1;
            }
            if satisfied {
                self.iterations.push((*n + 1) as f64);
                self.pending = None;
            }
        }
    }

    /// Number of completed convergence episodes.
    pub fn episodes(&self) -> u64 {
        self.iterations.count()
    }

    /// Mean iterations to convergence.
    pub fn mean_iterations(&self) -> f64 {
        self.iterations.mean()
    }

    /// 99 % confidence interval on the mean (the §7.1 replication target is
    /// half-width < 1).
    pub fn ci99(&self) -> ConfidenceInterval {
        ConfidenceInterval::from_welford(&self.iterations, Z_99)
    }

    /// True once the §7.1 accuracy target is met: at least `min_episodes`
    /// completed episodes and a 99 % CI half-width below 1 iteration.
    pub fn accurate_enough(&self, min_episodes: u64) -> bool {
        self.episodes() >= min_episodes && self.ci99().is_tighter_than(1.0)
    }

    /// Merges another run's episodes (parallel replication).
    pub fn merge(&mut self, other: &ConvergenceStats) {
        self.iterations.merge(&other.iterations);
    }
}

/// One observation interval's record for a goal class (the Fig. 2 columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalRecord {
    /// Interval index (0-based, after warm-up).
    pub interval: u32,
    /// Observed weighted mean response time (ms); NaN-free: `None` if no
    /// operations completed.
    pub observed_ms: Option<f64>,
    /// Observed goal-quantile response time (ms); `Some` only for
    /// quantile-goal classes with data. For those classes `satisfied`
    /// judges this value, not the mean.
    pub observed_p_ms: Option<f64>,
    /// Goal in force (ms).
    pub goal_ms: f64,
    /// No-goal class response time the coordinator knows (ms).
    pub nogoal_ms: f64,
    /// Total dedicated cache for the class across all nodes, in bytes.
    pub dedicated_bytes: u64,
    /// Whether the check declared the goal satisfied.
    pub satisfied: Option<bool>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_iterations_per_episode() {
        let mut c = ConvergenceStats::new();
        c.on_goal_change();
        c.on_check(false, true); // corrective action 1
        c.on_check(false, false); // settling: not an iteration
        c.on_check(false, true); // corrective action 2
        c.on_check(true, false); // satisfied ⇒ 2 actions + 1 = 3
        assert_eq!(c.episodes(), 1);
        assert!((c.mean_iterations() - 3.0).abs() < 1e-12);

        c.on_goal_change();
        c.on_check(true, false); // immediately satisfied: 1 iteration
        assert_eq!(c.episodes(), 2);
        assert!((c.mean_iterations() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn checks_outside_episodes_are_ignored() {
        let mut c = ConvergenceStats::new();
        c.on_check(true, false);
        c.on_check(false, true);
        assert_eq!(c.episodes(), 0);
    }

    #[test]
    fn accuracy_target() {
        let mut c = ConvergenceStats::new();
        assert!(!c.accurate_enough(3));
        for _ in 0..50 {
            c.on_goal_change();
            c.on_check(false, true);
            c.on_check(true, false); // always exactly 2
        }
        assert!(c.accurate_enough(3));
        assert!((c.mean_iterations() - 2.0).abs() < 1e-12);
        assert!(c.ci99().is_tighter_than(0.5));
    }

    #[test]
    fn merge_combines_runs() {
        let mut a = ConvergenceStats::new();
        let mut b = ConvergenceStats::new();
        a.on_goal_change();
        a.on_check(true, false); // 1
        b.on_goal_change();
        b.on_check(false, true);
        b.on_check(false, true);
        b.on_check(true, false); // 3
        a.merge(&b);
        assert_eq!(a.episodes(), 2);
        assert!((a.mean_iterations() - 2.0).abs() < 1e-12);
    }
}
