//! Typed errors of the public simulation API.
//!
//! Every fallible [`crate::Simulation`] mutator and the
//! [`crate::system::SystemConfigBuilder`] return these instead of
//! panicking, so embedding code (benchmark harnesses, parameter sweeps,
//! interactive drivers) can recover from bad inputs.

use dmm_buffer::ClassId;
use dmm_cluster::NodeId;

/// Why a simulation request was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The class id does not exist in the configured workload.
    UnknownClass(ClassId),
    /// The class exists but is the no-goal class, which has no coordinator,
    /// no goal, and no dedicated buffers.
    NotAGoalClass(ClassId),
    /// The node id is outside the configured cluster.
    UnknownNode(NodeId),
    /// The node exists but is currently crashed.
    NodeDown(NodeId),
    /// A response-time goal must be positive and finite (milliseconds).
    InvalidGoal(f64),
    /// A dedicated-buffer fraction must lie in `[0, 1]`.
    InvalidFraction(f64),
    /// The builder was given an inconsistent configuration.
    InvalidConfig(&'static str),
    /// The storage-tier ladder is malformed (too few/many rungs,
    /// non-monotone latencies, zero capacities, duplicate names, …).
    InvalidTier(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::UnknownClass(c) => write!(f, "unknown class {c:?}"),
            Error::NotAGoalClass(c) => write!(f, "{c:?} is not a goal class"),
            Error::UnknownNode(n) => write!(f, "unknown node {n:?}"),
            Error::NodeDown(n) => write!(f, "node {n:?} is down"),
            Error::InvalidGoal(g) => {
                write!(f, "goal must be positive and finite, got {g} ms")
            }
            Error::InvalidFraction(x) => {
                write!(f, "fraction must lie in [0, 1], got {x}")
            }
            Error::InvalidConfig(why) => write!(f, "invalid configuration: {why}"),
            Error::InvalidTier(why) => write!(f, "invalid tier ladder: {why}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::InvalidGoal(-1.0);
        assert!(e.to_string().contains("-1"));
        let e = Error::InvalidConfig("zero nodes");
        assert!(e.to_string().contains("zero nodes"));
        assert_eq!(Error::NodeDown(NodeId(2)), Error::NodeDown(NodeId(2)));
    }
}
